// Common interface for bandwidth predictors, so the evaluation machinery
// can score the paper's model and the baseline models identically.
#pragma once

#include <memory>
#include <string>

#include "model/model.hpp"
#include "model/placement.hpp"

namespace mcm::baseline {

class Predictor {
 public:
  virtual ~Predictor() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Predict all four bandwidth series for one placement.
  [[nodiscard]] virtual model::PredictedCurve predict(
      topo::NumaId comp, topo::NumaId comm) const = 0;

  [[nodiscard]] virtual std::size_t max_cores() const = 0;
};

/// Score any predictor against a measured sweep with the paper's Table-II
/// protocol (MAPE on the parallel series, samples vs non-samples).
[[nodiscard]] model::ErrorReport evaluate_predictor(
    const Predictor& predictor, const bench::SweepResult& sweep);

/// The paper's model, wrapped as a Predictor for side-by-side comparisons.
class PaperModelPredictor final : public Predictor {
 public:
  explicit PaperModelPredictor(model::ContentionModel model)
      : model_(std::move(model)) {}

  [[nodiscard]] std::string name() const override { return "paper-model"; }
  [[nodiscard]] model::PredictedCurve predict(
      topo::NumaId comp, topo::NumaId comm) const override {
    return model_.predict({comp, comm});
  }
  [[nodiscard]] std::size_t max_cores() const override {
    return model_.max_cores();
  }

 private:
  model::ContentionModel model_;
};

}  // namespace mcm::baseline
