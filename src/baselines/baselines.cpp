#include "baselines/baselines.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/stats.hpp"

namespace mcm::baseline {

model::ErrorReport evaluate_predictor(const Predictor& predictor,
                                      const bench::SweepResult& sweep) {
  return model::evaluate_with(
      sweep.platform + " / " + predictor.name(), sweep,
      [&predictor](topo::NumaId comp, topo::NumaId comm) {
        return predictor.predict(comp, comm);
      });
}

RegimeScalars regime_scalars(const bench::PlacementCurve& curve) {
  MCM_EXPECTS(curve.points.size() >= 2);
  RegimeScalars scalars;
  scalars.max_cores = curve.points.size();
  scalars.b_comp_seq = curve.points.front().compute_alone_gb;
  scalars.b_comm_seq = median(curve.series(bench::Series::kCommAlone));
  scalars.capacity = argmax(curve.total_parallel()).value;
  scalars.solo_capacity =
      argmax(curve.series(bench::Series::kComputeAlone)).value;
  MCM_ENSURES(scalars.b_comp_seq > 0.0 && scalars.b_comm_seq > 0.0);
  MCM_ENSURES(scalars.capacity > 0.0 && scalars.solo_capacity > 0.0);
  return scalars;
}

TwoRegimeBaseline::TwoRegimeBaseline(RegimeScalars local,
                                     RegimeScalars remote,
                                     std::size_t numa_per_socket)
    : local_(local), remote_(remote), numa_per_socket_(numa_per_socket) {
  MCM_EXPECTS(numa_per_socket_ >= 1);
  MCM_EXPECTS(local_.max_cores == remote_.max_cores);
  MCM_EXPECTS(local_.max_cores >= 1);
}

model::PredictedCurve TwoRegimeBaseline::predict(topo::NumaId comp,
                                                 topo::NumaId comm) const {
  const RegimeScalars& comp_regime = regime_of(comp);
  const RegimeScalars& comm_regime = regime_of(comm);

  model::PredictedCurve curve;
  curve.comp_numa = comp;
  curve.comm_numa = comm;
  for (std::size_t n = 1; n <= max_cores(); ++n) {
    const double solo_compute =
        std::min(static_cast<double>(n) * comp_regime.b_comp_seq,
                 comp_regime.solo_capacity);
    curve.compute_alone_gb.push_back(solo_compute);
    curve.comm_alone_gb.push_back(comm_regime.b_comm_seq);

    if (comp == comm) {
      // Shared node: apply the baseline's sharing policy.
      const Shares shares = share(n, comp_regime, comm_regime.b_comm_seq);
      curve.compute_parallel_gb.push_back(shares.compute);
      curve.comm_parallel_gb.push_back(shares.comm);
    } else {
      // Disjoint placements: no shared resource in these simple models.
      curve.compute_parallel_gb.push_back(solo_compute);
      curve.comm_parallel_gb.push_back(comm_regime.b_comm_seq);
    }
  }
  return curve;
}

TwoRegimeBaseline::Shares PerfectScalingBaseline::share(
    std::size_t n, const RegimeScalars& regime, double comm_nominal) const {
  return Shares{static_cast<double>(n) * regime.b_comp_seq, comm_nominal};
}

TwoRegimeBaseline::Shares QueueingBaseline::share(
    std::size_t n, const RegimeScalars& regime, double comm_nominal) const {
  const double compute_demand = static_cast<double>(n) * regime.b_comp_seq;
  const double offered = compute_demand + comm_nominal;
  if (offered <= regime.capacity) {
    return Shares{compute_demand, comm_nominal};
  }
  // Processor sharing: proportional throttling, blind to priority/floors.
  const double scale = regime.capacity / offered;
  return Shares{compute_demand * scale, comm_nominal * scale};
}

TwoRegimeBaseline::Shares LangguthBaseline::share(
    std::size_t n, const RegimeScalars& regime, double comm_nominal) const {
  const double compute_demand = static_cast<double>(n) * regime.b_comp_seq;
  if (compute_demand + comm_nominal <= regime.capacity) {
    return Shares{compute_demand, comm_nominal};
  }
  // Equal split between the two classes, each bounded by its demand; the
  // unused half of one class flows to the other.
  const double half = 0.5 * regime.capacity;
  Shares shares;
  shares.comm = std::min(comm_nominal, half);
  shares.compute =
      std::min(compute_demand, regime.capacity - shares.comm);
  // If compute cannot use its share, give the rest back to comm.
  shares.comm = std::min(comm_nominal, regime.capacity - shares.compute);
  return shares;
}

}  // namespace mcm::baseline
