// Baseline bandwidth predictors the paper's model is compared against.
//
// All baselines calibrate from the *same* two sample placements as the
// paper's model (both-local and both-remote sweeps), so the comparison in
// bench_ablation_baselines is apples to apples.
#pragma once

#include "baselines/predictor.hpp"
#include "benchlib/curves.hpp"
#include "model/parameters.hpp"

namespace mcm::baseline {

/// Scalars every baseline needs per memory regime, extracted from a sample
/// curve with the same procedure as the paper's calibration.
struct RegimeScalars {
  double b_comp_seq = 0.0;   ///< single-core bandwidth
  double b_comm_seq = 0.0;   ///< nominal network bandwidth
  double capacity = 0.0;     ///< peak total bandwidth observed
  double solo_capacity = 0.0;  ///< peak compute-alone bandwidth
  std::size_t max_cores = 0;
};

/// Extract baseline scalars from one sample placement curve.
[[nodiscard]] RegimeScalars regime_scalars(
    const bench::PlacementCurve& curve);

/// Shared state of the concrete baselines: local + remote scalars and the
/// machine's #m, with the same placement-locality logic as the paper.
class TwoRegimeBaseline : public Predictor {
 public:
  TwoRegimeBaseline(RegimeScalars local, RegimeScalars remote,
                    std::size_t numa_per_socket);

  [[nodiscard]] std::size_t max_cores() const override {
    return local_.max_cores;
  }

  [[nodiscard]] model::PredictedCurve predict(
      topo::NumaId comp, topo::NumaId comm) const override;

 protected:
  /// Share `capacity` between n cores of demand b_comp each and a network
  /// stream of demand b_comm; the policy differentiates the baselines.
  /// Returns {compute_share, comm_share}.
  struct Shares {
    double compute = 0.0;
    double comm = 0.0;
  };
  [[nodiscard]] virtual Shares share(std::size_t n,
                                     const RegimeScalars& regime,
                                     double comm_nominal) const = 0;

  [[nodiscard]] bool is_local(topo::NumaId numa) const {
    return numa.value() < numa_per_socket_;
  }
  [[nodiscard]] const RegimeScalars& regime_of(topo::NumaId numa) const {
    return is_local(numa) ? local_ : remote_;
  }

 private:
  RegimeScalars local_;
  RegimeScalars remote_;
  std::size_t numa_per_socket_;
};

/// No-contention baseline: computations scale perfectly, communications
/// always run at nominal bandwidth. What an overlap-oblivious runtime
/// assumes today.
class PerfectScalingBaseline final : public TwoRegimeBaseline {
 public:
  using TwoRegimeBaseline::TwoRegimeBaseline;
  [[nodiscard]] std::string name() const override {
    return "perfect-scaling";
  }

 protected:
  [[nodiscard]] Shares share(std::size_t n, const RegimeScalars& regime,
                             double comm_nominal) const override;
};

/// Processor-sharing queue baseline (§II-D): the bus is a single server of
/// rate `capacity`; when offered load exceeds it, every requester gets a
/// share proportional to its demand — no CPU priority, no DMA floor.
class QueueingBaseline final : public TwoRegimeBaseline {
 public:
  using TwoRegimeBaseline::TwoRegimeBaseline;
  [[nodiscard]] std::string name() const override { return "queueing-ps"; }

 protected:
  [[nodiscard]] Shares share(std::size_t n, const RegimeScalars& regime,
                             double comm_nominal) const override;
};

/// Langguth et al. style equal-split baseline (related work [13]): under
/// contention the bus capacity is divided evenly between the computation
/// class and the communication class, each bounded by its demand.
class LangguthBaseline final : public TwoRegimeBaseline {
 public:
  using TwoRegimeBaseline::TwoRegimeBaseline;
  [[nodiscard]] std::string name() const override { return "equal-split"; }

 protected:
  [[nodiscard]] Shares share(std::size_t n, const RegimeScalars& regime,
                             double comm_nominal) const override;
};

/// Build any TwoRegimeBaseline-derived predictor from a calibration sweep
/// (the same input the paper's model calibrates from).
template <typename Baseline>
[[nodiscard]] Baseline make_baseline(const bench::SweepResult& sweep) {
  const topo::NumaId local_node(0);
  const topo::NumaId remote_node(
      static_cast<std::uint32_t>(sweep.numa_per_socket));
  return Baseline(regime_scalars(sweep.curve(local_node, local_node)),
                  regime_scalars(sweep.curve(remote_node, remote_node)),
                  sweep.numa_per_socket);
}

}  // namespace mcm::baseline
