// The mcm::net shared-memory transport for the prediction service:
// in-cluster clients that already live in the server process (embedded
// tools, co-located rank drivers) talk to the Service over ShmWorld
// rank-pair mailboxes instead of an AF_UNIX socket.
//
// Framing: the SAME length-prefixed frame grammar as the socket/stdio
// transports, split at its one newline into two mailbox messages — the
// length line ("<decimal>\n") and the payload line ("<json>\n").
// Concatenating the two messages reproduces the socket frame
// byte-for-byte, and the service replies with the same canonical bytes,
// so a transcript captured over shm byte-compares against the socket
// transcript for the same requests. Tag kRequestFrame carries
// client->server messages, kReplyFrame server->client; minimpi's FIFO
// order per (source, tag) keeps the two halves of a frame adjacent.
//
// Faults: ShmTransportOptions::faults is armed on the world before any
// traffic, so the chaos harness drives this transport with the same
// seeded delay/drop/stall plans it uses against raw minimpi.
//
// Lifecycle: ShmServer owns the world and a rank-0 serving thread;
// ShmClient borrows the rank-1 endpoint. stop() (and kill(), the chaos
// alias) marks both ranks gone — the serving thread's blocked wait and
// any in-flight client wait unwind with net::Error(kPeerGone) instead of
// hanging. The transport is terminal after stop: there is no reconnect,
// a desynced or stopped client fails every later call with a typed
// error.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <string>
#include <thread>

#include "net/fault.hpp"
#include "net/minimpi.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"

namespace mcm::svc {

/// client -> server frame messages (rank 1 -> rank 0).
inline constexpr int kRequestFrame = 1;
/// server -> client frame messages (rank 0 -> rank 1).
inline constexpr int kReplyFrame = 2;

struct ShmTransportOptions {
  /// Eager/rendezvous thresholds of the underlying mailboxes.
  net::ProtocolParams protocol;
  /// Seeded fault plan armed before any traffic (default: none). The
  /// chaos harness injects delay/stall here.
  net::FaultPlan faults;
  /// Frames above this are refused with a typed bad-request reply and
  /// the serving loop exits (framing has no resync point mid-stream).
  std::size_t max_frame_bytes = kMaxFrameBytes;
};

/// Rank-0 serving loop over an owned ShmWorld. start() spawns the
/// thread; requests are answered frame-for-frame until stop()/kill()
/// marks the peers gone or a malformed frame ends the stream.
class ShmServer {
 public:
  ShmServer(Service& service, ShmTransportOptions options = {});
  ~ShmServer();

  ShmServer(const ShmServer&) = delete;
  ShmServer& operator=(const ShmServer&) = delete;

  void start();
  /// Idempotent. Marks both ranks gone (waking the serving thread and
  /// any blocked client) and joins the serving thread.
  void stop();
  /// Chaos alias for stop(): kill the server out from under in-flight
  /// calls; their waits throw net::Error(kPeerGone) and surface as
  /// typed transport failures client-side.
  void kill() { stop(); }
  [[nodiscard]] bool running() const { return thread_.joinable(); }

  /// Frames answered so far (replies sent, including typed errors).
  [[nodiscard]] std::size_t served() const {
    return served_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] net::ShmWorld& world() { return world_; }
  [[nodiscard]] const ShmTransportOptions& options() const {
    return options_;
  }

 private:
  void serve_loop();

  Service& service_;
  ShmTransportOptions options_;
  net::ShmWorld world_;
  std::thread thread_;
  std::atomic<std::size_t> served_{0};
  std::atomic<bool> stopped_{false};
};

/// Rank-1 endpoint paired with a ShmServer. Blocking call/reply with an
/// optional per-call deadline; mirrors svc::Client's typed semantics
/// (deadline expiry synthesizes the same `deadline-exceeded` error reply
/// the server would send). NOT thread-safe; one in-flight call at a
/// time. A timeout or transport failure desyncs the stream permanently —
/// later calls fail fast with a typed error instead of reading a stale
/// reply.
class ShmClient {
 public:
  explicit ShmClient(ShmServer& server);

  /// Send one raw frame payload, wait for the reply payload.
  /// `deadline_ms` 0 waits forever. nullopt + `error` on transport
  /// failure, timeout, or a desynced client.
  [[nodiscard]] std::optional<std::string> roundtrip(
      const std::string& payload, std::string* error = nullptr,
      double deadline_ms = 0.0);

  /// Typed form: render the request, roundtrip it, parse the reply. An
  /// empty request id is replaced with a generated "shm<n>" id; a
  /// positive `deadline_ms` also rides the wire as the request's
  /// deadline_ms so the server enforces the same budget. On deadline
  /// expiry returns a synthesized `deadline-exceeded` error reply (same
  /// typed code the server uses); nullopt + `error` on transport
  /// failure or an unparseable reply.
  [[nodiscard]] std::optional<Reply> call(Request request,
                                          std::string* error = nullptr,
                                          double deadline_ms = 0.0);

  /// False once a timeout/transport failure poisoned the stream.
  [[nodiscard]] bool usable() const { return !broken_; }

 private:
  net::Communicator& comm_;
  std::size_t max_frame_bytes_;
  std::uint64_t next_id_ = 1;
  bool broken_ = false;
  /// True when the last roundtrip failure was a wait deadline expiring
  /// (call() turns that into the typed deadline-exceeded reply).
  bool last_timeout_ = false;
};

}  // namespace mcm::svc
