// Wire protocol v1 of the mcmd prediction service (docs/service.md).
//
// Transport: length-prefixed JSON frames. A frame is the ASCII decimal
// byte length of the payload, '\n', the payload bytes, '\n'. The same
// framing runs over a Unix domain socket (mcmd --socket) and over
// stdin/stdout (mcmd --stdio, the deterministic replay mode CI diffs).
//
// Request payload (one JSON object; unknown keys are rejected, like
// ScenarioSpec documents):
//
//   {"v": 1, "id": "r1", "method": "predict", "class": "interactive",
//    "spec": { ...ScenarioSpec document... }}
//
//   v           required; protocol major version, must be 1. Within v1
//               the schema only ever grows additively (new optional
//               keys).
//   id          required string; echoed verbatim in the reply so clients
//               can match replies to requests.
//   method      "predict" | "calibrate" | "stats" | "health" | "batch".
//   class       optional; "interactive" (default) | "bulk" — the
//               admission class the token-bucket limiter charges
//               (svc/limiter.hpp).
//   spec        required for predict/calibrate, rejected for
//               stats/health; the same ScenarioSpec schema `mcmtool
//               run-scenario` reads.
//   format      stats only, optional; "json" (default) | "prometheus".
//   deadline_ms optional non-negative number (additive v1 extension):
//               the server answers `deadline-exceeded` instead of doing
//               pipeline work once this budget, counted from request
//               arrival, is spent — while queued behind admission or
//               while waiting on another flight's calibration.
//   trace_id    optional (additive v1 extension): exactly 12 lowercase
//               hex characters, nonzero — the 48-bit id of the logical
//               request (stable across client retries). The server tags
//               every span it records for the request with this id and
//               echoes it in error replies (shed / deadline-exceeded) so
//               the client can correlate.
//   span_id     optional, requires trace_id; same grammar — the id of
//               the client-side attempt span (fresh per retry), recorded
//               on server spans as the parent link.
//   entries     batch only (additive v1 extension), required there and
//               rejected everywhere else: a non-empty array of at most
//               kMaxBatchEntries complete request envelopes, each a
//               predict or calibrate request with its own id, class,
//               deadline_ms and trace identity. Entries do not nest
//               (an entry whose method is "batch" is an entry-level
//               error). A malformed entry never poisons the batch: it
//               is answered with its own typed error reply while the
//               other entries are served normally.
//
// Batch reply: the envelope is an ok reply whose result is
//
//   {"replies": [ <reply envelope>, ... ]}
//
// with exactly one reply envelope per entry, in entry order. Each
// element is a complete reply document: serializing element i
// reproduces, byte for byte, the reply the server would have sent for
// entry i issued as its own serial request.
//
// Reply payload:
//
//   {"id": "r1", "ok": true, "result": {...}, "v": 1}
//   {"error": {"code": "overloaded", "message": "..."}, "id": "r1",
//    "ok": false, "v": 1}
//
// Replies are rendered with json::serialize, so a reply to a given
// request sequence is byte-identical across runs and a `predict` result
// is byte-identical to `mcmtool run-scenario --result-json` on the same
// spec.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace_context.hpp"
#include "pipeline/spec.hpp"
#include "util/json.hpp"

namespace mcm::svc {

/// Protocol major version this build speaks.
inline constexpr int kProtocolVersion = 1;

/// Frames larger than this are rejected as malformed rather than
/// buffered (a corrupt length prefix must not trigger a giant allocation).
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

/// Upper bound on `entries` in one batch envelope: enough for any sane
/// coalescing window, small enough that a hostile frame cannot turn one
/// admission check into unbounded queued work.
inline constexpr std::size_t kMaxBatchEntries = 1024;

enum class Method : std::uint8_t {
  kPredict,
  kCalibrate,
  kStats,
  kHealth,
  kBatch,
};

/// Admission classes of the token-bucket limiter: `interactive` for
/// latency-sensitive single queries, `bulk` for sweep traffic that may be
/// shed under load (docs/service.md).
enum class TrafficClass : std::uint8_t { kInteractive, kBulk };

/// Stats rendering requested by the client.
enum class StatsFormat : std::uint8_t { kJson, kPrometheus };

/// Typed error codes carried in error replies, in the spirit of
/// net::ErrorKind: a machine-readable discriminator plus a free-form
/// message.
enum class ErrorCode : std::uint8_t {
  kBadRequest,          ///< unparseable payload / malformed frame
  kUnsupportedVersion,  ///< "v" is not kProtocolVersion
  kUnknownMethod,       ///< "method" names nothing this build speaks
  kInvalidSpec,         ///< "spec" failed ScenarioSpec validation
  kOverloaded,          ///< shed by admission control (HTTP-429 analogue)
  kInternal,            ///< the pipeline threw while serving the request
  kDeadlineExceeded,    ///< the request's deadline_ms budget ran out
                        ///< (server-side, or synthesized by the client
                        ///< when its own CallOptions deadline expires)
};

[[nodiscard]] const char* to_string(Method method);
[[nodiscard]] const char* to_string(TrafficClass cls);
[[nodiscard]] const char* to_string(ErrorCode code);
[[nodiscard]] std::optional<Method> parse_method(const std::string& name);
[[nodiscard]] std::optional<TrafficClass> parse_traffic_class(
    const std::string& name);

struct WireError {
  ErrorCode code = ErrorCode::kBadRequest;
  std::string message;
  /// When non-empty, echoed as the error detail's `trace_id` key (12
  /// lowercase hex chars) — shed and deadline-exceeded replies carry the
  /// request's trace id so the client can log the correlation.
  std::string trace_id;
};

struct ParsedRequest;

/// One decoded request frame.
struct Request {
  int version = kProtocolVersion;
  std::string id;
  Method method = Method::kHealth;
  TrafficClass traffic_class = TrafficClass::kInteractive;
  StatsFormat stats_format = StatsFormat::kJson;
  /// End-to-end budget in milliseconds, 0 = none. Wired as the optional
  /// `deadline_ms` request key; the service answers `deadline-exceeded`
  /// instead of starting (or keeping waiting on) pipeline work once the
  /// budget is spent.
  double deadline_ms = 0.0;
  /// Request-scoped trace identity (optional `trace_id` / `span_id` wire
  /// keys, additive v1 extension). trace_id == 0 means untraced; the keys
  /// are then absent from the rendered request, keeping default traffic
  /// byte-identical to pre-trace builds.
  obs::TraceContext trace;
  /// Engaged for predict / calibrate.
  std::optional<pipeline::ScenarioSpec> spec;
  /// Batch only: one ParsedRequest per wire entry, in wire order. An
  /// entry that failed validation keeps its parse error here (request
  /// disengaged) so the server can answer it with a typed per-entry
  /// reply without failing the batch.
  std::vector<ParsedRequest> entries;
};

/// One decoded reply frame. `result` is meaningful when ok, `error` when
/// not.
struct Reply {
  std::string id;
  bool ok = false;
  json::Value result;
  WireError error;
};

/// parse_request outcome: `request` engaged on success; on failure
/// `error` says why and `id` is the best-effort request id (so the error
/// reply can still be correlated when the envelope parsed but a field
/// did not).
struct ParsedRequest {
  std::optional<Request> request;
  std::string id;
  WireError error;
};

/// Decode + validate one request payload. Unknown keys anywhere in the
/// envelope are rejected; the embedded spec is validated by
/// ScenarioSpec::from_value with the same strictness.
[[nodiscard]] ParsedRequest parse_request(const std::string& payload);

/// Encode a request payload (the client side of parse_request; the
/// output round-trips through parse_request for every wire-representable
/// request). Precondition: predict/calibrate requests carry a spec;
/// batch requests carry 1..kMaxBatchEntries entries whose `request` is
/// engaged (invalid entries are not wire-representable from this side).
[[nodiscard]] std::string render_request(const Request& request);

/// The request envelope as a json::Value (what render_request
/// serializes) — the batch encoder embeds entry envelopes with it.
[[nodiscard]] json::Value request_to_value(const Request& request);

/// Canonical reply payloads (json::serialize — deterministic bytes).
[[nodiscard]] std::string render_result_reply(const std::string& id,
                                              const json::Value& result);
[[nodiscard]] std::string render_error_reply(const std::string& id,
                                             const WireError& error);
[[nodiscard]] std::string render_reply(const Reply& reply);

/// The reply envelope as a json::Value. Serializing it reproduces
/// render_reply byte for byte — the batch handler relies on this to
/// embed entry replies whose bytes match serial service.
[[nodiscard]] json::Value reply_to_value(const Reply& reply);

/// Decode a reply payload (client side). nullopt + `error` on documents
/// that are not a v1 reply envelope.
[[nodiscard]] std::optional<Reply> parse_reply(const std::string& payload,
                                               std::string* error = nullptr);

/// Same, from an already-parsed document — the client side of a batch
/// reply's `replies` array elements.
[[nodiscard]] std::optional<Reply> parse_reply(const json::Value& doc,
                                               std::string* error);

/// Stream framing. read_frame returns false on clean EOF (error empty)
/// and on malformed input (error set); a malformed length line is not
/// recoverable — the byte stream has no resync point.
[[nodiscard]] bool read_frame(std::istream& in, std::string* payload,
                              std::string* error);
void write_frame(std::ostream& out, const std::string& payload);

/// Why a typed fd frame read stopped. Exactly one of these per call;
/// only kFrame carries a payload.
enum class FrameReadStatus : std::uint8_t {
  kFrame,         ///< one complete frame decoded into *payload
  kEof,           ///< clean EOF between frames
  kMalformed,     ///< bad length line, truncation mid-frame, bad trailer
  kOversized,     ///< declared length above FrameIoOptions::max_frame_bytes
  kIdleTimeout,   ///< idle_timeout_ms passed with no frame started
  kStallTimeout,  ///< frame_timeout_ms passed mid-frame (slow-loris peer)
  kStopped,       ///< stop_fd became readable
  kDrained,       ///< drain_fd became readable while idle between frames
  kIoError,       ///< read(2)/poll(2) failed (errno in *error)
};
[[nodiscard]] const char* to_string(FrameReadStatus status);

/// Why a typed fd frame write stopped short of kOk.
enum class FrameWriteStatus : std::uint8_t {
  kOk,        ///< whole frame written
  kTimeout,   ///< frame_timeout_ms passed with the peer not draining us
  kStopped,   ///< stop_fd became readable mid-write
  kPeerGone,  ///< EPIPE/ECONNRESET — the peer vanished
  kIoError,   ///< any other write(2)/poll(2) failure
};
[[nodiscard]] const char* to_string(FrameWriteStatus status);

/// Deadlines and limits for the typed fd framing. All timeouts are
/// milliseconds; -1 disables. Works for blocking and O_NONBLOCK fds
/// alike (progress is poll-driven either way).
struct FrameIoOptions {
  /// Readable => abort immediately (kStopped). The SocketServer points
  /// this at its never-consumed self-pipe.
  int stop_fd = -1;
  /// Readable => abort, but only while idle *between* frames (kDrained);
  /// a frame whose first byte arrived is always read to completion.
  int drain_fd = -1;
  /// Budget for the first byte of the next frame (connection keepalive).
  int idle_timeout_ms = -1;
  /// Budget for the rest of the frame once its first byte arrived — the
  /// slow-loris guard: a peer that stalls mid-frame is cut off instead
  /// of pinning its server worker.
  int frame_timeout_ms = -1;
  /// Declared lengths above this are rejected as kOversized before any
  /// allocation. Also the write deadline guard's frame limit.
  std::size_t max_frame_bytes = kMaxFrameBytes;
};

/// File-descriptor framing for the socket transport, typed form:
/// deadline-aware, EINTR-safe, short-read/short-write-safe. The write
/// path uses send(MSG_NOSIGNAL) on sockets so a vanished peer surfaces
/// as kPeerGone instead of SIGPIPE killing the process.
[[nodiscard]] FrameReadStatus read_frame_fd(int fd, std::string* payload,
                                            std::string* error,
                                            const FrameIoOptions& options);
[[nodiscard]] FrameWriteStatus write_frame_fd(int fd,
                                              const std::string& payload,
                                              const FrameIoOptions& options);

/// Convenience wrappers with no deadlines (blocking semantics):
/// read_frame_fd returns false on EOF (error empty) or malformed/short
/// input (error set); write_frame_fd returns false when the peer went
/// away mid-write.
[[nodiscard]] bool read_frame_fd(int fd, std::string* payload,
                                 std::string* error);
[[nodiscard]] bool write_frame_fd(int fd, const std::string& payload);

}  // namespace mcm::svc
