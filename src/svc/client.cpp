#include "svc/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace mcm::svc {
namespace {

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_id_(std::exchange(other.next_id_, 1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    next_id_ = std::exchange(other.next_id_, 1);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<Client> Client::connect(const std::string& socket_path,
                                      std::string* error) {
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    set_error(error, "socket path too long: " + socket_path);
    return std::nullopt;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    set_error(error, std::string("socket: ") + std::strerror(errno));
    return std::nullopt;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    std::string message = "connect ";
    message.append(socket_path).append(": ").append(std::strerror(errno));
    set_error(error, message);
    ::close(fd);
    return std::nullopt;
  }
  Client client;
  client.fd_ = fd;
  return client;
}

std::optional<Reply> Client::call(Request request, std::string* error) {
  if (!connected()) {
    set_error(error, "client is not connected");
    return std::nullopt;
  }
  if (request.id.empty()) {
    request.id = "c" + std::to_string(next_id_++);
  }
  if (!write_frame_fd(fd_, render_request(request))) {
    set_error(error, "send failed: server went away");
    close();
    return std::nullopt;
  }
  std::string payload;
  std::string frame_error;
  if (!read_frame_fd(fd_, &payload, &frame_error)) {
    set_error(error, frame_error.empty()
                         ? std::string("server closed the connection")
                         : frame_error);
    close();
    return std::nullopt;
  }
  std::string reply_error;
  std::optional<Reply> reply = parse_reply(payload, &reply_error);
  if (!reply) {
    set_error(error, reply_error);
    return std::nullopt;
  }
  return reply;
}

std::optional<Reply> Client::predict(const pipeline::ScenarioSpec& spec,
                                     TrafficClass cls,
                                     std::string* error) {
  Request request;
  request.method = Method::kPredict;
  request.traffic_class = cls;
  request.spec = spec;
  return call(std::move(request), error);
}

std::optional<Reply> Client::calibrate(const pipeline::ScenarioSpec& spec,
                                       TrafficClass cls,
                                       std::string* error) {
  Request request;
  request.method = Method::kCalibrate;
  request.traffic_class = cls;
  request.spec = spec;
  return call(std::move(request), error);
}

std::optional<Reply> Client::stats(StatsFormat format,
                                   std::string* error) {
  Request request;
  request.method = Method::kStats;
  request.stats_format = format;
  return call(std::move(request), error);
}

std::optional<Reply> Client::health(std::string* error) {
  Request request;
  request.method = Method::kHealth;
  return call(std::move(request), error);
}

}  // namespace mcm::svc
