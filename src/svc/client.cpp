#include "svc/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>

#include "obs/span.hpp"
#include "util/rng.hpp"

namespace mcm::svc {
namespace {

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

using CallClock = std::chrono::steady_clock;

[[nodiscard]] double ms_until(CallClock::time_point deadline) {
  return std::chrono::duration<double, std::milli>(deadline -
                                                   CallClock::now())
      .count();
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_id_(std::exchange(other.next_id_, 1)),
      socket_path_(std::exchange(other.socket_path_, {})),
      tracing_(other.tracing_),
      trace_gen_(other.trace_gen_),
      trace_sink_(std::exchange(other.trace_sink_, nullptr)),
      span_clock_(other.span_clock_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    next_id_ = std::exchange(other.next_id_, 1);
    socket_path_ = std::exchange(other.socket_path_, {});
    tracing_ = other.tracing_;
    trace_gen_ = other.trace_gen_;
    trace_sink_ = std::exchange(other.trace_sink_, nullptr);
    span_clock_ = other.span_clock_;
  }
  return *this;
}

void Client::enable_tracing(std::uint64_t seed, obs::TraceSink* sink) {
  tracing_ = true;
  trace_gen_ = obs::TraceIdGenerator(seed);
  trace_sink_ = sink;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int Client::open_socket(const std::string& socket_path,
                        std::string* error) {
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    set_error(error, "socket path too long: " + socket_path);
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    set_error(error, std::string("socket: ") + std::strerror(errno));
    return -1;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    std::string message = "connect ";
    message.append(socket_path).append(": ").append(std::strerror(errno));
    set_error(error, message);
    ::close(fd);
    return -1;
  }
  return fd;
}

std::optional<Client> Client::connect(const std::string& socket_path,
                                      std::string* error) {
  const int fd = open_socket(socket_path, error);
  if (fd < 0) return std::nullopt;
  Client client;
  client.fd_ = fd;
  client.socket_path_ = socket_path;
  return client;
}

std::optional<Reply> Client::call(Request request, std::string* error) {
  return call(std::move(request), CallOptions{}, error);
}

std::optional<Reply> Client::call(Request request,
                                  const CallOptions& options,
                                  std::string* error) {
  if (options.retry.backoff < 1.0) {
    set_error(error, "CallOptions.retry.backoff must be >= 1");
    return std::nullopt;
  }
  if (request.id.empty()) {
    request.id = "c" + std::to_string(next_id_++);
  }
  if (tracing_ && request.trace.trace_id == 0) {
    // One trace id per logical call; a caller-set identity wins.
    request.trace.trace_id = trace_gen_.next();
  }

  const bool bounded = options.deadline_ms > 0.0;
  const CallClock::time_point deadline_at =
      CallClock::now() +
      std::chrono::duration_cast<CallClock::duration>(
          std::chrono::duration<double, std::milli>(options.deadline_ms));
  // Mirror of the server's typed expiry, synthesized locally: callers
  // branch on one error code whether the budget died on the wire, in
  // the server, or here.
  const auto deadline_reply = [&](std::size_t attempts,
                                  const std::string& last) {
    char budget[32];
    std::snprintf(budget, sizeof budget, "%g", options.deadline_ms);
    Reply reply;
    reply.id = request.id;
    reply.ok = false;
    reply.error = {ErrorCode::kDeadlineExceeded,
                   "client deadline of " + std::string(budget) +
                       "ms exhausted after " + std::to_string(attempts) +
                       " attempt(s)" + (last.empty() ? "" : ": " + last),
                   std::string()};
    return reply;
  };

  Rng jitter(options.jitter_seed);
  std::string last_error = "no attempt made";
  for (std::size_t attempt = 0; attempt <= options.retry.max_retries;
       ++attempt) {
    if (attempt > 0) {
      // Jittered exponential pause so retrying clients spread out
      // instead of stampeding the recovering server in lockstep.
      double pause =
          options.retry_pause_ms *
          std::pow(options.retry.backoff,
                   static_cast<double>(attempt - 1)) *
          jitter.uniform(0.5, 1.5);
      // backoff^(attempt-1) overflows to inf for large attempt counts
      // (and 0 * inf is NaN); clamp to the ceiling before the value can
      // reach a duration. `!(x < cap)` is the form that catches both.
      if (!(pause < options.max_retry_pause_ms)) {
        pause = options.max_retry_pause_ms;
      }
      if (bounded) pause = std::min(pause, ms_until(deadline_at));
      if (pause > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(pause));
      }
    }
    if (bounded && ms_until(deadline_at) <= 0.0) {
      return deadline_reply(attempt, last_error);
    }
    if (!connected()) {
      if (socket_path_.empty()) {
        set_error(error, "client is not connected");
        return std::nullopt;
      }
      std::string connect_error;
      fd_ = open_socket(socket_path_, &connect_error);
      if (fd_ < 0) {
        // Connect failures are always retryable: the server provably
        // saw nothing.
        last_error = connect_error;
        continue;
      }
    }
    Request wire = request;
    if (bounded) {
      // The server gets what is *left* of the budget, not the original.
      wire.deadline_ms = std::max(ms_until(deadline_at), 0.0);
    }
    if (tracing_) {
      // Fresh span per attempt: retries share the call's trace_id but
      // stay distinguishable hops in a merged timeline.
      wire.trace.span_id = trace_gen_.next();
    }
    // Client-side attempt span (no-op when no sink): covers the frame
    // write and the wait for the reply, tagged like the server spans so
    // trace-merge can line the two processes up.
    obs::ScopedSpan attempt_span(trace_sink_, span_clock_, "attempt",
                                 "svc.client", 0);
    if (wire.trace.valid()) {
      attempt_span.arg("trace_id",
                       static_cast<double>(wire.trace.trace_id));
      if (wire.trace.span_id != 0) {
        attempt_span.arg("span_id",
                         static_cast<double>(wire.trace.span_id));
      }
      attempt_span.arg("attempt", static_cast<double>(attempt));
    }
    if (!write_frame_fd(fd_, render_request(wire))) {
      // A torn frame is discarded server-side, never executed — send
      // failures are retryable even for non-idempotent requests.
      close();
      last_error = "send failed: server went away";
      continue;
    }
    // Attempt budget: the retry policy's (backed-off) reply timeout,
    // capped by the remaining end-to-end deadline.
    double attempt_ms = -1.0;
    if (options.retry.timeout.value() > 0.0) {
      attempt_ms = options.retry.timeout.value() * 1000.0 *
                   std::pow(options.retry.backoff,
                            static_cast<double>(attempt));
      // Same backoff overflow as the retry pause, but here the inf would
      // be cast to int below — undefined behavior, not just a long wait.
      if (!(attempt_ms < options.max_attempt_ms)) {
        attempt_ms = options.max_attempt_ms;
      }
    }
    if (bounded) {
      const double left = std::max(ms_until(deadline_at), 0.0);
      attempt_ms = attempt_ms < 0.0 ? left : std::min(attempt_ms, left);
    }
    FrameIoOptions io;
    if (attempt_ms >= 0.0) {
      const int budget_ms = static_cast<int>(std::ceil(attempt_ms));
      io.idle_timeout_ms = budget_ms;   // reply must start...
      io.frame_timeout_ms = budget_ms;  // ...and finish within budget
    }
    std::string payload;
    std::string frame_error;
    const FrameReadStatus status =
        read_frame_fd(fd_, &payload, &frame_error, io);
    if (status == FrameReadStatus::kFrame) {
      std::string reply_error;
      std::optional<Reply> reply = parse_reply(payload, &reply_error);
      if (!reply) {
        close();  // desynced stream — never reuse it
        set_error(error, reply_error);
        return std::nullopt;
      }
      if (!reply->ok && reply->error.code == ErrorCode::kOverloaded &&
          attempt < options.retry.max_retries) {
        // Shed before any work: always safe to retry, and the
        // connection stays healthy.
        last_error = "overloaded: " + reply->error.message;
        continue;
      }
      return reply;
    }
    // No (whole) reply arrived. The connection might deliver a stale one
    // later and desync every future call — poison it.
    close();
    const bool timed_out = status == FrameReadStatus::kIdleTimeout ||
                           status == FrameReadStatus::kStallTimeout;
    last_error = timed_out ? "no reply within the attempt budget"
                 : frame_error.empty()
                     ? std::string("server closed the connection")
                     : frame_error;
    if (!options.idempotent) {
      // The request was sent and may be executing server-side; a replay
      // could run it twice. Give up with the typed deadline when that is
      // what ran out, a transport error otherwise.
      if (bounded && ms_until(deadline_at) <= 0.0) {
        return deadline_reply(attempt + 1, last_error);
      }
      set_error(error,
                last_error + " (not retried: request marked "
                             "non-idempotent)");
      return std::nullopt;
    }
  }
  if (bounded && ms_until(deadline_at) <= 0.0) {
    return deadline_reply(options.retry.max_retries + 1, last_error);
  }
  const std::size_t attempts = options.retry.max_retries + 1;
  set_error(error, last_error + " (after " + std::to_string(attempts) +
                       " attempt" + (attempts == 1 ? "" : "s") + ")");
  return std::nullopt;
}

Request Client::make_batch(std::string id, std::vector<Request> entries) {
  Request batch;
  batch.id = std::move(id);
  batch.method = Method::kBatch;
  batch.entries.reserve(entries.size());
  for (Request& entry : entries) {
    ParsedRequest parsed;
    parsed.id = entry.id;
    parsed.request = std::move(entry);
    batch.entries.push_back(std::move(parsed));
  }
  return batch;
}

std::optional<std::vector<Reply>> Client::batch_replies(
    const Reply& reply, std::string* error) {
  if (!reply.ok) {
    set_error(error,
              "not a successful batch reply: " + reply.error.message);
    return std::nullopt;
  }
  const json::Value* replies = reply.result.find("replies");
  if (replies == nullptr || !replies->is_array()) {
    set_error(error, "batch result carries no 'replies' array");
    return std::nullopt;
  }
  std::vector<Reply> out;
  out.reserve(replies->as_array().size());
  for (const json::Value& item : replies->as_array()) {
    std::string item_error;
    std::optional<Reply> parsed = parse_reply(item, &item_error);
    if (!parsed) {
      set_error(error, "malformed batch entry reply: " + item_error);
      return std::nullopt;
    }
    out.push_back(std::move(*parsed));
  }
  return out;
}

std::optional<Reply> Client::predict(const pipeline::ScenarioSpec& spec,
                                     TrafficClass cls,
                                     std::string* error) {
  Request request;
  request.method = Method::kPredict;
  request.traffic_class = cls;
  request.spec = spec;
  return call(std::move(request), error);
}

std::optional<Reply> Client::calibrate(const pipeline::ScenarioSpec& spec,
                                       TrafficClass cls,
                                       std::string* error) {
  Request request;
  request.method = Method::kCalibrate;
  request.traffic_class = cls;
  request.spec = spec;
  return call(std::move(request), error);
}

std::optional<Reply> Client::stats(StatsFormat format,
                                   std::string* error) {
  Request request;
  request.method = Method::kStats;
  request.stats_format = format;
  return call(std::move(request), error);
}

std::optional<Reply> Client::health(std::string* error) {
  Request request;
  request.method = Method::kHealth;
  return call(std::move(request), error);
}

}  // namespace mcm::svc
