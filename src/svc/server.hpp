// The prediction service: protocol dispatch, single-flight calibration
// dedup and the sharded calibration cache, plus the two transports that
// drive it (Unix-domain socket, stdin/stdout).
//
// Layering:
//
//   Service        — transport-free core. One handle() call per request
//                    payload; admission control, cache sharding,
//                    single-flight, and the one pipeline::Runner every
//                    consumer funnels through. Thread-safe: transports
//                    call handle() concurrently.
//   SocketServer   — accept loop over an AF_UNIX socket, connections
//                    served by runtime::ThreadPool workers.
//   serve_stdio    — sequential frame loop over iostreams; the
//                    deterministic replay mode `scripts/ci.sh service`
//                    diffs golden request files against.
//
// Single-flight: concurrent predict/calibrate requests whose specs share
// a calibration fingerprint elect one leader; the leader runs the
// pipeline (populating the fingerprint's cache shard) while followers
// wait on the flight and then re-check the shard, so N identical
// concurrent requests execute exactly one calibration
// (svc.singleflight_hits counts the waits).
//
// Counters (svc.* in the owned registry, exported by the stats method):
//   svc.requests           every frame handled, including malformed ones
//   svc.shed               requests rejected by admission control
//   svc.errors             error replies other than sheds
//   svc.singleflight_hits  waits coalesced onto another flight's leader
//   svc.calibrations       calibrations actually executed (cache misses
//                          that ran the calibrate stage)
//   svc.deadline_exceeded  requests answered `deadline-exceeded` because
//                          their deadline_ms budget ran out
//   svc.drained            requests completed while draining (their
//                          connection was then closed gracefully)
//   svc.slow_client_drops  connections cut by the slow-client guards
//                          (stalled mid-frame or not draining replies)
//   cache.load_rejected    persisted cache files refused at load
//                          (truncated / corrupt / malformed)
//   svc.cache.shard<i>.{hits,misses}  per-shard lookup outcomes
//   svc.batch.requests     batch envelopes handled
//   svc.batch.entries      entries carried by those envelopes
//   svc.batch.groups       coalesced fingerprint groups actually run (a
//                          batch of N compatible entries counts 1)
//   svc.batch.entry_errors entries answered with an error reply (parse
//                          failure, shed, deadline, pipeline failure)
// plus everything the pipeline Runner counts (pipeline.*, bench.*).
//
// Latency instruments (obs::LatencyHistogram, µs, measured against the
// injectable service clock so deterministic-clock replays byte-compare):
//   svc.latency.total{class=...,method=...}  request entry -> reply, per
//                          predict/calibrate request and admission class
//   svc.latency.queue_wait{class=...}  entry -> pipeline start: admission
//                          plus any single-flight wait on another leader
//   svc.latency.calibrate / svc.latency.predict  pipeline stage costs of
//                          served requests (from StageTimings)
//   svc.latency.batch_assemble  batch arrival -> entries validated,
//                          admitted and grouped by fingerprint (the
//                          coalescing cost batching adds before the
//                          first pipeline run starts)
// and the gauge svc.inflight (predict/calibrate requests currently being
// served).
//
// Tracing: when ServiceOptions::trace is set, each predict/calibrate
// request records `request` and `queue_wait` spans (category "svc"), and
// the Runner's scenario/stage spans ride the same sink; all are tagged
// with the request's wire `trace_id`/`span_id`. A follower's queue_wait
// span links to its leader's trace identity (`link.trace_id` /
// `link.span_id` args) so a merged timeline shows who calibrated on
// whose behalf.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "pipeline/cache.hpp"
#include "pipeline/runner.hpp"
#include "svc/limiter.hpp"
#include "svc/protocol.hpp"

namespace mcm::svc {

/// Calibration cache split into independently locked shards selected by
/// fingerprint hash, so concurrent requests for different calibrations
/// never contend on one cache mutex.
class ShardedCalibrationCache {
 public:
  explicit ShardedCalibrationCache(std::size_t shards);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t shard_index(const std::string& fingerprint)
      const;
  [[nodiscard]] pipeline::CalibrationCache& shard(std::size_t index);

  /// Entries across all shards.
  [[nodiscard]] std::size_t size() const;

 private:
  std::vector<std::unique_ptr<pipeline::CalibrationCache>> shards_;
};

struct ServiceOptions {
  /// Cache shard count; must be >= 1.
  std::size_t cache_shards = 8;
  AdmissionOptions admission;
  /// Limiter clock; null = steady_clock. Injected by tests, and replaced
  /// by a virtual tick clock under `--deterministic` so latency values in
  /// stats replies byte-compare across replay runs. Also the clock every
  /// latency instrument measures against.
  ClockFn clock;
  /// Measure-stage retries forwarded to the Runner.
  std::size_t max_retries = 0;
  /// Server-side trace sink (null = spans off). Request/queue_wait spans
  /// and the Runner's stage spans are recorded here, tagged with the
  /// request's trace identity.
  obs::TraceSink* trace = nullptr;
  /// Structured logger (null = silent). Shed / deadline / slow-client /
  /// drain / bad-frame events, correlated by request id and trace_id.
  obs::Log* log = nullptr;
  /// Test hook: invoked on the leader's thread right after it registered
  /// its flight (followers can now coalesce onto it) and before the
  /// pipeline runs. Lets tests park N followers on a leader they then
  /// release — or fail. Null in production.
  std::function<void()> on_leader_start;
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// One request payload in, one reply payload out. Never throws; every
  /// failure becomes an error reply. Safe to call concurrently.
  [[nodiscard]] std::string handle(const std::string& payload);

  /// Typed core of handle(), for in-process callers and tests.
  [[nodiscard]] Reply handle_request(const Request& request);

  /// The service metrics (svc.*, pipeline.*, ...) — also what the stats
  /// method reports.
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return registry_;
  }
  [[nodiscard]] ShardedCalibrationCache& cache() { return cache_; }
  /// The structured logger the transports share (null when logging off).
  [[nodiscard]] obs::Log* log() const { return log_; }

  /// Graceful-drain flag. While set, `health` reports "draining" and the
  /// transports close each connection after its current reply instead of
  /// keeping it alive. Set by SocketServer::drain.
  void set_draining(bool draining) {
    draining_.store(draining, std::memory_order_relaxed);
  }
  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  /// Transport-side accounting hooks (see the counter table above).
  void record_slow_client_drop();
  void record_drained();

  /// Crash-safe persistence of the sharded calibration cache
  /// (CalibrationCache file format, all shards merged into one file;
  /// entries are redistributed to their shards on load). Anything but
  /// kOk leaves the shards unchanged; kTruncated/kChecksumMismatch/
  /// kMalformed additionally count cache.load_rejected.
  [[nodiscard]] pipeline::CacheFileStatus load_cache_file(
      const std::string& path, std::string* error = nullptr);
  [[nodiscard]] bool save_cache_file(const std::string& path,
                                     std::string* error = nullptr);

 private:
  /// A calibration in flight; followers wait on `cv` under
  /// flights_mutex_ until the leader sets done. `leader` is the leader
  /// request's trace identity so follower spans can link to it. When the
  /// leader fails, `failed`/`deadline`/`error` carry the outcome so every
  /// follower wakes into a typed internal/deadline-exceeded reply instead
  /// of re-electing and re-running a doomed calibration.
  struct Flight {
    std::condition_variable cv;
    bool done = false;
    bool failed = false;
    bool deadline = false;
    std::string error;
    obs::TraceContext leader;
  };

  /// Per-request bookkeeping computed once at handle entry so queueing
  /// and single-flight waits all burn the same budget, and every latency
  /// sample measures from the same origin. `deadline_at` is an absolute
  /// limiter-clock instant (seconds), 0 = no deadline.
  struct RequestScope {
    double deadline_at = 0.0;
    double start_clock = 0.0;    ///< clock_() at entry, seconds
    double start_wall_us = 0.0;  ///< span_clock_ at entry (span timeline)
    obs::TraceContext trace;
  };

  /// dispatch wrapped in the request span, the in-flight gauge and the
  /// total-latency sample; also echoes trace_id into error replies.
  [[nodiscard]] Reply serve_request(const Request& request);
  [[nodiscard]] Reply dispatch(const Request& request,
                               const RequestScope& scope);
  /// One predict/calibrate request through the pipeline with the typed
  /// catch block (deadline-exceeded / internal) applied — the shared tail
  /// of the serial path and every batch entry, so a batched entry's reply
  /// is byte-identical to the serial reply for the same request.
  [[nodiscard]] Reply run_entry(const Request& request,
                                const RequestScope& scope);
  /// Batch envelope: per-entry validation/admission/deadlines, entries
  /// grouped by calibration fingerprint so each group runs behind one
  /// single-flight leader, replies assembled in wire order.
  [[nodiscard]] Reply handle_batch(const Request& request,
                                   const RequestScope& scope);
  [[nodiscard]] Reply run_pipeline(const Request& request,
                                   const RequestScope& scope);
  [[nodiscard]] pipeline::ScenarioResult run_single_flight(
      const pipeline::ScenarioSpec& spec, const RequestScope& scope,
      TrafficClass traffic_class);
  void finish_flight(const std::string& fingerprint,
                     const std::shared_ptr<Flight>& flight);
  /// finish_flight for a leader that is unwinding: records the outcome on
  /// the flight before waking the followers.
  void fail_flight(const std::string& fingerprint,
                   const std::shared_ptr<Flight>& flight, bool deadline,
                   const std::string& error);
  /// Close the queue-wait phase: record the latency sample and (when
  /// tracing) the queue_wait span, linked to `leader` for followers.
  void end_queue_wait(const RequestScope& scope, TrafficClass traffic_class,
                      const obs::TraceContext* leader);
  [[nodiscard]] json::Value stats_result(StatsFormat format);

  ServiceOptions options_;
  obs::MetricsRegistry registry_;
  ShardedCalibrationCache cache_;
  AdmissionController admission_;
  pipeline::Runner runner_;
  /// The limiter's clock, shared by deadline enforcement and every
  /// latency instrument so tests can freeze or step time.
  ClockFn clock_;
  obs::TraceSink* trace_ = nullptr;
  obs::Log* log_ = nullptr;
  /// Timeline for server-side spans (wall µs; Chrome-trace timestamps).
  obs::WallClock span_clock_;
  std::atomic<bool> draining_{false};

  std::mutex flights_mutex_;
  std::map<std::string, std::shared_ptr<Flight>> flights_;

  obs::Counter* met_requests_;
  obs::Counter* met_shed_;
  obs::Counter* met_errors_;
  obs::Counter* met_singleflight_;
  obs::Counter* met_calibrations_;
  obs::Counter* met_deadline_exceeded_;
  obs::Counter* met_drained_;
  obs::Counter* met_slow_client_drops_;
  obs::Counter* met_cache_load_rejected_;
  obs::Counter* met_batch_requests_;
  obs::Counter* met_batch_entries_;
  obs::Counter* met_batch_groups_;
  obs::Counter* met_batch_entry_errors_;
  std::vector<obs::Counter*> met_shard_hits_;
  std::vector<obs::Counter*> met_shard_misses_;
  obs::Gauge* gauge_inflight_;
  /// [method predict=0 / calibrate=1][class interactive=0 / bulk=1].
  obs::LatencyHistogram* lat_total_[2][2];
  obs::LatencyHistogram* lat_queue_wait_[2];
  obs::LatencyHistogram* lat_calibrate_;
  obs::LatencyHistogram* lat_predict_;
  obs::LatencyHistogram* lat_batch_assemble_;
};

/// Sequential request/reply loop over length-prefixed frames: the mcmd
/// --stdio transport. Stops at EOF or on a malformed frame (after
/// emitting one bad-request reply — framing has no resync point).
/// Returns the number of requests served.
std::size_t serve_stdio(Service& service, std::istream& in,
                        std::ostream& out);

struct SocketServerOptions {
  /// AF_UNIX socket path; must fit sockaddr_un (~100 bytes). An existing
  /// file at the path is replaced.
  std::string path;
  /// Connection-handler workers (one blocked connection per worker).
  std::size_t workers = 2;
  int backlog = 16;
  /// Slow-client guards (milliseconds, -1 disables). idle: budget for a
  /// kept-alive connection to start its next frame; frame: budget to
  /// finish a frame once its first byte arrived (and to drain a reply
  /// write) — the slow-loris cap on how long one stalled socket can hold
  /// a worker.
  int idle_timeout_ms = -1;
  int frame_timeout_ms = 10000;
  /// Frames above this are refused with a typed bad-request reply.
  std::size_t max_frame_bytes = kMaxFrameBytes;
};

/// Accept loop over a Unix-domain socket. Workers are a
/// runtime::ThreadPool whose single run_on_all dispatch is the accept
/// loop itself, issued from an internal thread; stop() wakes the workers
/// through a self-pipe (closing the listen fd alone would not interrupt
/// a blocked poll portably). drain() is the graceful variant: stop
/// accepting, let in-flight frames finish (their replies still bounded
/// by frame_timeout_ms), then stop.
class SocketServer {
 public:
  SocketServer(Service& service, SocketServerOptions options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Bind + listen + start the workers. False (with `error`) when the
  /// socket cannot be set up; the server is then inert.
  [[nodiscard]] bool start(std::string* error = nullptr);
  void stop();
  /// Graceful shutdown with a bounded budget: flags the service as
  /// draining, wakes idle connections, waits up to `timeout_ms` for the
  /// workers to finish their in-flight requests, then stop()s. Returns
  /// true when every worker drained within the budget, false when the
  /// hard stop had to cut work off.
  [[nodiscard]] bool drain(int timeout_ms);
  [[nodiscard]] bool running() const { return dispatcher_.joinable(); }

 private:
  void worker_loop();
  void serve_connection(int fd);

  Service& service_;
  SocketServerOptions options_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  int drain_pipe_[2] = {-1, -1};
  std::unique_ptr<runtime::ThreadPool> pool_;
  std::thread dispatcher_;
  /// drain() needs a *timed* wait for worker completion, which
  /// std::thread cannot do — the dispatcher flags completion through
  /// this cv instead.
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  bool workers_done_ = false;
};

}  // namespace mcm::svc
