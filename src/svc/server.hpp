// The prediction service: protocol dispatch, single-flight calibration
// dedup and the sharded calibration cache, plus the two transports that
// drive it (Unix-domain socket, stdin/stdout).
//
// Layering:
//
//   Service        — transport-free core. One handle() call per request
//                    payload; admission control, cache sharding,
//                    single-flight, and the one pipeline::Runner every
//                    consumer funnels through. Thread-safe: transports
//                    call handle() concurrently.
//   SocketServer   — accept loop over an AF_UNIX socket, connections
//                    served by runtime::ThreadPool workers.
//   serve_stdio    — sequential frame loop over iostreams; the
//                    deterministic replay mode `scripts/ci.sh service`
//                    diffs golden request files against.
//
// Single-flight: concurrent predict/calibrate requests whose specs share
// a calibration fingerprint elect one leader; the leader runs the
// pipeline (populating the fingerprint's cache shard) while followers
// wait on the flight and then re-check the shard, so N identical
// concurrent requests execute exactly one calibration
// (svc.singleflight_hits counts the waits).
//
// Counters (svc.* in the owned registry, exported by the stats method):
//   svc.requests           every frame handled, including malformed ones
//   svc.shed               requests rejected by admission control
//   svc.errors             error replies other than sheds
//   svc.singleflight_hits  waits coalesced onto another flight's leader
//   svc.calibrations       calibrations actually executed (cache misses
//                          that ran the calibrate stage)
//   svc.cache.shard<i>.{hits,misses}  per-shard lookup outcomes
// plus everything the pipeline Runner counts (pipeline.*, bench.*).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "pipeline/cache.hpp"
#include "pipeline/runner.hpp"
#include "svc/limiter.hpp"
#include "svc/protocol.hpp"

namespace mcm::svc {

/// Calibration cache split into independently locked shards selected by
/// fingerprint hash, so concurrent requests for different calibrations
/// never contend on one cache mutex.
class ShardedCalibrationCache {
 public:
  explicit ShardedCalibrationCache(std::size_t shards);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t shard_index(const std::string& fingerprint)
      const;
  [[nodiscard]] pipeline::CalibrationCache& shard(std::size_t index);

  /// Entries across all shards.
  [[nodiscard]] std::size_t size() const;

 private:
  std::vector<std::unique_ptr<pipeline::CalibrationCache>> shards_;
};

struct ServiceOptions {
  /// Cache shard count; must be >= 1.
  std::size_t cache_shards = 8;
  AdmissionOptions admission;
  /// Limiter clock; null = steady_clock. Injected by tests.
  ClockFn clock;
  /// Measure-stage retries forwarded to the Runner.
  std::size_t max_retries = 0;
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// One request payload in, one reply payload out. Never throws; every
  /// failure becomes an error reply. Safe to call concurrently.
  [[nodiscard]] std::string handle(const std::string& payload);

  /// Typed core of handle(), for in-process callers and tests.
  [[nodiscard]] Reply handle_request(const Request& request);

  /// The service metrics (svc.*, pipeline.*, ...) — also what the stats
  /// method reports.
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return registry_;
  }
  [[nodiscard]] ShardedCalibrationCache& cache() { return cache_; }

 private:
  /// A calibration in flight; followers wait on `cv` under
  /// flights_mutex_ until the leader sets done.
  struct Flight {
    std::condition_variable cv;
    bool done = false;
  };

  [[nodiscard]] Reply dispatch(const Request& request);
  [[nodiscard]] Reply run_pipeline(const Request& request);
  [[nodiscard]] pipeline::ScenarioResult run_single_flight(
      const pipeline::ScenarioSpec& spec);
  void finish_flight(const std::string& fingerprint,
                     const std::shared_ptr<Flight>& flight);
  [[nodiscard]] json::Value stats_result(StatsFormat format);

  ServiceOptions options_;
  obs::MetricsRegistry registry_;
  ShardedCalibrationCache cache_;
  AdmissionController admission_;
  pipeline::Runner runner_;

  std::mutex flights_mutex_;
  std::map<std::string, std::shared_ptr<Flight>> flights_;

  obs::Counter* met_requests_;
  obs::Counter* met_shed_;
  obs::Counter* met_errors_;
  obs::Counter* met_singleflight_;
  obs::Counter* met_calibrations_;
  std::vector<obs::Counter*> met_shard_hits_;
  std::vector<obs::Counter*> met_shard_misses_;
};

/// Sequential request/reply loop over length-prefixed frames: the mcmd
/// --stdio transport. Stops at EOF or on a malformed frame (after
/// emitting one bad-request reply — framing has no resync point).
/// Returns the number of requests served.
std::size_t serve_stdio(Service& service, std::istream& in,
                        std::ostream& out);

struct SocketServerOptions {
  /// AF_UNIX socket path; must fit sockaddr_un (~100 bytes). An existing
  /// file at the path is replaced.
  std::string path;
  /// Connection-handler workers (one blocked connection per worker).
  std::size_t workers = 2;
  int backlog = 16;
};

/// Accept loop over a Unix-domain socket. Workers are a
/// runtime::ThreadPool whose single run_on_all dispatch is the accept
/// loop itself, issued from an internal thread; stop() wakes the workers
/// through a self-pipe (closing the listen fd alone would not interrupt
/// a blocked poll portably).
class SocketServer {
 public:
  SocketServer(Service& service, SocketServerOptions options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Bind + listen + start the workers. False (with `error`) when the
  /// socket cannot be set up; the server is then inert.
  [[nodiscard]] bool start(std::string* error = nullptr);
  void stop();
  [[nodiscard]] bool running() const { return dispatcher_.joinable(); }

 private:
  void worker_loop();
  void serve_connection(int fd);

  Service& service_;
  SocketServerOptions options_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::unique_ptr<runtime::ThreadPool> pool_;
  std::thread dispatcher_;
};

}  // namespace mcm::svc
