#include "svc/limiter.hpp"

#include <algorithm>
#include <chrono>

#include "util/contracts.hpp"

namespace mcm::svc {

ClockFn default_clock() {
  return [] {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };
}

void TokenBucketOptions::validate() const {
  MCM_EXPECTS(capacity > 0.0);
  MCM_EXPECTS(refill_per_sec >= 0.0);
}

TokenBucket::TokenBucket(TokenBucketOptions options, ClockFn clock)
    : options_(options), clock_(std::move(clock)) {
  options_.validate();
  MCM_EXPECTS(clock_ != nullptr);
  tokens_ = options_.capacity;
  last_refill_ = clock_();
}

void TokenBucket::refill_locked(double now) {
  // A non-monotonic step (now < last) refills nothing and re-anchors, so
  // a clock glitch can never mint a giant burst.
  if (now > last_refill_) {
    tokens_ = std::min(options_.capacity,
                       tokens_ + (now - last_refill_) *
                                     options_.refill_per_sec);
  }
  last_refill_ = now;
}

bool TokenBucket::try_acquire(double tokens) {
  MCM_EXPECTS(tokens > 0.0);
  std::lock_guard<std::mutex> lock(mutex_);
  refill_locked(clock_());
  if (tokens_ < tokens) return false;
  tokens_ -= tokens;
  return true;
}

double TokenBucket::available() {
  std::lock_guard<std::mutex> lock(mutex_);
  refill_locked(clock_());
  return tokens_;
}

AdmissionController::AdmissionController(AdmissionOptions options,
                                         ClockFn clock)
    : interactive_(options.interactive,
                   clock ? clock : default_clock()),
      bulk_(options.bulk, clock ? std::move(clock) : default_clock()) {}

bool AdmissionController::admit(TrafficClass cls) {
  return cls == TrafficClass::kInteractive ? interactive_.try_acquire()
                                           : bulk_.try_acquire();
}

double AdmissionController::available(TrafficClass cls) {
  return cls == TrafficClass::kInteractive ? interactive_.available()
                                           : bulk_.available();
}

}  // namespace mcm::svc
