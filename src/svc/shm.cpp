#include "svc/shm.hpp"

#include <chrono>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>

#include "obs/log.hpp"

namespace mcm::svc {
namespace {

[[nodiscard]] std::span<const std::byte> frame_bytes(
    const std::string& text) {
  return {reinterpret_cast<const std::byte*>(text.data()), text.size()};
}

[[nodiscard]] std::span<std::byte> frame_buffer(std::string& text) {
  return {reinterpret_cast<std::byte*>(text.data()), text.size()};
}

/// "<decimal>\n" -> length: the stream framing's length line carried as
/// one mailbox message. Anything else is a malformed header.
[[nodiscard]] bool parse_length_line(const char* data, std::size_t size,
                                     std::size_t* out,
                                     std::string* error) {
  if (size < 2 || data[size - 1] != '\n') {
    *error = "malformed frame header: missing length line terminator";
    return false;
  }
  std::size_t value = 0;
  constexpr std::size_t kLimit = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i + 1 < size; ++i) {
    const char c = data[i];
    if (c < '0' || c > '9') {
      *error = std::string("malformed frame header: '") + c +
               "' is not a digit";
      return false;
    }
    const auto digit = static_cast<std::size_t>(c - '0');
    if (value > (kLimit - digit) / 10) {
      *error = "malformed frame header: length overflows";
      return false;
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

/// One frame = two messages: the length line and the payload line.
/// Concatenated they are byte-identical to the socket frame.
void send_frame(net::Communicator& comm, int peer, int tag,
                const std::string& payload) {
  const std::string header = std::to_string(payload.size()) + "\n";
  const std::string body = payload + "\n";
  comm.send(peer, tag, frame_bytes(header));
  comm.send(peer, tag, frame_bytes(body));
}

}  // namespace

ShmServer::ShmServer(Service& service, ShmTransportOptions options)
    : service_(service),
      options_(std::move(options)),
      world_(options_.protocol) {
  // Armed before any traffic, as the fault layer requires; a default
  // plan keeps the fault-free fast paths.
  world_.inject_faults(options_.faults);
}

ShmServer::~ShmServer() { stop(); }

void ShmServer::start() {
  if (running() || stopped_.load(std::memory_order_relaxed)) return;
  thread_ = std::thread([this] { serve_loop(); });
  if (service_.log() != nullptr) {
    service_.log()->info("listen_shm", {});
  }
}

void ShmServer::stop() {
  if (stopped_.exchange(true, std::memory_order_relaxed)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // Both directions die: the serving thread's blocked receive AND any
  // client wait in flight unwind with Error(kPeerGone) instead of
  // hanging on a rank that will never answer.
  world_.mark_peer_gone(0);
  world_.mark_peer_gone(1);
  if (thread_.joinable()) thread_.join();
}

void ShmServer::serve_loop() {
  net::Communicator& comm = world_.comm(0);
  const auto answer = [&](const std::string& reply) {
    send_frame(comm, 1, kReplyFrame, reply);
    served_.fetch_add(1, std::memory_order_relaxed);
  };
  const auto refuse = [&](const std::string& error) {
    if (service_.log() != nullptr) {
      service_.log()->warn("bad_frame", {{"error", error}});
    }
    answer(render_error_reply(
        "", {ErrorCode::kBadRequest, error, std::string()}));
  };
  try {
    for (;;) {
      // Length line first. 32 bytes fits any in-range decimal length;
      // a header message larger than that is not a frame.
      char header[32];
      net::Request hreq = comm.irecv(
          1, kRequestFrame,
          std::span<std::byte>(reinterpret_cast<std::byte*>(header),
                               sizeof header));
      comm.wait(hreq);
      std::size_t length = 0;
      std::string error;
      if (!parse_length_line(header, hreq.transferred(), &length,
                             &error)) {
        // Typed goodbye; the next message would be a payload this loop
        // would misread as a header, so there is no resync point.
        refuse(error);
        return;
      }
      if (length > options_.max_frame_bytes) {
        refuse("frame of " + std::to_string(length) +
               " bytes exceeds the " +
               std::to_string(options_.max_frame_bytes) + "-byte limit");
        return;
      }
      std::string body(length + 1, '\0');  // payload + '\n'
      net::Request breq = comm.irecv(1, kRequestFrame,
                                     frame_buffer(body));
      comm.wait(breq);
      if (breq.transferred() != length + 1 || body.back() != '\n') {
        refuse("malformed frame: payload does not match its length "
               "line");
        return;
      }
      body.pop_back();
      answer(service_.handle(body));
      if (service_.draining()) {
        // Mirror the socket transport: the in-flight request finished
        // and its reply is out; end the stream instead of waiting for
        // another frame.
        service_.record_drained();
        return;
      }
    }
  } catch (const net::Error&) {
    // stop()/kill() marked a rank gone, or an armed fault plan starved
    // a wait past its budget: the stream is over.
  } catch (const std::exception& error) {
    // A message violating the mailbox contract (e.g. an oversized
    // header) must kill the stream, not the process.
    if (service_.log() != nullptr) {
      service_.log()->error("shm_serve_error",
                            {{"error", std::string(error.what())}});
    }
  }
}

ShmClient::ShmClient(ShmServer& server)
    : comm_(server.world().comm(1)),
      max_frame_bytes_(server.options().max_frame_bytes) {}

std::optional<std::string> ShmClient::roundtrip(const std::string& payload,
                                                std::string* error,
                                                double deadline_ms) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  last_timeout_ = false;
  if (broken_) {
    return fail("shm client desynced by an earlier failure");
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(deadline_ms));
  const auto remaining_s = [&] {
    return std::chrono::duration<double>(
               deadline - std::chrono::steady_clock::now())
        .count();
  };
  try {
    send_frame(comm_, 0, kRequestFrame, payload);
    const auto bounded_wait = [&](net::Request& request) {
      if (deadline_ms <= 0.0) {
        comm_.wait(request);
        return;
      }
      const double left = remaining_s();
      // wait_for(<=0) still throws the typed timeout rather than
      // blocking, which is exactly what an exhausted budget needs.
      comm_.wait_for(request, Seconds{left > 0.0 ? left : 0.0});
    };
    char header[32];
    net::Request hreq = comm_.irecv(
        0, kReplyFrame,
        std::span<std::byte>(reinterpret_cast<std::byte*>(header),
                             sizeof header));
    bounded_wait(hreq);
    std::size_t length = 0;
    std::string parse_error;
    if (!parse_length_line(header, hreq.transferred(), &length,
                           &parse_error)) {
      broken_ = true;
      return fail(parse_error);
    }
    if (length > max_frame_bytes_) {
      broken_ = true;
      return fail("reply frame of " + std::to_string(length) +
                  " bytes exceeds the limit");
    }
    std::string body(length + 1, '\0');
    net::Request breq = comm_.irecv(0, kReplyFrame, frame_buffer(body));
    bounded_wait(breq);
    if (breq.transferred() != length + 1 || body.back() != '\n') {
      broken_ = true;
      return fail("malformed reply frame");
    }
    body.pop_back();
    return body;
  } catch (const net::Error& net_error) {
    // A late reply would desync every future call — poison the client.
    broken_ = true;
    last_timeout_ = net_error.kind() == net::ErrorKind::kTimeout;
    return fail(std::string(to_string(net_error.kind())) + ": " +
                net_error.what());
  }
}

std::optional<Reply> ShmClient::call(Request request, std::string* error,
                                     double deadline_ms) {
  if (request.id.empty()) {
    request.id = "shm" + std::to_string(next_id_++);
  }
  if (deadline_ms > 0.0 && request.deadline_ms <= 0.0) {
    // The server enforces the same budget end-to-end.
    request.deadline_ms = deadline_ms;
  }
  std::string transport_error;
  const std::optional<std::string> payload =
      roundtrip(render_request(request), &transport_error, deadline_ms);
  if (!payload.has_value()) {
    if (deadline_ms > 0.0 && last_timeout_) {
      // Mirror of the server's typed expiry, synthesized locally — the
      // same one-branch contract svc::Client keeps over the socket.
      Reply reply;
      reply.id = request.id;
      reply.ok = false;
      reply.error = {ErrorCode::kDeadlineExceeded,
                     "no reply within the " + std::to_string(deadline_ms) +
                         "ms budget: " + transport_error,
                     std::string()};
      return reply;
    }
    if (error != nullptr) *error = transport_error;
    return std::nullopt;
  }
  std::string reply_error;
  std::optional<Reply> reply = parse_reply(*payload, &reply_error);
  if (!reply.has_value()) {
    broken_ = true;
    if (error != nullptr) *error = reply_error;
    return std::nullopt;
  }
  return reply;
}

}  // namespace mcm::svc
