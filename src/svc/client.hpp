// C++ client of the mcmd prediction service: one Unix-socket connection,
// blocking call/reply. This is the API `mcmtool query`,
// examples/service_client.cpp and any embedding tool use — nobody
// hand-rolls frames.
//
// A Reply's `result` is a parsed json::Value; json::serialize(result)
// reproduces the service's canonical bytes exactly (serialize ∘ parse is
// identity on canonical documents), which is how `mcmtool query` prints
// byte-identical output to `mcmtool run-scenario --result-json`.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "svc/protocol.hpp"

namespace mcm::svc {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to a serving mcmd. nullopt + `error` when the socket does
  /// not accept.
  [[nodiscard]] static std::optional<Client> connect(
      const std::string& socket_path, std::string* error = nullptr);

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

  /// Send one request, wait for its reply. nullopt + `error` on
  /// transport failure or an unparseable reply; an error *reply* is
  /// returned normally (ok == false). An empty request id is replaced
  /// with a generated "c<n>" id.
  [[nodiscard]] std::optional<Reply> call(Request request,
                                          std::string* error = nullptr);

  /// Convenience wrappers over call().
  [[nodiscard]] std::optional<Reply> predict(
      const pipeline::ScenarioSpec& spec,
      TrafficClass cls = TrafficClass::kInteractive,
      std::string* error = nullptr);
  [[nodiscard]] std::optional<Reply> calibrate(
      const pipeline::ScenarioSpec& spec,
      TrafficClass cls = TrafficClass::kInteractive,
      std::string* error = nullptr);
  [[nodiscard]] std::optional<Reply> stats(
      StatsFormat format = StatsFormat::kJson,
      std::string* error = nullptr);
  [[nodiscard]] std::optional<Reply> health(std::string* error = nullptr);

 private:
  int fd_ = -1;
  std::uint64_t next_id_ = 1;
};

}  // namespace mcm::svc
