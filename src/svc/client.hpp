// C++ client of the mcmd prediction service: one Unix-socket connection,
// blocking call/reply. This is the API `mcmtool query`,
// examples/service_client.cpp and any embedding tool use — nobody
// hand-rolls frames.
//
// A Reply's `result` is a parsed json::Value; json::serialize(result)
// reproduces the service's canonical bytes exactly (serialize ∘ parse is
// identity on canonical documents), which is how `mcmtool query` prints
// byte-identical output to `mcmtool run-scenario --result-json`.
//
// call() with CallOptions is the resilient form (docs/service.md,
// "Deadlines, retries, and shutdown"): an end-to-end deadline shared
// between the client and the server (the remaining budget rides the
// wire as `deadline_ms`), per-attempt reply timeouts with the fault
// layer's net::RetryPolicy (exponential backoff), deterministic jitter,
// reconnect when the server went away, and a no-retry guard for
// non-idempotent requests that may already be executing server-side.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/fault.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "svc/protocol.hpp"

namespace mcm::svc {

/// Per-call resilience knobs. The defaults reproduce the plain blocking
/// call: no deadline, no reply timeout, no retries.
struct CallOptions {
  /// End-to-end budget across all attempts, milliseconds; 0 = none.
  /// The *remaining* budget at send time is forwarded to the server as
  /// the request's `deadline_ms`, and when the whole budget runs out the
  /// client synthesizes a `deadline-exceeded` error reply (same typed
  /// code the server uses — callers need one branch, not two).
  double deadline_ms = 0.0;
  /// Reply timeout + retry schedule (the fault layer's policy, reused as
  /// ROADMAP asked): attempt i may wait timeout * backoff^i for its
  /// reply; timeout 0 = wait forever. max_retries extra attempts are
  /// made for retryable failures: connect/send errors, reply timeouts,
  /// the server vanishing (reconnect), and `overloaded` sheds.
  net::RetryPolicy retry{Seconds{0.0}, 0, 2.0};
  /// Pause before retry i (milliseconds), grown by retry.backoff and
  /// jittered to 50–150% so retrying clients do not stampede in lockstep.
  double retry_pause_ms = 50.0;
  /// Hard ceiling on any single retry pause, milliseconds. backoff^i
  /// overflows to inf within a few hundred attempts for any backoff > 1;
  /// without a cap that inf feeds a duration and sleeps forever. The
  /// clamp also bounds ordinary late-attempt pauses, deadline or not.
  double max_retry_pause_ms = 2000.0;
  /// Hard ceiling on a single attempt's reply wait, milliseconds, when
  /// retry.timeout is set (timeout 0 still means wait forever). Caps the
  /// same backoff^i overflow on the attempt-budget side, where the inf
  /// would otherwise be cast to int — undefined behavior.
  double max_attempt_ms = 60000.0;
  /// When false, a request that may have reached the server (sent, but
  /// no reply) is never retried — replaying non-idempotent work could
  /// execute it twice. Sheds and connect failures are still retried:
  /// the server provably did nothing with those.
  bool idempotent = true;
  /// Seed of the deterministic jitter stream.
  std::uint64_t jitter_seed = 1;
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to a serving mcmd. nullopt + `error` when the socket does
  /// not accept.
  [[nodiscard]] static std::optional<Client> connect(
      const std::string& socket_path, std::string* error = nullptr);

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

  /// Send one request, wait for its reply. nullopt + `error` on
  /// transport failure or an unparseable reply; an error *reply* is
  /// returned normally (ok == false). An empty request id is replaced
  /// with a generated "c<n>" id.
  [[nodiscard]] std::optional<Reply> call(Request request,
                                          std::string* error = nullptr);

  /// Resilient form: deadline + retry/backoff per CallOptions. On
  /// deadline expiry returns a synthesized `deadline-exceeded` error
  /// reply; when retries are exhausted (or a failure is not retryable)
  /// returns nullopt + `error` like the plain form.
  [[nodiscard]] std::optional<Reply> call(Request request,
                                          const CallOptions& options,
                                          std::string* error = nullptr);

  /// Turn on trace propagation (default: off, so untraced transcripts
  /// stay byte-identical). Every subsequent call() stamps its request
  /// with a trace identity from a deterministic seed-derived stream: one
  /// `trace_id` per logical call (kept by a caller-set request.trace),
  /// and a *fresh* `span_id` per attempt, so retries of one call share
  /// the trace id but are distinguishable hops in a merged timeline.
  /// With `sink` non-null, each attempt additionally records a
  /// client-side `attempt` span (category "svc.client") tagged with that
  /// identity.
  void enable_tracing(std::uint64_t seed, obs::TraceSink* sink = nullptr);

  /// Assemble a batch envelope from typed entry requests (predict or
  /// calibrate, each with its own id/deadline/trace). `entries` must not
  /// be empty. Send it with call(); decode with batch_replies().
  [[nodiscard]] static Request make_batch(std::string id,
                                          std::vector<Request> entries);
  /// Decode a successful batch reply into its per-entry replies, in wire
  /// order. nullopt + `error` when `reply` is not an ok batch reply or an
  /// entry reply is malformed.
  [[nodiscard]] static std::optional<std::vector<Reply>> batch_replies(
      const Reply& reply, std::string* error = nullptr);

  /// Convenience wrappers over call().
  [[nodiscard]] std::optional<Reply> predict(
      const pipeline::ScenarioSpec& spec,
      TrafficClass cls = TrafficClass::kInteractive,
      std::string* error = nullptr);
  [[nodiscard]] std::optional<Reply> calibrate(
      const pipeline::ScenarioSpec& spec,
      TrafficClass cls = TrafficClass::kInteractive,
      std::string* error = nullptr);
  [[nodiscard]] std::optional<Reply> stats(
      StatsFormat format = StatsFormat::kJson,
      std::string* error = nullptr);
  [[nodiscard]] std::optional<Reply> health(std::string* error = nullptr);

 private:
  [[nodiscard]] static int open_socket(const std::string& socket_path,
                                       std::string* error);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  /// Where connect() attached, kept for reconnect-on-retry.
  std::string socket_path_;
  /// Trace propagation state (enable_tracing); disabled by default.
  bool tracing_ = false;
  obs::TraceIdGenerator trace_gen_{0};
  obs::TraceSink* trace_sink_ = nullptr;
  /// Timeline for the client-side attempt spans.
  obs::WallClock span_clock_;
};

}  // namespace mcm::svc
