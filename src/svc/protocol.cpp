#include "svc/protocol.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <istream>
#include <ostream>

#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace mcm::svc {
namespace {

/// Every key a v1 request envelope may carry. Method-specific rules
/// (spec vs stats-only keys) are enforced after the membership check so
/// a typo is always reported as "unknown key", never as a missing field.
constexpr const char* kEnvelopeKeys[] = {
    "v",           "id",       "method",  "class",   "spec",
    "format",      "deadline_ms", "trace_id", "span_id", "entries"};

[[nodiscard]] bool known_envelope_key(const std::string& key) {
  for (const char* known : kEnvelopeKeys) {
    if (key == known) return true;
  }
  return false;
}

[[nodiscard]] ParsedRequest fail(std::string id, ErrorCode code,
                                 std::string message) {
  ParsedRequest out;
  out.id = std::move(id);
  out.error = {code, std::move(message), std::string()};
  return out;
}

[[nodiscard]] std::optional<ErrorCode> parse_error_code(
    const std::string& name) {
  for (ErrorCode code :
       {ErrorCode::kBadRequest, ErrorCode::kUnsupportedVersion,
        ErrorCode::kUnknownMethod, ErrorCode::kInvalidSpec,
        ErrorCode::kOverloaded, ErrorCode::kInternal,
        ErrorCode::kDeadlineExceeded}) {
    if (name == to_string(code)) return code;
  }
  return std::nullopt;
}

}  // namespace

const char* to_string(Method method) {
  switch (method) {
    case Method::kPredict: return "predict";
    case Method::kCalibrate: return "calibrate";
    case Method::kStats: return "stats";
    case Method::kHealth: return "health";
    case Method::kBatch: return "batch";
  }
  return "?";
}

const char* to_string(TrafficClass cls) {
  return cls == TrafficClass::kInteractive ? "interactive" : "bulk";
}

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kUnsupportedVersion: return "unsupported-version";
    case ErrorCode::kUnknownMethod: return "unknown-method";
    case ErrorCode::kInvalidSpec: return "invalid-spec";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kDeadlineExceeded: return "deadline-exceeded";
  }
  return "?";
}

const char* to_string(FrameReadStatus status) {
  switch (status) {
    case FrameReadStatus::kFrame: return "frame";
    case FrameReadStatus::kEof: return "eof";
    case FrameReadStatus::kMalformed: return "malformed";
    case FrameReadStatus::kOversized: return "oversized";
    case FrameReadStatus::kIdleTimeout: return "idle-timeout";
    case FrameReadStatus::kStallTimeout: return "stall-timeout";
    case FrameReadStatus::kStopped: return "stopped";
    case FrameReadStatus::kDrained: return "drained";
    case FrameReadStatus::kIoError: return "io-error";
  }
  return "?";
}

const char* to_string(FrameWriteStatus status) {
  switch (status) {
    case FrameWriteStatus::kOk: return "ok";
    case FrameWriteStatus::kTimeout: return "timeout";
    case FrameWriteStatus::kStopped: return "stopped";
    case FrameWriteStatus::kPeerGone: return "peer-gone";
    case FrameWriteStatus::kIoError: return "io-error";
  }
  return "?";
}

std::optional<Method> parse_method(const std::string& name) {
  for (Method method : {Method::kPredict, Method::kCalibrate, Method::kStats,
                        Method::kHealth, Method::kBatch}) {
    if (name == to_string(method)) return method;
  }
  return std::nullopt;
}

std::optional<TrafficClass> parse_traffic_class(const std::string& name) {
  if (name == "interactive") return TrafficClass::kInteractive;
  if (name == "bulk") return TrafficClass::kBulk;
  return std::nullopt;
}

namespace {

/// Shared by the top-level decoder and the batch entry loop. `nested`
/// marks a batch entry, where only the pipeline methods are legal.
[[nodiscard]] ParsedRequest parse_request_value(const json::Value& value,
                                                bool nested);

}  // namespace

ParsedRequest parse_request(const std::string& payload) {
  std::string parse_error;
  const std::optional<json::Value> doc = json::parse(payload, &parse_error);
  if (!doc) {
    return fail("", ErrorCode::kBadRequest,
                "request is not valid JSON: " + parse_error);
  }
  return parse_request_value(*doc, /*nested=*/false);
}

namespace {

ParsedRequest parse_request_value(const json::Value& value, bool nested) {
  const json::Value* doc = &value;
  if (!doc->is_object()) {
    return fail("", ErrorCode::kBadRequest, "request must be a JSON object");
  }
  // Best-effort id up front, so every later failure still correlates.
  std::string id = doc->string_at("id").value_or("");

  for (const auto& [key, value] : doc->as_object()) {
    (void)value;
    if (!known_envelope_key(key)) {
      return fail(id, ErrorCode::kBadRequest,
                  "unknown request key '" + key + "'");
    }
  }

  const json::Value* version = doc->find("v");
  if (version == nullptr || !version->is_number()) {
    return fail(id, ErrorCode::kBadRequest,
                "request requires a numeric 'v' version");
  }
  if (version->as_number() !=
      static_cast<double>(kProtocolVersion)) {
    return fail(id, ErrorCode::kUnsupportedVersion,
                "this server speaks protocol v1 only");
  }

  const json::Value* id_value = doc->find("id");
  if (id_value == nullptr || !id_value->is_string()) {
    return fail(id, ErrorCode::kBadRequest,
                "request requires a string 'id'");
  }

  const std::optional<std::string> method_name = doc->string_at("method");
  if (!method_name) {
    return fail(id, ErrorCode::kBadRequest,
                "request requires a string 'method'");
  }
  const std::optional<Method> method = parse_method(*method_name);
  if (!method) {
    return fail(id, ErrorCode::kUnknownMethod,
                "unknown method '" + *method_name + "'");
  }
  if (nested && *method != Method::kPredict &&
      *method != Method::kCalibrate) {
    return fail(id, ErrorCode::kBadRequest,
                "batch entries must be predict or calibrate, not '" +
                    *method_name + "'");
  }

  Request request;
  request.id = id;
  request.method = *method;

  const bool runs_pipeline =
      *method == Method::kPredict || *method == Method::kCalibrate;

  if (const json::Value* cls = doc->find("class"); cls != nullptr) {
    if (!runs_pipeline) {
      return fail(id, ErrorCode::kBadRequest,
                  "'class' only applies to predict/calibrate");
    }
    if (!cls->is_string()) {
      return fail(id, ErrorCode::kBadRequest, "'class' must be a string");
    }
    const auto parsed = parse_traffic_class(cls->as_string());
    if (!parsed) {
      return fail(id, ErrorCode::kBadRequest,
                  "unknown traffic class '" + cls->as_string() +
                      "' (interactive, bulk)");
    }
    request.traffic_class = *parsed;
  }

  if (const json::Value* format = doc->find("format"); format != nullptr) {
    if (*method != Method::kStats) {
      return fail(id, ErrorCode::kBadRequest,
                  "'format' only applies to stats");
    }
    if (!format->is_string()) {
      return fail(id, ErrorCode::kBadRequest, "'format' must be a string");
    }
    if (format->as_string() == "json") {
      request.stats_format = StatsFormat::kJson;
    } else if (format->as_string() == "prometheus") {
      request.stats_format = StatsFormat::kPrometheus;
    } else {
      return fail(id, ErrorCode::kBadRequest,
                  "unknown stats format '" + format->as_string() +
                      "' (json, prometheus)");
    }
  }

  if (const json::Value* deadline = doc->find("deadline_ms");
      deadline != nullptr) {
    // Accepted on every method (additive v1 key), enforced where it can
    // matter — pipeline work. !(x >= 0) also rejects NaN.
    if (!deadline->is_number() || !(deadline->as_number() >= 0.0)) {
      return fail(id, ErrorCode::kBadRequest,
                  "'deadline_ms' must be a non-negative number");
    }
    request.deadline_ms = deadline->as_number();
  }

  if (const json::Value* trace = doc->find("trace_id"); trace != nullptr) {
    if (!trace->is_string() ||
        !obs::parse_trace_id(trace->as_string(), request.trace.trace_id)) {
      return fail(id, ErrorCode::kBadRequest,
                  "'trace_id' must be 12 lowercase hex characters, nonzero");
    }
  }
  if (const json::Value* span = doc->find("span_id"); span != nullptr) {
    if (request.trace.trace_id == 0) {
      return fail(id, ErrorCode::kBadRequest,
                  "'span_id' requires a 'trace_id'");
    }
    if (!span->is_string() ||
        !obs::parse_trace_id(span->as_string(), request.trace.span_id)) {
      return fail(id, ErrorCode::kBadRequest,
                  "'span_id' must be 12 lowercase hex characters, nonzero");
    }
  }

  const json::Value* spec = doc->find("spec");
  if (runs_pipeline) {
    if (spec == nullptr) {
      return fail(id, ErrorCode::kBadRequest,
                  std::string(to_string(*method)) + " requires a 'spec'");
    }
    std::string spec_error;
    std::optional<pipeline::ScenarioSpec> parsed =
        pipeline::ScenarioSpec::from_value(*spec, &spec_error);
    if (!parsed) {
      return fail(id, ErrorCode::kInvalidSpec, spec_error);
    }
    request.spec = std::move(*parsed);
  } else if (spec != nullptr) {
    return fail(id, ErrorCode::kBadRequest,
                std::string(to_string(*method)) + " does not take a 'spec'");
  }

  const json::Value* entries = doc->find("entries");
  if (*method == Method::kBatch) {
    if (entries == nullptr || !entries->is_array()) {
      return fail(id, ErrorCode::kBadRequest,
                  "batch requires an 'entries' array");
    }
    const json::Value::Array& items = entries->as_array();
    if (items.empty()) {
      return fail(id, ErrorCode::kBadRequest,
                  "batch 'entries' must not be empty");
    }
    if (items.size() > kMaxBatchEntries) {
      return fail(id, ErrorCode::kBadRequest,
                  "batch carries " + std::to_string(items.size()) +
                      " entries; the limit is " +
                      std::to_string(kMaxBatchEntries));
    }
    request.entries.reserve(items.size());
    for (const json::Value& item : items) {
      // Entry failures stay entry failures: the batch parses, and the
      // server answers the bad entry with its own typed reply.
      request.entries.push_back(
          parse_request_value(item, /*nested=*/true));
    }
  } else if (entries != nullptr) {
    return fail(id, ErrorCode::kBadRequest,
                std::string("'entries' only applies to batch"));
  }

  ParsedRequest out;
  out.id = id;
  out.request = std::move(request);
  return out;
}

}  // namespace

json::Value request_to_value(const Request& request) {
  const bool runs_pipeline = request.method == Method::kPredict ||
                             request.method == Method::kCalibrate;
  MCM_EXPECTS(!runs_pipeline || request.spec.has_value());

  json::Value::Object envelope;
  envelope["v"] = json::Value(static_cast<double>(request.version));
  envelope["id"] = json::Value(request.id);
  envelope["method"] = json::Value(std::string(to_string(request.method)));
  if (runs_pipeline) {
    envelope["class"] =
        json::Value(std::string(to_string(request.traffic_class)));
    std::optional<json::Value> spec = json::parse(request.spec->to_json());
    MCM_ENSURES(spec.has_value());
    envelope["spec"] = std::move(*spec);
  }
  if (request.method == Method::kStats &&
      request.stats_format == StatsFormat::kPrometheus) {
    envelope["format"] = json::Value(std::string("prometheus"));
  }
  if (request.deadline_ms > 0.0) {
    envelope["deadline_ms"] = json::Value(request.deadline_ms);
  }
  if (request.trace.trace_id != 0) {
    envelope["trace_id"] =
        json::Value(obs::trace_id_to_hex(request.trace.trace_id));
    if (request.trace.span_id != 0) {
      envelope["span_id"] =
          json::Value(obs::trace_id_to_hex(request.trace.span_id));
    }
  }
  if (request.method == Method::kBatch) {
    MCM_EXPECTS(!request.entries.empty() &&
                request.entries.size() <= kMaxBatchEntries);
    json::Value::Array items;
    items.reserve(request.entries.size());
    for (const ParsedRequest& entry : request.entries) {
      // Invalid entries exist only on the decode side; an encoder has
      // nothing meaningful to put on the wire for them.
      MCM_EXPECTS(entry.request.has_value());
      items.push_back(request_to_value(*entry.request));
    }
    envelope["entries"] = json::Value(std::move(items));
  }
  return json::Value(std::move(envelope));
}

std::string render_request(const Request& request) {
  return json::serialize(request_to_value(request));
}

namespace {

[[nodiscard]] json::Value result_reply_value(const std::string& id,
                                             const json::Value& result) {
  json::Value::Object envelope;
  envelope["v"] = json::Value(static_cast<double>(kProtocolVersion));
  envelope["id"] = json::Value(id);
  envelope["ok"] = json::Value(true);
  envelope["result"] = result;
  return json::Value(std::move(envelope));
}

[[nodiscard]] json::Value error_reply_value(const std::string& id,
                                            const WireError& error) {
  json::Value::Object detail;
  detail["code"] = json::Value(std::string(to_string(error.code)));
  detail["message"] = json::Value(error.message);
  if (!error.trace_id.empty()) {
    detail["trace_id"] = json::Value(error.trace_id);
  }
  json::Value::Object envelope;
  envelope["v"] = json::Value(static_cast<double>(kProtocolVersion));
  envelope["id"] = json::Value(id);
  envelope["ok"] = json::Value(false);
  envelope["error"] = json::Value(std::move(detail));
  return json::Value(std::move(envelope));
}

}  // namespace

std::string render_result_reply(const std::string& id,
                                const json::Value& result) {
  return json::serialize(result_reply_value(id, result));
}

std::string render_error_reply(const std::string& id,
                               const WireError& error) {
  return json::serialize(error_reply_value(id, error));
}

json::Value reply_to_value(const Reply& reply) {
  return reply.ok ? result_reply_value(reply.id, reply.result)
                  : error_reply_value(reply.id, reply.error);
}

std::string render_reply(const Reply& reply) {
  return json::serialize(reply_to_value(reply));
}

std::optional<Reply> parse_reply(const std::string& payload,
                                 std::string* error) {
  std::string parse_error;
  const std::optional<json::Value> doc = json::parse(payload, &parse_error);
  if (!doc) {
    if (error != nullptr) {
      *error = "reply is not a JSON object: " + parse_error;
    }
    return std::nullopt;
  }
  return parse_reply(*doc, error);
}

std::optional<Reply> parse_reply(const json::Value& value,
                                 std::string* error) {
  const auto set_error = [error](const std::string& message) {
    if (error != nullptr) *error = message;
  };
  const json::Value* doc = &value;
  if (!doc->is_object()) {
    set_error("reply is not a JSON object");
    return std::nullopt;
  }
  const std::optional<double> version = doc->number_at("v");
  if (!version || *version != static_cast<double>(kProtocolVersion)) {
    set_error("reply is not protocol v1");
    return std::nullopt;
  }
  const std::optional<std::string> id = doc->string_at("id");
  const json::Value* ok = doc->find("ok");
  if (!id || ok == nullptr || !ok->is_bool()) {
    set_error("reply requires string 'id' and boolean 'ok'");
    return std::nullopt;
  }
  Reply reply;
  reply.id = *id;
  reply.ok = ok->as_bool();
  if (reply.ok) {
    const json::Value* result = doc->find("result");
    if (result == nullptr) {
      set_error("ok reply carries no 'result'");
      return std::nullopt;
    }
    reply.result = *result;
  } else {
    const json::Value* detail = doc->find("error");
    if (detail == nullptr || !detail->is_object()) {
      set_error("error reply carries no 'error' object");
      return std::nullopt;
    }
    const std::optional<std::string> code = detail->string_at("code");
    const std::optional<std::string> message = detail->string_at("message");
    if (!code || !message) {
      set_error("error detail requires 'code' and 'message'");
      return std::nullopt;
    }
    const std::optional<ErrorCode> parsed = parse_error_code(*code);
    if (!parsed) {
      set_error("unknown error code '" + *code + "'");
      return std::nullopt;
    }
    reply.error = {*parsed, *message,
                   detail->string_at("trace_id").value_or("")};
  }
  return reply;
}

bool read_frame(std::istream& in, std::string* payload, std::string* error) {
  MCM_EXPECTS(payload != nullptr);
  if (error != nullptr) error->clear();
  std::string header;
  if (!std::getline(in, header)) {
    // Clean EOF only when nothing at all was read.
    if (!header.empty() && error != nullptr) {
      *error = "truncated frame header";
    }
    return false;
  }
  const std::optional<std::uint64_t> length = parse_u64(header);
  if (!length || *length > kMaxFrameBytes) {
    if (error != nullptr) {
      *error = "malformed frame length '" + header + "'";
    }
    return false;
  }
  payload->resize(static_cast<std::size_t>(*length));
  if (*length > 0 &&
      !in.read(payload->data(), static_cast<std::streamsize>(*length))) {
    if (error != nullptr) *error = "truncated frame payload";
    return false;
  }
  if (in.get() != '\n') {
    if (error != nullptr) *error = "missing frame terminator";
    return false;
  }
  return true;
}

void write_frame(std::ostream& out, const std::string& payload) {
  out << payload.size() << '\n' << payload << '\n';
  out.flush();
}

namespace {

using IoClock = std::chrono::steady_clock;

enum class Wait : std::uint8_t {
  kReady,
  kTimeout,
  kStopped,
  kDrained,
  kError
};

/// Poll `fd` for `events` until it is ready, the deadline passes, or a
/// control pipe fires. nullopt deadline = wait forever; negative control
/// fds are ignored (poll(2) skips them).
[[nodiscard]] Wait wait_fd(int fd, short events,
                           const std::optional<IoClock::time_point>& deadline,
                           int stop_fd, int drain_fd) {
  for (;;) {
    pollfd fds[3] = {
        {fd, events, 0}, {stop_fd, POLLIN, 0}, {drain_fd, POLLIN, 0}};
    int timeout = -1;
    if (deadline.has_value()) {
      const auto left = std::chrono::ceil<std::chrono::milliseconds>(
                            *deadline - IoClock::now())
                            .count();
      timeout = left < 0 ? 0 : static_cast<int>(left);
    }
    const int n = ::poll(fds, 3, timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Wait::kError;
    }
    if (n == 0) return Wait::kTimeout;
    if ((fds[1].revents & POLLIN) != 0) return Wait::kStopped;
    if ((fds[2].revents & POLLIN) != 0) return Wait::kDrained;
    // POLLHUP/POLLERR on `fd` count as ready: the next read/write call
    // reports the actual condition (EOF, EPIPE, ...).
    return Wait::kReady;
  }
}

/// send() on sockets (MSG_NOSIGNAL: a vanished peer must surface as an
/// errno, not SIGPIPE), plain write() on pipes.
[[nodiscard]] ssize_t send_some(int fd, const char* data, std::size_t size) {
  const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
  if (n < 0 && errno == ENOTSOCK) return ::write(fd, data, size);
  return n;
}

}  // namespace

FrameReadStatus read_frame_fd(int fd, std::string* payload,
                              std::string* error,
                              const FrameIoOptions& options) {
  MCM_EXPECTS(payload != nullptr);
  if (error != nullptr) error->clear();
  const auto set_error = [error](const std::string& message) {
    if (error != nullptr) *error = message;
  };

  bool started = false;
  std::optional<IoClock::time_point> idle_deadline;
  std::optional<IoClock::time_point> frame_deadline;
  if (options.idle_timeout_ms >= 0) {
    idle_deadline = IoClock::now() +
                    std::chrono::milliseconds(options.idle_timeout_ms);
  }

  // One poll+read step shared by header and body: 1..want bytes into
  // `data`, 0 on EOF, -1 on any abort with `abort_status` (and error)
  // set. The drain pipe is only honored before the frame's first byte —
  // a started frame is read to completion (bounded by frame_timeout_ms).
  FrameReadStatus abort_status = FrameReadStatus::kIoError;
  const auto read_some = [&](char* data, std::size_t want) -> ssize_t {
    for (;;) {
      const auto& deadline = started ? frame_deadline : idle_deadline;
      const int drain_fd = started ? -1 : options.drain_fd;
      switch (wait_fd(fd, POLLIN, deadline, options.stop_fd, drain_fd)) {
        case Wait::kReady: break;
        case Wait::kTimeout:
          if (started) {
            abort_status = FrameReadStatus::kStallTimeout;
            set_error("peer stalled mid-frame for more than " +
                      std::to_string(options.frame_timeout_ms) + "ms");
          } else {
            abort_status = FrameReadStatus::kIdleTimeout;
          }
          return -1;
        case Wait::kStopped:
          abort_status = FrameReadStatus::kStopped;
          return -1;
        case Wait::kDrained:
          abort_status = FrameReadStatus::kDrained;
          return -1;
        case Wait::kError:
          abort_status = FrameReadStatus::kIoError;
          set_error(std::string("poll: ") + std::strerror(errno));
          return -1;
      }
      const ssize_t n = ::read(fd, data, want);
      if (n > 0) {
        if (!started) {
          started = true;
          if (options.frame_timeout_ms >= 0) {
            frame_deadline =
                IoClock::now() +
                std::chrono::milliseconds(options.frame_timeout_ms);
          }
        }
        return n;
      }
      if (n == 0) return 0;
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;  // EAGAIN: poll raced another reader / spurious wakeup
      }
      abort_status = FrameReadStatus::kIoError;
      set_error(std::string("read: ") + std::strerror(errno));
      return -1;
    }
  };

  // Header: tiny, so per-byte reads are fine.
  std::string header;
  for (;;) {
    char byte = 0;
    const ssize_t n = read_some(&byte, 1);
    if (n < 0) return abort_status;
    if (n == 0) {
      if (!started) return FrameReadStatus::kEof;
      set_error("truncated frame header");
      return FrameReadStatus::kMalformed;
    }
    if (byte == '\n') break;
    if (header.size() > 20) {
      set_error("frame header too long");
      return FrameReadStatus::kMalformed;
    }
    header.push_back(byte);
  }
  const std::optional<std::uint64_t> length = parse_u64(header);
  if (!length || *length > kMaxFrameBytes) {
    set_error("malformed frame length '" + header + "'");
    return FrameReadStatus::kMalformed;
  }
  if (*length > options.max_frame_bytes) {
    set_error("frame length " + header + " exceeds the " +
              std::to_string(options.max_frame_bytes) + "-byte limit");
    return FrameReadStatus::kOversized;
  }
  // Payload plus the trailing '\n'.
  std::string body(static_cast<std::size_t>(*length) + 1, '\0');
  std::size_t got = 0;
  while (got < body.size()) {
    const ssize_t n = read_some(body.data() + got, body.size() - got);
    if (n < 0) return abort_status;
    if (n == 0) {
      set_error("truncated frame payload");
      return FrameReadStatus::kMalformed;
    }
    got += static_cast<std::size_t>(n);
  }
  if (body.back() != '\n') {
    set_error("missing frame terminator");
    return FrameReadStatus::kMalformed;
  }
  body.pop_back();
  *payload = std::move(body);
  return FrameReadStatus::kFrame;
}

FrameWriteStatus write_frame_fd(int fd, const std::string& payload,
                                const FrameIoOptions& options) {
  std::string frame = std::to_string(payload.size());
  frame.push_back('\n');
  frame.append(payload);
  frame.push_back('\n');
  std::optional<IoClock::time_point> deadline;
  if (options.frame_timeout_ms >= 0) {
    deadline = IoClock::now() +
               std::chrono::milliseconds(options.frame_timeout_ms);
  }
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = send_some(fd, frame.data() + sent, frame.size() - sent);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return FrameWriteStatus::kIoError;  // cannot happen
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // The deadline only bites on O_NONBLOCK fds — a blocking fd never
      // reports EAGAIN. The server runs its connections nonblocking.
      switch (wait_fd(fd, POLLOUT, deadline, options.stop_fd, -1)) {
        case Wait::kReady: continue;
        case Wait::kTimeout: return FrameWriteStatus::kTimeout;
        case Wait::kStopped: return FrameWriteStatus::kStopped;
        case Wait::kDrained:
        case Wait::kError: return FrameWriteStatus::kIoError;
      }
      continue;
    }
    if (errno == EPIPE || errno == ECONNRESET) {
      return FrameWriteStatus::kPeerGone;
    }
    return FrameWriteStatus::kIoError;
  }
  return FrameWriteStatus::kOk;
}

bool read_frame_fd(int fd, std::string* payload, std::string* error) {
  switch (read_frame_fd(fd, payload, error, FrameIoOptions{})) {
    case FrameReadStatus::kFrame: return true;
    case FrameReadStatus::kEof: return false;  // error left empty
    default: return false;                     // error set by the typed form
  }
}

bool write_frame_fd(int fd, const std::string& payload) {
  return write_frame_fd(fd, payload, FrameIoOptions{}) ==
         FrameWriteStatus::kOk;
}

}  // namespace mcm::svc
