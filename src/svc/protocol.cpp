#include "svc/protocol.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>

#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace mcm::svc {
namespace {

/// Every key a v1 request envelope may carry. Method-specific rules
/// (spec vs stats-only keys) are enforced after the membership check so
/// a typo is always reported as "unknown key", never as a missing field.
constexpr const char* kEnvelopeKeys[] = {"v",     "id",   "method",
                                         "class", "spec", "format"};

[[nodiscard]] bool known_envelope_key(const std::string& key) {
  for (const char* known : kEnvelopeKeys) {
    if (key == known) return true;
  }
  return false;
}

[[nodiscard]] ParsedRequest fail(std::string id, ErrorCode code,
                                 std::string message) {
  ParsedRequest out;
  out.id = std::move(id);
  out.error = {code, std::move(message)};
  return out;
}

[[nodiscard]] std::optional<ErrorCode> parse_error_code(
    const std::string& name) {
  for (ErrorCode code :
       {ErrorCode::kBadRequest, ErrorCode::kUnsupportedVersion,
        ErrorCode::kUnknownMethod, ErrorCode::kInvalidSpec,
        ErrorCode::kOverloaded, ErrorCode::kInternal}) {
    if (name == to_string(code)) return code;
  }
  return std::nullopt;
}

}  // namespace

const char* to_string(Method method) {
  switch (method) {
    case Method::kPredict: return "predict";
    case Method::kCalibrate: return "calibrate";
    case Method::kStats: return "stats";
    case Method::kHealth: return "health";
  }
  return "?";
}

const char* to_string(TrafficClass cls) {
  return cls == TrafficClass::kInteractive ? "interactive" : "bulk";
}

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kUnsupportedVersion: return "unsupported-version";
    case ErrorCode::kUnknownMethod: return "unknown-method";
    case ErrorCode::kInvalidSpec: return "invalid-spec";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kInternal: return "internal";
  }
  return "?";
}

std::optional<Method> parse_method(const std::string& name) {
  for (Method method : {Method::kPredict, Method::kCalibrate, Method::kStats,
                        Method::kHealth}) {
    if (name == to_string(method)) return method;
  }
  return std::nullopt;
}

std::optional<TrafficClass> parse_traffic_class(const std::string& name) {
  if (name == "interactive") return TrafficClass::kInteractive;
  if (name == "bulk") return TrafficClass::kBulk;
  return std::nullopt;
}

ParsedRequest parse_request(const std::string& payload) {
  std::string parse_error;
  const std::optional<json::Value> doc = json::parse(payload, &parse_error);
  if (!doc) {
    return fail("", ErrorCode::kBadRequest,
                "request is not valid JSON: " + parse_error);
  }
  if (!doc->is_object()) {
    return fail("", ErrorCode::kBadRequest, "request must be a JSON object");
  }
  // Best-effort id up front, so every later failure still correlates.
  std::string id = doc->string_at("id").value_or("");

  for (const auto& [key, value] : doc->as_object()) {
    (void)value;
    if (!known_envelope_key(key)) {
      return fail(id, ErrorCode::kBadRequest,
                  "unknown request key '" + key + "'");
    }
  }

  const json::Value* version = doc->find("v");
  if (version == nullptr || !version->is_number()) {
    return fail(id, ErrorCode::kBadRequest,
                "request requires a numeric 'v' version");
  }
  if (version->as_number() !=
      static_cast<double>(kProtocolVersion)) {
    return fail(id, ErrorCode::kUnsupportedVersion,
                "this server speaks protocol v1 only");
  }

  const json::Value* id_value = doc->find("id");
  if (id_value == nullptr || !id_value->is_string()) {
    return fail(id, ErrorCode::kBadRequest,
                "request requires a string 'id'");
  }

  const std::optional<std::string> method_name = doc->string_at("method");
  if (!method_name) {
    return fail(id, ErrorCode::kBadRequest,
                "request requires a string 'method'");
  }
  const std::optional<Method> method = parse_method(*method_name);
  if (!method) {
    return fail(id, ErrorCode::kUnknownMethod,
                "unknown method '" + *method_name + "'");
  }

  Request request;
  request.id = id;
  request.method = *method;

  const bool runs_pipeline =
      *method == Method::kPredict || *method == Method::kCalibrate;

  if (const json::Value* cls = doc->find("class"); cls != nullptr) {
    if (!runs_pipeline) {
      return fail(id, ErrorCode::kBadRequest,
                  "'class' only applies to predict/calibrate");
    }
    if (!cls->is_string()) {
      return fail(id, ErrorCode::kBadRequest, "'class' must be a string");
    }
    const auto parsed = parse_traffic_class(cls->as_string());
    if (!parsed) {
      return fail(id, ErrorCode::kBadRequest,
                  "unknown traffic class '" + cls->as_string() +
                      "' (interactive, bulk)");
    }
    request.traffic_class = *parsed;
  }

  if (const json::Value* format = doc->find("format"); format != nullptr) {
    if (*method != Method::kStats) {
      return fail(id, ErrorCode::kBadRequest,
                  "'format' only applies to stats");
    }
    if (!format->is_string()) {
      return fail(id, ErrorCode::kBadRequest, "'format' must be a string");
    }
    if (format->as_string() == "json") {
      request.stats_format = StatsFormat::kJson;
    } else if (format->as_string() == "prometheus") {
      request.stats_format = StatsFormat::kPrometheus;
    } else {
      return fail(id, ErrorCode::kBadRequest,
                  "unknown stats format '" + format->as_string() +
                      "' (json, prometheus)");
    }
  }

  const json::Value* spec = doc->find("spec");
  if (runs_pipeline) {
    if (spec == nullptr) {
      return fail(id, ErrorCode::kBadRequest,
                  std::string(to_string(*method)) + " requires a 'spec'");
    }
    std::string spec_error;
    std::optional<pipeline::ScenarioSpec> parsed =
        pipeline::ScenarioSpec::from_value(*spec, &spec_error);
    if (!parsed) {
      return fail(id, ErrorCode::kInvalidSpec, spec_error);
    }
    request.spec = std::move(*parsed);
  } else if (spec != nullptr) {
    return fail(id, ErrorCode::kBadRequest,
                std::string(to_string(*method)) + " does not take a 'spec'");
  }

  ParsedRequest out;
  out.id = id;
  out.request = std::move(request);
  return out;
}

std::string render_request(const Request& request) {
  const bool runs_pipeline = request.method == Method::kPredict ||
                             request.method == Method::kCalibrate;
  MCM_EXPECTS(!runs_pipeline || request.spec.has_value());

  json::Value::Object envelope;
  envelope["v"] = json::Value(static_cast<double>(request.version));
  envelope["id"] = json::Value(request.id);
  envelope["method"] = json::Value(std::string(to_string(request.method)));
  if (runs_pipeline) {
    envelope["class"] =
        json::Value(std::string(to_string(request.traffic_class)));
    std::optional<json::Value> spec = json::parse(request.spec->to_json());
    MCM_ENSURES(spec.has_value());
    envelope["spec"] = std::move(*spec);
  }
  if (request.method == Method::kStats &&
      request.stats_format == StatsFormat::kPrometheus) {
    envelope["format"] = json::Value(std::string("prometheus"));
  }
  return json::serialize(json::Value(std::move(envelope)));
}

std::string render_result_reply(const std::string& id,
                                const json::Value& result) {
  json::Value::Object envelope;
  envelope["v"] = json::Value(static_cast<double>(kProtocolVersion));
  envelope["id"] = json::Value(id);
  envelope["ok"] = json::Value(true);
  envelope["result"] = result;
  return json::serialize(json::Value(std::move(envelope)));
}

std::string render_error_reply(const std::string& id,
                               const WireError& error) {
  json::Value::Object detail;
  detail["code"] = json::Value(std::string(to_string(error.code)));
  detail["message"] = json::Value(error.message);
  json::Value::Object envelope;
  envelope["v"] = json::Value(static_cast<double>(kProtocolVersion));
  envelope["id"] = json::Value(id);
  envelope["ok"] = json::Value(false);
  envelope["error"] = json::Value(std::move(detail));
  return json::serialize(json::Value(std::move(envelope)));
}

std::string render_reply(const Reply& reply) {
  return reply.ok ? render_result_reply(reply.id, reply.result)
                  : render_error_reply(reply.id, reply.error);
}

std::optional<Reply> parse_reply(const std::string& payload,
                                 std::string* error) {
  const auto set_error = [error](const std::string& message) {
    if (error != nullptr) *error = message;
  };
  std::string parse_error;
  const std::optional<json::Value> doc = json::parse(payload, &parse_error);
  if (!doc || !doc->is_object()) {
    set_error("reply is not a JSON object: " + parse_error);
    return std::nullopt;
  }
  const std::optional<double> version = doc->number_at("v");
  if (!version || *version != static_cast<double>(kProtocolVersion)) {
    set_error("reply is not protocol v1");
    return std::nullopt;
  }
  const std::optional<std::string> id = doc->string_at("id");
  const json::Value* ok = doc->find("ok");
  if (!id || ok == nullptr || !ok->is_bool()) {
    set_error("reply requires string 'id' and boolean 'ok'");
    return std::nullopt;
  }
  Reply reply;
  reply.id = *id;
  reply.ok = ok->as_bool();
  if (reply.ok) {
    const json::Value* result = doc->find("result");
    if (result == nullptr) {
      set_error("ok reply carries no 'result'");
      return std::nullopt;
    }
    reply.result = *result;
  } else {
    const json::Value* detail = doc->find("error");
    if (detail == nullptr || !detail->is_object()) {
      set_error("error reply carries no 'error' object");
      return std::nullopt;
    }
    const std::optional<std::string> code = detail->string_at("code");
    const std::optional<std::string> message = detail->string_at("message");
    if (!code || !message) {
      set_error("error detail requires 'code' and 'message'");
      return std::nullopt;
    }
    const std::optional<ErrorCode> parsed = parse_error_code(*code);
    if (!parsed) {
      set_error("unknown error code '" + *code + "'");
      return std::nullopt;
    }
    reply.error = {*parsed, *message};
  }
  return reply;
}

bool read_frame(std::istream& in, std::string* payload, std::string* error) {
  MCM_EXPECTS(payload != nullptr);
  if (error != nullptr) error->clear();
  std::string header;
  if (!std::getline(in, header)) {
    // Clean EOF only when nothing at all was read.
    if (!header.empty() && error != nullptr) {
      *error = "truncated frame header";
    }
    return false;
  }
  const std::optional<std::uint64_t> length = parse_u64(header);
  if (!length || *length > kMaxFrameBytes) {
    if (error != nullptr) {
      *error = "malformed frame length '" + header + "'";
    }
    return false;
  }
  payload->resize(static_cast<std::size_t>(*length));
  if (*length > 0 &&
      !in.read(payload->data(), static_cast<std::streamsize>(*length))) {
    if (error != nullptr) *error = "truncated frame payload";
    return false;
  }
  if (in.get() != '\n') {
    if (error != nullptr) *error = "missing frame terminator";
    return false;
  }
  return true;
}

void write_frame(std::ostream& out, const std::string& payload) {
  out << payload.size() << '\n' << payload << '\n';
  out.flush();
}

bool read_frame_fd(int fd, std::string* payload, std::string* error) {
  MCM_EXPECTS(payload != nullptr);
  if (error != nullptr) error->clear();
  const auto set_error = [error](const std::string& message) {
    if (error != nullptr) *error = message;
  };
  // Header: tiny, so per-byte reads are fine.
  std::string header;
  for (;;) {
    char byte = 0;
    const ssize_t n = ::read(fd, &byte, 1);
    if (n == 0) {
      if (!header.empty()) set_error("truncated frame header");
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      set_error(std::string("read: ") + std::strerror(errno));
      return false;
    }
    if (byte == '\n') break;
    if (header.size() > 20) {
      set_error("frame header too long");
      return false;
    }
    header.push_back(byte);
  }
  const std::optional<std::uint64_t> length = parse_u64(header);
  if (!length || *length > kMaxFrameBytes) {
    set_error("malformed frame length '" + header + "'");
    return false;
  }
  // Payload plus the trailing '\n'.
  std::string body(static_cast<std::size_t>(*length) + 1, '\0');
  std::size_t got = 0;
  while (got < body.size()) {
    const ssize_t n = ::read(fd, body.data() + got, body.size() - got);
    if (n == 0) {
      set_error("truncated frame payload");
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      set_error(std::string("read: ") + std::strerror(errno));
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  if (body.back() != '\n') {
    set_error("missing frame terminator");
    return false;
  }
  body.pop_back();
  *payload = std::move(body);
  return true;
}

bool write_frame_fd(int fd, const std::string& payload) {
  std::string frame = std::to_string(payload.size());
  frame.push_back('\n');
  frame.append(payload);
  frame.push_back('\n');
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::write(fd, frame.data() + sent, frame.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace mcm::svc
