// Token-bucket admission control for the prediction service.
//
// Each traffic class (interactive queries vs bulk sweeps) owns one
// bucket: `capacity` tokens of burst, refilled continuously at
// `refill_per_sec`. A request costs one token; when the class bucket is
// empty the request is shed with an `overloaded` error reply instead of
// queueing — the service degrades by rejecting bulk work early rather
// than by growing unbounded queues (docs/service.md).
//
// The clock is injected (seconds, monotonic, arbitrary epoch) so tests
// drive refill deterministically without sleeping; production uses
// steady_clock via default_clock().
#pragma once

#include <functional>
#include <mutex>

#include "svc/protocol.hpp"

namespace mcm::svc {

/// Monotonic seconds source. Only differences matter.
using ClockFn = std::function<double()>;

/// std::chrono::steady_clock, as seconds.
[[nodiscard]] ClockFn default_clock();

struct TokenBucketOptions {
  /// Burst size in tokens; also the initial fill. Must be > 0.
  double capacity = 8.0;
  /// Continuous refill rate, tokens per second. Must be >= 0 (0 = a pure
  /// one-shot budget, useful in tests).
  double refill_per_sec = 4.0;

  void validate() const;
};

class TokenBucket {
 public:
  TokenBucket(TokenBucketOptions options, ClockFn clock);

  /// Take `tokens` if available; false (and no change) otherwise.
  [[nodiscard]] bool try_acquire(double tokens = 1.0);

  /// Refill to now and report the balance (test / gauge hook).
  [[nodiscard]] double available();

 private:
  void refill_locked(double now);

  TokenBucketOptions options_;
  ClockFn clock_;
  std::mutex mutex_;
  double tokens_;
  double last_refill_;
};

struct AdmissionOptions {
  /// Interactive queries: generous burst, fast refill — a human or a CI
  /// step asking for single predictions should effectively never shed.
  TokenBucketOptions interactive{8.0, 16.0};
  /// Bulk sweeps: small burst, slow refill — saturating clients are shed
  /// once they outrun the service's calibration throughput.
  TokenBucketOptions bulk{2.0, 1.0};
};

/// The two class buckets behind one admit() call.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {},
                               ClockFn clock = {});

  /// Charge one request to `cls`; false = shed.
  [[nodiscard]] bool admit(TrafficClass cls);

  [[nodiscard]] double available(TrafficClass cls);

 private:
  TokenBucket interactive_;
  TokenBucket bulk_;
};

}  // namespace mcm::svc
