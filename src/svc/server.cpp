#include "svc/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <fcntl.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <functional>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "obs/export.hpp"
#include "obs/span.hpp"
#include "pipeline/result_io.hpp"
#include "runtime/thread_pool.hpp"
#include "util/contracts.hpp"

namespace mcm::svc {
namespace {

pipeline::RunnerOptions runner_options(obs::MetricsRegistry* registry,
                                       obs::TraceSink* trace,
                                       std::size_t max_retries,
                                       const ClockFn& clock) {
  pipeline::RunnerOptions options;
  // Serial measure stage: Runner::run is then safe to call concurrently
  // from every transport worker, and no wall-clock pool metrics leak
  // into the (deterministic) stats replies.
  options.parallelism = 1;
  options.max_retries = max_retries;
  options.observer.metrics = registry;
  options.observer.trace = trace;
  // Stage timings measured on the service clock: the latency histograms
  // fed from them stay deterministic when the clock is virtual.
  options.now_us = [clock]() { return clock() * 1e6; };
  return options;
}

/// Internal control-flow signal: unwinds run_single_flight back to
/// dispatch, which renders the typed `deadline-exceeded` reply.
struct DeadlineError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[nodiscard]] bool expired(const ClockFn& clock, double deadline_at) {
  return deadline_at > 0.0 && clock() >= deadline_at;
}

/// Tag a span with the request's trace identity; no-op for untraced
/// requests, so default spans stay arg-free.
void tag_span(obs::ScopedSpan& span, const obs::TraceContext& trace) {
  if (!trace.valid()) return;
  span.arg("trace_id", static_cast<double>(trace.trace_id));
  if (trace.span_id != 0) {
    span.arg("span_id", static_cast<double>(trace.span_id));
  }
}

/// The wire form of a trace id for log fields ("" when untraced).
[[nodiscard]] std::string trace_hex(const obs::TraceContext& trace) {
  return trace.valid() ? obs::trace_id_to_hex(trace.trace_id)
                       : std::string();
}

}  // namespace

ShardedCalibrationCache::ShardedCalibrationCache(std::size_t shards) {
  MCM_EXPECTS(shards >= 1);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<pipeline::CalibrationCache>());
  }
}

std::size_t ShardedCalibrationCache::shard_index(
    const std::string& fingerprint) const {
  return std::hash<std::string>{}(fingerprint) % shards_.size();
}

pipeline::CalibrationCache& ShardedCalibrationCache::shard(
    std::size_t index) {
  MCM_EXPECTS(index < shards_.size());
  return *shards_[index];
}

std::size_t ShardedCalibrationCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

Service::Service(ServiceOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_shards),
      admission_(options_.admission, options_.clock),
      runner_(runner_options(
          &registry_, options_.trace, options_.max_retries,
          options_.clock ? options_.clock : default_clock())),
      clock_(options_.clock ? options_.clock : default_clock()),
      trace_(options_.trace),
      log_(options_.log) {
  met_requests_ = &registry_.counter("svc.requests");
  met_shed_ = &registry_.counter("svc.shed");
  met_errors_ = &registry_.counter("svc.errors");
  met_singleflight_ = &registry_.counter("svc.singleflight_hits");
  met_calibrations_ = &registry_.counter("svc.calibrations");
  met_deadline_exceeded_ = &registry_.counter("svc.deadline_exceeded");
  met_drained_ = &registry_.counter("svc.drained");
  met_slow_client_drops_ = &registry_.counter("svc.slow_client_drops");
  met_cache_load_rejected_ = &registry_.counter("cache.load_rejected");
  met_batch_requests_ = &registry_.counter("svc.batch.requests");
  met_batch_entries_ = &registry_.counter("svc.batch.entries");
  met_batch_groups_ = &registry_.counter("svc.batch.groups");
  met_batch_entry_errors_ = &registry_.counter("svc.batch.entry_errors");
  met_shard_hits_.reserve(cache_.shard_count());
  met_shard_misses_.reserve(cache_.shard_count());
  for (std::size_t i = 0; i < cache_.shard_count(); ++i) {
    const std::string prefix = "svc.cache.shard" + std::to_string(i);
    met_shard_hits_.push_back(&registry_.counter(prefix + ".hits"));
    met_shard_misses_.push_back(&registry_.counter(prefix + ".misses"));
  }
  gauge_inflight_ = &registry_.gauge("svc.inflight");
  // Pre-registered (not lazily created) so every stats reply reports the
  // same instrument set regardless of which requests arrived first.
  static const char* const kMethods[2] = {"predict", "calibrate"};
  static const char* const kClasses[2] = {"interactive", "bulk"};
  for (std::size_t m = 0; m < 2; ++m) {
    for (std::size_t c = 0; c < 2; ++c) {
      lat_total_[m][c] = &registry_.latency(
          std::string("svc.latency.total{class=\"") + kClasses[c] +
          "\",method=\"" + kMethods[m] + "\"}");
    }
  }
  for (std::size_t c = 0; c < 2; ++c) {
    lat_queue_wait_[c] = &registry_.latency(
        std::string("svc.latency.queue_wait{class=\"") + kClasses[c] +
        "\"}");
  }
  lat_calibrate_ = &registry_.latency("svc.latency.calibrate");
  lat_predict_ = &registry_.latency("svc.latency.predict");
  lat_batch_assemble_ = &registry_.latency("svc.latency.batch_assemble");
}

std::string Service::handle(const std::string& payload) {
  met_requests_->add();
  ParsedRequest parsed = parse_request(payload);
  if (!parsed.request) {
    met_errors_->add();
    if (log_ != nullptr) {
      log_->warn("bad_request",
                 {{"id", parsed.id}, {"error", parsed.error.message}});
    }
    return render_error_reply(parsed.id, parsed.error);
  }
  return render_reply(serve_request(*parsed.request));
}

Reply Service::handle_request(const Request& request) {
  met_requests_->add();
  return serve_request(request);
}

Reply Service::serve_request(const Request& request) {
  RequestScope scope;
  scope.start_clock = clock_();
  scope.start_wall_us = span_clock_.now_us();
  scope.trace = request.trace;
  scope.deadline_at = request.deadline_ms > 0.0
                          ? scope.start_clock + request.deadline_ms / 1000.0
                          : 0.0;
  Reply reply;
  const bool pipeline_method = request.method == Method::kPredict ||
                               request.method == Method::kCalibrate ||
                               request.method == Method::kBatch;
  if (pipeline_method) {
    gauge_inflight_->add(1.0);
    {
      obs::ScopedSpan span(trace_, span_clock_, "request", "svc", 0);
      tag_span(span, scope.trace);
      reply = dispatch(request, scope);
    }
    gauge_inflight_->add(-1.0);
    if (request.method != Method::kBatch) {
      // Batch envelopes record per-entry totals inside handle_batch
      // instead; there is no batch slot in the method/class matrix.
      const std::size_t m = request.method == Method::kPredict ? 0 : 1;
      const std::size_t c =
          request.traffic_class == TrafficClass::kInteractive ? 0 : 1;
      lat_total_[m][c]->record_us((clock_() - scope.start_clock) * 1e6);
    }
  } else {
    reply = dispatch(request, scope);
  }
  // Error replies carry the request's trace identity so a client log line
  // can be joined to the server-side spans without guessing by id.
  if (!reply.ok && scope.trace.valid() && reply.error.trace_id.empty()) {
    reply.error.trace_id = obs::trace_id_to_hex(scope.trace.trace_id);
  }
  return reply;
}

Reply Service::dispatch(const Request& request, const RequestScope& scope) {
  Reply reply;
  reply.id = request.id;
  try {
    switch (request.method) {
      case Method::kHealth: {
        json::Value::Object result;
        result["protocol"] =
            json::Value(static_cast<double>(kProtocolVersion));
        result["status"] = json::Value(
            std::string(draining() ? "draining" : "ok"));
        reply.ok = true;
        reply.result = json::Value(std::move(result));
        return reply;
      }
      case Method::kStats:
        reply.ok = true;
        reply.result = stats_result(request.stats_format);
        return reply;
      case Method::kPredict:
      case Method::kCalibrate:
        return run_entry(request, scope);
      case Method::kBatch:
        return handle_batch(request, scope);
    }
  } catch (const DeadlineError& error) {
    met_deadline_exceeded_->add();
    if (log_ != nullptr && log_->enabled(obs::LogLevel::kWarn)) {
      log_->warn("deadline_exceeded",
                 {{"id", request.id},
                  {"error", std::string(error.what())},
                  {"trace_id", trace_hex(scope.trace)}});
    }
    reply.ok = false;
    reply.result = json::Value();
    reply.error = {ErrorCode::kDeadlineExceeded, error.what(),
                   std::string()};
  } catch (const std::exception& error) {
    met_errors_->add();
    if (log_ != nullptr && log_->enabled(obs::LogLevel::kError)) {
      log_->error("internal_error",
                  {{"id", request.id},
                   {"error", std::string(error.what())},
                   {"trace_id", trace_hex(scope.trace)}});
    }
    reply.ok = false;
    reply.result = json::Value();
    reply.error = {ErrorCode::kInternal, error.what(), std::string()};
  }
  return reply;
}

Reply Service::run_entry(const Request& request,
                         const RequestScope& scope) {
  Reply reply;
  reply.id = request.id;
  try {
    // A request that arrives with its budget already spent (queued
    // behind a slow transport, behind earlier batch entries, or the
    // client lowballed the deadline) is answered immediately — no
    // admission token, no pipeline.
    if (expired(clock_, scope.deadline_at)) {
      throw DeadlineError(
          "deadline expired before the request was scheduled");
    }
    // Admission is charged here, after validation: a request that will
    // be answered bad-request never reaches this point, so malformed
    // floods cannot burn tokens away from well-formed traffic.
    if (!admission_.admit(request.traffic_class)) {
      met_shed_->add();
      if (log_ != nullptr && log_->enabled(obs::LogLevel::kWarn)) {
        log_->warn("shed",
                   {{"id", request.id},
                    {"class", std::string(
                         to_string(request.traffic_class))},
                    {"trace_id", trace_hex(scope.trace)}});
      }
      reply.error = {
          ErrorCode::kOverloaded,
          std::string("rate limit exceeded for class '") +
              to_string(request.traffic_class) + "'",
          std::string()};
      return reply;
    }
    return run_pipeline(request, scope);
  } catch (const DeadlineError& error) {
    met_deadline_exceeded_->add();
    if (log_ != nullptr && log_->enabled(obs::LogLevel::kWarn)) {
      log_->warn("deadline_exceeded",
                 {{"id", request.id},
                  {"error", std::string(error.what())},
                  {"trace_id", trace_hex(scope.trace)}});
    }
    reply.ok = false;
    reply.result = json::Value();
    reply.error = {ErrorCode::kDeadlineExceeded, error.what(),
                   std::string()};
  } catch (const std::exception& error) {
    met_errors_->add();
    if (log_ != nullptr && log_->enabled(obs::LogLevel::kError)) {
      log_->error("internal_error",
                  {{"id", request.id},
                   {"error", std::string(error.what())},
                   {"trace_id", trace_hex(scope.trace)}});
    }
    reply.ok = false;
    reply.result = json::Value();
    reply.error = {ErrorCode::kInternal, error.what(), std::string()};
  }
  return reply;
}

Reply Service::handle_batch(const Request& request,
                            const RequestScope& scope) {
  met_batch_requests_->add();
  met_batch_entries_->add(request.entries.size());

  const std::size_t count = request.entries.size();
  std::vector<Reply> replies(count);
  std::vector<char> answered(count, 0);
  std::vector<RequestScope> scopes(count);
  // Entries that failed validation are answered from their parse error
  // without touching admission or the pipeline — one bad spec cannot
  // poison its siblings, and malformed entries never burn tokens.
  for (std::size_t i = 0; i < count; ++i) {
    const ParsedRequest& entry = request.entries[i];
    if (!entry.request.has_value()) {
      met_errors_->add();
      if (log_ != nullptr) {
        log_->warn("bad_request",
                   {{"id", entry.id}, {"error", entry.error.message}});
      }
      replies[i].id = entry.id;
      replies[i].ok = false;
      replies[i].error = entry.error;
      answered[i] = 1;
      continue;
    }
    // Every entry shares the batch's arrival instant: its deadline and
    // latency samples are measured from when the envelope arrived, not
    // from when its group got scheduled.
    RequestScope& escope = scopes[i];
    escope.start_clock = scope.start_clock;
    escope.start_wall_us = scope.start_wall_us;
    escope.trace = entry.request->trace;
    escope.deadline_at =
        entry.request->deadline_ms > 0.0
            ? scope.start_clock + entry.request->deadline_ms / 1000.0
            : 0.0;
    // A batch-level deadline bounds every entry.
    if (scope.deadline_at > 0.0 &&
        (escope.deadline_at <= 0.0 ||
         scope.deadline_at < escope.deadline_at)) {
      escope.deadline_at = scope.deadline_at;
    }
  }

  // Coalesce compatible entries: same calibration fingerprint, same
  // group. Groups keep first-appearance order and entries keep wire
  // order within a group, so per-entry cache_hit flags — and therefore
  // reply bytes — match the same requests issued serially. The first
  // entry of a group runs (or single-flight-leads) the calibration; the
  // rest ride the shard entry it populated.
  std::vector<std::vector<std::size_t>> groups;
  std::map<std::string, std::size_t> group_of;
  for (std::size_t i = 0; i < count; ++i) {
    if (answered[i] != 0) continue;
    const pipeline::ScenarioSpec& spec = *request.entries[i].request->spec;
    std::string key = spec.cacheable()
                          ? spec.fingerprint()
                          : "#uncacheable." + std::to_string(i);
    const auto [it, inserted] =
        group_of.emplace(std::move(key), groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(i);
  }
  met_batch_groups_->add(groups.size());
  lat_batch_assemble_->record_us((clock_() - scope.start_clock) * 1e6);

  for (const std::vector<std::size_t>& group : groups) {
    for (const std::size_t i : group) {
      const Request& entry = *request.entries[i].request;
      replies[i] = run_entry(entry, scopes[i]);
      const std::size_t m = entry.method == Method::kPredict ? 0 : 1;
      const std::size_t c =
          entry.traffic_class == TrafficClass::kInteractive ? 0 : 1;
      lat_total_[m][c]->record_us(
          (clock_() - scopes[i].start_clock) * 1e6);
      // Mirror serve_request's trace echo for the per-entry replies.
      if (!replies[i].ok && scopes[i].trace.valid() &&
          replies[i].error.trace_id.empty()) {
        replies[i].error.trace_id =
            obs::trace_id_to_hex(scopes[i].trace.trace_id);
      }
    }
  }

  json::Value::Array out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!replies[i].ok) met_batch_entry_errors_->add();
    out.push_back(reply_to_value(replies[i]));
  }
  json::Value::Object result;
  result["replies"] = json::Value(std::move(out));
  Reply reply;
  reply.id = request.id;
  reply.ok = true;
  reply.result = json::Value(std::move(result));
  return reply;
}

Reply Service::run_pipeline(const Request& request,
                            const RequestScope& scope) {
  MCM_EXPECTS(request.spec.has_value());
  pipeline::ScenarioSpec spec = *request.spec;
  if (request.method == Method::kCalibrate) {
    // Pre-warm only: sweep just the two calibration placements. The
    // fingerprint ignores the placement selection, so the entry this
    // populates is exactly the one a later predict on the same spec
    // hits.
    spec.placements = pipeline::PlacementSet::kCalibration;
    spec.explicit_placements.clear();
    spec.inject_failures.clear();
  }
  const pipeline::ScenarioResult result =
      run_single_flight(spec, scope, request.traffic_class);
  // Stage-latency histograms, fed from the (service-clock) StageTimings.
  // A cache hit skips the calibrate sweeps, so its near-zero sample would
  // only blur the cost of real calibrations.
  if (!result.cache_hit) {
    lat_calibrate_->record_us(result.timings.calibrate_us);
  }
  lat_predict_->record_us(result.timings.predict_us);

  Reply reply;
  reply.id = request.id;
  if (result.status == pipeline::RunStatus::kFailed) {
    met_errors_->add();
    reply.error = {ErrorCode::kInternal,
                   "every placement failed" +
                       (result.failures.empty()
                            ? std::string()
                            : ": " + result.failures.front().error),
                   std::string()};
    return reply;
  }
  reply.ok = true;
  if (request.method == Method::kPredict) {
    reply.result = pipeline::result_to_value(result);
  } else {
    json::Value::Object out;
    out["cache_hit"] = json::Value(result.cache_hit);
    out["fingerprint"] = json::Value(
        result.spec.cacheable() ? result.spec.fingerprint()
                                : std::string());
    out["local"] = pipeline::params_to_value(result.local);
    out["remote"] = pipeline::params_to_value(result.remote);
    reply.result = json::Value(std::move(out));
  }
  return reply;
}

pipeline::ScenarioResult Service::run_single_flight(
    const pipeline::ScenarioSpec& spec, const RequestScope& scope,
    TrafficClass traffic_class) {
  const pipeline::RunContext run_context{scope.trace};
  if (!spec.cacheable()) {
    // In-process callers can hand over platform-override specs the wire
    // cannot express; those bypass sharding (nothing to key on).
    pipeline::CalibrationCache private_cache;
    end_queue_wait(scope, traffic_class, nullptr);
    return runner_.run(spec, private_cache, run_context);
  }
  const std::string fingerprint = spec.fingerprint();
  const std::size_t index = cache_.shard_index(fingerprint);
  pipeline::CalibrationCache& shard = cache_.shard(index);
  // Set when this request waited as a follower: the leader's trace
  // identity, linked from the queue_wait span so a merged timeline shows
  // whose calibration the wait was spent on.
  obs::TraceContext leader_link;
  for (;;) {
    if (shard.find(fingerprint).has_value()) {
      met_shard_hits_[index]->add();
      end_queue_wait(scope, traffic_class,
                     leader_link.valid() ? &leader_link : nullptr);
      return runner_.run(spec, shard, run_context);
    }
    std::unique_lock<std::mutex> lock(flights_mutex_);
    if (auto it = flights_.find(fingerprint); it != flights_.end()) {
      // Follower: wait for the leader, then re-check the shard. A
      // deadline bounds the wait: an expired follower answers
      // `deadline-exceeded` instead of burning its worker on a
      // calibration it can no longer use in time.
      const std::shared_ptr<Flight> flight = it->second;
      leader_link = flight->leader;
      met_singleflight_->add();
      if (scope.deadline_at <= 0.0) {
        flight->cv.wait(lock, [&] { return flight->done; });
      } else {
        for (;;) {
          if (flight->done) break;
          const double remaining = scope.deadline_at - clock_();
          if (remaining <= 0.0) {
            throw DeadlineError(
                "deadline expired while waiting for an in-flight "
                "calibration");
          }
          // Re-derive the budget from the (injectable) clock after every
          // wall-clock wait slice.
          flight->cv.wait_for(lock,
                              std::chrono::duration<double>(remaining),
                              [&] { return flight->done; });
        }
      }
      // A failed leader propagates its outcome: every follower answers
      // with the same typed internal/deadline-exceeded reply instead of
      // re-electing a new leader and re-running a calibration that just
      // proved doomed (the spec is identical — so is the failure).
      if (flight->failed) {
        if (flight->deadline) {
          throw DeadlineError("calibration leader's deadline expired: " +
                              flight->error);
        }
        throw std::runtime_error("calibration leader failed: " +
                                 flight->error);
      }
      continue;
    }
    // Leader-to-be: don't start a calibration whose requester already
    // timed out.
    if (expired(clock_, scope.deadline_at)) {
      throw DeadlineError("deadline expired before calibration started");
    }
    const auto flight = std::make_shared<Flight>();
    flight->leader = scope.trace;
    flights_.emplace(fingerprint, flight);
    lock.unlock();
    if (options_.on_leader_start) options_.on_leader_start();
    met_shard_misses_[index]->add();
    end_queue_wait(scope, traffic_class,
                   leader_link.valid() ? &leader_link : nullptr);
    try {
      pipeline::ScenarioResult result =
          runner_.run(spec, shard, run_context);
      if (!result.cache_hit) met_calibrations_->add();
      finish_flight(fingerprint, flight);
      return result;
    } catch (const DeadlineError& error) {
      fail_flight(fingerprint, flight, /*deadline=*/true, error.what());
      throw;
    } catch (const std::exception& error) {
      fail_flight(fingerprint, flight, /*deadline=*/false, error.what());
      throw;
    } catch (...) {
      fail_flight(fingerprint, flight, /*deadline=*/false,
                  "unknown error");
      throw;
    }
  }
}

void Service::end_queue_wait(const RequestScope& scope,
                             TrafficClass traffic_class,
                             const obs::TraceContext* leader) {
  const std::size_t c =
      traffic_class == TrafficClass::kInteractive ? 0 : 1;
  lat_queue_wait_[c]->record_us((clock_() - scope.start_clock) * 1e6);
  if (trace_ == nullptr) return;
  obs::ScopedSpan span(trace_, "queue_wait", "svc", 0,
                       scope.start_wall_us);
  span.set_end(span_clock_.now_us());
  tag_span(span, scope.trace);
  if (leader != nullptr && leader->valid()) {
    span.arg("link.trace_id", static_cast<double>(leader->trace_id));
    if (leader->span_id != 0) {
      span.arg("link.span_id", static_cast<double>(leader->span_id));
    }
  }
}

void Service::finish_flight(const std::string& fingerprint,
                            const std::shared_ptr<Flight>& flight) {
  std::lock_guard<std::mutex> lock(flights_mutex_);
  flight->done = true;
  flights_.erase(fingerprint);
  flight->cv.notify_all();
}

void Service::fail_flight(const std::string& fingerprint,
                          const std::shared_ptr<Flight>& flight,
                          bool deadline, const std::string& error) {
  std::lock_guard<std::mutex> lock(flights_mutex_);
  flight->failed = true;
  flight->deadline = deadline;
  flight->error = error;
  flight->done = true;
  flights_.erase(fingerprint);
  flight->cv.notify_all();
}

void Service::record_slow_client_drop() {
  met_slow_client_drops_->add();
  if (log_ != nullptr) log_->warn("slow_client_drop", {});
}

void Service::record_drained() {
  met_drained_->add();
  if (log_ != nullptr) log_->info("connection_drained", {});
}

pipeline::CacheFileStatus Service::load_cache_file(const std::string& path,
                                                   std::string* error) {
  // Load into a scratch cache first: a rejected file must leave every
  // shard untouched.
  pipeline::CalibrationCache merged;
  const pipeline::CacheFileStatus status =
      merged.load_file_status(path, error);
  if (status != pipeline::CacheFileStatus::kOk) {
    if (status != pipeline::CacheFileStatus::kMissing &&
        status != pipeline::CacheFileStatus::kIoError) {
      met_cache_load_rejected_->add();
    }
    return status;
  }
  for (auto& [key, entry] : merged.snapshot()) {
    cache_.shard(cache_.shard_index(key)).put(key, std::move(entry));
  }
  return status;
}

bool Service::save_cache_file(const std::string& path, std::string* error) {
  pipeline::CalibrationCache merged;
  for (std::size_t i = 0; i < cache_.shard_count(); ++i) {
    for (auto& [key, entry] : cache_.shard(i).snapshot()) {
      merged.put(key, std::move(entry));
    }
  }
  return merged.save_file(path, error);
}

json::Value Service::stats_result(StatsFormat format) {
  const obs::MetricsSnapshot snapshot = registry_.snapshot();
  if (format == StatsFormat::kPrometheus) {
    json::Value::Object out;
    out["prometheus"] = json::Value(obs::render_prometheus(snapshot));
    return json::Value(std::move(out));
  }
  std::optional<json::Value> metrics =
      json::parse(obs::render_json(snapshot));
  MCM_ENSURES(metrics.has_value() && metrics->is_object());
  json::Value::Object out = metrics->as_object();
  out["cache_entries"] = json::Value(static_cast<double>(cache_.size()));
  out["cache_shards"] =
      json::Value(static_cast<double>(cache_.shard_count()));
  return json::Value(std::move(out));
}

std::size_t serve_stdio(Service& service, std::istream& in,
                        std::ostream& out) {
  std::size_t served = 0;
  std::string payload;
  std::string error;
  for (;;) {
    if (!read_frame(in, &payload, &error)) {
      if (!error.empty()) {
        if (service.log() != nullptr) {
          service.log()->warn("bad_frame", {{"error", error}});
        }
        write_frame(out,
                    render_error_reply("", {ErrorCode::kBadRequest, error,
                                            std::string()}));
      }
      return served;
    }
    write_frame(out, service.handle(payload));
    ++served;
  }
}

SocketServer::SocketServer(Service& service, SocketServerOptions options)
    : service_(service), options_(std::move(options)) {
  MCM_EXPECTS(!options_.path.empty());
  MCM_EXPECTS(options_.workers >= 1);
}

SocketServer::~SocketServer() { stop(); }

bool SocketServer::start(std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    for (int& fd : stop_pipe_) {
      if (fd >= 0) {
        ::close(fd);
        fd = -1;
      }
    }
    for (int& fd : drain_pipe_) {
      if (fd >= 0) {
        ::close(fd);
        fd = -1;
      }
    }
    return false;
  };
  if (running()) return fail("server already running");

  sockaddr_un addr{};
  if (options_.path.size() >= sizeof(addr.sun_path)) {
    return fail("socket path too long: " + options_.path);
  }
  // Nonblocking listener: workers race on accept(), losers see EAGAIN
  // instead of blocking past the stop signal.
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) {
    return fail(std::string("socket: ") + std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options_.path.c_str(),
              options_.path.size() + 1);
  ::unlink(options_.path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail("bind " + options_.path + ": " + std::strerror(errno));
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    return fail(std::string("listen: ") + std::strerror(errno));
  }
  if (::pipe(stop_pipe_) != 0) {
    return fail(std::string("pipe: ") + std::strerror(errno));
  }
  if (::pipe(drain_pipe_) != 0) {
    return fail(std::string("pipe: ") + std::strerror(errno));
  }
  {
    const std::lock_guard<std::mutex> lock(done_mutex_);
    workers_done_ = false;
  }
  pool_ = std::make_unique<runtime::ThreadPool>(options_.workers);
  // The pool's one dispatch IS the accept loop; it returns when the
  // self-pipe fires. Issued from a private thread because run_on_all
  // blocks its caller. Completion is flagged through done_cv_ so drain()
  // can wait for it with a budget (std::thread has no timed join).
  dispatcher_ = std::thread([this] {
    pool_->run_on_all([this](std::size_t) { worker_loop(); });
    const std::lock_guard<std::mutex> lock(done_mutex_);
    workers_done_ = true;
    done_cv_.notify_all();
  });
  if (service_.log() != nullptr) {
    service_.log()->info(
        "listen",
        {{"path", options_.path},
         {"workers", static_cast<std::uint64_t>(options_.workers)}});
  }
  return true;
}

void SocketServer::stop() {
  if (!running()) return;
  // The stop byte is deliberately never consumed: it keeps the pipe
  // readable so every worker's poll — accept loop and per-connection
  // loop alike — sees it.
  const char byte = 's';
  (void)!::write(stop_pipe_[1], &byte, 1);
  dispatcher_.join();
  pool_.reset();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(stop_pipe_[0]);
  ::close(stop_pipe_[1]);
  stop_pipe_[0] = stop_pipe_[1] = -1;
  ::close(drain_pipe_[0]);
  ::close(drain_pipe_[1]);
  drain_pipe_[0] = drain_pipe_[1] = -1;
  ::unlink(options_.path.c_str());
}

bool SocketServer::drain(int timeout_ms) {
  if (!running()) return true;
  if (service_.log() != nullptr) {
    service_.log()->info(
        "drain_begin",
        {{"timeout_ms", static_cast<double>(timeout_ms)}});
  }
  service_.set_draining(true);
  // Like the stop byte, never consumed: the accept polls exit, and idle
  // connections (waiting between frames) close. A connection mid-frame
  // or mid-pipeline finishes its request first — that is the point of
  // draining.
  const char byte = 'd';
  (void)!::write(drain_pipe_[1], &byte, 1);
  bool finished = false;
  {
    std::unique_lock<std::mutex> lock(done_mutex_);
    finished = done_cv_.wait_for(
        lock, std::chrono::milliseconds(timeout_ms < 0 ? 0 : timeout_ms),
        [&] { return workers_done_; });
  }
  stop();
  if (service_.log() != nullptr) {
    service_.log()->info(
        "drain_end",
        {{"clean", static_cast<std::uint64_t>(finished ? 1 : 0)}});
  }
  return finished;
}

void SocketServer::worker_loop() {
  for (;;) {
    pollfd fds[3] = {{listen_fd_, POLLIN, 0},
                     {stop_pipe_[0], POLLIN, 0},
                     {drain_pipe_[0], POLLIN, 0}};
    if (::poll(fds, 3, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) return;
    if ((fds[2].revents & POLLIN) != 0) return;  // draining: stop accepting
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;  // lost the accept race to another worker
    if (service_.log() != nullptr &&
        service_.log()->enabled(obs::LogLevel::kDebug)) {
      service_.log()->debug(
          "accept", {{"fd", static_cast<std::uint64_t>(conn)}});
    }
    serve_connection(conn);
    ::close(conn);
  }
}

void SocketServer::serve_connection(int fd) {
  // Nonblocking connection: every read AND write is poll-driven, so the
  // frame deadlines bite on both directions (a blocking write to a
  // full-buffer peer would otherwise pin this worker past any budget).
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  FrameIoOptions io;
  io.stop_fd = stop_pipe_[0];
  io.drain_fd = drain_pipe_[0];
  io.idle_timeout_ms = options_.idle_timeout_ms;
  io.frame_timeout_ms = options_.frame_timeout_ms;
  io.max_frame_bytes = options_.max_frame_bytes;
  std::string payload;
  std::string error;
  for (;;) {
    switch (read_frame_fd(fd, &payload, &error, io)) {
      case FrameReadStatus::kFrame: break;
      case FrameReadStatus::kMalformed:
      case FrameReadStatus::kOversized:
        // Typed goodbye; framing has no resync point, so close after.
        (void)write_frame_fd(
            fd,
            render_error_reply(
                "", {ErrorCode::kBadRequest, error, std::string()}),
            io);
        return;
      case FrameReadStatus::kStallTimeout:
        // Slow-loris peer: no reply (it is not draining bytes anyway).
        service_.record_slow_client_drop();
        return;
      case FrameReadStatus::kEof:
      case FrameReadStatus::kIdleTimeout:
      case FrameReadStatus::kStopped:
      case FrameReadStatus::kDrained:
      case FrameReadStatus::kIoError:
        return;
    }
    switch (write_frame_fd(fd, service_.handle(payload), io)) {
      case FrameWriteStatus::kOk: break;
      case FrameWriteStatus::kTimeout:
        service_.record_slow_client_drop();
        return;
      case FrameWriteStatus::kStopped:
      case FrameWriteStatus::kPeerGone:
      case FrameWriteStatus::kIoError:
        return;
    }
    if (service_.draining()) {
      // The in-flight request finished and its reply is out; close the
      // connection instead of waiting for another frame.
      service_.record_drained();
      return;
    }
  }
}

}  // namespace mcm::svc
