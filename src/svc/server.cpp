#include "svc/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <functional>
#include <istream>
#include <ostream>
#include <utility>

#include "obs/export.hpp"
#include "pipeline/result_io.hpp"
#include "runtime/thread_pool.hpp"
#include "util/contracts.hpp"

namespace mcm::svc {
namespace {

pipeline::RunnerOptions runner_options(obs::MetricsRegistry* registry,
                                       std::size_t max_retries) {
  pipeline::RunnerOptions options;
  // Serial measure stage: Runner::run is then safe to call concurrently
  // from every transport worker, and no wall-clock pool metrics leak
  // into the (deterministic) stats replies.
  options.parallelism = 1;
  options.max_retries = max_retries;
  options.observer.metrics = registry;
  return options;
}

}  // namespace

ShardedCalibrationCache::ShardedCalibrationCache(std::size_t shards) {
  MCM_EXPECTS(shards >= 1);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<pipeline::CalibrationCache>());
  }
}

std::size_t ShardedCalibrationCache::shard_index(
    const std::string& fingerprint) const {
  return std::hash<std::string>{}(fingerprint) % shards_.size();
}

pipeline::CalibrationCache& ShardedCalibrationCache::shard(
    std::size_t index) {
  MCM_EXPECTS(index < shards_.size());
  return *shards_[index];
}

std::size_t ShardedCalibrationCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

Service::Service(ServiceOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_shards),
      admission_(options_.admission, options_.clock),
      runner_(runner_options(&registry_, options_.max_retries)) {
  met_requests_ = &registry_.counter("svc.requests");
  met_shed_ = &registry_.counter("svc.shed");
  met_errors_ = &registry_.counter("svc.errors");
  met_singleflight_ = &registry_.counter("svc.singleflight_hits");
  met_calibrations_ = &registry_.counter("svc.calibrations");
  met_shard_hits_.reserve(cache_.shard_count());
  met_shard_misses_.reserve(cache_.shard_count());
  for (std::size_t i = 0; i < cache_.shard_count(); ++i) {
    const std::string prefix = "svc.cache.shard" + std::to_string(i);
    met_shard_hits_.push_back(&registry_.counter(prefix + ".hits"));
    met_shard_misses_.push_back(&registry_.counter(prefix + ".misses"));
  }
}

std::string Service::handle(const std::string& payload) {
  met_requests_->add();
  ParsedRequest parsed = parse_request(payload);
  if (!parsed.request) {
    met_errors_->add();
    return render_error_reply(parsed.id, parsed.error);
  }
  return render_reply(dispatch(*parsed.request));
}

Reply Service::handle_request(const Request& request) {
  met_requests_->add();
  return dispatch(request);
}

Reply Service::dispatch(const Request& request) {
  Reply reply;
  reply.id = request.id;
  try {
    switch (request.method) {
      case Method::kHealth: {
        json::Value::Object result;
        result["protocol"] =
            json::Value(static_cast<double>(kProtocolVersion));
        result["status"] = json::Value(std::string("ok"));
        reply.ok = true;
        reply.result = json::Value(std::move(result));
        return reply;
      }
      case Method::kStats:
        reply.ok = true;
        reply.result = stats_result(request.stats_format);
        return reply;
      case Method::kPredict:
      case Method::kCalibrate:
        if (!admission_.admit(request.traffic_class)) {
          met_shed_->add();
          reply.error = {
              ErrorCode::kOverloaded,
              std::string("rate limit exceeded for class '") +
                  to_string(request.traffic_class) + "'"};
          return reply;
        }
        return run_pipeline(request);
    }
  } catch (const std::exception& error) {
    met_errors_->add();
    reply.ok = false;
    reply.result = json::Value();
    reply.error = {ErrorCode::kInternal, error.what()};
  }
  return reply;
}

Reply Service::run_pipeline(const Request& request) {
  MCM_EXPECTS(request.spec.has_value());
  pipeline::ScenarioSpec spec = *request.spec;
  if (request.method == Method::kCalibrate) {
    // Pre-warm only: sweep just the two calibration placements. The
    // fingerprint ignores the placement selection, so the entry this
    // populates is exactly the one a later predict on the same spec
    // hits.
    spec.placements = pipeline::PlacementSet::kCalibration;
    spec.explicit_placements.clear();
    spec.inject_failures.clear();
  }
  const pipeline::ScenarioResult result = run_single_flight(spec);

  Reply reply;
  reply.id = request.id;
  if (result.status == pipeline::RunStatus::kFailed) {
    met_errors_->add();
    reply.error = {ErrorCode::kInternal,
                   "every placement failed" +
                       (result.failures.empty()
                            ? std::string()
                            : ": " + result.failures.front().error)};
    return reply;
  }
  reply.ok = true;
  if (request.method == Method::kPredict) {
    reply.result = pipeline::result_to_value(result);
  } else {
    json::Value::Object out;
    out["cache_hit"] = json::Value(result.cache_hit);
    out["fingerprint"] = json::Value(
        result.spec.cacheable() ? result.spec.fingerprint()
                                : std::string());
    out["local"] = pipeline::params_to_value(result.local);
    out["remote"] = pipeline::params_to_value(result.remote);
    reply.result = json::Value(std::move(out));
  }
  return reply;
}

pipeline::ScenarioResult Service::run_single_flight(
    const pipeline::ScenarioSpec& spec) {
  if (!spec.cacheable()) {
    // In-process callers can hand over platform-override specs the wire
    // cannot express; those bypass sharding (nothing to key on).
    pipeline::CalibrationCache private_cache;
    return runner_.run(spec, private_cache);
  }
  const std::string fingerprint = spec.fingerprint();
  const std::size_t index = cache_.shard_index(fingerprint);
  pipeline::CalibrationCache& shard = cache_.shard(index);
  for (;;) {
    if (shard.find(fingerprint).has_value()) {
      met_shard_hits_[index]->add();
      return runner_.run(spec, shard);
    }
    std::unique_lock<std::mutex> lock(flights_mutex_);
    if (auto it = flights_.find(fingerprint); it != flights_.end()) {
      // Follower: wait for the leader, then re-check the shard — the
      // leader may have failed without populating it, in which case the
      // next lap elects a new leader.
      const std::shared_ptr<Flight> flight = it->second;
      met_singleflight_->add();
      flight->cv.wait(lock, [&] { return flight->done; });
      continue;
    }
    const auto flight = std::make_shared<Flight>();
    flights_.emplace(fingerprint, flight);
    lock.unlock();
    met_shard_misses_[index]->add();
    try {
      pipeline::ScenarioResult result = runner_.run(spec, shard);
      if (!result.cache_hit) met_calibrations_->add();
      finish_flight(fingerprint, flight);
      return result;
    } catch (...) {
      finish_flight(fingerprint, flight);
      throw;
    }
  }
}

void Service::finish_flight(const std::string& fingerprint,
                            const std::shared_ptr<Flight>& flight) {
  std::lock_guard<std::mutex> lock(flights_mutex_);
  flight->done = true;
  flights_.erase(fingerprint);
  flight->cv.notify_all();
}

json::Value Service::stats_result(StatsFormat format) {
  const obs::MetricsSnapshot snapshot = registry_.snapshot();
  if (format == StatsFormat::kPrometheus) {
    json::Value::Object out;
    out["prometheus"] = json::Value(obs::render_prometheus(snapshot));
    return json::Value(std::move(out));
  }
  std::optional<json::Value> metrics =
      json::parse(obs::render_json(snapshot));
  MCM_ENSURES(metrics.has_value() && metrics->is_object());
  json::Value::Object out = metrics->as_object();
  out["cache_entries"] = json::Value(static_cast<double>(cache_.size()));
  out["cache_shards"] =
      json::Value(static_cast<double>(cache_.shard_count()));
  return json::Value(std::move(out));
}

std::size_t serve_stdio(Service& service, std::istream& in,
                        std::ostream& out) {
  std::size_t served = 0;
  std::string payload;
  std::string error;
  for (;;) {
    if (!read_frame(in, &payload, &error)) {
      if (!error.empty()) {
        write_frame(out, render_error_reply(
                             "", {ErrorCode::kBadRequest, error}));
      }
      return served;
    }
    write_frame(out, service.handle(payload));
    ++served;
  }
}

SocketServer::SocketServer(Service& service, SocketServerOptions options)
    : service_(service), options_(std::move(options)) {
  MCM_EXPECTS(!options_.path.empty());
  MCM_EXPECTS(options_.workers >= 1);
}

SocketServer::~SocketServer() { stop(); }

bool SocketServer::start(std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    for (int& fd : stop_pipe_) {
      if (fd >= 0) {
        ::close(fd);
        fd = -1;
      }
    }
    return false;
  };
  if (running()) return fail("server already running");

  sockaddr_un addr{};
  if (options_.path.size() >= sizeof(addr.sun_path)) {
    return fail("socket path too long: " + options_.path);
  }
  // Nonblocking listener: workers race on accept(), losers see EAGAIN
  // instead of blocking past the stop signal.
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) {
    return fail(std::string("socket: ") + std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options_.path.c_str(),
              options_.path.size() + 1);
  ::unlink(options_.path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail("bind " + options_.path + ": " + std::strerror(errno));
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    return fail(std::string("listen: ") + std::strerror(errno));
  }
  if (::pipe(stop_pipe_) != 0) {
    return fail(std::string("pipe: ") + std::strerror(errno));
  }
  pool_ = std::make_unique<runtime::ThreadPool>(options_.workers);
  // The pool's one dispatch IS the accept loop; it returns when the
  // self-pipe fires. Issued from a private thread because run_on_all
  // blocks its caller.
  dispatcher_ = std::thread([this] {
    pool_->run_on_all([this](std::size_t) { worker_loop(); });
  });
  return true;
}

void SocketServer::stop() {
  if (!running()) return;
  // The stop byte is deliberately never consumed: it keeps the pipe
  // readable so every worker's poll — accept loop and per-connection
  // loop alike — sees it.
  const char byte = 's';
  (void)!::write(stop_pipe_[1], &byte, 1);
  dispatcher_.join();
  pool_.reset();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(stop_pipe_[0]);
  ::close(stop_pipe_[1]);
  stop_pipe_[0] = stop_pipe_[1] = -1;
  ::unlink(options_.path.c_str());
}

void SocketServer::worker_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) return;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;  // lost the accept race to another worker
    serve_connection(conn);
    ::close(conn);
  }
}

void SocketServer::serve_connection(int fd) {
  std::string payload;
  std::string error;
  for (;;) {
    pollfd fds[2] = {{fd, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) return;
    if (!read_frame_fd(fd, &payload, &error)) {
      if (!error.empty()) {
        (void)write_frame_fd(
            fd, render_error_reply("", {ErrorCode::kBadRequest, error}));
      }
      return;
    }
    if (!write_frame_fd(fd, service_.handle(payload))) return;
  }
}

}  // namespace mcm::svc
