#include "svc/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <fcntl.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <functional>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "obs/export.hpp"
#include "pipeline/result_io.hpp"
#include "runtime/thread_pool.hpp"
#include "util/contracts.hpp"

namespace mcm::svc {
namespace {

pipeline::RunnerOptions runner_options(obs::MetricsRegistry* registry,
                                       std::size_t max_retries) {
  pipeline::RunnerOptions options;
  // Serial measure stage: Runner::run is then safe to call concurrently
  // from every transport worker, and no wall-clock pool metrics leak
  // into the (deterministic) stats replies.
  options.parallelism = 1;
  options.max_retries = max_retries;
  options.observer.metrics = registry;
  return options;
}

/// Internal control-flow signal: unwinds run_single_flight back to
/// dispatch, which renders the typed `deadline-exceeded` reply.
struct DeadlineError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[nodiscard]] bool expired(const ClockFn& clock, double deadline_at) {
  return deadline_at > 0.0 && clock() >= deadline_at;
}

}  // namespace

ShardedCalibrationCache::ShardedCalibrationCache(std::size_t shards) {
  MCM_EXPECTS(shards >= 1);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<pipeline::CalibrationCache>());
  }
}

std::size_t ShardedCalibrationCache::shard_index(
    const std::string& fingerprint) const {
  return std::hash<std::string>{}(fingerprint) % shards_.size();
}

pipeline::CalibrationCache& ShardedCalibrationCache::shard(
    std::size_t index) {
  MCM_EXPECTS(index < shards_.size());
  return *shards_[index];
}

std::size_t ShardedCalibrationCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

Service::Service(ServiceOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_shards),
      admission_(options_.admission, options_.clock),
      runner_(runner_options(&registry_, options_.max_retries)),
      clock_(options_.clock ? options_.clock : default_clock()) {
  met_requests_ = &registry_.counter("svc.requests");
  met_shed_ = &registry_.counter("svc.shed");
  met_errors_ = &registry_.counter("svc.errors");
  met_singleflight_ = &registry_.counter("svc.singleflight_hits");
  met_calibrations_ = &registry_.counter("svc.calibrations");
  met_deadline_exceeded_ = &registry_.counter("svc.deadline_exceeded");
  met_drained_ = &registry_.counter("svc.drained");
  met_slow_client_drops_ = &registry_.counter("svc.slow_client_drops");
  met_cache_load_rejected_ = &registry_.counter("cache.load_rejected");
  met_shard_hits_.reserve(cache_.shard_count());
  met_shard_misses_.reserve(cache_.shard_count());
  for (std::size_t i = 0; i < cache_.shard_count(); ++i) {
    const std::string prefix = "svc.cache.shard" + std::to_string(i);
    met_shard_hits_.push_back(&registry_.counter(prefix + ".hits"));
    met_shard_misses_.push_back(&registry_.counter(prefix + ".misses"));
  }
}

std::string Service::handle(const std::string& payload) {
  met_requests_->add();
  ParsedRequest parsed = parse_request(payload);
  if (!parsed.request) {
    met_errors_->add();
    return render_error_reply(parsed.id, parsed.error);
  }
  const Request& request = *parsed.request;
  const double deadline_at = request.deadline_ms > 0.0
                                 ? clock_() + request.deadline_ms / 1000.0
                                 : 0.0;
  return render_reply(dispatch(request, deadline_at));
}

Reply Service::handle_request(const Request& request) {
  met_requests_->add();
  const double deadline_at = request.deadline_ms > 0.0
                                 ? clock_() + request.deadline_ms / 1000.0
                                 : 0.0;
  return dispatch(request, deadline_at);
}

Reply Service::dispatch(const Request& request, double deadline_at) {
  Reply reply;
  reply.id = request.id;
  try {
    switch (request.method) {
      case Method::kHealth: {
        json::Value::Object result;
        result["protocol"] =
            json::Value(static_cast<double>(kProtocolVersion));
        result["status"] = json::Value(
            std::string(draining() ? "draining" : "ok"));
        reply.ok = true;
        reply.result = json::Value(std::move(result));
        return reply;
      }
      case Method::kStats:
        reply.ok = true;
        reply.result = stats_result(request.stats_format);
        return reply;
      case Method::kPredict:
      case Method::kCalibrate:
        // A request that arrives with its budget already spent (queued
        // behind a slow transport, or the client lowballed the deadline)
        // is answered immediately — no admission token, no pipeline.
        if (expired(clock_, deadline_at)) {
          throw DeadlineError(
              "deadline expired before the request was scheduled");
        }
        if (!admission_.admit(request.traffic_class)) {
          met_shed_->add();
          reply.error = {
              ErrorCode::kOverloaded,
              std::string("rate limit exceeded for class '") +
                  to_string(request.traffic_class) + "'"};
          return reply;
        }
        return run_pipeline(request, deadline_at);
    }
  } catch (const DeadlineError& error) {
    met_deadline_exceeded_->add();
    reply.ok = false;
    reply.result = json::Value();
    reply.error = {ErrorCode::kDeadlineExceeded, error.what()};
  } catch (const std::exception& error) {
    met_errors_->add();
    reply.ok = false;
    reply.result = json::Value();
    reply.error = {ErrorCode::kInternal, error.what()};
  }
  return reply;
}

Reply Service::run_pipeline(const Request& request, double deadline_at) {
  MCM_EXPECTS(request.spec.has_value());
  pipeline::ScenarioSpec spec = *request.spec;
  if (request.method == Method::kCalibrate) {
    // Pre-warm only: sweep just the two calibration placements. The
    // fingerprint ignores the placement selection, so the entry this
    // populates is exactly the one a later predict on the same spec
    // hits.
    spec.placements = pipeline::PlacementSet::kCalibration;
    spec.explicit_placements.clear();
    spec.inject_failures.clear();
  }
  const pipeline::ScenarioResult result =
      run_single_flight(spec, deadline_at);

  Reply reply;
  reply.id = request.id;
  if (result.status == pipeline::RunStatus::kFailed) {
    met_errors_->add();
    reply.error = {ErrorCode::kInternal,
                   "every placement failed" +
                       (result.failures.empty()
                            ? std::string()
                            : ": " + result.failures.front().error)};
    return reply;
  }
  reply.ok = true;
  if (request.method == Method::kPredict) {
    reply.result = pipeline::result_to_value(result);
  } else {
    json::Value::Object out;
    out["cache_hit"] = json::Value(result.cache_hit);
    out["fingerprint"] = json::Value(
        result.spec.cacheable() ? result.spec.fingerprint()
                                : std::string());
    out["local"] = pipeline::params_to_value(result.local);
    out["remote"] = pipeline::params_to_value(result.remote);
    reply.result = json::Value(std::move(out));
  }
  return reply;
}

pipeline::ScenarioResult Service::run_single_flight(
    const pipeline::ScenarioSpec& spec, double deadline_at) {
  if (!spec.cacheable()) {
    // In-process callers can hand over platform-override specs the wire
    // cannot express; those bypass sharding (nothing to key on).
    pipeline::CalibrationCache private_cache;
    return runner_.run(spec, private_cache);
  }
  const std::string fingerprint = spec.fingerprint();
  const std::size_t index = cache_.shard_index(fingerprint);
  pipeline::CalibrationCache& shard = cache_.shard(index);
  for (;;) {
    if (shard.find(fingerprint).has_value()) {
      met_shard_hits_[index]->add();
      return runner_.run(spec, shard);
    }
    std::unique_lock<std::mutex> lock(flights_mutex_);
    if (auto it = flights_.find(fingerprint); it != flights_.end()) {
      // Follower: wait for the leader, then re-check the shard — the
      // leader may have failed without populating it, in which case the
      // next lap elects a new leader. A deadline bounds the wait: an
      // expired follower answers `deadline-exceeded` instead of burning
      // its worker on a calibration it can no longer use in time.
      const std::shared_ptr<Flight> flight = it->second;
      met_singleflight_->add();
      if (deadline_at <= 0.0) {
        flight->cv.wait(lock, [&] { return flight->done; });
        continue;
      }
      for (;;) {
        if (flight->done) break;
        const double remaining = deadline_at - clock_();
        if (remaining <= 0.0) {
          throw DeadlineError(
              "deadline expired while waiting for an in-flight "
              "calibration");
        }
        // Re-derive the budget from the (injectable) clock after every
        // wall-clock wait slice.
        flight->cv.wait_for(lock,
                            std::chrono::duration<double>(remaining),
                            [&] { return flight->done; });
      }
      continue;
    }
    // Leader-to-be: don't start a calibration whose requester already
    // timed out.
    if (expired(clock_, deadline_at)) {
      throw DeadlineError("deadline expired before calibration started");
    }
    const auto flight = std::make_shared<Flight>();
    flights_.emplace(fingerprint, flight);
    lock.unlock();
    met_shard_misses_[index]->add();
    try {
      pipeline::ScenarioResult result = runner_.run(spec, shard);
      if (!result.cache_hit) met_calibrations_->add();
      finish_flight(fingerprint, flight);
      return result;
    } catch (...) {
      finish_flight(fingerprint, flight);
      throw;
    }
  }
}

void Service::finish_flight(const std::string& fingerprint,
                            const std::shared_ptr<Flight>& flight) {
  std::lock_guard<std::mutex> lock(flights_mutex_);
  flight->done = true;
  flights_.erase(fingerprint);
  flight->cv.notify_all();
}

void Service::record_slow_client_drop() { met_slow_client_drops_->add(); }

void Service::record_drained() { met_drained_->add(); }

pipeline::CacheFileStatus Service::load_cache_file(const std::string& path,
                                                   std::string* error) {
  // Load into a scratch cache first: a rejected file must leave every
  // shard untouched.
  pipeline::CalibrationCache merged;
  const pipeline::CacheFileStatus status =
      merged.load_file_status(path, error);
  if (status != pipeline::CacheFileStatus::kOk) {
    if (status != pipeline::CacheFileStatus::kMissing &&
        status != pipeline::CacheFileStatus::kIoError) {
      met_cache_load_rejected_->add();
    }
    return status;
  }
  for (auto& [key, entry] : merged.snapshot()) {
    cache_.shard(cache_.shard_index(key)).put(key, std::move(entry));
  }
  return status;
}

bool Service::save_cache_file(const std::string& path, std::string* error) {
  pipeline::CalibrationCache merged;
  for (std::size_t i = 0; i < cache_.shard_count(); ++i) {
    for (auto& [key, entry] : cache_.shard(i).snapshot()) {
      merged.put(key, std::move(entry));
    }
  }
  return merged.save_file(path, error);
}

json::Value Service::stats_result(StatsFormat format) {
  const obs::MetricsSnapshot snapshot = registry_.snapshot();
  if (format == StatsFormat::kPrometheus) {
    json::Value::Object out;
    out["prometheus"] = json::Value(obs::render_prometheus(snapshot));
    return json::Value(std::move(out));
  }
  std::optional<json::Value> metrics =
      json::parse(obs::render_json(snapshot));
  MCM_ENSURES(metrics.has_value() && metrics->is_object());
  json::Value::Object out = metrics->as_object();
  out["cache_entries"] = json::Value(static_cast<double>(cache_.size()));
  out["cache_shards"] =
      json::Value(static_cast<double>(cache_.shard_count()));
  return json::Value(std::move(out));
}

std::size_t serve_stdio(Service& service, std::istream& in,
                        std::ostream& out) {
  std::size_t served = 0;
  std::string payload;
  std::string error;
  for (;;) {
    if (!read_frame(in, &payload, &error)) {
      if (!error.empty()) {
        write_frame(out, render_error_reply(
                             "", {ErrorCode::kBadRequest, error}));
      }
      return served;
    }
    write_frame(out, service.handle(payload));
    ++served;
  }
}

SocketServer::SocketServer(Service& service, SocketServerOptions options)
    : service_(service), options_(std::move(options)) {
  MCM_EXPECTS(!options_.path.empty());
  MCM_EXPECTS(options_.workers >= 1);
}

SocketServer::~SocketServer() { stop(); }

bool SocketServer::start(std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    for (int& fd : stop_pipe_) {
      if (fd >= 0) {
        ::close(fd);
        fd = -1;
      }
    }
    for (int& fd : drain_pipe_) {
      if (fd >= 0) {
        ::close(fd);
        fd = -1;
      }
    }
    return false;
  };
  if (running()) return fail("server already running");

  sockaddr_un addr{};
  if (options_.path.size() >= sizeof(addr.sun_path)) {
    return fail("socket path too long: " + options_.path);
  }
  // Nonblocking listener: workers race on accept(), losers see EAGAIN
  // instead of blocking past the stop signal.
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) {
    return fail(std::string("socket: ") + std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options_.path.c_str(),
              options_.path.size() + 1);
  ::unlink(options_.path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail("bind " + options_.path + ": " + std::strerror(errno));
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    return fail(std::string("listen: ") + std::strerror(errno));
  }
  if (::pipe(stop_pipe_) != 0) {
    return fail(std::string("pipe: ") + std::strerror(errno));
  }
  if (::pipe(drain_pipe_) != 0) {
    return fail(std::string("pipe: ") + std::strerror(errno));
  }
  {
    const std::lock_guard<std::mutex> lock(done_mutex_);
    workers_done_ = false;
  }
  pool_ = std::make_unique<runtime::ThreadPool>(options_.workers);
  // The pool's one dispatch IS the accept loop; it returns when the
  // self-pipe fires. Issued from a private thread because run_on_all
  // blocks its caller. Completion is flagged through done_cv_ so drain()
  // can wait for it with a budget (std::thread has no timed join).
  dispatcher_ = std::thread([this] {
    pool_->run_on_all([this](std::size_t) { worker_loop(); });
    const std::lock_guard<std::mutex> lock(done_mutex_);
    workers_done_ = true;
    done_cv_.notify_all();
  });
  return true;
}

void SocketServer::stop() {
  if (!running()) return;
  // The stop byte is deliberately never consumed: it keeps the pipe
  // readable so every worker's poll — accept loop and per-connection
  // loop alike — sees it.
  const char byte = 's';
  (void)!::write(stop_pipe_[1], &byte, 1);
  dispatcher_.join();
  pool_.reset();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(stop_pipe_[0]);
  ::close(stop_pipe_[1]);
  stop_pipe_[0] = stop_pipe_[1] = -1;
  ::close(drain_pipe_[0]);
  ::close(drain_pipe_[1]);
  drain_pipe_[0] = drain_pipe_[1] = -1;
  ::unlink(options_.path.c_str());
}

bool SocketServer::drain(int timeout_ms) {
  if (!running()) return true;
  service_.set_draining(true);
  // Like the stop byte, never consumed: the accept polls exit, and idle
  // connections (waiting between frames) close. A connection mid-frame
  // or mid-pipeline finishes its request first — that is the point of
  // draining.
  const char byte = 'd';
  (void)!::write(drain_pipe_[1], &byte, 1);
  bool finished = false;
  {
    std::unique_lock<std::mutex> lock(done_mutex_);
    finished = done_cv_.wait_for(
        lock, std::chrono::milliseconds(timeout_ms < 0 ? 0 : timeout_ms),
        [&] { return workers_done_; });
  }
  stop();
  return finished;
}

void SocketServer::worker_loop() {
  for (;;) {
    pollfd fds[3] = {{listen_fd_, POLLIN, 0},
                     {stop_pipe_[0], POLLIN, 0},
                     {drain_pipe_[0], POLLIN, 0}};
    if (::poll(fds, 3, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) return;
    if ((fds[2].revents & POLLIN) != 0) return;  // draining: stop accepting
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;  // lost the accept race to another worker
    serve_connection(conn);
    ::close(conn);
  }
}

void SocketServer::serve_connection(int fd) {
  // Nonblocking connection: every read AND write is poll-driven, so the
  // frame deadlines bite on both directions (a blocking write to a
  // full-buffer peer would otherwise pin this worker past any budget).
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  FrameIoOptions io;
  io.stop_fd = stop_pipe_[0];
  io.drain_fd = drain_pipe_[0];
  io.idle_timeout_ms = options_.idle_timeout_ms;
  io.frame_timeout_ms = options_.frame_timeout_ms;
  io.max_frame_bytes = options_.max_frame_bytes;
  std::string payload;
  std::string error;
  for (;;) {
    switch (read_frame_fd(fd, &payload, &error, io)) {
      case FrameReadStatus::kFrame: break;
      case FrameReadStatus::kMalformed:
      case FrameReadStatus::kOversized:
        // Typed goodbye; framing has no resync point, so close after.
        (void)write_frame_fd(
            fd, render_error_reply("", {ErrorCode::kBadRequest, error}),
            io);
        return;
      case FrameReadStatus::kStallTimeout:
        // Slow-loris peer: no reply (it is not draining bytes anyway).
        service_.record_slow_client_drop();
        return;
      case FrameReadStatus::kEof:
      case FrameReadStatus::kIdleTimeout:
      case FrameReadStatus::kStopped:
      case FrameReadStatus::kDrained:
      case FrameReadStatus::kIoError:
        return;
    }
    switch (write_frame_fd(fd, service_.handle(payload), io)) {
      case FrameWriteStatus::kOk: break;
      case FrameWriteStatus::kTimeout:
        service_.record_slow_client_drop();
        return;
      case FrameWriteStatus::kStopped:
      case FrameWriteStatus::kPeerGone:
      case FrameWriteStatus::kIoError:
        return;
    }
    if (service_.draining()) {
      // The in-flight request finished and its reply is out; close the
      // connection instead of waiting for another frame.
      service_.record_drained();
      return;
    }
  }
}

}  // namespace mcm::svc
