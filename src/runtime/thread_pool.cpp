#include "runtime/thread_pool.hpp"

#include <utility>

#include "obs/span.hpp"
#include "runtime/affinity.hpp"
#include "util/contracts.hpp"

namespace mcm::runtime {

ThreadPool::ThreadPool(std::size_t workers, bool pin_to_cpus) {
  MCM_EXPECTS(workers >= 1);
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i, pin_to_cpus] {
      worker_loop(i, pin_to_cpus);
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop(std::size_t index, bool pin) {
  if (pin) {
    (void)bind_current_thread_to_cpu(index % hardware_concurrency());
  }
  std::size_t seen_generation = 0;
  while (true) {
    const std::function<void(std::size_t)>* task = nullptr;
    {
      std::unique_lock lock(mutex_);
      start_cv_.wait(lock, [&] {
        return shutting_down_ || generation_ != seen_generation;
      });
      if (shutting_down_) return;
      seen_generation = generation_;
      task = task_;
    }
    std::exception_ptr error;
    try {
      (*task)(index);
    } catch (...) {
      // Letting the exception escape a worker thread would std::terminate
      // and leave remaining_ forever nonzero (deadlocking the destructor);
      // capture it for the dispatching thread instead.
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (error != nullptr && first_error_ == nullptr) {
        first_error_ = error;
      }
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::attach_observer(const obs::Observer& observer) {
  std::lock_guard lock(mutex_);
  MCM_EXPECTS(remaining_ == 0);  // between dispatches only
  obs_ = observer;
  if (obs_.metrics != nullptr) {
    met_dispatches_ = &obs_.metrics->counter("runtime.pool.dispatches");
    met_busy_us_ = &obs_.metrics->counter("runtime.pool.busy_us");
    met_queue_depth_ = &obs_.metrics->gauge("runtime.pool.queue_depth");
    obs_.metrics->gauge("runtime.pool.workers")
        .set(static_cast<double>(threads_.size()));
  } else {
    met_dispatches_ = nullptr;
    met_busy_us_ = nullptr;
    met_queue_depth_ = nullptr;
  }
}

void ThreadPool::run_on_all(const std::function<void(std::size_t)>& task) {
  // RAII span covers the whole dispatch (records at scope exit); the
  // metrics timing below keeps its own clock reads since a registry can
  // be attached without a trace sink.
  obs::ScopedSpan span(obs_.trace, clock_, "dispatch", "runtime", 0);
  span.arg("workers", static_cast<double>(threads_.size()));
  const bool metered = met_dispatches_ != nullptr;
  const double start_us = metered ? clock_.now_us() : 0.0;
  std::unique_lock lock(mutex_);
  MCM_EXPECTS(remaining_ == 0);  // not reentrant
  task_ = &task;
  remaining_ = threads_.size();
  ++generation_;
  if (met_queue_depth_ != nullptr) {
    met_queue_depth_->set(static_cast<double>(remaining_));
  }
  start_cv_.notify_all();
  done_cv_.wait(lock, [&] { return remaining_ == 0; });
  task_ = nullptr;
  if (metered) {
    met_dispatches_->add();
    met_busy_us_->add(
        static_cast<std::uint64_t>(clock_.now_us() - start_us));
    met_queue_depth_->set(0.0);
  }
  if (first_error_ != nullptr) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    std::rethrow_exception(error);
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  MCM_EXPECTS(begin <= end);
  if (begin == end) return;
  const std::size_t total = end - begin;
  const std::size_t workers = threads_.size();
  const std::size_t chunk = (total + workers - 1) / workers;
  run_on_all([&](std::size_t worker) {
    const std::size_t lo = begin + worker * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

}  // namespace mcm::runtime
