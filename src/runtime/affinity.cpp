#include "runtime/affinity.hpp"

#include <pthread.h>
#include <sched.h>

#include <thread>

namespace mcm::runtime {

std::size_t hardware_concurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

bool bind_current_thread_to_cpu(std::size_t cpu) {
  cpu_set_t set;
  CPU_ZERO(&set);
  if (cpu >= CPU_SETSIZE) return false;
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof set, &set) == 0;
}

std::optional<std::size_t> current_cpu() {
  const int cpu = sched_getcpu();
  if (cpu < 0) return std::nullopt;
  return static_cast<std::size_t>(cpu);
}

}  // namespace mcm::runtime
