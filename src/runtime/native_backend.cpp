#include "runtime/native_backend.hpp"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "runtime/affinity.hpp"
#include "runtime/kernels.hpp"
#include "util/contracts.hpp"

namespace mcm::runtime {

namespace {

[[nodiscard]] double seconds_since(
    std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

struct NativeBackend::Buffers {
  /// One working set per potential compute worker.
  std::vector<std::vector<std::byte>> compute;
  std::vector<std::byte> send;
  std::vector<std::byte> recv;
};

NativeBackend::NativeBackend(NativeConfig config) : config_(config) {
  if (config_.compute_cores == 0) {
    const std::size_t hw = hardware_concurrency();
    config_.compute_cores = hw > 1 ? hw - 1 : 1;
  }
  MCM_EXPECTS(config_.numa_count >= 1);
  MCM_EXPECTS(config_.numa_per_socket >= 1);
  MCM_EXPECTS(config_.numa_per_socket <= config_.numa_count);
  MCM_EXPECTS(config_.working_set_bytes > 0);
  MCM_EXPECTS(config_.message_bytes > 0);
  MCM_EXPECTS(config_.comm_rounds >= 1);
  MCM_EXPECTS(config_.fill_repetitions >= 1);

  pool_ = std::make_unique<ThreadPool>(config_.compute_cores,
                                       config_.pin_threads);
  buffers_ = std::make_unique<Buffers>();
  buffers_->compute.resize(config_.compute_cores);
  for (auto& buffer : buffers_->compute) {
    buffer.resize(config_.working_set_bytes);
  }
  buffers_->send.resize(config_.message_bytes);
  buffers_->recv.resize(config_.message_bytes);
}

NativeBackend::~NativeBackend() = default;

std::size_t NativeBackend::max_computing_cores() const {
  return config_.compute_cores;
}

std::size_t NativeBackend::numa_count() const { return config_.numa_count; }

std::size_t NativeBackend::numa_per_socket() const {
  return config_.numa_per_socket;
}

std::string NativeBackend::name() const { return "native"; }

Bandwidth NativeBackend::compute_alone(std::size_t cores,
                                       topo::NumaId comp) {
  MCM_EXPECTS(cores >= 1 && cores <= config_.compute_cores);
  MCM_EXPECTS(comp.value() < config_.numa_count);
  const auto start = std::chrono::steady_clock::now();
  pool_->run_on_all([&](std::size_t worker) {
    if (worker >= cores) return;
    for (int r = 0; r < config_.fill_repetitions; ++r) {
      nt_fill(buffers_->compute[worker], std::byte{0x5a});
    }
  });
  const double elapsed = std::max(seconds_since(start), 1e-9);
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(cores) * config_.working_set_bytes *
      static_cast<std::uint64_t>(config_.fill_repetitions);
  return achieved_bandwidth(bytes, Seconds(elapsed));
}

Bandwidth NativeBackend::run_comm(int rounds) {
  net::ShmWorld world;
  std::thread sender([&] {
    for (int i = 0; i < rounds; ++i) {
      world.comm(0).send(1, i, buffers_->send);
    }
  });
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < rounds; ++i) {
    (void)world.comm(1).recv(0, i, buffers_->recv);
  }
  const double elapsed = std::max(seconds_since(start), 1e-9);
  sender.join();
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(rounds) * config_.message_bytes;
  return achieved_bandwidth(bytes, Seconds(elapsed));
}

Bandwidth NativeBackend::comm_alone(topo::NumaId comm) {
  MCM_EXPECTS(comm.value() < config_.numa_count);
  return run_comm(config_.comm_rounds);
}

sim::ParallelMeasurement NativeBackend::parallel(std::size_t cores,
                                                 topo::NumaId comp,
                                                 topo::NumaId comm) {
  MCM_EXPECTS(cores >= 1 && cores <= config_.compute_cores);
  MCM_EXPECTS(comp.value() < config_.numa_count);
  MCM_EXPECTS(comm.value() < config_.numa_count);

  std::atomic<bool> stop{false};
  Bandwidth comm_bw;
  std::thread comm_thread([&] {
    comm_bw = run_comm(config_.comm_rounds);
    stop.store(true, std::memory_order_relaxed);
  });

  std::vector<std::uint64_t> filled(config_.compute_cores, 0);
  const auto start = std::chrono::steady_clock::now();
  pool_->run_on_all([&](std::size_t worker) {
    if (worker >= cores) return;
    // Keep streaming until the communication phase completes, then finish
    // the current fill — mirroring the benchmark's overlap of both phases.
    do {
      nt_fill(buffers_->compute[worker], std::byte{0xa5});
      filled[worker] += config_.working_set_bytes;
    } while (!stop.load(std::memory_order_relaxed));
  });
  const double elapsed = std::max(seconds_since(start), 1e-9);
  comm_thread.join();

  std::uint64_t bytes = 0;
  for (std::uint64_t b : filled) bytes += b;
  sim::ParallelMeasurement result;
  result.compute = achieved_bandwidth(bytes, Seconds(elapsed));
  result.comm = comm_bw;
  return result;
}

}  // namespace mcm::runtime
