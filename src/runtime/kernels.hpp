// Memory kernels of the benchmark: non-temporal fill (the paper's memset)
// and copy. Non-temporal stores bypass the cache hierarchy so that every
// store is an actual memory-system transfer — the property §II-C relies on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "util/units.hpp"

namespace mcm::runtime {

/// Fill `buffer` with `value` using non-temporal stores where the ISA
/// provides them (SSE2 streaming stores on x86-64), falling back to a
/// plain fill elsewhere. Works for any size/alignment.
void nt_fill(std::span<std::byte> buffer, std::byte value);

/// Copy `source` into `destination` with non-temporal stores.
/// Precondition: same size.
void nt_copy(std::span<std::byte> destination,
             std::span<const std::byte> source);

/// True when the build uses real streaming stores (x86-64 SSE2).
[[nodiscard]] bool has_streaming_stores();

/// Fill `buffer` `repetitions` times and return the achieved memory
/// bandwidth (bytes written / elapsed wall time).
[[nodiscard]] Bandwidth timed_fill(std::span<std::byte> buffer,
                                   std::byte value, int repetitions);

}  // namespace mcm::runtime
