// NativeBackend: the measurement backend for real machines.
//
// Implements the same three benchmark phases as the simulator backend, but
// with real work: non-temporal fill kernels on a pinned thread pool for
// computations, and minimpi messages between two threads for
// communications (a loopback stand-in for the two-machine MPI setup).
//
// NUMA data binding requires libnuma-class facilities that are deliberately
// out of scope here: buffers are first-touch allocated, and the NUMA
// placement argument selects *which* logical node a measurement is
// attributed to. On a single-NUMA container every placement maps to node 0
// and the backend measures one regime; on a real multi-socket machine,
// extend `NativeConfig::numa_count` and add binding in `allocate_buffer`.
#pragma once

#include <cstdint>
#include <memory>

#include "benchlib/backend.hpp"
#include "net/minimpi.hpp"
#include "runtime/thread_pool.hpp"

namespace mcm::runtime {

struct NativeConfig {
  /// Computing cores used by the sweep (0 = hardware_concurrency - 1).
  std::size_t compute_cores = 0;
  /// Logical NUMA nodes exposed to the sweep.
  std::size_t numa_count = 1;
  std::size_t numa_per_socket = 1;
  /// Per-core working set (weak scaling, as in the paper).
  std::uint64_t working_set_bytes = 16 * kMiB;
  /// Network message size.
  std::uint64_t message_bytes = 16 * kMiB;
  /// Messages received per communication measurement.
  int comm_rounds = 4;
  /// Fill repetitions per compute measurement.
  int fill_repetitions = 2;
  bool pin_threads = false;
};

class NativeBackend final : public bench::Backend {
 public:
  explicit NativeBackend(NativeConfig config = {});
  ~NativeBackend() override;

  [[nodiscard]] std::size_t max_computing_cores() const override;
  [[nodiscard]] std::size_t numa_count() const override;
  [[nodiscard]] std::size_t numa_per_socket() const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] Bandwidth compute_alone(std::size_t cores,
                                        topo::NumaId comp) override;
  [[nodiscard]] Bandwidth comm_alone(topo::NumaId comm) override;
  [[nodiscard]] sim::ParallelMeasurement parallel(
      std::size_t cores, topo::NumaId comp, topo::NumaId comm) override;

 private:
  struct Buffers;

  /// Run `rounds` message receptions, returning receiver bandwidth.
  [[nodiscard]] Bandwidth run_comm(int rounds);

  NativeConfig config_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<Buffers> buffers_;
};

}  // namespace mcm::runtime
