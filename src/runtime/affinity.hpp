// Thread-to-core binding (the hwloc-bind role in the paper's benchmark).
//
// Binding failures are reported, not fatal: inside containers or on
// exotic schedulers the benchmark still runs, just without pinning.
#pragma once

#include <cstddef>
#include <optional>

namespace mcm::runtime {

/// Number of logical CPUs visible to this process.
[[nodiscard]] std::size_t hardware_concurrency();

/// Pin the calling thread to one logical CPU. Returns false if the
/// platform refused (insufficient rights, CPU offline, ...).
bool bind_current_thread_to_cpu(std::size_t cpu);

/// CPU the calling thread last ran on, if the platform can tell.
[[nodiscard]] std::optional<std::size_t> current_cpu();

}  // namespace mcm::runtime
