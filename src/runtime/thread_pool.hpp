// A small persistent worker pool with OpenMP-parallel-for semantics — the
// role `#pragma omp parallel` plays in the paper's benchmark. Workers can
// be pinned to CPUs, matching the benchmark's "threads bound to physical
// cores" setup.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/observer.hpp"

namespace mcm::runtime {

class ThreadPool {
 public:
  /// Spawn `workers` threads. When `pin_to_cpus` is true, worker i is bound
  /// to CPU i % hardware_concurrency().
  explicit ThreadPool(std::size_t workers, bool pin_to_cpus = false);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return threads_.size(); }

  /// Run `task(worker_index)` once on every worker, in parallel; blocks
  /// until all workers finished. Not reentrant. A task that throws does
  /// not kill the process: every worker still finishes its call, the pool
  /// stays usable, and the first exception (by completion order) is
  /// rethrown here on the dispatching thread.
  void run_on_all(const std::function<void(std::size_t)>& task);

  /// Parallel loop over [begin, end) with static contiguous partitioning:
  /// `body(i)` is invoked exactly once per index. Blocks until done.
  /// Exceptions propagate as in run_on_all; note a worker whose body
  /// throws abandons the rest of its own chunk.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Attach dispatch observability. Gauge runtime.pool.workers (set once)
  /// and runtime.pool.queue_depth (workers still running the current
  /// dispatch, sampled at dispatch/completion); counters
  /// runtime.pool.dispatches and runtime.pool.busy_us (summed wall time of
  /// dispatches, i.e. task latency); trace "dispatch" spans on track 0.
  /// Call from the dispatching thread only, between dispatches.
  void attach_observer(const obs::Observer& observer);

 private:
  void worker_loop(std::size_t index, bool pin);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t generation_ = 0;
  std::size_t remaining_ = 0;
  bool shutting_down_ = false;
  /// First exception thrown by a task in the current dispatch; rethrown
  /// by run_on_all once every worker has finished.
  std::exception_ptr first_error_;

  obs::Observer obs_;
  obs::WallClock clock_;
  obs::Counter* met_dispatches_ = nullptr;
  obs::Counter* met_busy_us_ = nullptr;
  obs::Gauge* met_queue_depth_ = nullptr;
};

}  // namespace mcm::runtime
