#include "runtime/kernels.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "util/contracts.hpp"

namespace mcm::runtime {

namespace {

#if defined(__SSE2__)

void stream_fill(std::byte* data, std::size_t size, std::byte value) {
  std::byte* p = data;
  std::byte* const end = data + size;
  // Head: align to 16 bytes.
  while (p < end && (reinterpret_cast<std::uintptr_t>(p) & 0xf) != 0) {
    *p++ = value;
  }
  const __m128i pattern = _mm_set1_epi8(static_cast<char>(value));
  for (; p + 16 <= end; p += 16) {
    _mm_stream_si128(reinterpret_cast<__m128i*>(p), pattern);
  }
  _mm_sfence();
  while (p < end) *p++ = value;
}

void stream_copy(std::byte* dst, const std::byte* src, std::size_t size) {
  std::size_t i = 0;
  // Streaming stores require 16-byte destination alignment; fall back for
  // the unaligned head/tail.
  while (i < size && ((reinterpret_cast<std::uintptr_t>(dst + i)) & 0xf)) {
    dst[i] = src[i];
    ++i;
  }
  for (; i + 16 <= size; i += 16) {
    __m128i chunk;
    std::memcpy(&chunk, src + i, 16);  // source may be unaligned
    _mm_stream_si128(reinterpret_cast<__m128i*>(dst + i), chunk);
  }
  _mm_sfence();
  for (; i < size; ++i) dst[i] = src[i];
}

#endif  // __SSE2__

}  // namespace

void nt_fill(std::span<std::byte> buffer, std::byte value) {
  if (buffer.empty()) return;
#if defined(__SSE2__)
  stream_fill(buffer.data(), buffer.size(), value);
#else
  std::fill(buffer.begin(), buffer.end(), value);
#endif
}

void nt_copy(std::span<std::byte> destination,
             std::span<const std::byte> source) {
  MCM_EXPECTS(destination.size() == source.size());
  if (destination.empty()) return;
#if defined(__SSE2__)
  stream_copy(destination.data(), source.data(), source.size());
#else
  std::memcpy(destination.data(), source.data(), source.size());
#endif
}

bool has_streaming_stores() {
#if defined(__SSE2__)
  return true;
#else
  return false;
#endif
}

Bandwidth timed_fill(std::span<std::byte> buffer, std::byte value,
                     int repetitions) {
  MCM_EXPECTS(!buffer.empty());
  MCM_EXPECTS(repetitions >= 1);
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < repetitions; ++r) nt_fill(buffer, value);
  const auto stop = std::chrono::steady_clock::now();
  const double elapsed =
      std::chrono::duration<double>(stop - start).count();
  const auto bytes = static_cast<std::uint64_t>(buffer.size()) *
                     static_cast<std::uint64_t>(repetitions);
  return achieved_bandwidth(bytes, Seconds(std::max(elapsed, 1e-9)));
}

}  // namespace mcm::runtime
