#include "topo/builder.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace mcm::topo {

TopologyBuilder& TopologyBuilder::add_sockets(std::size_t count,
                                              std::size_t cores_per_socket) {
  MCM_EXPECTS(socket_count_ == 0);
  MCM_EXPECTS(count > 0 && cores_per_socket > 0);
  socket_count_ = count;
  cores_per_socket_ = cores_per_socket;
  return *this;
}

TopologyBuilder& TopologyBuilder::add_numa_per_socket(
    std::size_t count, Bandwidth controller_capacity,
    const ContentionSpec& contention) {
  MCM_EXPECTS(socket_count_ > 0);
  MCM_EXPECTS(numa_per_socket_ == 0);
  MCM_EXPECTS(count > 0);
  MCM_EXPECTS(controller_capacity.bps() > 0.0);
  numa_per_socket_ = count;
  controller_capacity_ = controller_capacity;
  controller_contention_ = contention;
  return *this;
}

TopologyBuilder& TopologyBuilder::set_remote_port_capacity(
    Bandwidth capacity, const ContentionSpec& contention) {
  MCM_EXPECTS(capacity.bps() > 0.0);
  remote_port_capacity_ = capacity;
  remote_port_contention_ = contention;
  has_remote_port_ = true;
  return *this;
}

TopologyBuilder& TopologyBuilder::set_inter_socket_capacity(
    Bandwidth capacity, const ContentionSpec& contention) {
  MCM_EXPECTS(capacity.bps() > 0.0);
  inter_socket_capacity_ = capacity;
  inter_socket_contention_ = contention;
  has_inter_socket_ = true;
  return *this;
}

TopologyBuilder& TopologyBuilder::set_inter_socket_capacity_between(
    SocketId a, SocketId b, Bandwidth capacity,
    const ContentionSpec& contention) {
  MCM_EXPECTS(has_inter_socket_);
  MCM_EXPECTS(a != b);
  MCM_EXPECTS(a.value() < socket_count_ && b.value() < socket_count_);
  MCM_EXPECTS(capacity.bps() > 0.0);
  inter_socket_overrides_.push_back(PairOverride{a, b, capacity, contention});
  return *this;
}

TopologyBuilder& TopologyBuilder::set_remote_port_capacity_of(
    NumaId numa, Bandwidth capacity, const ContentionSpec& contention) {
  MCM_EXPECTS(has_remote_port_);
  MCM_EXPECTS(numa.value() < socket_count_ * numa_per_socket_);
  MCM_EXPECTS(capacity.bps() > 0.0);
  remote_port_overrides_.push_back(PortOverride{numa, capacity, contention});
  return *this;
}

TopologyBuilder& TopologyBuilder::add_nic(std::string name, SocketId socket,
                                          Bandwidth wire_bandwidth,
                                          Bandwidth pcie_capacity) {
  MCM_EXPECTS(socket_count_ > 0);
  MCM_EXPECTS(socket.value() < socket_count_);
  MCM_EXPECTS(wire_bandwidth.bps() > 0.0 && pcie_capacity.bps() > 0.0);
  NicDecl decl;
  decl.name = std::move(name);
  decl.socket = socket;
  decl.wire_bandwidth = wire_bandwidth;
  decl.pcie_capacity = pcie_capacity;
  nics_.push_back(std::move(decl));
  return *this;
}

TopologyBuilder& TopologyBuilder::set_nic_host_coupling(NicId nic,
                                                        double cpu_knee,
                                                        Bandwidth degradation,
                                                        Bandwidth floor) {
  MCM_EXPECTS(nic.value() < nics_.size());
  MCM_EXPECTS(cpu_knee >= 0.0);
  MCM_EXPECTS(degradation.bps() >= 0.0);
  MCM_EXPECTS(floor.bps() >= 0.0);
  nics_[nic.value()].coupling_knee = cpu_knee;
  nics_[nic.value()].coupling_degradation = degradation;
  nics_[nic.value()].coupling_floor = floor;
  return *this;
}

TopologyBuilder& TopologyBuilder::set_nic_dma_efficiency(NicId nic,
                                                         NumaId numa,
                                                         double factor) {
  MCM_EXPECTS(nic.value() < nics_.size());
  MCM_EXPECTS(factor > 0.0 && factor <= 1.0);
  nics_[nic.value()].efficiency_overrides.emplace_back(numa, factor);
  return *this;
}

Machine TopologyBuilder::build() const {
  MCM_EXPECTS(socket_count_ > 0);
  MCM_EXPECTS(numa_per_socket_ > 0);
  MCM_EXPECTS(socket_count_ == 1 || (has_inter_socket_ && has_remote_port_));

  Machine m;

  // Sockets and cores. Core ids are dense: socket 0's cores first.
  for (std::size_t s = 0; s < socket_count_; ++s) {
    Socket sock;
    sock.id = SocketId(static_cast<std::uint32_t>(s));
    for (std::size_t c = 0; c < cores_per_socket_; ++c) {
      const CoreId id(
          static_cast<std::uint32_t>(s * cores_per_socket_ + c));
      m.cores_.push_back(Core{id, sock.id});
      sock.cores.push_back(id);
    }
    m.sockets_.push_back(std::move(sock));
  }

  // NUMA nodes and their memory-controller links. NUMA ids are dense per
  // socket: nodes 0..#m-1 on socket 0, then socket 1, etc. — matching the
  // paper's numbering where "the first NUMA node of the second socket" is
  // node #m.
  // When the machine has a single socket the remote port is never on any
  // path; synthesize a wide no-op spec so that the topology stays uniform.
  const Bandwidth port_capacity = has_remote_port_
                                      ? remote_port_capacity_
                                      : controller_capacity_;
  const ContentionSpec port_contention =
      has_remote_port_ ? remote_port_contention_ : ContentionSpec{};
  for (std::size_t s = 0; s < socket_count_; ++s) {
    for (std::size_t n = 0; n < numa_per_socket_; ++n) {
      const NumaId numa_id(
          static_cast<std::uint32_t>(s * numa_per_socket_ + n));
      const LinkId link_id(static_cast<std::uint32_t>(m.links_.size()));
      m.links_.push_back(Link{link_id,
                              "mc" + std::to_string(numa_id.value()),
                              LinkKind::kMemoryController,
                              controller_capacity_, controller_contention_});
      const LinkId port_id(static_cast<std::uint32_t>(m.links_.size()));
      m.links_.push_back(Link{port_id,
                              "rport" + std::to_string(numa_id.value()),
                              LinkKind::kRemotePort, port_capacity,
                              port_contention});
      m.numa_nodes_.push_back(
          NumaNode{numa_id, SocketId(static_cast<std::uint32_t>(s)),
                   link_id, port_id});
      m.sockets_[s].numa_nodes.push_back(numa_id);
    }
  }

  // Remote-port overrides (far sockets served by slower queues).
  for (const PortOverride& override_spec : remote_port_overrides_) {
    const LinkId port_id =
        m.numa_nodes_[override_spec.numa.value()].remote_port;
    m.links_[port_id.value()].capacity = override_spec.capacity;
    m.links_[port_id.value()].contention = override_spec.contention;
  }

  // Inter-socket links: one per unordered socket pair.
  m.inter_socket_.assign(socket_count_,
                         std::vector<LinkId>(socket_count_));
  for (std::size_t a = 0; a < socket_count_; ++a) {
    for (std::size_t b = a + 1; b < socket_count_; ++b) {
      const LinkId link_id(static_cast<std::uint32_t>(m.links_.size()));
      Bandwidth capacity = inter_socket_capacity_;
      ContentionSpec contention = inter_socket_contention_;
      for (const PairOverride& override_spec : inter_socket_overrides_) {
        const auto lo = std::min(override_spec.a, override_spec.b).value();
        const auto hi = std::max(override_spec.a, override_spec.b).value();
        if (lo == a && hi == b) {
          capacity = override_spec.capacity;
          contention = override_spec.contention;
        }
      }
      m.links_.push_back(Link{
          link_id, "smp" + std::to_string(a) + "-" + std::to_string(b),
          LinkKind::kInterSocket, capacity, contention});
      m.inter_socket_[a][b] = link_id;
      m.inter_socket_[b][a] = link_id;
    }
  }

  // NICs.
  for (std::size_t i = 0; i < nics_.size(); ++i) {
    const NicDecl& decl = nics_[i];
    const LinkId pcie_id(static_cast<std::uint32_t>(m.links_.size()));
    // PCIe links are point-to-point (no path-based degradation) but may be
    // coupled to the host socket's compute activity.
    ContentionSpec pcie_spec;
    pcie_spec.ambient_cpu_knee = decl.coupling_knee;
    pcie_spec.ambient_cpu_degradation = decl.coupling_degradation;
    pcie_spec.dma_floor = decl.coupling_floor;
    Link pcie_link{pcie_id, "pcie-" + decl.name, LinkKind::kPcie,
                   decl.pcie_capacity, pcie_spec, SocketId::invalid()};
    if (decl.coupling_degradation.bps() > 0.0) {
      pcie_link.ambient_socket = decl.socket;
    }
    m.links_.push_back(std::move(pcie_link));
    Nic nic;
    nic.id = NicId(static_cast<std::uint32_t>(i));
    nic.name = decl.name;
    nic.socket = decl.socket;
    nic.near_numa = NumaId(static_cast<std::uint32_t>(
        decl.socket.value() * numa_per_socket_));
    nic.pcie = pcie_id;
    nic.wire_bandwidth = decl.wire_bandwidth;
    nic.dma_efficiency.assign(m.numa_nodes_.size(), 1.0);
    for (const auto& [numa, factor] : decl.efficiency_overrides) {
      MCM_EXPECTS(numa.value() < nic.dma_efficiency.size());
      nic.dma_efficiency[numa.value()] = factor;
    }
    m.nics_.push_back(std::move(nic));
  }

  m.validate();
  return m;
}

}  // namespace mcm::topo
