// Human-readable rendering of a platform description (lstopo-style tree),
// used by the mcmtool CLI's `describe` command.
#pragma once

#include <string>

#include "topo/platforms.hpp"

namespace mcm::topo {

/// Multi-line ASCII tree of the machine plus the behavioural profiles.
[[nodiscard]] std::string render_platform(const PlatformSpec& spec);

}  // namespace mcm::topo
