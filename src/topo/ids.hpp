// Strongly typed identifiers for topology objects. Using distinct types for
// socket/core/NUMA/link/NIC indices prevents the classic bug of passing a
// core index where a NUMA index is expected — which in this code base would
// silently pick the wrong contention path.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>

namespace mcm::topo {

/// Generic strongly typed index. `Tag` only differentiates the type.
template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::uint32_t value) : value_(value) {}

  [[nodiscard]] static constexpr Id invalid() {
    return Id(std::numeric_limits<std::uint32_t>::max());
  }

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr bool is_valid() const {
    return value_ != std::numeric_limits<std::uint32_t>::max();
  }

  friend constexpr auto operator<=>(Id, Id) = default;

 private:
  std::uint32_t value_ = std::numeric_limits<std::uint32_t>::max();
};

using SocketId = Id<struct SocketTag>;
using CoreId = Id<struct CoreTag>;
using NumaId = Id<struct NumaTag>;
using LinkId = Id<struct LinkTag>;
using NicId = Id<struct NicTag>;

}  // namespace mcm::topo

template <typename Tag>
struct std::hash<mcm::topo::Id<Tag>> {
  std::size_t operator()(mcm::topo::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
