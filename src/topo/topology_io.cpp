#include "topo/topology_io.hpp"

#include <map>
#include <sstream>

#include "topo/builder.hpp"
#include "util/strings.hpp"

namespace mcm::topo {

namespace {

void emit(std::ostringstream& out, const std::string& key,
          const std::string& value) {
  out << key << ' ' << value << '\n';
}

void emit_gb(std::ostringstream& out, const std::string& key, Bandwidth bw) {
  emit(out, key, format_fixed(bw.gb(), 6));
}

void emit_spec(std::ostringstream& out, const std::string& prefix,
               Bandwidth capacity, const ContentionSpec& spec) {
  emit_gb(out, prefix + ".capacity_gb", capacity);
  emit_gb(out, prefix + ".dma_floor_gb", spec.dma_floor);
  emit(out, prefix + ".knee", format_fixed(spec.requestor_knee, 6));
  emit_gb(out, prefix + ".degradation_gb", spec.degradation_per_requestor);
  emit(out, prefix + ".dma_weight",
       format_fixed(spec.dma_requestor_weight, 6));
  emit(out, prefix + ".dma_soft_start", format_fixed(spec.dma_soft_start, 6));
  emit(out, prefix + ".dma_soft_min", format_fixed(spec.dma_soft_min, 6));
}

/// Key-value view over the parsed file. Values keep embedded spaces; the
/// source line of every key is kept so parse errors can point at it.
class KeyValues {
 public:
  static std::optional<KeyValues> parse(const std::string& text,
                                        std::string* error) {
    KeyValues kv;
    std::istringstream in(text);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      const std::string stripped = trim(line);
      if (stripped.empty() || stripped[0] == '#') continue;
      const auto space = stripped.find(' ');
      if (space == std::string::npos) {
        if (error) {
          *error = "line " + std::to_string(line_no) +
                   ": expected 'key value', got '" + stripped + "'";
        }
        return std::nullopt;
      }
      kv.values_[stripped.substr(0, space)] =
          Entry{trim(stripped.substr(space + 1)), line_no};
    }
    return kv;
  }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second.value;
  }

  /// Source line of `key`, or 0 when absent.
  [[nodiscard]] int line_of(const std::string& key) const {
    const auto it = values_.find(key);
    return it == values_.end() ? 0 : it->second.line;
  }

 private:
  struct Entry {
    std::string value;
    int line = 0;
  };
  std::map<std::string, Entry> values_;
};

/// Helper carrying the error slot so the extraction code stays linear.
class Extractor {
 public:
  Extractor(const KeyValues& kv, std::string* error)
      : kv_(kv), error_(error) {}

  [[nodiscard]] bool ok() const { return ok_; }

  std::string str(const std::string& key, const std::string& fallback = "") {
    const auto v = kv_.get(key);
    return v ? *v : fallback;
  }

  std::string required_str(const std::string& key) {
    const auto v = kv_.get(key);
    if (!v) fail("missing key '" + key + "'");
    return v ? *v : "";
  }

  double number(const std::string& key, double fallback) {
    const auto v = kv_.get(key);
    if (!v) return fallback;
    return to_number(key, *v);
  }

  double required_number(const std::string& key) {
    const auto v = kv_.get(key);
    if (!v) {
      fail("missing key '" + key + "'");
      return 0.0;
    }
    return to_number(key, *v);
  }

  ContentionSpec contention(const std::string& prefix) {
    ContentionSpec spec;
    spec.dma_floor = Bandwidth::gb_per_s(number(prefix + ".dma_floor_gb", 0));
    spec.requestor_knee = number(prefix + ".knee", 1e9);
    spec.degradation_per_requestor =
        Bandwidth::gb_per_s(number(prefix + ".degradation_gb", 0));
    spec.dma_requestor_weight = number(prefix + ".dma_weight", 1.0);
    spec.dma_soft_start = number(prefix + ".dma_soft_start", 1.0);
    spec.dma_soft_min = number(prefix + ".dma_soft_min", 1.0);
    return spec;
  }

 private:
  double to_number(const std::string& key, const std::string& value) {
    // parse_double rejects partial consumption ("3.0x", "1,5") and ignores
    // the global locale, unlike std::stod.
    const std::optional<double> parsed = parse_double(value);
    if (!parsed) {
      fail("line " + std::to_string(kv_.line_of(key)) + ": key '" + key +
           "': not a number: '" + value + "'");
      return 0.0;
    }
    return *parsed;
  }

  void fail(const std::string& message) {
    if (ok_ && error_) *error_ = message;
    ok_ = false;
  }

  const KeyValues& kv_;
  std::string* error_;
  bool ok_ = true;
};

}  // namespace

std::string serialize_platform(const PlatformSpec& spec) {
  const Machine& m = spec.machine;
  std::ostringstream out;
  emit(out, "platform", spec.name);
  emit(out, "processor", spec.processor);
  emit(out, "memory", spec.memory);
  emit(out, "network", spec.network);
  emit(out, "seed", std::to_string(spec.seed));
  emit(out, "sockets", std::to_string(m.socket_count()));
  emit(out, "cores_per_socket", std::to_string(m.cores_per_socket()));
  emit(out, "numa_per_socket", std::to_string(m.numa_per_socket()));

  const Link& mc = m.link(m.controller_of(NumaId(0)));
  emit_spec(out, "controller", mc.capacity, mc.contention);
  const Link& port = m.link(m.remote_port_of(NumaId(0)));
  emit_spec(out, "remote_port", port.capacity, port.contention);
  if (m.socket_count() > 1) {
    const Link& bus = m.link(m.inter_socket_link(SocketId(0), SocketId(1)));
    emit_spec(out, "inter_socket", bus.capacity, bus.contention);
  }

  if (!m.nics().empty()) {
    const Nic& nic = m.nics().front();
    emit(out, "nic.name", nic.name);
    emit(out, "nic.socket", std::to_string(nic.socket.value()));
    emit_gb(out, "nic.wire_gb", nic.wire_bandwidth);
    emit_gb(out, "nic.pcie_gb", m.link(nic.pcie).capacity);
    const ContentionSpec& pcie = m.link(nic.pcie).contention;
    if (pcie.ambient_cpu_degradation.bps() > 0.0) {
      emit(out, "nic.coupling_knee", format_fixed(pcie.ambient_cpu_knee, 6));
      emit_gb(out, "nic.coupling_degradation_gb",
              pcie.ambient_cpu_degradation);
      emit_gb(out, "nic.coupling_floor_gb", pcie.dma_floor);
    }
    std::string efficiencies;
    for (std::size_t i = 0; i < nic.dma_efficiency.size(); ++i) {
      if (i > 0) efficiencies += ' ';
      efficiencies += format_fixed(nic.dma_efficiency[i], 6);
    }
    emit(out, "nic.efficiency", efficiencies);
  }

  emit_gb(out, "compute.local_gb", spec.compute.per_core_local);
  emit_gb(out, "compute.remote_gb", spec.compute.per_core_remote);
  emit(out, "compute.curvature",
       format_fixed(spec.compute.scaling_curvature, 6));
  emit(out, "compute.llc_mib",
       std::to_string(spec.compute.llc_bytes / kMiB));
  emit(out, "noise.compute_sigma",
       format_fixed(spec.noise.compute_sigma, 6));
  emit(out, "noise.comm_sigma", format_fixed(spec.noise.comm_sigma, 6));
  emit(out, "noise.cross_penalty",
       format_fixed(spec.noise.cross_numa_dma_penalty, 6));
  return out.str();
}

std::optional<PlatformSpec> parse_platform(const std::string& text,
                                           std::string* error) {
  const auto kv = KeyValues::parse(text, error);
  if (!kv) return std::nullopt;
  Extractor x(*kv, error);

  PlatformSpec spec;
  spec.name = x.required_str("platform");
  spec.processor = x.str("processor");
  spec.memory = x.str("memory");
  spec.network = x.str("network");
  // The seed must round-trip exactly; going through double would lose the
  // low bits of large 64-bit seeds.
  if (const auto seed_text = kv->get("seed")) {
    const std::optional<std::uint64_t> seed = parse_u64(*seed_text);
    if (!seed) {
      if (error) {
        *error = "line " + std::to_string(kv->line_of("seed")) +
                 ": key 'seed': not an integer: '" + *seed_text + "'";
      }
      return std::nullopt;
    }
    spec.seed = *seed;
  }

  const auto sockets = static_cast<std::size_t>(x.required_number("sockets"));
  const auto cores =
      static_cast<std::size_t>(x.required_number("cores_per_socket"));
  const auto numa =
      static_cast<std::size_t>(x.required_number("numa_per_socket"));
  const double mc_cap = x.required_number("controller.capacity_gb");
  if (!x.ok()) return std::nullopt;

  TopologyBuilder b;
  b.add_sockets(sockets, cores);
  b.add_numa_per_socket(numa, Bandwidth::gb_per_s(mc_cap),
                        x.contention("controller"));
  if (sockets > 1) {
    b.set_remote_port_capacity(
        Bandwidth::gb_per_s(x.required_number("remote_port.capacity_gb")),
        x.contention("remote_port"));
    b.set_inter_socket_capacity(
        Bandwidth::gb_per_s(x.required_number("inter_socket.capacity_gb")),
        x.contention("inter_socket"));
  }

  const std::string nic_name = x.str("nic.name");
  std::vector<double> efficiencies;
  if (!nic_name.empty()) {
    const auto nic_socket =
        static_cast<std::uint32_t>(x.required_number("nic.socket"));
    b.add_nic(nic_name, SocketId(nic_socket),
              Bandwidth::gb_per_s(x.required_number("nic.wire_gb")),
              Bandwidth::gb_per_s(x.required_number("nic.pcie_gb")));
    const std::vector<std::string> fields =
        split(x.str("nic.efficiency"), ' ');
    for (std::size_t column = 0; column < fields.size(); ++column) {
      const std::string field = trim(fields[column]);
      if (field.empty()) continue;
      const std::optional<double> parsed = parse_double(field);
      if (!parsed) {
        if (error) {
          *error = "line " + std::to_string(kv->line_of("nic.efficiency")) +
                   ": nic.efficiency: field " + std::to_string(column + 1) +
                   ": not a number: '" + field + "'";
        }
        return std::nullopt;
      }
      efficiencies.push_back(*parsed);
    }
    if (efficiencies.size() != sockets * numa) {
      if (x.ok() && error) {
        *error = "nic.efficiency: expected " +
                 std::to_string(sockets * numa) + " values, got " +
                 std::to_string(efficiencies.size());
      }
      return std::nullopt;
    }
    for (std::size_t i = 0; i < efficiencies.size(); ++i) {
      b.set_nic_dma_efficiency(NicId(0),
                               NumaId(static_cast<std::uint32_t>(i)),
                               efficiencies[i]);
    }
    const double coupling_deg = x.number("nic.coupling_degradation_gb", 0.0);
    if (coupling_deg > 0.0) {
      b.set_nic_host_coupling(
          NicId(0), x.number("nic.coupling_knee", 1e9),
          Bandwidth::gb_per_s(coupling_deg),
          Bandwidth::gb_per_s(x.number("nic.coupling_floor_gb", 0.0)));
    }
  }
  if (!x.ok()) return std::nullopt;

  spec.compute.per_core_local =
      Bandwidth::gb_per_s(x.required_number("compute.local_gb"));
  spec.compute.per_core_remote =
      Bandwidth::gb_per_s(x.required_number("compute.remote_gb"));
  spec.compute.scaling_curvature = x.number("compute.curvature", 0.0);
  spec.compute.llc_bytes = static_cast<std::uint64_t>(
                               x.number("compute.llc_mib", 0.0)) *
                           kMiB;
  spec.noise.compute_sigma = x.number("noise.compute_sigma", 0.0);
  spec.noise.comm_sigma = x.number("noise.comm_sigma", 0.0);
  spec.noise.cross_numa_dma_penalty = x.number("noise.cross_penalty", 0.0);
  if (!x.ok()) return std::nullopt;

  try {
    spec.machine = b.build();
  } catch (const ContractViolation& violation) {
    if (error) *error = violation.what();
    return std::nullopt;
  }
  return spec;
}

}  // namespace mcm::topo
