// The six testbed platforms of the paper's Table I, recreated as synthetic
// hardware profiles for the simulator.
//
// The structural facts (socket/core/NUMA counts, network technology, NIC
// placement) follow Table I and the per-platform discussion in §IV-B. The
// quantitative knobs (controller capacities, per-core stream bandwidth, DMA
// floors, degradation slopes, noise levels) are chosen so that each platform
// reproduces the qualitative behaviour the paper reports for it:
//
//  * henri         — clear contention, both streams impacted (Fig. 3)
//  * henri-subnuma — same machine split into 4 NUMA nodes; contention only
//                    on the placement diagonal (Fig. 4)
//  * dahu          — Intel + Omni-Path variant of the same story (Fig. 8)
//  * diablo        — AMD; NIC strongly NUMA-sensitive (22.4 vs 12.1 GB/s);
//                    almost no contention (Fig. 5)
//  * pyxis         — ARM; unstable network, cross-node coupling the model
//                    cannot see, imperfect compute scaling (Fig. 7)
//  * occigen       — older Intel; only computations are impacted, and only
//                    for remote accesses; most accurate platform (Fig. 6)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace mcm::topo {

/// Per-core memory traffic characteristics of the compute benchmark kernel
/// (non-temporal stores) on a given platform.
struct ComputeProfile {
  /// Stream demand of one core writing to a NUMA node of its own socket.
  Bandwidth per_core_local;
  /// Stream demand of one core writing across the inter-socket link.
  Bandwidth per_core_remote;
  /// Relative per-core demand loss per additional active core, modelling
  /// platforms whose cores do not scale linearly even before the memory
  /// system saturates (pyxis). 0 disables.
  double scaling_curvature = 0.0;
  /// Shared last-level cache size. Irrelevant for the paper's non-temporal
  /// kernels (which bypass it, §II-C); used by the cached-kernel extension.
  std::uint64_t llc_bytes = 0;
};

/// Measurement-variability and platform-quirk model.
struct NoiseProfile {
  /// Relative std-dev of compute bandwidth measurements.
  double compute_sigma = 0.0;
  /// Relative std-dev of network bandwidth measurements.
  double comm_sigma = 0.0;
  /// pyxis-style quirk: fraction of DMA bandwidth lost to ring interference
  /// when compute streams are active on a *different* NUMA node than the
  /// communication buffers. The paper's model has no term for this — it is
  /// precisely what drives pyxis' 13 % non-sample communication error.
  double cross_numa_dma_penalty = 0.0;
};

/// A complete platform: structure + quantitative behaviour + Table I
/// metadata strings.
struct PlatformSpec {
  std::string name;
  std::string processor;  ///< Table I "Processor" column
  std::string memory;     ///< Table I "Memory" column
  std::string network;    ///< Table I "Network" column
  Machine machine;
  ComputeProfile compute;
  NoiseProfile noise;
  std::uint64_t seed = 0;  ///< base seed for deterministic jitter
};

[[nodiscard]] PlatformSpec make_henri();
[[nodiscard]] PlatformSpec make_henri_subnuma();
[[nodiscard]] PlatformSpec make_dahu();
[[nodiscard]] PlatformSpec make_diablo();
[[nodiscard]] PlatformSpec make_pyxis();
[[nodiscard]] PlatformSpec make_occigen();
/// Hypothetical 4-socket ring machine demonstrating the paper's stated
/// model limitation on machines with many NUMA nodes (§IV-C-1). Not part
/// of Table I / platform_names().
[[nodiscard]] PlatformSpec make_tetra();

/// Names of the Table-I presets, in the paper's order (excludes tetra).
[[nodiscard]] std::vector<std::string> platform_names();

/// Lookup by name; throws ContractViolation for unknown names.
[[nodiscard]] PlatformSpec make_platform(const std::string& name);

}  // namespace mcm::topo
