// Fluent builder for Machine descriptions.
//
// Typical use (a dual-socket machine with one NUMA node per socket and one
// InfiniBand NIC behind socket 0):
//
//   TopologyBuilder b;
//   b.add_sockets(/*count=*/2, /*cores_per_socket=*/18);
//   b.add_numa_per_socket(/*count=*/1, /*controller_capacity=*/
//                         Bandwidth::gb_per_s(100), contention);
//   b.set_inter_socket_capacity(Bandwidth::gb_per_s(40), upi_contention);
//   b.add_nic("mlx5_0", SocketId(0), Bandwidth::gb_per_s(12), pcie_cap);
//   Machine m = b.build();
#pragma once

#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace mcm::topo {

class TopologyBuilder {
 public:
  /// Declare `count` identical sockets with `cores_per_socket` cores each.
  /// Must be called exactly once, before any other call.
  TopologyBuilder& add_sockets(std::size_t count,
                               std::size_t cores_per_socket);

  /// Give every socket `count` NUMA nodes whose memory controllers have the
  /// given capacity and contention behaviour. Must be called exactly once.
  TopologyBuilder& add_numa_per_socket(std::size_t count,
                                       Bandwidth controller_capacity,
                                       const ContentionSpec& contention);

  /// Set capacity/behaviour of every controller's remote-request port (the
  /// queue serving off-socket requestors). Required when there are at least
  /// two sockets.
  TopologyBuilder& set_remote_port_capacity(Bandwidth capacity,
                                            const ContentionSpec& contention);

  /// Set capacity/behaviour of every inter-socket link (one per socket
  /// pair). Required when there are at least two sockets.
  TopologyBuilder& set_inter_socket_capacity(
      Bandwidth capacity, const ContentionSpec& contention);

  /// Override one socket pair's link (e.g. a ring interconnect where
  /// non-adjacent sockets see less bandwidth). Call after the global
  /// set_inter_socket_capacity.
  TopologyBuilder& set_inter_socket_capacity_between(
      SocketId a, SocketId b, Bandwidth capacity,
      const ContentionSpec& contention);

  /// Override one NUMA node's remote-port characteristics (e.g. far
  /// sockets served by a slower queue). Call after add_numa_per_socket and
  /// set_remote_port_capacity.
  TopologyBuilder& set_remote_port_capacity_of(
      NumaId numa, Bandwidth capacity, const ContentionSpec& contention);

  /// Attach a NIC behind `socket`, nearest to that socket's first NUMA node,
  /// with the given wire bandwidth and a dedicated PCIe link of
  /// `pcie_capacity`. DMA efficiency defaults to 1.0 everywhere; adjust with
  /// `set_nic_dma_efficiency`.
  TopologyBuilder& add_nic(std::string name, SocketId socket,
                           Bandwidth wire_bandwidth, Bandwidth pcie_capacity);

  /// Override the NIC's nominal DMA efficiency for one NUMA node
  /// (0 < factor <= 1). Call after `add_nic`.
  TopologyBuilder& set_nic_dma_efficiency(NicId nic, NumaId numa,
                                          double factor);

  /// Couple the NIC's PCIe ingress to its host socket's compute activity:
  /// once more than `cpu_knee` cores stream on the NIC's socket, the PCIe
  /// link loses `degradation` of effective capacity per extra core (but
  /// never drops below `floor`). Models cores outranking IIO traffic on
  /// the socket fabric. Call after `add_nic`.
  TopologyBuilder& set_nic_host_coupling(NicId nic, double cpu_knee,
                                         Bandwidth degradation,
                                         Bandwidth floor);

  /// Finalize. The returned machine has been validated.
  [[nodiscard]] Machine build() const;

 private:
  struct NicDecl {
    std::string name;
    SocketId socket;
    Bandwidth wire_bandwidth;
    Bandwidth pcie_capacity;
    std::vector<std::pair<NumaId, double>> efficiency_overrides;
    double coupling_knee = 1e9;
    Bandwidth coupling_degradation;
    Bandwidth coupling_floor;
  };

  std::size_t socket_count_ = 0;
  std::size_t cores_per_socket_ = 0;
  std::size_t numa_per_socket_ = 0;
  Bandwidth controller_capacity_;
  ContentionSpec controller_contention_;
  Bandwidth remote_port_capacity_;
  ContentionSpec remote_port_contention_;
  bool has_remote_port_ = false;
  Bandwidth inter_socket_capacity_;
  ContentionSpec inter_socket_contention_;
  bool has_inter_socket_ = false;
  struct PairOverride {
    SocketId a;
    SocketId b;
    Bandwidth capacity;
    ContentionSpec contention;
  };
  std::vector<PairOverride> inter_socket_overrides_;
  struct PortOverride {
    NumaId numa;
    Bandwidth capacity;
    ContentionSpec contention;
  };
  std::vector<PortOverride> remote_port_overrides_;
  std::vector<NicDecl> nics_;
};

}  // namespace mcm::topo
