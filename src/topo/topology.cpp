#include "topo/topology.hpp"

#include <set>

#include "util/contracts.hpp"

namespace mcm::topo {

const char* to_string(LinkKind kind) {
  switch (kind) {
    case LinkKind::kMemoryController:
      return "memory-controller";
    case LinkKind::kRemotePort:
      return "remote-port";
    case LinkKind::kInterSocket:
      return "inter-socket";
    case LinkKind::kPcie:
      return "pcie";
  }
  return "unknown";
}

const Socket& Machine::socket(SocketId id) const {
  MCM_EXPECTS(id.is_valid() && id.value() < sockets_.size());
  return sockets_[id.value()];
}

const Core& Machine::core(CoreId id) const {
  MCM_EXPECTS(id.is_valid() && id.value() < cores_.size());
  return cores_[id.value()];
}

const NumaNode& Machine::numa(NumaId id) const {
  MCM_EXPECTS(id.is_valid() && id.value() < numa_nodes_.size());
  return numa_nodes_[id.value()];
}

const Link& Machine::link(LinkId id) const {
  MCM_EXPECTS(id.is_valid() && id.value() < links_.size());
  return links_[id.value()];
}

const Nic& Machine::nic(NicId id) const {
  MCM_EXPECTS(id.is_valid() && id.value() < nics_.size());
  return nics_[id.value()];
}

std::size_t Machine::cores_per_socket() const {
  MCM_EXPECTS(!sockets_.empty());
  return sockets_.front().cores.size();
}

std::size_t Machine::numa_per_socket() const {
  MCM_EXPECTS(!sockets_.empty());
  return sockets_.front().numa_nodes.size();
}

SocketId Machine::socket_of_core(CoreId id) const { return core(id).socket; }

SocketId Machine::socket_of_numa(NumaId id) const { return numa(id).socket; }

bool Machine::is_local(SocketId socket, NumaId numa_id) const {
  return socket_of_numa(numa_id) == socket;
}

NumaId Machine::first_numa_of(SocketId socket_id) const {
  const Socket& s = socket(socket_id);
  MCM_EXPECTS(!s.numa_nodes.empty());
  NumaId lowest = s.numa_nodes.front();
  for (NumaId m : s.numa_nodes) {
    if (m < lowest) lowest = m;
  }
  return lowest;
}

LinkId Machine::inter_socket_link(SocketId a, SocketId b) const {
  MCM_EXPECTS(a != b);
  MCM_EXPECTS(a.value() < sockets_.size() && b.value() < sockets_.size());
  const LinkId id = inter_socket_[a.value()][b.value()];
  MCM_EXPECTS(id.is_valid());
  return id;
}

LinkId Machine::controller_of(NumaId numa_id) const {
  return numa(numa_id).controller;
}

LinkId Machine::remote_port_of(NumaId numa_id) const {
  return numa(numa_id).remote_port;
}

std::vector<LinkId> Machine::cpu_path(SocketId from, NumaId numa_id) const {
  std::vector<LinkId> path;
  const SocketId target_socket = socket_of_numa(numa_id);
  if (target_socket != from) {
    path.push_back(inter_socket_link(from, target_socket));
    path.push_back(remote_port_of(numa_id));
  }
  path.push_back(controller_of(numa_id));
  return path;
}

std::vector<LinkId> Machine::dma_path(NicId nic_id, NumaId numa_id) const {
  const Nic& n = nic(nic_id);
  std::vector<LinkId> path;
  path.push_back(n.pcie);
  const SocketId target_socket = socket_of_numa(numa_id);
  if (target_socket != n.socket) {
    path.push_back(inter_socket_link(n.socket, target_socket));
    path.push_back(remote_port_of(numa_id));
  }
  path.push_back(controller_of(numa_id));
  return path;
}

std::vector<LinkId> Machine::dma_return_path(NicId nic_id,
                                             NumaId numa_id) const {
  const Nic& n = nic(nic_id);
  std::vector<LinkId> path;
  if (socket_of_numa(numa_id) != n.socket) {
    path.push_back(remote_port_of(numa_id));
  }
  path.push_back(controller_of(numa_id));
  return path;
}

Bandwidth Machine::nic_nominal_bandwidth(NicId nic_id, NumaId numa_id) const {
  const Nic& n = nic(nic_id);
  MCM_EXPECTS(numa_id.value() < n.dma_efficiency.size());
  return n.wire_bandwidth * n.dma_efficiency[numa_id.value()];
}

void Machine::set_link_contention(LinkId id,
                                  const ContentionSpec& contention) {
  MCM_EXPECTS(id.is_valid() && id.value() < links_.size());
  links_[id.value()].contention = contention;
}

void Machine::set_link_ambient_socket(LinkId id, SocketId socket) {
  MCM_EXPECTS(id.is_valid() && id.value() < links_.size());
  MCM_EXPECTS(!socket.is_valid() || socket.value() < sockets_.size());
  links_[id.value()].ambient_socket = socket;
}

void Machine::validate() const {
  MCM_EXPECTS(!sockets_.empty());
  MCM_EXPECTS(!cores_.empty());
  MCM_EXPECTS(!numa_nodes_.empty());

  // Ids are positional.
  for (std::size_t i = 0; i < sockets_.size(); ++i) {
    MCM_EXPECTS(sockets_[i].id == SocketId(static_cast<std::uint32_t>(i)));
  }
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    MCM_EXPECTS(cores_[i].id == CoreId(static_cast<std::uint32_t>(i)));
    MCM_EXPECTS(cores_[i].socket.value() < sockets_.size());
  }
  for (std::size_t i = 0; i < numa_nodes_.size(); ++i) {
    MCM_EXPECTS(numa_nodes_[i].id == NumaId(static_cast<std::uint32_t>(i)));
    MCM_EXPECTS(numa_nodes_[i].socket.value() < sockets_.size());
    const LinkId ctrl = numa_nodes_[i].controller;
    MCM_EXPECTS(ctrl.is_valid() && ctrl.value() < links_.size());
    MCM_EXPECTS(links_[ctrl.value()].kind == LinkKind::kMemoryController);
    const LinkId port = numa_nodes_[i].remote_port;
    MCM_EXPECTS(port.is_valid() && port.value() < links_.size());
    MCM_EXPECTS(links_[port.value()].kind == LinkKind::kRemotePort);
  }
  for (std::size_t i = 0; i < links_.size(); ++i) {
    MCM_EXPECTS(links_[i].id == LinkId(static_cast<std::uint32_t>(i)));
    MCM_EXPECTS(links_[i].capacity.bps() > 0.0);
    MCM_EXPECTS(links_[i].contention.dma_floor.bps() >= 0.0);
    MCM_EXPECTS(links_[i].contention.dma_requestor_weight >= 0.0);
  }

  // Uniform socket shapes (required by the paper's "#m" notation and by the
  // benchmark sweep, which iterates over the first socket's cores).
  const std::size_t cps = sockets_.front().cores.size();
  const std::size_t nps = sockets_.front().numa_nodes.size();
  MCM_EXPECTS(cps > 0 && nps > 0);
  for (const Socket& s : sockets_) {
    MCM_EXPECTS(s.cores.size() == cps);
    MCM_EXPECTS(s.numa_nodes.size() == nps);
    for (CoreId c : s.cores) MCM_EXPECTS(cores_[c.value()].socket == s.id);
    for (NumaId m : s.numa_nodes) {
      MCM_EXPECTS(numa_nodes_[m.value()].socket == s.id);
    }
  }

  // Each core/NUMA appears in exactly one socket.
  std::set<std::uint32_t> seen_cores;
  std::set<std::uint32_t> seen_numa;
  for (const Socket& s : sockets_) {
    for (CoreId c : s.cores) MCM_EXPECTS(seen_cores.insert(c.value()).second);
    for (NumaId m : s.numa_nodes) {
      MCM_EXPECTS(seen_numa.insert(m.value()).second);
    }
  }
  MCM_EXPECTS(seen_cores.size() == cores_.size());
  MCM_EXPECTS(seen_numa.size() == numa_nodes_.size());

  // Inter-socket link table is symmetric and complete.
  MCM_EXPECTS(inter_socket_.size() == sockets_.size());
  for (std::size_t a = 0; a < sockets_.size(); ++a) {
    MCM_EXPECTS(inter_socket_[a].size() == sockets_.size());
    for (std::size_t b = 0; b < sockets_.size(); ++b) {
      if (a == b) {
        MCM_EXPECTS(!inter_socket_[a][b].is_valid());
        continue;
      }
      const LinkId id = inter_socket_[a][b];
      MCM_EXPECTS(id.is_valid() && id.value() < links_.size());
      MCM_EXPECTS(links_[id.value()].kind == LinkKind::kInterSocket);
      MCM_EXPECTS(inter_socket_[b][a] == id);
    }
  }

  // NICs.
  for (std::size_t i = 0; i < nics_.size(); ++i) {
    const Nic& n = nics_[i];
    MCM_EXPECTS(n.id == NicId(static_cast<std::uint32_t>(i)));
    MCM_EXPECTS(n.socket.value() < sockets_.size());
    MCM_EXPECTS(n.near_numa.value() < numa_nodes_.size());
    MCM_EXPECTS(numa_nodes_[n.near_numa.value()].socket == n.socket);
    MCM_EXPECTS(n.pcie.is_valid() && n.pcie.value() < links_.size());
    MCM_EXPECTS(links_[n.pcie.value()].kind == LinkKind::kPcie);
    MCM_EXPECTS(n.wire_bandwidth.bps() > 0.0);
    MCM_EXPECTS(n.dma_efficiency.size() == numa_nodes_.size());
    for (double e : n.dma_efficiency) MCM_EXPECTS(e > 0.0 && e <= 1.0);
  }
}

}  // namespace mcm::topo
