#include "topo/distance.hpp"

#include "util/contracts.hpp"

namespace mcm::topo {

namespace {
constexpr unsigned kSelf = 10;
constexpr unsigned kSameSocket = 12;
constexpr unsigned kCrossSocket = 21;
}  // namespace

DistanceMatrix::DistanceMatrix(const Machine& machine)
    : size_(machine.numa_count()), values_(size_ * size_, kSelf) {
  for (std::size_t i = 0; i < size_; ++i) {
    const SocketId si =
        machine.socket_of_numa(NumaId(static_cast<std::uint32_t>(i)));
    for (std::size_t j = 0; j < size_; ++j) {
      const SocketId sj =
          machine.socket_of_numa(NumaId(static_cast<std::uint32_t>(j)));
      unsigned d = kSelf;
      if (i != j) d = (si == sj) ? kSameSocket : kCrossSocket;
      values_[i * size_ + j] = d;
    }
  }
}

unsigned DistanceMatrix::at(NumaId from, NumaId to) const {
  MCM_EXPECTS(from.value() < size_ && to.value() < size_);
  return values_[from.value() * size_ + to.value()];
}

bool DistanceMatrix::is_local(NumaId from, NumaId to) const {
  return at(from, to) < kCrossSocket;
}

NumaId DistanceMatrix::nearest_other(NumaId from) const {
  MCM_EXPECTS(size_ >= 2);
  NumaId best = NumaId::invalid();
  unsigned best_distance = ~0u;
  for (std::size_t j = 0; j < size_; ++j) {
    if (j == from.value()) continue;
    const NumaId candidate(static_cast<std::uint32_t>(j));
    const unsigned d = at(from, candidate);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  MCM_ENSURES(best.is_valid());
  return best;
}

}  // namespace mcm::topo
