// Text (de)serialization of PlatformSpec, so that users can describe their
// own machines in a small config file instead of editing C++ presets.
//
// The format is line-based `key value`, `#` comments, blank lines ignored:
//
//   platform my-cluster-node
//   processor 2 x Example CPU (8 cores)
//   sockets 2
//   cores_per_socket 8
//   numa_per_socket 1
//   controller.capacity_gb 60
//   controller.dma_floor_gb 3
//   ...
//
// Round-trip guarantee: parse(serialize(spec)) reproduces an equivalent
// spec (structure, capacities, profiles and seed).
#pragma once

#include <optional>
#include <string>

#include "topo/platforms.hpp"

namespace mcm::topo {

/// Render a PlatformSpec to the text format above.
[[nodiscard]] std::string serialize_platform(const PlatformSpec& spec);

/// Parse the text format. Returns std::nullopt and fills `error` (if given)
/// when the input is malformed or misses required keys.
[[nodiscard]] std::optional<PlatformSpec> parse_platform(
    const std::string& text, std::string* error = nullptr);

}  // namespace mcm::topo
