// Machine topology description — the reproduction's hwloc substitute.
//
// A `Machine` is the structural half of a platform: sockets containing cores
// and NUMA nodes, one memory-controller link per NUMA node, one inter-socket
// link per socket pair (UPI on Intel, Infinity Fabric on AMD), one PCIe link
// per NIC, and the NICs themselves. Every shared resource on which the paper
// observes contention is a `Link` with a capacity and a contention policy
// specification consumed by the simulator (`mcm::sim`).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "topo/ids.hpp"
#include "util/units.hpp"

namespace mcm::topo {

/// Kind of shared link in the memory system.
enum class LinkKind {
  kMemoryController,  ///< serves one NUMA node's DRAM channels
  kRemotePort,        ///< a controller's service queue for off-socket
                      ///< requests (CPU loads/stores crossing the SMP link,
                      ///< DMA from a NIC on another socket). Modelling this
                      ///< separately from the raw inter-socket bus is what
                      ///< reproduces the paper's key finding: two remote
                      ///< streams contend when they target the *same* NUMA
                      ///< node but not when they target different ones, so
                      ///< the bottleneck is in the controller, not the bus.
  kInterSocket,       ///< UPI / Infinity Fabric between two sockets
  kPcie,              ///< PCIe lanes between a NIC and its socket
};

[[nodiscard]] const char* to_string(LinkKind kind);

/// Hardware contention characteristics of a link, consumed by the simulator
/// arbiter. These express the paper's §II-A hypotheses as per-link hardware
/// behaviour:
///  * CPU requests outrank DMA (NIC) requests,
///  * DMA is never starved below a guaranteed floor,
///  * effective capacity degrades linearly once too many requestors hit the
///    link (the post-knee decline visible in every figure of the paper).
struct ContentionSpec {
  /// Minimum bandwidth always granted to the DMA class under contention
  /// (the paper's anti-starvation floor). Zero means "no guarantee".
  Bandwidth dma_floor;
  /// Number of weighted requestors the link serves at full capacity.
  double requestor_knee = 1e9;
  /// Effective-capacity loss per weighted requestor beyond the knee.
  Bandwidth degradation_per_requestor;
  /// How many "requestor units" one DMA stream counts for, scaled by how
  /// much of its nominal demand it is currently granted. NIC DMA engines
  /// issue much larger bursts than a core, hence typically > 1.
  double dma_requestor_weight = 1.0;
  /// Host-socket coupling (meaningful on PCIe links): effective capacity
  /// additionally degrades with the number of *active compute cores on the
  /// link's ambient socket*, even though their streams never cross the
  /// link. This models the IIO/uncore ingress sharing the socket fabric
  /// with core traffic, where cores have priority — the reason the paper's
  /// measurements show network bandwidth degrading under heavy computation
  /// regardless of data placement.
  double ambient_cpu_knee = 1e9;
  Bandwidth ambient_cpu_degradation;
  /// Soft DMA throttling: once CPU utilization of the link exceeds
  /// `dma_soft_start`, the DMA class is progressively deprioritized — its
  /// admitted share of nominal demand shrinks linearly down to
  /// `dma_soft_min` at 100 % CPU utilization (never below the floor).
  /// Defaults (1.0/1.0) disable the mechanism. This reproduces the gradual
  /// early network decline the paper observes *before* the bus saturates
  /// ("communications start to be impacted before the total bandwidth
  /// threshold is reached", §IV-B-a).
  double dma_soft_start = 1.0;
  double dma_soft_min = 1.0;
};

/// A shared link of the memory system.
struct Link {
  LinkId id;
  std::string name;
  LinkKind kind = LinkKind::kMemoryController;
  Bandwidth capacity;
  ContentionSpec contention;
  /// Socket whose active compute cores count towards this link's ambient
  /// degradation (see ContentionSpec). Invalid = no ambient coupling.
  SocketId ambient_socket = SocketId::invalid();
};

/// A physical CPU core.
struct Core {
  CoreId id;
  SocketId socket;
};

/// A NUMA node: one memory bank plus the controller link serving it and the
/// controller's remote-request port (see LinkKind::kRemotePort).
struct NumaNode {
  NumaId id;
  SocketId socket;
  LinkId controller;
  LinkId remote_port;
};

/// A processor socket.
struct Socket {
  SocketId id;
  std::vector<CoreId> cores;
  std::vector<NumaId> numa_nodes;
};

/// A network interface. DMA efficiency models the NUMA sensitivity of the
/// NIC: the achievable nominal network bandwidth when the communication
/// buffer lives on NUMA node `m` is `wire_bandwidth * dma_efficiency[m]`.
/// (On diablo the paper measures 22.4 GB/s next to the NIC vs 12.1 GB/s
/// across the Infinity Fabric; on pyxis the per-node efficiencies are not
/// explained by locality alone, which is exactly what defeats the model's
/// placement heuristic there.)
struct Nic {
  NicId id;
  std::string name;
  SocketId socket;      ///< socket whose PCIe root hosts the NIC
  NumaId near_numa;     ///< NUMA node physically closest to the NIC
  LinkId pcie;          ///< PCIe link between NIC and memory system
  Bandwidth wire_bandwidth;
  std::vector<double> dma_efficiency;  ///< one factor per NUMA node
};

/// Immutable machine description. Build with `TopologyBuilder`.
class Machine {
 public:
  Machine() = default;

  // -- collections ---------------------------------------------------------
  [[nodiscard]] const std::vector<Socket>& sockets() const {
    return sockets_;
  }
  [[nodiscard]] const std::vector<Core>& cores() const { return cores_; }
  [[nodiscard]] const std::vector<NumaNode>& numa_nodes() const {
    return numa_nodes_;
  }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }
  [[nodiscard]] const std::vector<Nic>& nics() const { return nics_; }

  // -- element access ------------------------------------------------------
  [[nodiscard]] const Socket& socket(SocketId id) const;
  [[nodiscard]] const Core& core(CoreId id) const;
  [[nodiscard]] const NumaNode& numa(NumaId id) const;
  [[nodiscard]] const Link& link(LinkId id) const;
  [[nodiscard]] const Nic& nic(NicId id) const;

  // -- counts --------------------------------------------------------------
  [[nodiscard]] std::size_t socket_count() const { return sockets_.size(); }
  [[nodiscard]] std::size_t core_count() const { return cores_.size(); }
  [[nodiscard]] std::size_t numa_count() const { return numa_nodes_.size(); }
  /// Cores per socket (uniform by construction).
  [[nodiscard]] std::size_t cores_per_socket() const;
  /// NUMA nodes per socket — the paper's `#m` (uniform by construction).
  [[nodiscard]] std::size_t numa_per_socket() const;

  // -- structure queries ---------------------------------------------------
  [[nodiscard]] SocketId socket_of_core(CoreId id) const;
  [[nodiscard]] SocketId socket_of_numa(NumaId id) const;
  /// True when `numa` belongs to `socket` (a *local* access in paper terms).
  [[nodiscard]] bool is_local(SocketId socket, NumaId numa) const;
  /// First NUMA node belonging to `socket` (lowest id).
  [[nodiscard]] NumaId first_numa_of(SocketId socket) const;
  /// Inter-socket link between two distinct sockets.
  [[nodiscard]] LinkId inter_socket_link(SocketId a, SocketId b) const;
  /// Memory-controller link of a NUMA node.
  [[nodiscard]] LinkId controller_of(NumaId numa) const;
  /// Remote-request port of a NUMA node's controller.
  [[nodiscard]] LinkId remote_port_of(NumaId numa) const;

  // -- data paths ----------------------------------------------------------
  /// Links traversed by a CPU stream from a core on `from` to memory on
  /// `numa`. Local access: [controller]. Remote access:
  /// [inter-socket, remote-port, controller].
  [[nodiscard]] std::vector<LinkId> cpu_path(SocketId from,
                                             NumaId numa) const;
  /// Links traversed by NIC DMA into/out of memory on `numa`.
  /// Same socket: [pcie, controller]. Other socket:
  /// [pcie, inter-socket, remote-port, controller].
  [[nodiscard]] std::vector<LinkId> dma_path(NicId nic, NumaId numa) const;
  /// Links a *send-direction* DMA stream shares with the receive direction:
  /// PCIe lanes and the inter-socket bus are full duplex, so only the
  /// memory-side resources appear — [remote-port] (if cross-socket) and the
  /// controller. Used for bidirectional (ping-pong) traffic.
  [[nodiscard]] std::vector<LinkId> dma_return_path(NicId nic,
                                                    NumaId numa) const;

  /// Nominal network bandwidth achievable with communication buffers on
  /// `numa` (wire bandwidth scaled by the NIC's DMA efficiency there).
  [[nodiscard]] Bandwidth nic_nominal_bandwidth(NicId nic,
                                                NumaId numa) const;

  // -- controlled mutation (ablation studies) -------------------------------
  /// Replace one link's contention behaviour. Structure stays untouched.
  void set_link_contention(LinkId id, const ContentionSpec& contention);
  /// Change or clear (pass SocketId::invalid()) a link's ambient socket.
  void set_link_ambient_socket(LinkId id, SocketId socket);

  /// Validate all structural invariants; throws ContractViolation on
  /// inconsistency. Builder output is always valid; deserialized or
  /// hand-assembled machines should be validated explicitly.
  void validate() const;

 private:
  friend class TopologyBuilder;
  friend class TopologyReader;

  std::vector<Socket> sockets_;
  std::vector<Core> cores_;
  std::vector<NumaNode> numa_nodes_;
  std::vector<Link> links_;
  std::vector<Nic> nics_;
  /// inter_socket_[a][b] for a != b; invalid on the diagonal.
  std::vector<std::vector<LinkId>> inter_socket_;
};

}  // namespace mcm::topo
