#include "topo/render.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace mcm::topo {

namespace {

[[nodiscard]] std::string describe_contention(const ContentionSpec& spec) {
  std::string out;
  if (spec.dma_floor.bps() > 0.0) {
    out += ", dma floor " + format_fixed(spec.dma_floor.gb(), 1) + " GB/s";
  }
  if (spec.degradation_per_requestor.bps() > 0.0 &&
      spec.requestor_knee < 1e8) {
    out += ", knee " + format_fixed(spec.requestor_knee, 0) +
           " requestors, -" +
           format_fixed(spec.degradation_per_requestor.gb(), 2) +
           " GB/s/req";
  }
  if (spec.dma_soft_start < 1.0) {
    out += ", dma soft-throttle from " +
           format_fixed(100.0 * spec.dma_soft_start, 0) + " % load";
  }
  return out;
}

}  // namespace

std::string render_platform(const PlatformSpec& spec) {
  const Machine& m = spec.machine;
  std::ostringstream out;
  out << "platform " << spec.name << "\n"
      << "  processor: " << spec.processor << "\n"
      << "  memory:    " << spec.memory << "\n"
      << "  network:   " << spec.network << "\n";

  for (const Socket& socket : m.sockets()) {
    out << "  socket " << socket.id.value() << "\n";
    out << "    cores " << socket.cores.front().value() << "-"
        << socket.cores.back().value() << "\n";
    for (NumaId numa_id : socket.numa_nodes) {
      const Link& mc = m.link(m.controller_of(numa_id));
      const Link& port = m.link(m.remote_port_of(numa_id));
      out << "    numa node " << numa_id.value() << ": controller "
          << format_fixed(mc.capacity.gb(), 1) << " GB/s"
          << describe_contention(mc.contention) << "\n";
      out << "      remote port " << format_fixed(port.capacity.gb(), 1)
          << " GB/s" << describe_contention(port.contention) << "\n";
    }
    for (const Nic& nic : m.nics()) {
      if (nic.socket != socket.id) continue;
      const Link& pcie = m.link(nic.pcie);
      out << "    nic " << nic.name << ": wire "
          << format_fixed(nic.wire_bandwidth.gb(), 1) << " GB/s, pcie "
          << format_fixed(pcie.capacity.gb(), 1) << " GB/s"
          << describe_contention(pcie.contention) << "\n";
      out << "      dma efficiency per numa node:";
      for (double e : nic.dma_efficiency) {
        out << " " << format_fixed(e, 2);
      }
      out << "\n";
    }
  }
  if (m.socket_count() > 1) {
    const Link& bus = m.link(m.inter_socket_link(SocketId(0), SocketId(1)));
    out << "  inter-socket bus: " << format_fixed(bus.capacity.gb(), 1)
        << " GB/s" << describe_contention(bus.contention) << "\n";
  }
  out << "  compute kernel: "
      << format_fixed(spec.compute.per_core_local.gb(), 2)
      << " GB/s/core local, "
      << format_fixed(spec.compute.per_core_remote.gb(), 2) << " remote";
  if (spec.compute.scaling_curvature > 0.0) {
    out << ", scaling curvature "
        << format_fixed(spec.compute.scaling_curvature, 4);
  }
  out << "\n  noise: compute sigma "
      << format_fixed(100.0 * spec.noise.compute_sigma, 2)
      << " %, network sigma "
      << format_fixed(100.0 * spec.noise.comm_sigma, 2) << " %";
  if (spec.noise.cross_numa_dma_penalty > 0.0) {
    out << ", cross-numa dma penalty "
        << format_fixed(100.0 * spec.noise.cross_numa_dma_penalty, 0)
        << " %";
  }
  out << "\n";
  return out.str();
}

}  // namespace mcm::topo
