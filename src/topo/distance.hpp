// NUMA distance matrix in the style of ACPI SLIT / `numactl --hardware`:
// 10 for a node's own memory, larger values for remote memory. Derived
// purely from the machine structure; used by examples and the placement
// advisor to rank candidate placements.
#pragma once

#include <cstddef>
#include <vector>

#include "topo/topology.hpp"

namespace mcm::topo {

class DistanceMatrix {
 public:
  /// Build from machine structure: 10 on the diagonal, 12 between NUMA
  /// nodes sharing a socket, 21 across sockets (typical SLIT values).
  explicit DistanceMatrix(const Machine& machine);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] unsigned at(NumaId from, NumaId to) const;

  /// True when accessing `to` from a core on `from`'s socket is local.
  [[nodiscard]] bool is_local(NumaId from, NumaId to) const;

  /// Nearest NUMA node to `from` other than itself (lowest distance; ties
  /// broken towards lower id).
  [[nodiscard]] NumaId nearest_other(NumaId from) const;

 private:
  std::size_t size_ = 0;
  std::vector<unsigned> values_;  ///< row-major size_ x size_
};

}  // namespace mcm::topo
