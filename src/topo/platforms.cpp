#include "topo/platforms.hpp"

#include "topo/builder.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace mcm::topo {

namespace {

[[nodiscard]] Bandwidth gb(double v) { return Bandwidth::gb_per_s(v); }

/// Inter-socket buses are kept wide and well-behaved on every platform:
/// the paper's measurements locate the bottleneck in the controllers.
[[nodiscard]] ContentionSpec easy_bus_spec(double floor_gb) {
  ContentionSpec spec;
  spec.dma_floor = gb(floor_gb);
  spec.requestor_knee = 64.0;
  spec.degradation_per_requestor = gb(0.1);
  spec.dma_requestor_weight = 1.0;
  return spec;
}

}  // namespace

PlatformSpec make_henri() {
  // 2 x Intel Xeon Gold 6140, 18 cores/socket, 2 NUMA nodes, InfiniBand
  // behind socket 0. Single-core stream bandwidth ~5.5 GB/s; socket
  // saturates around 16 cores at ~88 GB/s; the NIC is guaranteed ~4 GB/s
  // under contention (alpha ~ 0.33).
  ContentionSpec mc;
  mc.dma_floor = gb(4.0);
  mc.requestor_knee = 14.0;
  mc.degradation_per_requestor = gb(0.8);
  mc.dma_requestor_weight = 3.0;
  mc.dma_soft_start = 0.55;
  mc.dma_soft_min = 0.62;

  ContentionSpec port;
  port.dma_floor = gb(3.2);
  port.requestor_knee = 10.0;
  port.degradation_per_requestor = gb(0.45);
  port.dma_requestor_weight = 3.0;
  port.dma_soft_start = 0.55;
  port.dma_soft_min = 0.62;

  TopologyBuilder b;
  b.add_sockets(2, 18);
  b.add_numa_per_socket(1, gb(90.0), mc);
  b.set_remote_port_capacity(gb(37.0), port);
  b.set_inter_socket_capacity(gb(60.0), easy_bus_spec(3.0));
  b.add_nic("mlx5_0", SocketId(0), gb(12.2), gb(14.0));
  b.set_nic_dma_efficiency(NicId(0), NumaId(1), 0.93);
  b.set_nic_host_coupling(NicId(0), 12.5, gb(2.8), gb(4.0));

  PlatformSpec spec;
  spec.name = "henri";
  spec.processor = "2 x Intel Xeon Gold 6140 (18 cores)";
  spec.memory = "96 GB, 2 NUMA nodes";
  spec.network = "InfiniBand";
  spec.machine = b.build();
  spec.compute = ComputeProfile{gb(5.5), gb(3.3), 0.0};
  spec.noise = NoiseProfile{0.004, 0.008, 0.0};
  spec.compute.llc_bytes = 25ull * kMiB;
  spec.seed = stable_hash("henri");
  return spec;
}

PlatformSpec make_henri_subnuma() {
  // Same machine as henri with sub-NUMA clustering enabled: 4 NUMA nodes,
  // each controller serving roughly half of the socket bandwidth.
  ContentionSpec mc;
  mc.dma_floor = gb(4.0);
  mc.requestor_knee = 9.0;
  mc.degradation_per_requestor = gb(0.6);
  mc.dma_requestor_weight = 3.0;
  mc.dma_soft_start = 0.5;
  mc.dma_soft_min = 0.62;

  ContentionSpec port;
  port.dma_floor = gb(3.0);
  port.requestor_knee = 7.0;
  port.degradation_per_requestor = gb(0.4);
  port.dma_requestor_weight = 3.0;
  port.dma_soft_start = 0.5;
  port.dma_soft_min = 0.62;

  TopologyBuilder b;
  b.add_sockets(2, 18);
  b.add_numa_per_socket(2, gb(50.0), mc);
  b.set_remote_port_capacity(gb(30.0), port);
  b.set_inter_socket_capacity(gb(60.0), easy_bus_spec(3.0));
  b.add_nic("mlx5_0", SocketId(0), gb(12.2), gb(14.0));
  b.set_nic_dma_efficiency(NicId(0), NumaId(1), 0.98);
  b.set_nic_dma_efficiency(NicId(0), NumaId(2), 0.93);
  b.set_nic_dma_efficiency(NicId(0), NumaId(3), 0.93);
  // With sub-NUMA clustering each controller saturates around 8 cores, and
  // the measured network co-decline follows suit (earlier, steeper knee
  // than in the 2-node configuration).
  b.set_nic_host_coupling(NicId(0), 6.0, gb(3.0), gb(4.0));

  PlatformSpec spec;
  spec.name = "henri-subnuma";
  spec.processor = "2 x Intel Xeon Gold 6140 (18 cores)";
  spec.memory = "96 GB, 4 NUMA nodes";
  spec.network = "InfiniBand";
  spec.machine = b.build();
  spec.compute = ComputeProfile{gb(5.5), gb(3.3), 0.0};
  spec.noise = NoiseProfile{0.004, 0.008, 0.0};
  spec.compute.llc_bytes = 25ull * kMiB;
  spec.seed = stable_hash("henri-subnuma");
  return spec;
}

PlatformSpec make_dahu() {
  // 2 x Intel Xeon Gold 6130, 16 cores/socket, 2 NUMA nodes, Omni-Path.
  ContentionSpec mc;
  mc.dma_floor = gb(3.5);
  mc.requestor_knee = 12.0;
  mc.degradation_per_requestor = gb(0.7);
  mc.dma_requestor_weight = 3.0;
  mc.dma_soft_start = 0.7;
  mc.dma_soft_min = 0.7;

  ContentionSpec port;
  port.dma_floor = gb(2.8);
  port.requestor_knee = 9.0;
  port.degradation_per_requestor = gb(0.5);
  port.dma_requestor_weight = 3.0;
  port.dma_soft_start = 0.7;
  port.dma_soft_min = 0.7;

  TopologyBuilder b;
  b.add_sockets(2, 16);
  b.add_numa_per_socket(1, gb(85.0), mc);
  b.set_remote_port_capacity(gb(34.0), port);
  b.set_inter_socket_capacity(gb(55.0), easy_bus_spec(2.8));
  b.add_nic("hfi1_0", SocketId(0), gb(10.9), gb(13.0));
  b.set_nic_dma_efficiency(NicId(0), NumaId(1), 0.95);
  b.set_nic_host_coupling(NicId(0), 11.0, gb(2.4), gb(3.5));

  PlatformSpec spec;
  spec.name = "dahu";
  spec.processor = "2 x Intel Xeon Gold 6130 (16 cores)";
  spec.memory = "192 GB, 2 NUMA nodes";
  spec.network = "Omni-Path";
  spec.machine = b.build();
  spec.compute = ComputeProfile{gb(5.9), gb(3.1), 0.0};
  spec.noise = NoiseProfile{0.004, 0.008, 0.0};
  spec.compute.llc_bytes = 22ull * kMiB;
  spec.seed = stable_hash("dahu");
  return spec;
}

PlatformSpec make_diablo() {
  // 2 x AMD EPYC 7452, 32 cores/socket, 2 NUMA nodes. The NIC sits behind
  // socket 1: with buffers on NUMA node 1 the network reaches 22.4 GB/s,
  // with buffers on node 0 only 12.1 GB/s (paper §IV-B-c). Memory system is
  // wide enough that contention barely shows.
  ContentionSpec mc;
  mc.dma_floor = gb(20.0);
  mc.requestor_knee = 30.0;
  mc.degradation_per_requestor = gb(0.5);
  mc.dma_requestor_weight = 2.0;

  ContentionSpec port;
  port.dma_floor = gb(11.0);
  port.requestor_knee = 26.0;
  port.degradation_per_requestor = gb(0.4);
  port.dma_requestor_weight = 2.0;

  TopologyBuilder b;
  b.add_sockets(2, 32);
  b.add_numa_per_socket(1, gb(120.0), mc);
  b.set_remote_port_capacity(gb(70.0), port);
  b.set_inter_socket_capacity(gb(90.0), easy_bus_spec(11.0));
  b.add_nic("mlx5_1", SocketId(1), gb(22.4), gb(25.0));
  b.set_nic_dma_efficiency(NicId(0), NumaId(0), 0.54);

  PlatformSpec spec;
  spec.name = "diablo";
  spec.processor = "2 x AMD EPYC 7452 (32 cores)";
  spec.memory = "256 GB, 2 NUMA nodes";
  spec.network = "InfiniBand";
  spec.machine = b.build();
  spec.compute = ComputeProfile{gb(3.1), gb(2.6), 0.0};
  spec.noise = NoiseProfile{0.004, 0.008, 0.0};
  spec.compute.llc_bytes = 128ull * kMiB;
  spec.seed = stable_hash("diablo");
  return spec;
}

PlatformSpec make_pyxis() {
  // 2 x Cavium/Marvell ThunderX2, 32 cores/socket, 2 NUMA nodes. Network
  // performance is noisy and suffers ring interference from compute traffic
  // on the other NUMA node — behaviour the analytical model cannot express,
  // making pyxis the platform with the worst non-sample prediction error
  // (as in the paper's Table II).
  ContentionSpec mc;
  mc.dma_floor = gb(5.0);
  mc.requestor_knee = 26.0;
  mc.degradation_per_requestor = gb(0.6);
  mc.dma_requestor_weight = 3.0;
  mc.dma_soft_start = 0.6;
  mc.dma_soft_min = 0.7;

  ContentionSpec port;
  port.dma_floor = gb(4.0);
  port.requestor_knee = 12.0;
  port.degradation_per_requestor = gb(0.5);
  port.dma_requestor_weight = 3.0;
  port.dma_soft_start = 0.6;
  port.dma_soft_min = 0.7;

  TopologyBuilder b;
  b.add_sockets(2, 32);
  b.add_numa_per_socket(1, gb(105.0), mc);
  b.set_remote_port_capacity(gb(40.0), port);
  b.set_inter_socket_capacity(gb(65.0), easy_bus_spec(4.0));
  b.add_nic("mlx5_0", SocketId(0), gb(12.0), gb(14.0));
  b.set_nic_dma_efficiency(NicId(0), NumaId(1), 0.88);
  b.set_nic_host_coupling(NicId(0), 24.0, gb(1.35), gb(4.5));

  PlatformSpec spec;
  spec.name = "pyxis";
  spec.processor = "2 x Cavium ThunderX2 99xx (32 cores)";
  spec.memory = "256 GB, 2 NUMA nodes";
  spec.network = "InfiniBand";
  spec.machine = b.build();
  spec.compute = ComputeProfile{gb(3.6), gb(3.35), 0.0015};
  spec.noise = NoiseProfile{0.006, 0.015, 0.10};
  spec.compute.llc_bytes = 32ull * kMiB;
  spec.seed = stable_hash("pyxis");
  return spec;
}

PlatformSpec make_occigen() {
  // 2 x Intel Xeon E5-2690 v4, 14 cores/socket, 2 NUMA nodes. On this older
  // platform communications keep their nominal bandwidth under contention
  // (DMA floor ~ nominal): only computations are impacted, and only for
  // remote accesses — the configuration where the model is most accurate.
  ContentionSpec mc;
  mc.dma_floor = gb(11.0);
  mc.requestor_knee = 13.0;
  mc.degradation_per_requestor = gb(0.4);
  mc.dma_requestor_weight = 2.0;

  ContentionSpec port;
  port.dma_floor = gb(10.5);
  port.requestor_knee = 9.0;
  port.degradation_per_requestor = gb(0.35);
  port.dma_requestor_weight = 2.0;

  TopologyBuilder b;
  b.add_sockets(2, 14);
  b.add_numa_per_socket(1, gb(82.0), mc);
  b.set_remote_port_capacity(gb(30.0), port);
  b.set_inter_socket_capacity(gb(50.0), easy_bus_spec(10.5));
  b.add_nic("mlx4_0", SocketId(0), gb(11.2), gb(13.0));
  b.set_nic_dma_efficiency(NicId(0), NumaId(1), 0.97);

  PlatformSpec spec;
  spec.name = "occigen";
  spec.processor = "2 x Intel Xeon E5-2690 v4 (14 cores)";
  spec.memory = "64 GB, 2 NUMA nodes";
  spec.network = "InfiniBand";
  spec.machine = b.build();
  spec.compute = ComputeProfile{gb(4.8), gb(3.0), 0.0};
  spec.noise = NoiseProfile{0.002, 0.003, 0.0};
  spec.compute.llc_bytes = 35ull * kMiB;
  spec.seed = stable_hash("occigen");
  return spec;
}

PlatformSpec make_tetra() {
  // "tetra" is NOT one of the paper's testbeds: it is a hypothetical
  // 4-socket ring machine used to reproduce the paper's §IV-C-1 *model
  // limitation*: with more than two remote regimes (adjacent vs opposite
  // sockets on the ring), a single Mremote parameter set cannot describe
  // all remote placements and the placement heuristic of eq. (6)/(7)
  // degrades. Not serializable to the platform text format (per-pair link
  // overrides), hence absent from platform_names().
  ContentionSpec mc;
  mc.dma_floor = gb(4.0);
  mc.requestor_knee = 7.0;
  mc.degradation_per_requestor = gb(0.5);
  mc.dma_requestor_weight = 3.0;
  mc.dma_soft_start = 0.6;
  mc.dma_soft_min = 0.65;

  ContentionSpec port;
  port.dma_floor = gb(3.0);
  port.requestor_knee = 6.0;
  port.degradation_per_requestor = gb(0.4);
  port.dma_requestor_weight = 3.0;
  port.dma_soft_start = 0.6;
  port.dma_soft_min = 0.65;

  TopologyBuilder b;
  b.add_sockets(4, 8);
  b.add_numa_per_socket(1, gb(45.0), mc);
  b.set_remote_port_capacity(gb(30.0), port);
  // Ring interconnect: adjacent sockets at full speed, opposite sockets
  // through a much thinner path.
  b.set_inter_socket_capacity(gb(45.0), easy_bus_spec(3.0));
  b.set_inter_socket_capacity_between(SocketId(0), SocketId(2), gb(20.0),
                                      easy_bus_spec(3.0));
  b.set_inter_socket_capacity_between(SocketId(1), SocketId(3), gb(20.0),
                                      easy_bus_spec(3.0));
  b.add_nic("mlx5_0", SocketId(0), gb(12.0), gb(14.0));
  b.set_nic_dma_efficiency(NicId(0), NumaId(1), 0.93);
  b.set_nic_dma_efficiency(NicId(0), NumaId(2), 0.90);
  b.set_nic_dma_efficiency(NicId(0), NumaId(3), 0.93);
  b.set_nic_host_coupling(NicId(0), 5.0, gb(2.2), gb(4.0));

  PlatformSpec spec;
  spec.name = "tetra";
  spec.processor = "4 x hypothetical 8-core CPU (ring interconnect)";
  spec.memory = "128 GB, 4 NUMA nodes";
  spec.network = "InfiniBand";
  spec.machine = b.build();
  spec.compute = ComputeProfile{gb(5.5), gb(3.3), 0.0};
  spec.noise = NoiseProfile{0.004, 0.008, 0.0};
  spec.compute.llc_bytes = 16ull * kMiB;
  spec.seed = stable_hash("tetra");
  return spec;
}

std::vector<std::string> platform_names() {
  return {"henri", "henri-subnuma", "dahu", "diablo", "pyxis", "occigen"};
}

PlatformSpec make_platform(const std::string& name) {
  if (name == "henri") return make_henri();
  if (name == "henri-subnuma") return make_henri_subnuma();
  if (name == "dahu") return make_dahu();
  if (name == "diablo") return make_diablo();
  if (name == "pyxis") return make_pyxis();
  if (name == "occigen") return make_occigen();
  if (name == "tetra") return make_tetra();
  MCM_EXPECTS(!"unknown platform name");
  return {};
}

}  // namespace mcm::topo
