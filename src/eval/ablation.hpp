// Ablation studies over the simulated hardware and over the predictors.
//
// (a) Hardware-mechanism ablation: disable one contention mechanism of the
//     simulated platform at a time (DMA floor, requestor degradation, host
//     coupling, soft throttling, or the entire priority arbitration) and
//     re-run the full calibrate + evaluate pipeline. This shows which of
//     the paper's §II-A hardware hypotheses the model's accuracy rests on.
// (b) Predictor comparison: score the paper's model against the baseline
//     predictors with the Table-II protocol on one platform.
#pragma once

#include <string>
#include <vector>

#include "model/metrics.hpp"
#include "topo/platforms.hpp"

namespace mcm::pipeline {
class Runner;
}  // namespace mcm::pipeline

namespace mcm::eval {

struct AblationResult {
  std::string variant;
  std::string note;  ///< what was removed, and why it matters
  model::ErrorReport report;
};

/// Names of the hardware ablation variants, "baseline" first.
[[nodiscard]] std::vector<std::string> hardware_variants();

/// Apply a hardware variant to a platform spec ("baseline" returns it
/// unchanged). Unknown names throw.
[[nodiscard]] topo::PlatformSpec apply_hardware_variant(
    topo::PlatformSpec spec, const std::string& variant);

/// Run the full scenario on every hardware variant of `platform` via
/// `runner`. Variants are keyed individually in the runner's calibration
/// cache (spec.variant carries the variant name).
[[nodiscard]] std::vector<AblationResult> run_hardware_ablation(
    pipeline::Runner& runner, const std::string& platform);
[[nodiscard]] std::vector<AblationResult> run_hardware_ablation(
    const std::string& platform);

/// Run the Table-II protocol for the paper's model and all baselines. The
/// scenario pipeline supplies both the calibration sweeps (shared with the
/// baselines) and the full measured sweep everything is scored against.
[[nodiscard]] std::vector<model::ErrorReport> run_predictor_comparison(
    pipeline::Runner& runner, const std::string& platform);
[[nodiscard]] std::vector<model::ErrorReport> run_predictor_comparison(
    const std::string& platform);

/// Render either result list as a table.
[[nodiscard]] std::string render_ablation(
    const std::vector<AblationResult>& results);

}  // namespace mcm::eval
