// Table reproduction: Table I (testbed characteristics) and Table II
// (model prediction errors across all platforms).
#pragma once

#include <string>
#include <vector>

#include "model/metrics.hpp"

namespace mcm::pipeline {
class Runner;
}  // namespace mcm::pipeline

namespace mcm::eval {

/// Render Table I from the platform presets.
[[nodiscard]] std::string render_table1();

/// Run the full measure → calibrate → predict → score scenario on every
/// preset platform via `runner` (sharing its calibration cache); one
/// ErrorReport per platform in Table I order.
[[nodiscard]] std::vector<model::ErrorReport> run_table2(
    pipeline::Runner& runner);

/// Convenience form with a private single-use runner.
[[nodiscard]] std::vector<model::ErrorReport> run_table2();

/// Render the Table II reproduction (adds the average row).
[[nodiscard]] std::string render_table2(
    const std::vector<model::ErrorReport>& reports);

}  // namespace mcm::eval
