// Table reproduction: Table I (testbed characteristics) and Table II
// (model prediction errors across all platforms).
#pragma once

#include <string>
#include <vector>

#include "model/metrics.hpp"

namespace mcm::eval {

/// Render Table I from the platform presets.
[[nodiscard]] std::string render_table1();

/// Run the full measure + calibrate + evaluate pipeline on every preset
/// platform; one ErrorReport per platform in Table I order.
[[nodiscard]] std::vector<model::ErrorReport> run_table2();

/// Render the Table II reproduction (adds the average row).
[[nodiscard]] std::string render_table2(
    const std::vector<model::ErrorReport>& reports);

}  // namespace mcm::eval
