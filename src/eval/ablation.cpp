#include "eval/ablation.hpp"

#include "baselines/baselines.hpp"
#include "model/model.hpp"
#include "pipeline/runner.hpp"
#include "util/contracts.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace mcm::eval {

namespace {

[[nodiscard]] const char* variant_note(const std::string& variant) {
  if (variant == "baseline") return "all mechanisms active";
  if (variant == "no-dma-floor") {
    return "no assured minimum for communications (starvation possible)";
  }
  if (variant == "no-degradation") {
    return "no post-saturation capacity decline (delta_l = delta_r = 0)";
  }
  if (variant == "no-host-coupling") {
    return "NIC ingress insensitive to host-socket compute load";
  }
  if (variant == "no-soft-throttle") {
    return "communications keep nominal bandwidth until the bus is full";
  }
  if (variant == "fair-share-arbiter") {
    return "no CPU priority: one max-min pool for all requestors";
  }
  return "";
}

}  // namespace

std::vector<std::string> hardware_variants() {
  return {"baseline",         "no-dma-floor",     "no-degradation",
          "no-host-coupling", "no-soft-throttle", "fair-share-arbiter"};
}

topo::PlatformSpec apply_hardware_variant(topo::PlatformSpec spec,
                                          const std::string& variant) {
  // "fair-share-arbiter" changes the arbitration policy, not the spec;
  // handled by the caller (run_hardware_ablation).
  if (variant == "baseline" || variant == "fair-share-arbiter") return spec;
  // Edit every link's contention spec through the machine's controlled
  // mutation hooks; structure and all other characteristics stay identical.
  for (const topo::Link& link : spec.machine.links()) {
    topo::ContentionSpec contention = link.contention;
    if (variant == "no-dma-floor") {
      contention.dma_floor = Bandwidth::gb_per_s(0.2);
    } else if (variant == "no-degradation") {
      contention.degradation_per_requestor = Bandwidth{};
    } else if (variant == "no-host-coupling") {
      contention.ambient_cpu_degradation = Bandwidth{};
    } else if (variant == "no-soft-throttle") {
      contention.dma_soft_start = 1.0;
      contention.dma_soft_min = 1.0;
    } else {
      MCM_EXPECTS(!"unknown hardware ablation variant");
    }
    spec.machine.set_link_contention(link.id, contention);
    if (variant == "no-host-coupling") {
      spec.machine.set_link_ambient_socket(link.id,
                                           topo::SocketId::invalid());
    }
  }
  return spec;
}

std::vector<AblationResult> run_hardware_ablation(
    pipeline::Runner& runner, const std::string& platform) {
  std::vector<AblationResult> results;
  for (const std::string& variant : hardware_variants()) {
    pipeline::ScenarioSpec spec;
    spec.name = platform + "-" + variant;
    spec.platform = platform;
    spec.platform_override =
        apply_hardware_variant(topo::make_platform(platform), variant);
    spec.variant = variant;
    spec.policy = variant == "fair-share-arbiter"
                      ? sim::ArbitrationPolicy::kFairShare
                      : sim::ArbitrationPolicy::kCpuPriorityWithFloor;
    AblationResult result;
    result.variant = variant;
    result.note = variant_note(variant);
    result.report = runner.run(spec).errors;
    results.push_back(std::move(result));
  }
  return results;
}

std::vector<AblationResult> run_hardware_ablation(
    const std::string& platform) {
  pipeline::Runner runner;
  return run_hardware_ablation(runner, platform);
}

std::vector<model::ErrorReport> run_predictor_comparison(
    pipeline::Runner& runner, const std::string& platform) {
  pipeline::ScenarioSpec spec;
  spec.name = platform + "-predictors";
  spec.platform = platform;
  const pipeline::ScenarioResult scenario = runner.run(spec);
  const bench::SweepResult& calibration = scenario.calibration;
  const bench::SweepResult& full = scenario.sweep;

  std::vector<model::ErrorReport> reports;
  const baseline::PaperModelPredictor paper(scenario.contention_model());
  reports.push_back(baseline::evaluate_predictor(paper, full));
  const auto queueing =
      baseline::make_baseline<baseline::QueueingBaseline>(calibration);
  reports.push_back(baseline::evaluate_predictor(queueing, full));
  const auto langguth =
      baseline::make_baseline<baseline::LangguthBaseline>(calibration);
  reports.push_back(baseline::evaluate_predictor(langguth, full));
  const auto perfect =
      baseline::make_baseline<baseline::PerfectScalingBaseline>(calibration);
  reports.push_back(baseline::evaluate_predictor(perfect, full));
  return reports;
}

std::vector<model::ErrorReport> run_predictor_comparison(
    const std::string& platform) {
  pipeline::Runner runner;
  return run_predictor_comparison(runner, platform);
}

std::string render_ablation(const std::vector<AblationResult>& results) {
  AsciiTable table({"variant", "comm MAPE", "comp MAPE", "average",
                    "mechanism removed"});
  table.set_alignments({Align::kLeft, Align::kRight, Align::kRight,
                        Align::kRight, Align::kLeft});
  for (const AblationResult& result : results) {
    table.add_row({result.variant, format_percent(result.report.comm_all),
                   format_percent(result.report.comp_all),
                   format_percent(result.report.average), result.note});
  }
  return table.render();
}

}  // namespace mcm::eval
