// Figure reproduction: for one platform, generate the measured and
// predicted bandwidth series of every placement — the content of the
// paper's Figures 3 to 8 — and render them as text tables and CSV.
#pragma once

#include <string>
#include <vector>

#include "benchlib/curves.hpp"
#include "model/model.hpp"

namespace mcm::eval {

/// One subplot of a figure: a placement's measured curve + model curve.
struct FigureSeries {
  bench::PlacementCurve measured;
  model::PredictedCurve predicted;
  bool is_sample = false;  ///< placement used to instantiate the model
};

/// A full figure: all placements of one platform.
struct FigureData {
  std::string figure_id;  ///< e.g. "Figure 3"
  std::string platform;
  std::size_t numa_per_socket = 0;
  std::vector<FigureSeries> subplots;
};

/// Run the complete measure + calibrate + predict pipeline for `platform`.
[[nodiscard]] FigureData make_figure(const std::string& figure_id,
                                     const std::string& platform);

/// Render one subplot as a table: per core count, measured and predicted
/// bandwidths for both streams.
[[nodiscard]] std::string render_subplot(const FigureSeries& series);

/// Render the whole figure (all subplots + per-figure summary).
[[nodiscard]] std::string render_figure(const FigureData& figure);

/// CSV with one row per (placement, cores) holding all eight series.
[[nodiscard]] std::string figure_csv(const FigureData& figure);

/// The stacked-bandwidth view of Fig. 2: an ASCII area chart of compute +
/// communication bandwidth by core count, annotated with the calibrated
/// anchor points (Nmax_par, Nmax_seq, ...).
[[nodiscard]] std::string render_stacked(const FigureData& figure,
                                         topo::NumaId comp,
                                         topo::NumaId comm);

}  // namespace mcm::eval
