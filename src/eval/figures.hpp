// Figure reproduction: for one platform, generate the measured and
// predicted bandwidth series of every placement — the content of the
// paper's Figures 3 to 8 — and render them as text tables and CSV.
//
// The data comes out of the scenario pipeline (pipeline::Runner): one
// all-placements scenario per figure, so figures share the runner's
// calibration cache with every other consumer.
#pragma once

#include <string>
#include <vector>

#include "benchlib/curves.hpp"
#include "model/model.hpp"
#include "pipeline/runner.hpp"

namespace mcm::eval {

/// One subplot of a figure: a placement's measured curve + model curve.
/// `predicted` is aligned to the measured core counts (index i predicts
/// measured.points[i]).
struct FigureSeries {
  bench::PlacementCurve measured;
  model::PredictedCurve predicted;
  bool is_sample = false;  ///< placement used to instantiate the model
};

/// A full figure: all placements of one platform.
struct FigureData {
  std::string figure_id;  ///< e.g. "Figure 3"
  std::string platform;
  std::size_t numa_per_socket = 0;
  /// The calibrated parameter sets behind the predictions (render_stacked
  /// annotates its chart with them).
  model::ModelParams local;
  model::ModelParams remote;
  std::vector<FigureSeries> subplots;
};

/// Run the measure → calibrate → predict scenario for `platform` on
/// `runner` (warm calibrations come from its cache).
[[nodiscard]] FigureData make_figure(pipeline::Runner& runner,
                                     const std::string& figure_id,
                                     const std::string& platform);

/// Convenience form with a private single-use runner.
[[nodiscard]] FigureData make_figure(const std::string& figure_id,
                                     const std::string& platform);

/// Render one subplot as a table: per core count, measured and predicted
/// bandwidths for both streams.
[[nodiscard]] std::string render_subplot(const FigureSeries& series);

/// Render the whole figure (all subplots + per-figure summary).
[[nodiscard]] std::string render_figure(const FigureData& figure);

/// CSV with one row per (placement, cores) holding all eight series.
[[nodiscard]] std::string figure_csv(const FigureData& figure);

/// The stacked-bandwidth view of Fig. 2: an ASCII area chart of compute +
/// communication bandwidth by core count, annotated with the calibrated
/// anchor points (Nmax_par, Nmax_seq, ...). The placement must be one of
/// the two calibration samples — those are the curves the annotated
/// parameters were extracted from.
[[nodiscard]] std::string render_stacked(const FigureData& figure,
                                         topo::NumaId comp,
                                         topo::NumaId comm);

}  // namespace mcm::eval
