#include "eval/figures.hpp"

#include <algorithm>
#include <cmath>

#include "model/metrics.hpp"
#include "util/contracts.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace mcm::eval {

FigureData make_figure(pipeline::Runner& runner,
                       const std::string& figure_id,
                       const std::string& platform) {
  pipeline::ScenarioSpec spec;
  spec.name = figure_id;
  spec.platform = platform;
  spec.placements = pipeline::PlacementSet::kAll;
  const pipeline::ScenarioResult result = runner.run(spec);

  FigureData figure;
  figure.figure_id = figure_id;
  figure.platform = platform;
  figure.numa_per_socket = result.sweep.numa_per_socket;
  figure.local = result.local;
  figure.remote = result.remote;
  for (std::size_t i = 0; i < result.sweep.curves.size(); ++i) {
    FigureSeries series;
    series.measured = result.sweep.curves[i];
    series.predicted = result.predicted[i];
    series.is_sample = result.errors.placements[i].is_sample;
    figure.subplots.push_back(std::move(series));
  }
  return figure;
}

FigureData make_figure(const std::string& figure_id,
                       const std::string& platform) {
  pipeline::Runner runner;
  return make_figure(runner, figure_id, platform);
}

std::string render_subplot(const FigureSeries& series) {
  const bench::PlacementCurve& m = series.measured;
  std::string header =
      "data for computations on node " +
      std::to_string(m.comp_numa.value()) +
      ", data for communications on node " +
      std::to_string(m.comm_numa.value());
  if (series.is_sample) header += "  [model sample]";

  AsciiTable table({"cores", "comp alone", "comm alone", "comp par",
                    "comp par (model)", "comm par", "comm par (model)"});
  table.set_alignments(std::vector<Align>(7, Align::kRight));
  for (std::size_t i = 0; i < m.points.size(); ++i) {
    const bench::BandwidthPoint& p = m.points[i];
    table.add_row({std::to_string(p.cores),
                   format_fixed(p.compute_alone_gb, 2),
                   format_fixed(p.comm_alone_gb, 2),
                   format_fixed(p.compute_parallel_gb, 2),
                   format_fixed(series.predicted.compute_parallel_gb[i], 2),
                   format_fixed(p.comm_parallel_gb, 2),
                   format_fixed(series.predicted.comm_parallel_gb[i], 2)});
  }
  const model::PlacementError error = model::placement_error(
      series.measured, series.predicted, series.is_sample);
  return header + "\n" + table.render() + "prediction error: comm " +
         format_percent(error.comm_mape) + ", comp " +
         format_percent(error.comp_mape) + "\n";
}

std::string render_figure(const FigureData& figure) {
  std::string out = "== " + figure.figure_id + ": platform " +
                    figure.platform + " (GB/s) ==\n\n";
  for (const FigureSeries& series : figure.subplots) {
    out += render_subplot(series);
    out += "\n";
  }
  return out;
}

std::string figure_csv(const FigureData& figure) {
  CsvWriter csv({"comp_numa", "comm_numa", "is_sample", "cores",
                 "compute_alone_gb", "comm_alone_gb", "compute_parallel_gb",
                 "comm_parallel_gb", "model_compute_alone_gb",
                 "model_comm_alone_gb", "model_compute_parallel_gb",
                 "model_comm_parallel_gb"});
  for (const FigureSeries& series : figure.subplots) {
    const bench::PlacementCurve& m = series.measured;
    for (std::size_t i = 0; i < m.points.size(); ++i) {
      const bench::BandwidthPoint& p = m.points[i];
      csv.add_row({std::to_string(m.comp_numa.value()),
                   std::to_string(m.comm_numa.value()),
                   series.is_sample ? "1" : "0", std::to_string(p.cores),
                   format_fixed(p.compute_alone_gb, 4),
                   format_fixed(p.comm_alone_gb, 4),
                   format_fixed(p.compute_parallel_gb, 4),
                   format_fixed(p.comm_parallel_gb, 4),
                   format_fixed(series.predicted.compute_alone_gb[i], 4),
                   format_fixed(series.predicted.comm_alone_gb[i], 4),
                   format_fixed(series.predicted.compute_parallel_gb[i], 4),
                   format_fixed(series.predicted.comm_parallel_gb[i], 4)});
    }
  }
  return csv.render();
}

std::string render_stacked(const FigureData& figure, topo::NumaId comp,
                           topo::NumaId comm) {
  const FigureSeries* found = nullptr;
  for (const FigureSeries& series : figure.subplots) {
    if (series.measured.comp_numa == comp &&
        series.measured.comm_numa == comm) {
      found = &series;
      break;
    }
  }
  MCM_EXPECTS(found != nullptr);
  MCM_EXPECTS(found->is_sample);
  const bench::PlacementCurve& m = found->measured;

  // Scale: 60 character columns for the largest stacked value.
  double peak = 0.0;
  for (const bench::BandwidthPoint& p : m.points) {
    peak = std::max(peak, std::max(p.total_parallel_gb(),
                                   p.compute_alone_gb));
  }
  const double per_char = peak / 60.0;

  // The annotated anchors come from the pipeline's calibrate stage —
  // sample curves are exactly the curves those parameters were extracted
  // from.
  const model::ModelParams& params =
      comp.value() == 0 ? figure.local : figure.remote;
  std::string out =
      "Stacked memory bandwidth, computation data on node " +
      std::to_string(comp.value()) + ", communication data on node " +
      std::to_string(comm.value()) + " (platform " + figure.platform +
      ")\n'#' compute bandwidth, '+' communication bandwidth, '|' "
      "compute-alone level; one row per core count\n\n";
  for (const bench::BandwidthPoint& p : m.points) {
    const int comp_chars = static_cast<int>(
        std::lround(p.compute_parallel_gb / per_char));
    const int comm_chars =
        static_cast<int>(std::lround(p.comm_parallel_gb / per_char));
    const int alone_chars =
        static_cast<int>(std::lround(p.compute_alone_gb / per_char));
    std::string bar(static_cast<std::size_t>(comp_chars), '#');
    bar += std::string(static_cast<std::size_t>(comm_chars), '+');
    if (alone_chars >= 0 &&
        static_cast<std::size_t>(alone_chars) >= bar.size()) {
      bar += std::string(
          static_cast<std::size_t>(alone_chars) - bar.size(), ' ');
      bar += '|';
    }
    std::string label = pad_left(std::to_string(p.cores), 2) + " ";
    std::string annotation;
    if (p.cores == params.n_par_max) {
      annotation += "  <- Nmax_par (Tmax_par = " +
                    format_fixed(params.t_par_max, 1) + " GB/s)";
    }
    if (p.cores == params.n_seq_max) {
      annotation += "  <- Nmax_seq (Tmax_seq = " +
                    format_fixed(params.t_seq_max, 1) + " GB/s)";
    }
    out += label + bar + annotation + "\n";
  }
  out += "\ncalibrated parameters:\n" + model::to_string(params);
  return out;
}

}  // namespace mcm::eval
