#include "eval/experiments.hpp"

#include "util/table.hpp"

namespace mcm::eval {

std::vector<ExperimentInfo> experiment_index() {
  return {
      {"E-TAB1", "Table I",
       "testbed platform characteristics (6 presets)",
       "bench_tab1_platforms"},
      {"E-FIG2", "Figure 2",
       "stacked bandwidth anatomy, henri-subnuma both-local sweep",
       "bench_fig2_stacked"},
      {"E-FIG3", "Figure 3",
       "henri: 2x2 placements, measured vs model, n = 1..17",
       "bench_fig3_henri"},
      {"E-FIG4", "Figure 4",
       "henri-subnuma: 4x4 placements incl. symmetry, n = 1..17",
       "bench_fig4_henri_subnuma"},
      {"E-FIG5", "Figure 5",
       "diablo: NUMA-sensitive NIC (22.4 vs 12.1 GB/s), low contention",
       "bench_fig5_diablo"},
      {"E-FIG6", "Figure 6",
       "occigen: only computations impacted, most accurate platform",
       "bench_fig6_occigen"},
      {"E-FIG7", "Figure 7",
       "pyxis: unstable network, model's worst non-sample comm error",
       "bench_fig7_pyxis"},
      {"E-FIG8", "Figure 8",
       "dahu: Intel + Omni-Path variant",
       "bench_fig8_dahu"},
      {"E-TAB2", "Table II",
       "model MAPE per platform, samples vs non-samples",
       "bench_tab2_errors"},
      {"E-ABL1", "ablation (ours)",
       "hardware-mechanism ablation: floors, degradation, coupling, "
       "priority",
       "bench_ablation_arbiter"},
      {"E-ABL2", "ablation (ours)",
       "paper model vs queueing / equal-split / perfect-scaling baselines",
       "bench_ablation_baselines"},
      {"E-EXT1", "extension (paper SIV-C)",
       "message-size sensitivity of contention, henri, 1..64 MiB",
       "bench_sweep_msgsize"},
      {"E-EXT2", "extension (paper SVI)",
       "workload variants: ping-pong comms and copy kernels, recalibrated",
       "bench_sweep_workloads"},
      {"E-EXT3", "extension (paper SIV-C-1)",
       "many-NUMA-node limitation on a 4-socket ring machine (tetra)",
       "bench_ext_manynodes"},
      {"E-EXT4", "extension (paper SVI)",
       "last-level cache: temporal kernel, working-set sweep on henri",
       "bench_ext_llc"},
      {"E-EXT5", "extension (paper SIV-A)",
       "calibration stability under independent measurement noise",
       "bench_calibration_stability"},
      {"E-PIPE1", "infrastructure (ours)",
       "scenario pipeline: cached calibration and parallel placement "
       "sweeps behind every figure/table run",
       "bench_pipeline_scenarios"},
  };
}

std::string render_experiment_index() {
  AsciiTable table({"id", "paper artefact", "description", "bench target"});
  for (const ExperimentInfo& info : experiment_index()) {
    table.add_row({info.id, info.artefact, info.description,
                   info.bench_target});
  }
  return table.render();
}

}  // namespace mcm::eval
