#include "eval/tables.hpp"

#include "model/report.hpp"
#include "pipeline/runner.hpp"
#include "topo/platforms.hpp"
#include "util/table.hpp"

namespace mcm::eval {

std::string render_table1() {
  AsciiTable table({"Name", "Processor", "Memory", "Network"});
  for (const std::string& name : topo::platform_names()) {
    const topo::PlatformSpec spec = topo::make_platform(name);
    table.add_row({spec.name, spec.processor, spec.memory, spec.network});
  }
  return table.render();
}

std::vector<model::ErrorReport> run_table2(pipeline::Runner& runner) {
  std::vector<model::ErrorReport> reports;
  for (const std::string& name : topo::platform_names()) {
    pipeline::ScenarioSpec spec;
    spec.name = "table2-" + name;
    spec.platform = name;
    reports.push_back(runner.run(spec).errors);
  }
  return reports;
}

std::vector<model::ErrorReport> run_table2() {
  pipeline::Runner runner;
  return run_table2(runner);
}

std::string render_table2(const std::vector<model::ErrorReport>& reports) {
  return model::render_error_table(reports);
}

}  // namespace mcm::eval
