#include "eval/tables.hpp"

#include "benchlib/backend.hpp"
#include "benchlib/runner.hpp"
#include "model/model.hpp"
#include "model/report.hpp"
#include "topo/platforms.hpp"
#include "util/table.hpp"

namespace mcm::eval {

std::string render_table1() {
  AsciiTable table({"Name", "Processor", "Memory", "Network"});
  for (const std::string& name : topo::platform_names()) {
    const topo::PlatformSpec spec = topo::make_platform(name);
    table.add_row({spec.name, spec.processor, spec.memory, spec.network});
  }
  return table.render();
}

std::vector<model::ErrorReport> run_table2() {
  std::vector<model::ErrorReport> reports;
  for (const std::string& name : topo::platform_names()) {
    bench::SimBackend backend(topo::make_platform(name));
    const model::ContentionModel model =
        model::ContentionModel::from_backend(backend);
    const bench::SweepResult sweep = bench::run_all_placements(backend);
    reports.push_back(model.evaluate_against(sweep));
  }
  return reports;
}

std::string render_table2(const std::vector<model::ErrorReport>& reports) {
  return model::render_error_table(reports);
}

}  // namespace mcm::eval
