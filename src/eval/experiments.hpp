// Experiment registry: the authoritative index of every paper artefact the
// repository reproduces, and which benchmark binary regenerates it. Used by
// documentation and the `bench_tab1_platforms --list` style outputs; keep
// in sync with DESIGN.md's experiment index.
#pragma once

#include <string>
#include <vector>

namespace mcm::eval {

struct ExperimentInfo {
  std::string id;           ///< e.g. "E-FIG3"
  std::string artefact;     ///< e.g. "Figure 3 (henri)"
  std::string description;  ///< workload and parameters
  std::string bench_target; ///< binary that regenerates it
};

[[nodiscard]] std::vector<ExperimentInfo> experiment_index();

[[nodiscard]] std::string render_experiment_index();

}  // namespace mcm::eval
