#include "net/fault.hpp"

#include "util/contracts.hpp"

namespace mcm::net {

void RetryPolicy::validate() const {
  MCM_EXPECTS(timeout.value() > 0.0);
  MCM_EXPECTS(backoff >= 1.0);
}

void FaultPlan::validate() const {
  MCM_EXPECTS(delay_probability >= 0.0 && delay_probability <= 1.0);
  MCM_EXPECTS(drop_probability >= 0.0 && drop_probability <= 1.0);
  MCM_EXPECTS(delay.value() >= 0.0);
  MCM_EXPECTS(redelivery_delay.value() >= 0.0);
}

}  // namespace mcm::net
