// SimChannel: message timing on a simulated platform.
//
// Combines the protocol model (latency, eager/rendezvous) with the memory
// system's arbitrated DMA bandwidth to answer "how long does one message
// take, given this placement and this compute load?" — the question the
// message-size sweep benchmark and the stencil example ask.
#pragma once

#include <cstdint>

#include "net/protocol.hpp"
#include "obs/observer.hpp"
#include "sim/machine.hpp"

namespace mcm::net {

class SimChannel {
 public:
  explicit SimChannel(const sim::SimMachine& machine,
                      ProtocolParams params = {});

  [[nodiscard]] const ProtocolParams& protocol() const { return params_; }

  /// Time to receive one message into buffers on `comm`, idle machine.
  [[nodiscard]] Seconds message_time(std::uint64_t bytes,
                                     topo::NumaId comm) const;

  /// Same, while `cores` cores stream to `comp` (0 cores = idle).
  [[nodiscard]] Seconds message_time_under_load(std::uint64_t bytes,
                                                std::size_t cores,
                                                topo::NumaId comp,
                                                topo::NumaId comm) const;

  /// Sustained bandwidth of back-to-back messages of `bytes` each.
  [[nodiscard]] Bandwidth effective_bandwidth_under_load(
      std::uint64_t bytes, std::size_t cores, topo::NumaId comp,
      topo::NumaId comm) const;

  /// Attach metrics (counter net.sim_channel.messages, histogram
  /// net.sim_channel.effective_gb of answered message bandwidths).
  /// Observation only; answers are unchanged, zero-cost when detached.
  void attach_observer(const obs::Observer& observer);

 private:
  const sim::SimMachine* machine_;
  ProtocolParams params_;

  obs::Counter* met_messages_ = nullptr;
  obs::BandwidthHistogram* met_effective_ = nullptr;
};

}  // namespace mcm::net
