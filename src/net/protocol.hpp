// Wire protocol model: eager vs rendezvous transfer, message timing.
//
// Mirrors the behaviour of HPC communication libraries (NewMadeleine /
// MadMPI in the paper): small messages are sent eagerly (one traversal,
// buffered), large messages negotiate a rendezvous (extra handshake
// round-trip, then zero-copy pipelined chunks).
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace mcm::net {

enum class ProtocolMode : std::uint8_t {
  kEager,
  kRendezvous,
};

[[nodiscard]] constexpr const char* to_string(ProtocolMode mode) {
  return mode == ProtocolMode::kEager ? "eager" : "rendezvous";
}

/// Tunables of the protocol. Defaults model an InfiniBand-class fabric.
struct ProtocolParams {
  /// Messages strictly larger than this go through rendezvous.
  std::uint64_t eager_threshold = 32 * kKiB;
  /// One-way base latency of any message.
  Seconds base_latency{2e-6};
  /// Extra round-trip cost of the rendezvous handshake.
  Seconds rendezvous_latency{4e-6};
  /// Pipelining granularity of rendezvous transfers.
  std::uint64_t chunk_bytes = 1 * kMiB;

  void validate() const;
};

/// Protocol mode selected for a message of `bytes`.
[[nodiscard]] ProtocolMode select_mode(const ProtocolParams& params,
                                       std::uint64_t bytes);

/// Predicted transfer time of one message when the data path sustains
/// `bandwidth`: latency (mode-dependent) + serialization time.
[[nodiscard]] Seconds message_time(const ProtocolParams& params,
                                   std::uint64_t bytes, Bandwidth bandwidth);

/// Effective bandwidth of back-to-back messages of `bytes` each (the
/// benchmark's figure of merit): bytes / message_time.
[[nodiscard]] Bandwidth effective_bandwidth(const ProtocolParams& params,
                                            std::uint64_t bytes,
                                            Bandwidth bandwidth);

}  // namespace mcm::net
