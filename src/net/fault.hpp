// Fault model of the mcm::net transport layer.
//
// The paper's evaluation ran on real clusters where NICs stall, links
// jitter and messages get retransmitted; the reproduction's transport is
// an in-process shared-memory world that never fails. This header adds
// the failure vocabulary: a typed net::Error (so callers can distinguish
// a deadline expiry from a departed peer), a RetryPolicy for blocking
// receives, and a seeded, deterministic FaultPlan that ShmWorld can
// inject into its transport — message delays, drop-with-redelivery, and
// induced rendezvous stalls.
//
// Observability: an attached obs::Observer (ShmWorld::attach_observer)
// counts net.faults.injected / net.retries / net.timeouts and emits one
// trace instant per injected fault ("fault:delay" / "fault:drop" /
// "fault:stall" on the sending rank's track).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/units.hpp"

namespace mcm::net {

/// Why a blocking operation gave up.
enum class ErrorKind : std::uint8_t {
  kTimeout,   ///< a wait_for / recv deadline expired
  kPeerGone,  ///< the peer rank was marked gone (ShmWorld::mark_peer_gone)
};

[[nodiscard]] constexpr const char* to_string(ErrorKind kind) {
  return kind == ErrorKind::kTimeout ? "timeout" : "peer-gone";
}

/// Environmental transport failure — unlike ContractViolation (a
/// programming error), an Error is expected under faults and meant to be
/// caught and handled (retry, mark the placement failed, ...).
class Error : public std::runtime_error {
 public:
  Error(ErrorKind kind, const std::string& what_arg)
      : std::runtime_error(what_arg), kind_(kind) {}

  [[nodiscard]] ErrorKind kind() const { return kind_; }

 private:
  ErrorKind kind_;
};

/// Deadline + retry schedule for blocking receives: attempt i waits
/// `timeout * backoff^i`, so the total budget grows geometrically. Every
/// attempt after the first counts one net.retries; exhausting the last
/// attempt counts one net.timeouts and throws Error(kTimeout).
struct RetryPolicy {
  /// Deadline of the first wait attempt.
  Seconds timeout{0.1};
  /// Extra attempts after the first (0 = a plain deadline, no retry).
  std::size_t max_retries = 0;
  /// Per-retry deadline multiplier (exponential backoff); must be >= 1.
  double backoff = 2.0;

  void validate() const;
};

/// Seeded deterministic fault plan for the ShmWorld transport. Decisions
/// are drawn from a private xoshiro stream in message-post order, so a
/// fixed posting order always injects the same faults. All probabilities
/// are in [0, 1]; a default-constructed plan injects nothing.
struct FaultPlan {
  std::uint64_t seed = 0;

  /// Message delay: with `delay_probability`, a message becomes visible to
  /// the receiver only `delay` after it was posted (the sender's eager
  /// completion is unaffected — the fault sits on the wire, not in the
  /// send buffer).
  double delay_probability = 0.0;
  Seconds delay{0.0};

  /// Drop with redelivery: with `drop_probability`, the first copy of a
  /// message is lost and the "retransmission" arrives `redelivery_delay`
  /// after the post. FIFO order per (source, tag) is preserved — later
  /// messages never overtake the dropped one, as with MPI seq numbers.
  double drop_probability = 0.0;
  Seconds redelivery_delay{0.0};

  /// Induced rendezvous stall: every `stall_every`-th rendezvous-mode
  /// message (1-based; 0 = never) never becomes deliverable. Only a
  /// wait_for / recv deadline or mark_peer_gone gets the waiter out.
  std::size_t stall_every = 0;

  void validate() const;

  /// True when any fault can fire.
  [[nodiscard]] bool armed() const {
    return delay_probability > 0.0 || drop_probability > 0.0 ||
           stall_every != 0;
  }
};

}  // namespace mcm::net
