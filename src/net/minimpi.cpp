#include "net/minimpi.hpp"

#include <atomic>
#include <cstring>

#include "util/contracts.hpp"

namespace mcm::net {

namespace detail {

struct PendingOp {
  // `done` is read lock-free by Request::done() while the mailbox lock
  // protects all writers: atomic with release/acquire ordering so the
  // `transferred` write is visible once `done` reads true.
  std::atomic<bool> done{false};
  std::size_t transferred = 0;
};

/// Shared state of the two endpoints: matching queues, one lock, one
/// condition variable. Two ranks only, so "the other rank" is implicit.
class MailboxPair {
 public:
  explicit MailboxPair(ProtocolParams params) : params(params) {
    params.validate();
  }

  struct SendEntry {
    int tag = 0;
    std::shared_ptr<PendingOp> op;
    /// Rendezvous: the sender's buffer, valid until completion.
    std::span<const std::byte> source;
    /// Eager: owned copy of the payload.
    std::vector<std::byte> eager_copy;
    bool eager = false;

    [[nodiscard]] std::span<const std::byte> payload() const {
      return eager ? std::span<const std::byte>(eager_copy) : source;
    }
  };

  struct RecvEntry {
    int tag = 0;
    std::shared_ptr<PendingOp> op;
    std::span<std::byte> destination;
  };

  ProtocolParams params;
  std::mutex mutex;
  std::condition_variable cv;
  /// Sends addressed TO rank r, not yet matched.
  std::deque<SendEntry> pending_sends[2];
  /// Receives posted BY rank r, not yet matched.
  std::deque<RecvEntry> pending_recvs[2];
  int barrier_count = 0;
  long barrier_generation = 0;

  /// Observability, attached once before traffic starts (ShmWorld's
  /// contract); instruments are pre-resolved so emission under the mailbox
  /// lock never touches the registry mutex.
  obs::Observer obs;
  obs::WallClock clock;
  obs::Counter* met_isend = nullptr;
  obs::Counter* met_irecv = nullptr;
  obs::Counter* met_eager = nullptr;
  obs::Counter* met_rendezvous = nullptr;
  obs::Counter* met_delivered_msgs = nullptr;
  obs::Counter* met_delivered_bytes = nullptr;

  void attach(const obs::Observer& observer) {
    obs = observer;
    if (obs.metrics != nullptr) {
      met_isend = &obs.metrics->counter("net.minimpi.isend");
      met_irecv = &obs.metrics->counter("net.minimpi.irecv");
      met_eager = &obs.metrics->counter("net.minimpi.eager_msgs");
      met_rendezvous = &obs.metrics->counter("net.minimpi.rendezvous_msgs");
      met_delivered_msgs =
          &obs.metrics->counter("net.minimpi.delivered_msgs");
      met_delivered_bytes =
          &obs.metrics->counter("net.minimpi.delivered_bytes");
    } else {
      met_isend = nullptr;
      met_irecv = nullptr;
      met_eager = nullptr;
      met_rendezvous = nullptr;
      met_delivered_msgs = nullptr;
      met_delivered_bytes = nullptr;
    }
  }

  void note_post(int rank, const char* what, std::size_t bytes, int tag) {
    if (obs.trace == nullptr) return;
    obs::TraceEvent event;
    event.name = what;
    event.category = "net";
    event.ts_us = clock.now_us();
    event.track = static_cast<std::uint32_t>(rank);
    event.arg("bytes", static_cast<double>(bytes))
        .arg("tag", static_cast<double>(tag));
    obs.trace->record(event);
  }

  void note_deliver(std::size_t bytes) {
    if (met_delivered_msgs != nullptr) {
      met_delivered_msgs->add();
      met_delivered_bytes->add(bytes);
    }
    if (obs.trace != nullptr) {
      obs::TraceEvent event;
      event.name = "deliver";
      event.category = "net";
      event.ts_us = clock.now_us();
      event.track = 2;  // delivery track, distinct from the two ranks
      event.arg("bytes", static_cast<double>(bytes));
      obs.trace->record(event);
    }
  }
};

namespace {

void deliver(const MailboxPair::SendEntry& send,
             const MailboxPair::RecvEntry& recv) {
  const std::span<const std::byte> payload = send.payload();
  MCM_EXPECTS(recv.destination.size() >= payload.size());
  if (!payload.empty()) {
    std::memcpy(recv.destination.data(), payload.data(), payload.size());
  }
  send.op->transferred = payload.size();
  send.op->done.store(true, std::memory_order_release);
  recv.op->transferred = payload.size();
  recv.op->done.store(true, std::memory_order_release);
}

[[nodiscard]] bool tags_match(int recv_tag, int send_tag) {
  return recv_tag == kAnyTag || recv_tag == send_tag;
}

}  // namespace
}  // namespace detail

bool Request::done() const {
  MCM_EXPECTS(op_ != nullptr);
  return op_->done.load(std::memory_order_acquire);
}

std::size_t Request::transferred() const {
  MCM_EXPECTS(op_ != nullptr);
  MCM_EXPECTS(op_->done.load(std::memory_order_acquire));
  return op_->transferred;
}

Request Communicator::isend(int dest, int tag,
                            std::span<const std::byte> data) {
  MCM_EXPECTS(dest == 1 - rank_);
  MCM_EXPECTS(tag >= 0);
  detail::MailboxPair& mb = *mailboxes_;
  std::unique_lock lock(mb.mutex);

  if (mb.met_isend != nullptr) {
    mb.met_isend->add();
    (select_mode(mb.params, std::max<std::uint64_t>(data.size(), 1)) ==
             ProtocolMode::kEager
         ? mb.met_eager
         : mb.met_rendezvous)
        ->add();
  }
  mb.note_post(rank_, "isend", data.size(), tag);

  auto op = std::make_shared<detail::PendingOp>();

  // Match against an already-posted receive (FIFO).
  auto& recvs = mb.pending_recvs[dest];
  for (auto it = recvs.begin(); it != recvs.end(); ++it) {
    if (!detail::tags_match(it->tag, tag)) continue;
    detail::MailboxPair::SendEntry send;
    send.tag = tag;
    send.op = op;
    send.source = data;
    detail::deliver(send, *it);
    mb.note_deliver(data.size());
    recvs.erase(it);
    mb.cv.notify_all();
    return Request(std::move(op));
  }

  // No receiver yet: queue. Eager messages are buffered and complete now;
  // rendezvous messages keep pointing at the caller's buffer and complete
  // at match time (the caller must keep the buffer alive, as with MPI).
  detail::MailboxPair::SendEntry entry;
  entry.tag = tag;
  entry.op = op;
  if (select_mode(mb.params, std::max<std::uint64_t>(data.size(), 1)) ==
      ProtocolMode::kEager) {
    entry.eager = true;
    entry.eager_copy.assign(data.begin(), data.end());
    op->transferred = data.size();
    op->done.store(true, std::memory_order_release);
  } else {
    entry.source = data;
  }
  mb.pending_sends[dest].push_back(std::move(entry));
  return Request(std::move(op));
}

Request Communicator::irecv(int source, int tag, std::span<std::byte> data) {
  MCM_EXPECTS(source == 1 - rank_);
  MCM_EXPECTS(tag >= 0 || tag == kAnyTag);
  detail::MailboxPair& mb = *mailboxes_;
  std::unique_lock lock(mb.mutex);

  if (mb.met_irecv != nullptr) mb.met_irecv->add();
  mb.note_post(rank_, "irecv", data.size(), tag);

  auto op = std::make_shared<detail::PendingOp>();

  auto& sends = mb.pending_sends[rank_];
  for (auto it = sends.begin(); it != sends.end(); ++it) {
    if (!detail::tags_match(tag, it->tag)) continue;
    detail::MailboxPair::RecvEntry recv;
    recv.tag = tag;
    recv.op = op;
    recv.destination = data;
    const std::size_t delivered = it->payload().size();
    detail::deliver(*it, recv);
    mb.note_deliver(delivered);
    sends.erase(it);
    mb.cv.notify_all();
    return Request(std::move(op));
  }

  detail::MailboxPair::RecvEntry entry;
  entry.tag = tag;
  entry.op = op;
  entry.destination = data;
  mb.pending_recvs[rank_].push_back(std::move(entry));
  return Request(std::move(op));
}

void Communicator::wait(Request& request) {
  MCM_EXPECTS(request.op_ != nullptr);
  detail::MailboxPair& mb = *mailboxes_;
  std::unique_lock lock(mb.mutex);
  mb.cv.wait(lock, [&] {
    return request.op_->done.load(std::memory_order_acquire);
  });
}

bool Communicator::test(const Request& request) const {
  MCM_EXPECTS(request.op_ != nullptr);
  std::unique_lock lock(mailboxes_->mutex);
  return request.op_->done.load(std::memory_order_acquire);
}

void Communicator::send(int dest, int tag,
                        std::span<const std::byte> data) {
  Request request = isend(dest, tag, data);
  wait(request);
}

std::size_t Communicator::recv(int source, int tag,
                               std::span<std::byte> data) {
  Request request = irecv(source, tag, data);
  wait(request);
  return request.transferred();
}

std::optional<std::size_t> Communicator::probe(int source, int tag) const {
  MCM_EXPECTS(source == 1 - rank_);
  MCM_EXPECTS(tag >= 0 || tag == kAnyTag);
  detail::MailboxPair& mb = *mailboxes_;
  std::unique_lock lock(mb.mutex);
  for (const auto& send : mb.pending_sends[rank_]) {
    if (detail::tags_match(tag, send.tag)) return send.payload().size();
  }
  return std::nullopt;
}

std::size_t Communicator::sendrecv(int peer, int send_tag,
                                   std::span<const std::byte> outgoing,
                                   int recv_tag,
                                   std::span<std::byte> incoming) {
  // Post both non-blocking halves before waiting: with a blocking send
  // first, two rendezvous-sized exchanges would deadlock.
  Request send_request = isend(peer, send_tag, outgoing);
  Request recv_request = irecv(peer, recv_tag, incoming);
  wait(recv_request);
  wait(send_request);
  return recv_request.transferred();
}

void Communicator::barrier() {
  detail::MailboxPair& mb = *mailboxes_;
  std::unique_lock lock(mb.mutex);
  const long generation = mb.barrier_generation;
  if (++mb.barrier_count == 2) {
    mb.barrier_count = 0;
    ++mb.barrier_generation;
    mb.cv.notify_all();
    return;
  }
  mb.cv.wait(lock, [&] { return mb.barrier_generation != generation; });
}

ShmWorld::ShmWorld(ProtocolParams params)
    : params_(params),
      mailboxes_(std::make_unique<detail::MailboxPair>(params)) {
  comms_.push_back(Communicator(0, mailboxes_.get()));
  comms_.push_back(Communicator(1, mailboxes_.get()));
}

ShmWorld::~ShmWorld() = default;

Communicator& ShmWorld::comm(int rank) {
  MCM_EXPECTS(rank == 0 || rank == 1);
  return comms_[static_cast<std::size_t>(rank)];
}

void ShmWorld::attach_observer(const obs::Observer& observer) {
  std::lock_guard lock(mailboxes_->mutex);
  mailboxes_->attach(observer);
}

}  // namespace mcm::net
