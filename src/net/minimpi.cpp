#include "net/minimpi.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <limits>
#include <optional>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace mcm::net {

namespace detail {

namespace {
constexpr double kNever = std::numeric_limits<double>::infinity();
}  // namespace

struct PendingOp {
  // `done` is read lock-free by Request::done() while the mailbox lock
  // protects all writers: atomic with release/acquire ordering so the
  // `transferred` write is visible once `done` reads true.
  std::atomic<bool> done{false};
  std::size_t transferred = 0;
};

/// Shared state of the two endpoints: matching queues, one lock, one
/// condition variable. Two ranks only, so "the other rank" is implicit.
class MailboxPair {
 public:
  explicit MailboxPair(ProtocolParams params) : params(params) {
    params.validate();
  }

  struct SendEntry {
    int tag = 0;
    std::shared_ptr<PendingOp> op;
    /// Rendezvous: the sender's buffer, valid until completion.
    std::span<const std::byte> source;
    /// Eager: owned copy of the payload.
    std::vector<std::byte> eager_copy;
    bool eager = false;
    /// Wall time (mailbox clock, us) from which the message may be
    /// delivered; 0 = immediately, kNever = stalled forever. Set by the
    /// fault layer; always 0 on the fault-free fast paths.
    double available_at_us = 0.0;

    [[nodiscard]] std::span<const std::byte> payload() const {
      return eager ? std::span<const std::byte>(eager_copy) : source;
    }
  };

  struct RecvEntry {
    int tag = 0;
    std::shared_ptr<PendingOp> op;
    std::span<std::byte> destination;
  };

  ProtocolParams params;
  std::mutex mutex;
  std::condition_variable cv;
  /// Sends addressed TO rank r, not yet matched.
  std::deque<SendEntry> pending_sends[2];
  /// Receives posted BY rank r, not yet matched.
  std::deque<RecvEntry> pending_recvs[2];
  int barrier_count = 0;
  long barrier_generation = 0;

  /// Fault layer. Armed by ShmWorld::inject_faults before traffic starts;
  /// decisions are drawn under the mailbox lock in message-post order.
  FaultPlan plan;
  bool faults_armed = false;
  std::optional<Rng> fault_rng;
  std::size_t rendezvous_seen = 0;
  /// peer_gone[r]: rank r was declared dead (ShmWorld::mark_peer_gone).
  bool peer_gone[2] = {false, false};

  /// Observability, attached once before traffic starts (ShmWorld's
  /// contract); instruments are pre-resolved so emission under the mailbox
  /// lock never touches the registry mutex.
  obs::Observer obs;
  obs::WallClock clock;
  obs::Counter* met_isend = nullptr;
  obs::Counter* met_irecv = nullptr;
  obs::Counter* met_eager = nullptr;
  obs::Counter* met_rendezvous = nullptr;
  obs::Counter* met_delivered_msgs = nullptr;
  obs::Counter* met_delivered_bytes = nullptr;
  obs::Counter* met_faults = nullptr;
  obs::Counter* met_retries = nullptr;
  obs::Counter* met_timeouts = nullptr;

  void attach(const obs::Observer& observer) {
    obs = observer;
    if (obs.metrics != nullptr) {
      met_isend = &obs.metrics->counter("net.minimpi.isend");
      met_irecv = &obs.metrics->counter("net.minimpi.irecv");
      met_eager = &obs.metrics->counter("net.minimpi.eager_msgs");
      met_rendezvous = &obs.metrics->counter("net.minimpi.rendezvous_msgs");
      met_delivered_msgs =
          &obs.metrics->counter("net.minimpi.delivered_msgs");
      met_delivered_bytes =
          &obs.metrics->counter("net.minimpi.delivered_bytes");
      met_faults = &obs.metrics->counter("net.faults.injected");
      met_retries = &obs.metrics->counter("net.retries");
      met_timeouts = &obs.metrics->counter("net.timeouts");
    } else {
      met_isend = nullptr;
      met_irecv = nullptr;
      met_eager = nullptr;
      met_rendezvous = nullptr;
      met_delivered_msgs = nullptr;
      met_delivered_bytes = nullptr;
      met_faults = nullptr;
      met_retries = nullptr;
      met_timeouts = nullptr;
    }
  }

  void note_post(int rank, const char* what, std::size_t bytes, int tag) {
    if (obs.trace == nullptr) return;
    obs::TraceEvent event;
    event.name = what;
    event.category = "net";
    event.ts_us = clock.now_us();
    event.track = static_cast<std::uint32_t>(rank);
    event.arg("bytes", static_cast<double>(bytes))
        .arg("tag", static_cast<double>(tag));
    obs.trace->record(event);
  }

  void note_deliver(std::size_t bytes) {
    if (met_delivered_msgs != nullptr) {
      met_delivered_msgs->add();
      met_delivered_bytes->add(bytes);
    }
    if (obs.trace != nullptr) {
      obs::TraceEvent event;
      event.name = "deliver";
      event.category = "net";
      event.ts_us = clock.now_us();
      event.track = 2;  // delivery track, distinct from the two ranks
      event.arg("bytes", static_cast<double>(bytes));
      obs.trace->record(event);
    }
  }

  void note_fault(int rank, const char* what, std::size_t bytes, int tag) {
    if (met_faults != nullptr) met_faults->add();
    if (obs.trace == nullptr) return;
    obs::TraceEvent event;
    event.name = what;
    event.category = "net";
    event.ts_us = clock.now_us();
    event.track = static_cast<std::uint32_t>(rank);
    event.arg("bytes", static_cast<double>(bytes))
        .arg("tag", static_cast<double>(tag));
    obs.trace->record(event);
  }

  /// Fate of a message posted by `rank`, as a delivery-availability time:
  /// 0 = deliver immediately, kNever = stalled. Consumes the fault RNG in
  /// post order, so a fixed posting order injects the same faults.
  [[nodiscard]] double fault_available_at(int rank, ProtocolMode mode,
                                          std::size_t bytes, int tag) {
    if (!faults_armed) return 0.0;
    if (plan.stall_every != 0 && mode == ProtocolMode::kRendezvous &&
        ++rendezvous_seen % plan.stall_every == 0) {
      note_fault(rank, "fault:stall", bytes, tag);
      return kNever;
    }
    if (plan.delay_probability > 0.0 &&
        fault_rng->uniform() < plan.delay_probability) {
      note_fault(rank, "fault:delay", bytes, tag);
      return clock.now_us() + plan.delay.value() * 1e6;
    }
    if (plan.drop_probability > 0.0 &&
        fault_rng->uniform() < plan.drop_probability) {
      note_fault(rank, "fault:drop", bytes, tag);
      return clock.now_us() + plan.redelivery_delay.value() * 1e6;
    }
    return 0.0;
  }

  /// Deliver every matched pair whose message is ripe at `now_us`,
  /// preserving FIFO per (source, tag): a receive blocked on an unripe
  /// head-of-line message stays blocked — later same-tag messages never
  /// overtake it. Returns the earliest future availability among blocked
  /// head-of-line matches (the next useful wake-up), or kNever.
  /// Caller holds the mailbox lock. Declared here, defined after the
  /// file-local deliver()/tags_match() helpers.
  double progress(double now_us);
};

namespace {

void deliver(const MailboxPair::SendEntry& send,
             const MailboxPair::RecvEntry& recv) {
  const std::span<const std::byte> payload = send.payload();
  MCM_EXPECTS(recv.destination.size() >= payload.size());
  if (!payload.empty()) {
    std::memcpy(recv.destination.data(), payload.data(), payload.size());
  }
  send.op->transferred = payload.size();
  send.op->done.store(true, std::memory_order_release);
  recv.op->transferred = payload.size();
  recv.op->done.store(true, std::memory_order_release);
}

[[nodiscard]] bool tags_match(int recv_tag, int send_tag) {
  return recv_tag == kAnyTag || recv_tag == send_tag;
}

}  // namespace

double MailboxPair::progress(double now_us) {
  double next_wake = kNever;
  for (int rank = 0; rank < 2; ++rank) {
    auto& recvs = pending_recvs[rank];
    auto& sends = pending_sends[rank];
    bool delivered = true;
    while (delivered) {
      delivered = false;
      for (auto rit = recvs.begin(); rit != recvs.end(); ++rit) {
        const auto sit =
            std::find_if(sends.begin(), sends.end(),
                         [&](const SendEntry& send) {
                           return tags_match(rit->tag, send.tag);
                         });
        if (sit == sends.end()) continue;
        if (sit->available_at_us > now_us) {
          next_wake = std::min(next_wake, sit->available_at_us);
          continue;
        }
        const std::size_t bytes = sit->payload().size();
        deliver(*sit, *rit);
        note_deliver(bytes);
        sends.erase(sit);
        recvs.erase(rit);
        cv.notify_all();
        delivered = true;  // iterators invalidated: rescan this rank
        break;
      }
    }
  }
  return next_wake;
}

}  // namespace detail

bool Request::done() const {
  MCM_EXPECTS(op_ != nullptr);
  return op_->done.load(std::memory_order_acquire);
}

std::size_t Request::transferred() const {
  // done() also checks op_ != nullptr; before completion the byte count
  // is meaningless, so reading it is a contract violation (see header).
  MCM_EXPECTS(done());
  return op_->transferred;
}

Request Communicator::isend(int dest, int tag,
                            std::span<const std::byte> data) {
  MCM_EXPECTS(dest == 1 - rank_);
  MCM_EXPECTS(tag >= 0);
  detail::MailboxPair& mb = *mailboxes_;
  std::unique_lock lock(mb.mutex);

  if (mb.met_isend != nullptr) {
    mb.met_isend->add();
    (select_mode(mb.params, std::max<std::uint64_t>(data.size(), 1)) ==
             ProtocolMode::kEager
         ? mb.met_eager
         : mb.met_rendezvous)
        ->add();
  }
  mb.note_post(rank_, "isend", data.size(), tag);

  auto op = std::make_shared<detail::PendingOp>();
  const ProtocolMode mode =
      select_mode(mb.params, std::max<std::uint64_t>(data.size(), 1));

  // Fault-free fast path: match against an already-posted receive (FIFO).
  // With faults armed everything goes through the queue + progress(), so
  // a delayed message can never overtake and a queued unripe message can
  // never be bypassed.
  if (!mb.faults_armed) {
    auto& recvs = mb.pending_recvs[dest];
    for (auto it = recvs.begin(); it != recvs.end(); ++it) {
      if (!detail::tags_match(it->tag, tag)) continue;
      detail::MailboxPair::SendEntry send;
      send.tag = tag;
      send.op = op;
      send.source = data;
      detail::deliver(send, *it);
      mb.note_deliver(data.size());
      recvs.erase(it);
      mb.cv.notify_all();
      return Request(std::move(op));
    }
  }

  // Queue. Eager messages are buffered and complete now (even when the
  // fault layer delays their delivery: the fault sits on the wire, not in
  // the send buffer); rendezvous messages keep pointing at the caller's
  // buffer and complete at match time (the caller must keep the buffer
  // alive, as with MPI).
  detail::MailboxPair::SendEntry entry;
  entry.tag = tag;
  entry.op = op;
  entry.available_at_us = mb.fault_available_at(rank_, mode, data.size(),
                                                tag);
  if (mode == ProtocolMode::kEager) {
    entry.eager = true;
    entry.eager_copy.assign(data.begin(), data.end());
    op->transferred = data.size();
    op->done.store(true, std::memory_order_release);
  } else {
    entry.source = data;
  }
  mb.pending_sends[dest].push_back(std::move(entry));
  if (mb.faults_armed) {
    mb.progress(mb.clock.now_us());
    // A peer may already be blocked in a no-deadline wait() that computed
    // next-ripe = never before this post; progress() only notifies on
    // delivery, so wake waiters to re-derive their wake-up time.
    mb.cv.notify_all();
  }
  return Request(std::move(op));
}

Request Communicator::irecv(int source, int tag, std::span<std::byte> data) {
  MCM_EXPECTS(source == 1 - rank_);
  MCM_EXPECTS(tag >= 0 || tag == kAnyTag);
  detail::MailboxPair& mb = *mailboxes_;
  std::unique_lock lock(mb.mutex);

  if (mb.met_irecv != nullptr) mb.met_irecv->add();
  mb.note_post(rank_, "irecv", data.size(), tag);

  auto op = std::make_shared<detail::PendingOp>();

  // Fault-free fast path; see isend for why faults disable it.
  if (!mb.faults_armed) {
    auto& sends = mb.pending_sends[rank_];
    for (auto it = sends.begin(); it != sends.end(); ++it) {
      if (!detail::tags_match(tag, it->tag)) continue;
      detail::MailboxPair::RecvEntry recv;
      recv.tag = tag;
      recv.op = op;
      recv.destination = data;
      const std::size_t delivered = it->payload().size();
      detail::deliver(*it, recv);
      mb.note_deliver(delivered);
      sends.erase(it);
      mb.cv.notify_all();
      return Request(std::move(op));
    }
  }

  detail::MailboxPair::RecvEntry entry;
  entry.tag = tag;
  entry.op = op;
  entry.destination = data;
  mb.pending_recvs[rank_].push_back(std::move(entry));
  if (mb.faults_armed) {
    mb.progress(mb.clock.now_us());
    // Same as isend: a blocked no-deadline waiter must re-derive its
    // wake-up time now that this receive may match an unripe send.
    mb.cv.notify_all();
  }
  return Request(std::move(op));
}

void Communicator::wait(Request& request) {
  const bool completed = wait_until(request, detail::kNever);
  MCM_EXPECTS(completed);  // no deadline: only done or peer-gone exits
}

void Communicator::wait_for(Request& request, Seconds timeout) {
  MCM_EXPECTS(timeout.value() > 0.0);
  detail::MailboxPair& mb = *mailboxes_;
  const double deadline_us = mb.clock.now_us() + timeout.value() * 1e6;
  if (wait_until(request, deadline_us)) return;
  {
    std::lock_guard lock(mb.mutex);
    if (mb.met_timeouts != nullptr) mb.met_timeouts->add();
  }
  throw Error(ErrorKind::kTimeout,
              "wait_for: request still pending after " +
                  std::to_string(timeout.value()) + " s");
}

bool Communicator::wait_until(const Request& request, double deadline_us) {
  MCM_EXPECTS(request.op_ != nullptr);
  detail::MailboxPair& mb = *mailboxes_;
  std::unique_lock lock(mb.mutex);
  while (true) {
    if (request.op_->done.load(std::memory_order_acquire)) return true;
    if (mb.peer_gone[1 - rank_]) {
      throw Error(ErrorKind::kPeerGone,
                  "wait: rank " + std::to_string(1 - rank_) +
                      " is gone and the request is still pending");
    }
    const double now_us = mb.clock.now_us();
    // Passive transport: the waiter drives delivery of ripe messages.
    const double next_ripe_us =
        mb.faults_armed ? mb.progress(now_us) : detail::kNever;
    if (request.op_->done.load(std::memory_order_acquire)) return true;
    if (now_us >= deadline_us) return false;
    const double wake_us = std::min(next_ripe_us, deadline_us);
    if (wake_us == detail::kNever) {
      mb.cv.wait(lock);
    } else {
      mb.cv.wait_for(lock, std::chrono::duration<double, std::micro>(
                               wake_us - now_us));
    }
  }
}

bool Communicator::test(const Request& request) const {
  MCM_EXPECTS(request.op_ != nullptr);
  detail::MailboxPair& mb = *mailboxes_;
  std::unique_lock lock(mb.mutex);
  if (mb.faults_armed) mb.progress(mb.clock.now_us());
  return request.op_->done.load(std::memory_order_acquire);
}

void Communicator::send(int dest, int tag,
                        std::span<const std::byte> data) {
  Request request = isend(dest, tag, data);
  wait(request);
}

std::size_t Communicator::recv(int source, int tag,
                               std::span<std::byte> data) {
  Request request = irecv(source, tag, data);
  wait(request);
  return request.transferred();
}

std::size_t Communicator::recv(int source, int tag,
                               std::span<std::byte> data,
                               const RetryPolicy& policy) {
  policy.validate();
  detail::MailboxPair& mb = *mailboxes_;
  Request request = irecv(source, tag, data);
  Seconds attempt_timeout = policy.timeout;
  // Each attempt uses wait_until directly (not wait_for): an expired
  // intermediate attempt is a retry, not a timeout — net.timeouts counts
  // only the final give-up.
  for (std::size_t attempt = 0; attempt <= policy.max_retries; ++attempt) {
    const double deadline_us =
        mb.clock.now_us() + attempt_timeout.value() * 1e6;
    if (wait_until(request, deadline_us)) return request.transferred();
    if (attempt < policy.max_retries) {
      std::lock_guard lock(mb.mutex);
      if (mb.met_retries != nullptr) mb.met_retries->add();
    }
    attempt_timeout = Seconds(attempt_timeout.value() * policy.backoff);
  }
  {
    std::lock_guard lock(mb.mutex);
    if (mb.met_timeouts != nullptr) mb.met_timeouts->add();
  }
  throw Error(ErrorKind::kTimeout,
              "recv: no matching message after " +
                  std::to_string(policy.max_retries + 1) + " attempt(s)");
}

std::optional<std::size_t> Communicator::probe(int source, int tag) const {
  MCM_EXPECTS(source == 1 - rank_);
  MCM_EXPECTS(tag >= 0 || tag == kAnyTag);
  detail::MailboxPair& mb = *mailboxes_;
  std::unique_lock lock(mb.mutex);
  const double now_us = mb.clock.now_us();
  for (const auto& send : mb.pending_sends[rank_]) {
    if (!detail::tags_match(tag, send.tag)) continue;
    // An in-flight (delayed / dropped / stalled) message is not visible.
    if (mb.faults_armed && send.available_at_us > now_us) return std::nullopt;
    return send.payload().size();
  }
  return std::nullopt;
}

std::size_t Communicator::sendrecv(int peer, int send_tag,
                                   std::span<const std::byte> outgoing,
                                   int recv_tag,
                                   std::span<std::byte> incoming) {
  // Post both non-blocking halves before waiting: with a blocking send
  // first, two rendezvous-sized exchanges would deadlock.
  Request send_request = isend(peer, send_tag, outgoing);
  Request recv_request = irecv(peer, recv_tag, incoming);
  wait(recv_request);
  wait(send_request);
  return recv_request.transferred();
}

void Communicator::barrier() {
  detail::MailboxPair& mb = *mailboxes_;
  std::unique_lock lock(mb.mutex);
  const long generation = mb.barrier_generation;
  if (++mb.barrier_count == 2) {
    mb.barrier_count = 0;
    ++mb.barrier_generation;
    mb.cv.notify_all();
    return;
  }
  mb.cv.wait(lock, [&] { return mb.barrier_generation != generation; });
}

ShmWorld::ShmWorld(ProtocolParams params)
    : params_(params),
      mailboxes_(std::make_unique<detail::MailboxPair>(params)) {
  comms_.push_back(Communicator(0, mailboxes_.get()));
  comms_.push_back(Communicator(1, mailboxes_.get()));
}

ShmWorld::~ShmWorld() = default;

Communicator& ShmWorld::comm(int rank) {
  MCM_EXPECTS(rank == 0 || rank == 1);
  return comms_[static_cast<std::size_t>(rank)];
}

void ShmWorld::attach_observer(const obs::Observer& observer) {
  std::lock_guard lock(mailboxes_->mutex);
  mailboxes_->attach(observer);
}

void ShmWorld::inject_faults(const FaultPlan& plan) {
  plan.validate();
  std::lock_guard lock(mailboxes_->mutex);
  mailboxes_->plan = plan;
  mailboxes_->faults_armed = plan.armed();
  mailboxes_->fault_rng.emplace(plan.seed);
  mailboxes_->rendezvous_seen = 0;
}

void ShmWorld::mark_peer_gone(int rank) {
  MCM_EXPECTS(rank == 0 || rank == 1);
  std::lock_guard lock(mailboxes_->mutex);
  mailboxes_->peer_gone[rank] = true;
  mailboxes_->cv.notify_all();
}

}  // namespace mcm::net
