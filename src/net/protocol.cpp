#include "net/protocol.hpp"

#include "util/contracts.hpp"

namespace mcm::net {

void ProtocolParams::validate() const {
  MCM_EXPECTS(base_latency.value() >= 0.0);
  MCM_EXPECTS(rendezvous_latency.value() >= 0.0);
  MCM_EXPECTS(chunk_bytes > 0);
}

ProtocolMode select_mode(const ProtocolParams& params, std::uint64_t bytes) {
  return bytes > params.eager_threshold ? ProtocolMode::kRendezvous
                                        : ProtocolMode::kEager;
}

Seconds message_time(const ProtocolParams& params, std::uint64_t bytes,
                     Bandwidth bandwidth) {
  MCM_EXPECTS(bytes > 0);
  MCM_EXPECTS(bandwidth.bps() > 0.0);
  Seconds latency = params.base_latency;
  if (select_mode(params, bytes) == ProtocolMode::kRendezvous) {
    latency += params.rendezvous_latency;
  }
  return latency + transfer_time(bytes, bandwidth);
}

Bandwidth effective_bandwidth(const ProtocolParams& params,
                              std::uint64_t bytes, Bandwidth bandwidth) {
  return achieved_bandwidth(bytes, message_time(params, bytes, bandwidth));
}

}  // namespace mcm::net
