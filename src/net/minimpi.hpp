// minimpi: a small message-passing library in the spirit of MadMPI.
//
// Two ranks, non-blocking isend/irecv/wait, tag matching with FIFO order
// per (source, tag), eager and rendezvous protocols. The ShmWorld transport
// runs both ranks as real threads of one process communicating through
// shared memory — this is the transport the native benchmark backend and
// the example applications use; the simulator-based benchmark models the
// NIC directly (see sim::SimMachine).
//
// Typical use:
//
//   ShmWorld world;
//   std::thread peer([&] {
//     std::vector<std::byte> buf(n);
//     Request r = world.comm(1).irecv(0, /*tag=*/7, buf);
//     world.comm(1).wait(r);
//   });
//   world.comm(0).send(1, 7, data);
//   peer.join();
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "net/fault.hpp"
#include "net/protocol.hpp"
#include "obs/observer.hpp"

namespace mcm::net {

/// Matches any tag in irecv.
inline constexpr int kAnyTag = -1;

namespace detail {
struct PendingOp;
class MailboxPair;
}  // namespace detail

/// Handle to an in-flight operation. Cheap to copy; becomes complete once
/// the matching side arrives and the data is delivered.
class Request {
 public:
  Request() = default;

  /// True when the operation has completed (non-blocking check).
  [[nodiscard]] bool done() const;

  /// Number of bytes actually transferred. Precondition: done() — before
  /// completion the count is meaningless, so reading it throws
  /// ContractViolation instead of returning a silently-invalid value.
  [[nodiscard]] std::size_t transferred() const;

 private:
  friend class Communicator;
  explicit Request(std::shared_ptr<detail::PendingOp> op)
      : op_(std::move(op)) {}
  std::shared_ptr<detail::PendingOp> op_;
};

/// One rank's endpoint.
class Communicator {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return 2; }

  /// Non-blocking send to `dest` with `tag`. Eager messages complete
  /// immediately (buffered); rendezvous messages complete when the
  /// matching receive arrives.
  Request isend(int dest, int tag, std::span<const std::byte> data);

  /// Non-blocking receive from `source` (tag may be kAnyTag). `data` must
  /// outlive completion and be large enough for the matched message.
  Request irecv(int source, int tag, std::span<std::byte> data);

  /// Block until `request` completes. Throws Error(kPeerGone) if the peer
  /// is (or becomes) marked gone while the request is still pending —
  /// the caller is never left hanging on a dead rank.
  void wait(Request& request);

  /// Block until `request` completes or `timeout` elapses. On expiry
  /// counts net.timeouts and throws Error(kTimeout); the request stays
  /// pending and may still complete under a later wait. Throws
  /// Error(kPeerGone) like wait().
  void wait_for(Request& request, Seconds timeout);

  /// Non-blocking completion check.
  [[nodiscard]] bool test(const Request& request) const;

  /// Blocking convenience wrappers.
  void send(int dest, int tag, std::span<const std::byte> data);
  /// Returns the number of bytes received.
  std::size_t recv(int source, int tag, std::span<std::byte> data);

  /// Blocking receive with a deadline and exponential-backoff retry:
  /// attempt i waits policy.timeout * policy.backoff^i; each attempt
  /// after the first counts one net.retries. Exhausting every attempt
  /// counts one net.timeouts and throws Error(kTimeout) — the posted
  /// receive then stays pending, so `data` must outlive the world or the
  /// message's eventual arrival. Returns the number of bytes received.
  std::size_t recv(int source, int tag, std::span<std::byte> data,
                   const RetryPolicy& policy);

  /// Non-blocking probe: size of the first queued message matching
  /// (source, tag), or std::nullopt when none is waiting. Does not consume
  /// the message.
  [[nodiscard]] std::optional<std::size_t> probe(int source, int tag) const;

  /// Combined exchange (deadlock-free even for rendezvous sizes): send
  /// `outgoing` with `send_tag` and receive into `incoming` with
  /// `recv_tag`. Returns the number of bytes received.
  std::size_t sendrecv(int peer, int send_tag,
                       std::span<const std::byte> outgoing, int recv_tag,
                       std::span<std::byte> incoming);

  /// Two-rank barrier.
  void barrier();

 private:
  friend class ShmWorld;
  Communicator(int rank, detail::MailboxPair* mailboxes)
      : rank_(rank), mailboxes_(mailboxes) {}

  /// Shared wait loop: blocks until done, peer-gone, or `deadline_us` on
  /// the mailbox clock (infinity = no deadline). Returns false on expiry.
  [[nodiscard]] bool wait_until(const Request& request, double deadline_us);

  int rank_ = 0;
  detail::MailboxPair* mailboxes_ = nullptr;
};

/// A two-rank world over an in-process shared-memory transport.
class ShmWorld {
 public:
  explicit ShmWorld(ProtocolParams params = {});
  ~ShmWorld();

  ShmWorld(const ShmWorld&) = delete;
  ShmWorld& operator=(const ShmWorld&) = delete;

  /// Endpoint of `rank` (0 or 1). Thread-safe: each rank's communicator is
  /// meant to be driven by its own thread.
  [[nodiscard]] Communicator& comm(int rank);

  [[nodiscard]] const ProtocolParams& protocol() const { return params_; }

  /// Attach message-lifecycle observability (thread-safe; both ranks emit
  /// concurrently). Counters: net.minimpi.isend / irecv / eager_msgs /
  /// rendezvous_msgs / delivered_msgs / delivered_bytes, plus the fault
  /// layer's net.faults.injected / net.retries / net.timeouts. Trace:
  /// wall-clock "isend"/"irecv" instants on track = rank, "deliver"
  /// instants, and "fault:delay"/"fault:drop"/"fault:stall" instants for
  /// injected faults. Attach before starting traffic; zero-cost when
  /// never called.
  void attach_observer(const obs::Observer& observer);

  /// Arm a fault plan (validated). Like attach_observer, call before
  /// traffic starts; an unarmed plan keeps the fault-free fast paths.
  /// Faults are deterministic for a fixed message posting order.
  void inject_faults(const FaultPlan& plan);

  /// Declare `rank` dead: every wait on an operation with that peer —
  /// pending now or posted later — throws Error(kPeerGone) instead of
  /// blocking. Models a crashed/hung peer process.
  void mark_peer_gone(int rank);

 private:
  ProtocolParams params_;
  std::unique_ptr<detail::MailboxPair> mailboxes_;
  std::vector<Communicator> comms_;
};

}  // namespace mcm::net
