#include "net/sim_channel.hpp"

#include "util/contracts.hpp"

namespace mcm::net {

SimChannel::SimChannel(const sim::SimMachine& machine, ProtocolParams params)
    : machine_(&machine), params_(params) {
  params_.validate();
}

void SimChannel::attach_observer(const obs::Observer& observer) {
  if (observer.metrics != nullptr) {
    met_messages_ = &observer.metrics->counter("net.sim_channel.messages");
    met_effective_ =
        &observer.metrics->histogram("net.sim_channel.effective_gb");
  } else {
    met_messages_ = nullptr;
    met_effective_ = nullptr;
  }
}

Seconds SimChannel::message_time(std::uint64_t bytes,
                                 topo::NumaId comm) const {
  if (met_messages_ != nullptr) met_messages_->add();
  return net::message_time(params_, bytes,
                           machine_->steady_comm_alone(comm));
}

Seconds SimChannel::message_time_under_load(std::uint64_t bytes,
                                            std::size_t cores,
                                            topo::NumaId comp,
                                            topo::NumaId comm) const {
  if (cores == 0) return message_time(bytes, comm);
  if (met_messages_ != nullptr) met_messages_->add();
  const sim::ParallelMeasurement rates =
      machine_->steady_parallel(cores, comp, comm);
  return net::message_time(params_, bytes, rates.comm);
}

Bandwidth SimChannel::effective_bandwidth_under_load(
    std::uint64_t bytes, std::size_t cores, topo::NumaId comp,
    topo::NumaId comm) const {
  const Bandwidth effective = achieved_bandwidth(
      bytes, message_time_under_load(bytes, cores, comp, comm));
  if (met_effective_ != nullptr) met_effective_->record(effective);
  return effective;
}

}  // namespace mcm::net
