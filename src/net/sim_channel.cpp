#include "net/sim_channel.hpp"

#include "util/contracts.hpp"

namespace mcm::net {

SimChannel::SimChannel(const sim::SimMachine& machine, ProtocolParams params)
    : machine_(&machine), params_(params) {
  params_.validate();
}

Seconds SimChannel::message_time(std::uint64_t bytes,
                                 topo::NumaId comm) const {
  return net::message_time(params_, bytes,
                           machine_->steady_comm_alone(comm));
}

Seconds SimChannel::message_time_under_load(std::uint64_t bytes,
                                            std::size_t cores,
                                            topo::NumaId comp,
                                            topo::NumaId comm) const {
  if (cores == 0) return message_time(bytes, comm);
  const sim::ParallelMeasurement rates =
      machine_->steady_parallel(cores, comp, comm);
  return net::message_time(params_, bytes, rates.comm);
}

Bandwidth SimChannel::effective_bandwidth_under_load(
    std::uint64_t bytes, std::size_t cores, topo::NumaId comp,
    topo::NumaId comm) const {
  return achieved_bandwidth(
      bytes, message_time_under_load(bytes, cores, comp, comm));
}

}  // namespace mcm::net
