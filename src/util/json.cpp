#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace mcm::json {

bool Value::as_bool() const {
  MCM_EXPECTS(kind_ == Kind::kBool);
  return bool_;
}

double Value::as_number() const {
  MCM_EXPECTS(kind_ == Kind::kNumber);
  return number_;
}

const std::string& Value::as_string() const {
  MCM_EXPECTS(kind_ == Kind::kString);
  return string_;
}

const Value::Array& Value::as_array() const {
  MCM_EXPECTS(kind_ == Kind::kArray);
  return array_;
}

const Value::Object& Value::as_object() const {
  MCM_EXPECTS(kind_ == Kind::kObject);
  return object_;
}

const Value* Value::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::optional<double> Value::number_at(const std::string& key) const {
  const Value* v = find(key);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  return v->as_number();
}

std::optional<std::string> Value::string_at(const std::string& key) const {
  const Value* v = find(key);
  if (v == nullptr || !v->is_string()) return std::nullopt;
  return v->as_string();
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<Value> run(std::string* error) {
    std::optional<Value> value = parse_value();
    if (value) {
      skip_whitespace();
      if (pos_ != text_.size()) {
        fail("trailing characters after document");
        value = std::nullopt;
      }
    }
    if (!value && error != nullptr) *error = error_;
    return value;
  }

 private:
  void fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " at offset " + std::to_string(pos_);
    }
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool consume_literal(const char* literal) {
    const std::size_t start = pos_;
    for (const char* p = literal; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        pos_ = start;
        return false;
      }
      ++pos_;
    }
    return true;
  }

  std::optional<Value> parse_value() {
    skip_whitespace();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      return Value(std::move(*s));
    }
    if (consume_literal("true")) return Value(true);
    if (consume_literal("false")) return Value(false);
    if (consume_literal("null")) return Value();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)) != 0) {
      return parse_number();
    }
    fail(std::string("unexpected character '") + c + "'");
    return std::nullopt;
  }

  /// Four hex digits of a \uXXXX escape (cursor past the 'u').
  std::optional<std::uint32_t> parse_hex4() {
    if (text_.size() - pos_ < 4) {
      fail("truncated \\u escape");
      return std::nullopt;
    }
    std::uint32_t code = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      std::uint32_t digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail(std::string("invalid hex digit '") + c + "' in \\u escape");
        return std::nullopt;
      }
      code = code * 16 + digit;
    }
    pos_ += 4;
    return code;
  }

  /// Append `code` (a valid scalar value, <= U+10FFFF) as UTF-8.
  static void append_utf8(std::string& out, std::uint32_t code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) {
      fail("expected '\"'");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            const std::optional<std::uint32_t> unit = parse_hex4();
            if (!unit) return std::nullopt;
            std::uint32_t code = *unit;
            if (code >= 0xDC00 && code <= 0xDFFF) {
              fail("lone low surrogate in \\u escape");
              return std::nullopt;
            }
            if (code >= 0xD800 && code <= 0xDBFF) {
              // High surrogate: a \uXXXX low surrogate must follow; the
              // pair combines into one supplementary-plane code point.
              if (text_.size() - pos_ < 2 || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                fail("high surrogate not followed by \\u escape");
                return std::nullopt;
              }
              pos_ += 2;
              const std::optional<std::uint32_t> low = parse_hex4();
              if (!low) return std::nullopt;
              if (*low < 0xDC00 || *low > 0xDFFF) {
                fail("high surrogate not followed by low surrogate");
                return std::nullopt;
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (*low - 0xDC00);
            }
            append_utf8(out, code);
            break;
          }
          default:
            fail(std::string("invalid escape '\\") + esc + "'");
            return std::nullopt;
        }
      } else {
        out.push_back(c);
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Value> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    // parse_double is locale-independent (std::strtod honours the global
    // locale's decimal point, which would reject valid JSON under e.g.
    // de_DE) and rejects partially-consumed tokens like "1.2.3".
    const std::optional<double> value = parse_double(token);
    if (!value) {
      fail("malformed number '" + token + "'");
      return std::nullopt;
    }
    return Value(*value);
  }

  std::optional<Value> parse_array() {
    (void)consume('[');
    Value::Array items;
    skip_whitespace();
    if (consume(']')) return Value(std::move(items));
    while (true) {
      auto item = parse_value();
      if (!item) return std::nullopt;
      items.push_back(std::move(*item));
      skip_whitespace();
      if (consume(']')) return Value(std::move(items));
      if (!consume(',')) {
        fail("expected ',' or ']' in array");
        return std::nullopt;
      }
    }
  }

  std::optional<Value> parse_object() {
    (void)consume('{');
    Value::Object members;
    skip_whitespace();
    if (consume('}')) return Value(std::move(members));
    while (true) {
      skip_whitespace();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_whitespace();
      if (!consume(':')) {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      auto value = parse_value();
      if (!value) return std::nullopt;
      members.insert_or_assign(std::move(*key), std::move(*value));
      skip_whitespace();
      if (consume('}')) return Value(std::move(members));
      if (!consume(',')) {
        fail("expected ',' or '}' in object");
        return std::nullopt;
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<Value> parse(const std::string& text, std::string* error) {
  return Parser(text).run(error);
}

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

void serialize_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no inf/nan spelling; null keeps the document parseable.
    out += "null";
    return;
  }
  char buffer[64];
  // Shortest representation that round-trips exactly, so
  // parse(serialize(x)) == x bit-for-bit.
  const auto result =
      std::to_chars(buffer, buffer + sizeof buffer, value);
  out.append(buffer, result.ptr);
}

void serialize_value(std::string& out, const Value& value) {
  switch (value.kind()) {
    case Value::Kind::kNull:
      out += "null";
      break;
    case Value::Kind::kBool:
      out += value.as_bool() ? "true" : "false";
      break;
    case Value::Kind::kNumber:
      serialize_number(out, value.as_number());
      break;
    case Value::Kind::kString:
      out.push_back('"');
      out += escape(value.as_string());
      out.push_back('"');
      break;
    case Value::Kind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Value& element : value.as_array()) {
        if (!first) out.push_back(',');
        first = false;
        serialize_value(out, element);
      }
      out.push_back(']');
      break;
    }
    case Value::Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, member] : value.as_object()) {
        if (!first) out.push_back(',');
        first = false;
        out.push_back('"');
        out += escape(key);
        out += "\":";
        serialize_value(out, member);
      }
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

std::string serialize(const Value& value) {
  std::string out;
  serialize_value(out, value);
  return out;
}

}  // namespace mcm::json
