#include "util/csv.hpp"

#include <fstream>

#include "util/contracts.hpp"

namespace mcm {

namespace {

[[nodiscard]] std::string escape_cell(const std::string& cell) {
  const bool needs_quotes = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

[[nodiscard]] std::string render_row(const std::vector<std::string>& cells) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) line.push_back(',');
    line += escape_cell(cells[i]);
  }
  line.push_back('\n');
  return line;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  MCM_EXPECTS(!header_.empty());
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  MCM_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::render() const {
  std::string out = render_row(header_);
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

bool CsvWriter::write_file(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return false;
  file << render();
  return static_cast<bool>(file);
}

}  // namespace mcm
