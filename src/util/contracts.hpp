// Lightweight precondition / postcondition checking.
//
// Contract violations indicate programming errors (bad arguments, broken
// invariants) rather than environmental failures, so they throw a dedicated
// exception type that tests can assert on and applications can treat as
// fatal. The checks stay enabled in release builds: every caller of this
// library is a benchmark or an analysis pipeline where silent corruption is
// far more expensive than a branch.
#pragma once

#include <stdexcept>
#include <string>

namespace mcm {

/// Thrown when a precondition (`MCM_EXPECTS`) or postcondition
/// (`MCM_ENSURES`) does not hold.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}

}  // namespace detail
}  // namespace mcm

#define MCM_EXPECTS(cond)                                                 \
  do {                                                                    \
    if (!(cond))                                                          \
      ::mcm::detail::contract_fail("precondition", #cond, __FILE__,       \
                                   __LINE__);                             \
  } while (false)

#define MCM_ENSURES(cond)                                                 \
  do {                                                                    \
    if (!(cond))                                                          \
      ::mcm::detail::contract_fail("postcondition", #cond, __FILE__,      \
                                   __LINE__);                             \
  } while (false)
