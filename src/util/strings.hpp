// String formatting helpers shared by the table/CSV renderers and reports.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mcm {

/// Format a double with the given number of decimal places (fixed notation).
[[nodiscard]] std::string format_fixed(double value, int decimals);

/// Format a bandwidth value in GB/s, e.g. "12.34 GB/s".
[[nodiscard]] std::string format_gbps(double gb_per_s);

/// Format a percentage, e.g. "3.08 %".
[[nodiscard]] std::string format_percent(double percent);

/// Left-pad `text` with spaces to at least `width` characters.
[[nodiscard]] std::string pad_left(const std::string& text,
                                   std::size_t width);

/// Right-pad `text` with spaces to at least `width` characters.
[[nodiscard]] std::string pad_right(const std::string& text,
                                    std::size_t width);

/// Split on a delimiter character; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(const std::string& text,
                                             char delim);

/// Strip ASCII whitespace from both ends.
[[nodiscard]] std::string trim(const std::string& text);

/// True if `text` begins with `prefix`.
[[nodiscard]] bool starts_with(const std::string& text,
                               const std::string& prefix);

/// Locale-independent parse of a complete decimal number (the classic-"C"
/// grammar the JSON parser accepts: optional sign, digits, '.', exponent).
/// Returns nullopt when `text` is empty, not fully consumed (trailing
/// garbage), non-finite ("inf"/"nan") or out of range — unlike std::stod,
/// which honours the global locale and silently ignores trailing garbage.
[[nodiscard]] std::optional<double> parse_double(std::string_view text);

/// Locale-independent parse of a complete non-negative decimal integer.
/// Returns nullopt on empty input, sign characters, trailing garbage or
/// overflow.
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view text);

}  // namespace mcm
