// Minimal CSV writer: the figure benches dump their series as CSV so that a
// user can re-plot the paper's figures with any plotting tool.
#pragma once

#include <string>
#include <vector>

namespace mcm {

/// Accumulates rows and renders RFC-4180-ish CSV (quotes cells containing
/// commas, quotes or newlines; doubles embedded quotes).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Precondition: same number of cells as the header.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Render to a string, one trailing newline per row.
  [[nodiscard]] std::string render() const;

  /// Write to a file; returns false (and leaves no partial file contract) on
  /// I/O failure.
  [[nodiscard]] bool write_file(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mcm
