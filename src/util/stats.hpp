// Small statistics toolkit used by model calibration (extrema, segment
// slopes) and evaluation (MAPE, summary statistics).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mcm {

/// Index + value of an extremum found in a series.
struct Extremum {
  std::size_t index = 0;
  double value = 0.0;
};

/// Result of an ordinary least-squares line fit y = slope * x + intercept.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1]; 1 for an exact fit.
  double r_squared = 0.0;
};

/// Arithmetic mean. Precondition: non-empty.
[[nodiscard]] double mean(std::span<const double> values);

/// Median (averaging the two middle elements for even sizes).
/// Precondition: non-empty.
[[nodiscard]] double median(std::span<const double> values);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 values.
[[nodiscard]] double sample_stddev(std::span<const double> values);

/// First index holding the maximum value. Precondition: non-empty.
[[nodiscard]] Extremum argmax(std::span<const double> values);

/// First index holding the minimum value. Precondition: non-empty.
[[nodiscard]] Extremum argmin(std::span<const double> values);

/// Ordinary least-squares fit of y against x.
/// Preconditions: same size, at least 2 points, x not all equal.
[[nodiscard]] LineFit fit_line(std::span<const double> x,
                               std::span<const double> y);

/// Mean absolute percentage error (in percent, e.g. 3.2 for 3.2 %):
///   100/n * sum(|actual - predicted| / |actual|)
/// This is the error metric of the paper's Table II.
/// Preconditions: same size, non-empty, no zero actual value.
[[nodiscard]] double mape_percent(std::span<const double> actual,
                                  std::span<const double> predicted);

/// Mean of several MAPE values — used to aggregate per-placement errors into
/// the per-platform rows of Table II. Precondition: non-empty.
[[nodiscard]] double mean_of(std::span<const double> values);

/// Clamp helper kept here so numeric call sites read uniformly.
[[nodiscard]] double clamp(double v, double lo, double hi);

/// Simple centered moving average with the given half-window (window size
/// 2*half + 1, truncated at the edges). Used to smooth noisy measured
/// curves before locating extrema.
[[nodiscard]] std::vector<double> moving_average(std::span<const double> v,
                                                 std::size_t half_window);

}  // namespace mcm
