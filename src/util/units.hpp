// Strong-ish unit types for the quantities the library manipulates all day:
// byte counts, durations and bandwidths. The paper reports everything in
// GB/s (decimal gigabytes), so `Bandwidth::gb()` is the canonical display
// unit throughout the code base.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "util/contracts.hpp"

namespace mcm {

inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;

inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * kKiB;
inline constexpr std::uint64_t kGiB = 1024ull * kMiB;

/// A duration in seconds. Thin wrapper so that durations and bandwidths
/// cannot be mixed up in call sites.
class Seconds {
 public:
  constexpr Seconds() = default;
  constexpr explicit Seconds(double value) : value_(value) {}

  [[nodiscard]] constexpr double value() const { return value_; }

  constexpr Seconds& operator+=(Seconds other) {
    value_ += other.value_;
    return *this;
  }
  friend constexpr Seconds operator+(Seconds a, Seconds b) {
    return Seconds(a.value_ + b.value_);
  }
  friend constexpr Seconds operator-(Seconds a, Seconds b) {
    return Seconds(a.value_ - b.value_);
  }
  friend constexpr auto operator<=>(Seconds, Seconds) = default;

 private:
  double value_ = 0.0;
};

/// A memory/network bandwidth. Stored in bytes per second; constructed and
/// displayed in decimal GB/s to match the paper's unit conventions.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;

  [[nodiscard]] static constexpr Bandwidth bytes_per_s(double v) {
    return Bandwidth(v);
  }
  [[nodiscard]] static constexpr Bandwidth gb_per_s(double v) {
    return Bandwidth(v * kGiga);
  }

  /// Value in bytes per second.
  [[nodiscard]] constexpr double bps() const { return value_; }
  /// Value in decimal GB/s (the paper's reporting unit).
  [[nodiscard]] constexpr double gb() const { return value_ / kGiga; }

  [[nodiscard]] constexpr bool is_zero() const { return value_ == 0.0; }

  constexpr Bandwidth& operator+=(Bandwidth other) {
    value_ += other.value_;
    return *this;
  }
  constexpr Bandwidth& operator-=(Bandwidth other) {
    value_ -= other.value_;
    return *this;
  }
  constexpr Bandwidth& operator*=(double s) {
    value_ *= s;
    return *this;
  }
  friend constexpr Bandwidth operator+(Bandwidth a, Bandwidth b) {
    return Bandwidth(a.value_ + b.value_);
  }
  friend constexpr Bandwidth operator-(Bandwidth a, Bandwidth b) {
    return Bandwidth(a.value_ - b.value_);
  }
  friend constexpr Bandwidth operator*(Bandwidth a, double s) {
    return Bandwidth(a.value_ * s);
  }
  friend constexpr Bandwidth operator*(double s, Bandwidth a) {
    return Bandwidth(a.value_ * s);
  }
  friend constexpr Bandwidth operator/(Bandwidth a, double s) {
    return Bandwidth(a.value_ / s);
  }
  /// Ratio of two bandwidths (dimensionless).
  friend constexpr double operator/(Bandwidth a, Bandwidth b) {
    return a.value_ / b.value_;
  }
  friend constexpr auto operator<=>(Bandwidth, Bandwidth) = default;

 private:
  constexpr explicit Bandwidth(double bytes_per_second)
      : value_(bytes_per_second) {}

  double value_ = 0.0;
};

/// Time to move `bytes` at rate `bw`.
[[nodiscard]] constexpr Seconds transfer_time(std::uint64_t bytes,
                                              Bandwidth bw) {
  return Seconds(static_cast<double>(bytes) / bw.bps());
}

/// Bandwidth achieved moving `bytes` in `elapsed`.
[[nodiscard]] inline Bandwidth achieved_bandwidth(std::uint64_t bytes,
                                                  Seconds elapsed) {
  MCM_EXPECTS(elapsed.value() > 0.0);
  return Bandwidth::bytes_per_s(static_cast<double>(bytes) / elapsed.value());
}

}  // namespace mcm
