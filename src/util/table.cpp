#include "util/table.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace mcm {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)),
      alignments_(header_.size(), Align::kLeft) {
  MCM_EXPECTS(!header_.empty());
}

void AsciiTable::set_alignments(std::vector<Align> alignments) {
  MCM_EXPECTS(alignments.size() == header_.size());
  alignments_ = std::move(alignments);
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  MCM_EXPECTS(cells.size() == header_.size());
  rows_.push_back(Row{std::move(cells), pending_separator_});
  pending_separator_ = false;
}

void AsciiTable::add_separator() { pending_separator_ = true; }

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto rule = [&]() {
    std::string line = "+";
    for (std::size_t w : widths) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  };
  const auto format_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::string padded = alignments_[c] == Align::kRight
                                     ? pad_left(cells[c], widths[c])
                                     : pad_right(cells[c], widths[c]);
      line += " " + padded + " |";
    }
    return line + "\n";
  };

  std::string out;
  out += rule();
  out += format_row(header_);
  out += rule();
  for (const Row& row : rows_) {
    if (row.separator_before) out += rule();
    out += format_row(row.cells);
  }
  out += rule();
  return out;
}

}  // namespace mcm
