#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/contracts.hpp"

namespace mcm {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t stable_hash(std::string_view text) {
  // FNV-1a over the bytes, then one splitmix64 scramble to spread entropy
  // into the high bits.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return splitmix64(h);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  std::uint64_t state = a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
  return splitmix64(state);
}

namespace {

[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the four xoshiro words from splitmix64 as recommended by the
  // xoshiro authors; guards against the all-zero state.
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  MCM_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_below(std::uint64_t n) {
  MCM_EXPECTS(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * ((~std::uint64_t{0}) / n);
  std::uint64_t x = next_u64();
  while (x >= limit) x = next_u64();
  return x % n;
}

double Rng::normal() {
  // Box–Muller; discard the second deviate to keep the generator stateless
  // beyond its word state.
  double u1 = uniform();
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  MCM_EXPECTS(stddev >= 0.0);
  return mean + stddev * normal();
}

}  // namespace mcm
