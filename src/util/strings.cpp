#include "util/strings.hpp"

#include <cctype>
#include <cstdio>

#include "util/contracts.hpp"

namespace mcm {

std::string format_fixed(double value, int decimals) {
  MCM_EXPECTS(decimals >= 0 && decimals <= 12);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string format_gbps(double gb_per_s) {
  return format_fixed(gb_per_s, 2) + " GB/s";
}

std::string format_percent(double percent) {
  return format_fixed(percent, 2) + " %";
}

std::string pad_left(const std::string& text, std::size_t width) {
  if (text.size() >= width) return text;
  return std::string(width - text.size(), ' ') + text;
}

std::string pad_right(const std::string& text, std::size_t width) {
  if (text.size() >= width) return text;
  return text + std::string(width - text.size(), ' ');
}

std::vector<std::string> split(const std::string& text, char delim) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == delim) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace mcm
