#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/contracts.hpp"

namespace mcm {

std::string format_fixed(double value, int decimals) {
  MCM_EXPECTS(decimals >= 0 && decimals <= 12);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string format_gbps(double gb_per_s) {
  return format_fixed(gb_per_s, 2) + " GB/s";
}

std::string format_percent(double percent) {
  return format_fixed(percent, 2) + " %";
}

std::string pad_left(const std::string& text, std::size_t width) {
  if (text.size() >= width) return text;
  return std::string(width - text.size(), ' ') + text;
}

std::string pad_right(const std::string& text, std::size_t width) {
  if (text.size() >= width) return text;
  return text + std::string(width - text.size(), ' ');
}

std::vector<std::string> split(const std::string& text, char delim) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == delim) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

std::optional<double> parse_double(std::string_view text) {
  if (text.empty()) return std::nullopt;
  // std::from_chars does not accept a leading '+'; the number grammars we
  // parse (JSON, topology files, CSV) do not emit one either, but accept
  // it for hand-written files. Strip it only when a digit or '.' follows,
  // so garbage like "+-1" or a bare "+" stays rejected.
  if (text.front() == '+') {
    if (text.size() < 2 ||
        (!std::isdigit(static_cast<unsigned char>(text[1])) &&
         text[1] != '.')) {
      return std::nullopt;
    }
    text.remove_prefix(1);
  }
  double value = 0.0;
  const char* const first = text.data();
  const char* const last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  // from_chars accepts "inf"/"nan"; none of our formats do.
  if (!std::isfinite(value)) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  const char* const first = text.data();
  const char* const last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

}  // namespace mcm
