// Deterministic random number generation.
//
// Every stochastic element of the simulator (run-to-run jitter, network
// instability) must be reproducible: the same platform + placement + phase
// always produces the same "measurement". We therefore derive generator
// seeds from a stable hash of the experiment coordinates instead of any
// global state, and use a small, well-understood generator (splitmix64 to
// seed, xoshiro256** to generate).
#pragma once

#include <cstdint>
#include <string_view>

namespace mcm {

/// splitmix64 step: used both as a seeding function and as a string hash
/// combiner. Public because tests pin its outputs.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// Stable 64-bit hash of a string (FNV-1a folded through splitmix64).
/// Stable across platforms and runs — safe to persist.
[[nodiscard]] std::uint64_t stable_hash(std::string_view text);

/// Combine two hashes/seeds into one.
[[nodiscard]] std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b);

/// xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform in [0, 2^64).
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_below(std::uint64_t n);

  /// Standard normal deviate (Box–Muller, one value per call).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

 private:
  std::uint64_t state_[4];
};

}  // namespace mcm
