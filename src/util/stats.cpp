#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/contracts.hpp"

namespace mcm {

double mean(std::span<const double> values) {
  MCM_EXPECTS(!values.empty());
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double median(std::span<const double> values) {
  MCM_EXPECTS(!values.empty());
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  if (n % 2 == 1) return sorted[n / 2];
  return 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

double sample_stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

Extremum argmax(std::span<const double> values) {
  MCM_EXPECTS(!values.empty());
  const auto it = std::max_element(values.begin(), values.end());
  return {static_cast<std::size_t>(it - values.begin()), *it};
}

Extremum argmin(std::span<const double> values) {
  MCM_EXPECTS(!values.empty());
  const auto it = std::min_element(values.begin(), values.end());
  return {static_cast<std::size_t>(it - values.begin()), *it};
}

LineFit fit_line(std::span<const double> x, std::span<const double> y) {
  MCM_EXPECTS(x.size() == y.size());
  MCM_EXPECTS(x.size() >= 2);
  const double n = static_cast<double>(x.size());
  const double mx = mean(x);
  const double my = mean(y);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  MCM_EXPECTS(sxx > 0.0);
  LineFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy > 0.0) {
    fit.r_squared = (sxy * sxy) / (sxx * syy);
  } else {
    // y is constant: a horizontal line fits exactly.
    fit.r_squared = 1.0;
  }
  (void)n;
  return fit;
}

double mape_percent(std::span<const double> actual,
                    std::span<const double> predicted) {
  MCM_EXPECTS(actual.size() == predicted.size());
  MCM_EXPECTS(!actual.empty());
  double acc = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    MCM_EXPECTS(actual[i] != 0.0);
    acc += std::abs(actual[i] - predicted[i]) / std::abs(actual[i]);
  }
  return 100.0 * acc / static_cast<double>(actual.size());
}

double mean_of(std::span<const double> values) { return mean(values); }

double clamp(double v, double lo, double hi) {
  MCM_EXPECTS(lo <= hi);
  return std::min(std::max(v, lo), hi);
}

std::vector<double> moving_average(std::span<const double> v,
                                   std::size_t half_window) {
  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    const std::size_t lo = i >= half_window ? i - half_window : 0;
    const std::size_t hi = std::min(v.size() - 1, i + half_window);
    double acc = 0.0;
    for (std::size_t j = lo; j <= hi; ++j) acc += v[j];
    out[i] = acc / static_cast<double>(hi - lo + 1);
  }
  return out;
}

}  // namespace mcm
