// ASCII table renderer used by the benchmark binaries to print the paper's
// tables and figure series in a shape directly comparable to the paper.
#pragma once

#include <string>
#include <vector>

namespace mcm {

/// Column alignment inside an AsciiTable.
enum class Align { kLeft, kRight };

/// Builds a fixed-width text table:
///
///   AsciiTable t({"platform", "error"});
///   t.add_row({"henri", "2.32 %"});
///   std::cout << t.render();
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  /// Column alignments default to left; call before render().
  void set_alignments(std::vector<Align> alignments);

  /// Add a data row. Precondition: same number of cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Insert a horizontal separator before the next added row.
  void add_separator();

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Render the full table including borders, one trailing newline.
  [[nodiscard]] std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };

  std::vector<std::string> header_;
  std::vector<Align> alignments_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

}  // namespace mcm
