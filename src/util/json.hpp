// Minimal JSON value + recursive-descent parser, enough to read back the
// documents this repo writes (benchmark reports, metrics exports):
// objects, arrays, strings with \"-style escapes, numbers, booleans,
// null. No streaming, no comments, doubles for every number — fine for
// reports of a few hundred kilobytes.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mcm::json {

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  /// std::map (not unordered) so iteration — and anything rendered from
  /// it — is deterministic.
  using Object = std::map<std::string, Value>;
  using Array = std::vector<Value>;

  Value() = default;
  explicit Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit Value(double n) : kind_(Kind::kNumber), number_(n) {}
  explicit Value(std::string s)
      : kind_(Kind::kString), string_(std::move(s)) {}
  explicit Value(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}
  explicit Value(Object o) : kind_(Kind::kObject), object_(std::move(o)) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; precondition: matching kind (contract-checked).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const;
  /// find() + as_number/as_string conveniences for flat report access.
  [[nodiscard]] std::optional<double> number_at(
      const std::string& key) const;
  [[nodiscard]] std::optional<std::string> string_at(
      const std::string& key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parse one JSON document (surrounding whitespace allowed, trailing
/// garbage rejected). On failure returns nullopt and, if `error` is
/// non-null, a human-readable message with the byte offset.
[[nodiscard]] std::optional<Value> parse(const std::string& text,
                                         std::string* error = nullptr);

/// Escape a string for embedding between JSON quotes: `"` and `\` get a
/// backslash, control characters become the standard short escapes
/// (\n, \t, ...) or \u00XX. Output re-parses to the input exactly.
[[nodiscard]] std::string escape(const std::string& text);

/// Canonical single-line rendering: object keys in Object (std::map)
/// order, no whitespace, strings via escape(), numbers in shortest
/// round-trip form (std::to_chars), non-finite numbers as null. Because
/// the form is canonical, serialize(parse(serialize(v))) == serialize(v) —
/// the property the service wire format relies on for bit-identical
/// replies.
[[nodiscard]] std::string serialize(const Value& value);

}  // namespace mcm::json
