#include "pipeline/cache.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string_view>

#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace mcm::pipeline {

namespace {

constexpr int kSchemaVersion = 1;

/// Shortest representation that round-trips a double exactly — cached
/// curves must reload bit-identical or determinism tests would flag the
/// cache itself.
[[nodiscard]] std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", v);
  return buffer;
}

[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void write_params(std::ostringstream& out, const model::ModelParams& p) {
  out << "{\"n_par_max\":" << p.n_par_max                      //
      << ",\"t_par_max\":" << format_double(p.t_par_max)       //
      << ",\"n_seq_max\":" << p.n_seq_max                      //
      << ",\"t_seq_max\":" << format_double(p.t_seq_max)       //
      << ",\"t_par_max2\":" << format_double(p.t_par_max2)     //
      << ",\"delta_l\":" << format_double(p.delta_l)           //
      << ",\"delta_r\":" << format_double(p.delta_r)           //
      << ",\"b_comp_seq\":" << format_double(p.b_comp_seq)     //
      << ",\"b_comm_seq\":" << format_double(p.b_comm_seq)     //
      << ",\"alpha\":" << format_double(p.alpha)               //
      << ",\"max_cores\":" << p.max_cores << '}';
}

[[nodiscard]] bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

[[nodiscard]] bool read_params(const json::Value& doc,
                               model::ModelParams* out,
                               std::string* error) {
  if (!doc.is_object()) return fail(error, "params must be an object");
  const struct {
    const char* key;
    double* target;
  } doubles[] = {
      {"t_par_max", &out->t_par_max},   {"t_seq_max", &out->t_seq_max},
      {"t_par_max2", &out->t_par_max2}, {"delta_l", &out->delta_l},
      {"delta_r", &out->delta_r},       {"b_comp_seq", &out->b_comp_seq},
      {"b_comm_seq", &out->b_comm_seq}, {"alpha", &out->alpha},
  };
  for (const auto& field : doubles) {
    const auto value = doc.number_at(field.key);
    if (!value) {
      return fail(error, std::string("params missing '") + field.key + "'");
    }
    *field.target = *value;
  }
  const struct {
    const char* key;
    std::size_t* target;
  } sizes[] = {{"n_par_max", &out->n_par_max},
               {"n_seq_max", &out->n_seq_max},
               {"max_cores", &out->max_cores}};
  for (const auto& field : sizes) {
    const auto value = doc.number_at(field.key);
    if (!value || *value < 0.0) {
      return fail(error, std::string("params missing '") + field.key + "'");
    }
    *field.target = static_cast<std::size_t>(*value);
  }
  return true;
}

[[nodiscard]] bool read_entry(const json::Value& doc,
                              CalibrationCache::Entry* out,
                              std::string* error) {
  if (!doc.is_object()) return fail(error, "entry must be an object");
  const auto platform = doc.string_at("platform");
  const auto numa_per_socket = doc.number_at("numa_per_socket");
  if (!platform || !numa_per_socket || *numa_per_socket < 1.0) {
    return fail(error, "entry missing platform / numa_per_socket");
  }
  out->calibration.platform = *platform;
  out->calibration.numa_per_socket =
      static_cast<std::size_t>(*numa_per_socket);

  const json::Value* local = doc.find("local");
  const json::Value* remote = doc.find("remote");
  if (local == nullptr || remote == nullptr ||
      !read_params(*local, &out->local, error) ||
      !read_params(*remote, &out->remote, error)) {
    if (error != nullptr && error->empty()) *error = "entry missing params";
    return false;
  }

  const json::Value* curves = doc.find("curves");
  if (curves == nullptr || !curves->is_array()) {
    return fail(error, "entry missing 'curves' array");
  }
  for (const json::Value& curve_doc : curves->as_array()) {
    const auto comp = curve_doc.number_at("comp_numa");
    const auto comm = curve_doc.number_at("comm_numa");
    const json::Value* points =
        curve_doc.is_object() ? curve_doc.find("points") : nullptr;
    if (!comp || !comm || *comp < 0.0 || *comm < 0.0 ||
        points == nullptr || !points->is_array()) {
      return fail(error, "malformed curve in cache entry");
    }
    bench::PlacementCurve curve;
    curve.comp_numa = topo::NumaId(static_cast<std::uint32_t>(*comp));
    curve.comm_numa = topo::NumaId(static_cast<std::uint32_t>(*comm));
    for (const json::Value& row : points->as_array()) {
      if (!row.is_array() || row.as_array().size() != 5) {
        return fail(error, "curve point must be a 5-element array");
      }
      const json::Value::Array& cols = row.as_array();
      for (const json::Value& col : cols) {
        if (!col.is_number()) {
          return fail(error, "curve point values must be numbers");
        }
      }
      bench::BandwidthPoint point;
      point.cores = static_cast<std::size_t>(cols[0].as_number());
      point.compute_alone_gb = cols[1].as_number();
      point.comm_alone_gb = cols[2].as_number();
      point.compute_parallel_gb = cols[3].as_number();
      point.comm_parallel_gb = cols[4].as_number();
      curve.points.push_back(point);
    }
    out->calibration.curves.push_back(std::move(curve));
  }
  if (out->calibration.curves.empty()) {
    return fail(error, "cache entry has no curves");
  }
  return true;
}

}  // namespace

std::optional<CalibrationCache::Entry> CalibrationCache::find(
    const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void CalibrationCache::put(const std::string& key, Entry entry) {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.insert_or_assign(key, std::move(entry));
}

std::size_t CalibrationCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::map<std::string, CalibrationCache::Entry> CalibrationCache::snapshot()
    const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_;
}

void CalibrationCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

std::string CalibrationCache::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\"schema_version\":" << kSchemaVersion << ",\"entries\":{";
  bool first_entry = true;
  for (const auto& [key, entry] : entries_) {
    if (!first_entry) out << ',';
    first_entry = false;
    out << '"' << json_escape(key) << "\":{\"platform\":\""
        << json_escape(entry.calibration.platform)
        << "\",\"numa_per_socket\":" << entry.calibration.numa_per_socket
        << ",\"local\":";
    write_params(out, entry.local);
    out << ",\"remote\":";
    write_params(out, entry.remote);
    out << ",\"curves\":[";
    bool first_curve = true;
    for (const bench::PlacementCurve& curve : entry.calibration.curves) {
      if (!first_curve) out << ',';
      first_curve = false;
      out << "{\"comp_numa\":" << curve.comp_numa.value()
          << ",\"comm_numa\":" << curve.comm_numa.value()
          << ",\"points\":[";
      bool first_point = true;
      for (const bench::BandwidthPoint& p : curve.points) {
        if (!first_point) out << ',';
        first_point = false;
        out << '[' << p.cores << ',' << format_double(p.compute_alone_gb)
            << ',' << format_double(p.comm_alone_gb) << ','
            << format_double(p.compute_parallel_gb) << ','
            << format_double(p.comm_parallel_gb) << ']';
      }
      out << "]}";
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

bool CalibrationCache::load_json(const std::string& text,
                                 std::string* error) {
  const std::optional<json::Value> doc = json::parse(text, error);
  if (!doc) return false;
  const auto version = doc->number_at("schema_version");
  if (!version || static_cast<int>(*version) != kSchemaVersion) {
    return fail(error, "calibration cache: missing or unsupported "
                       "schema_version");
  }
  const json::Value* entries = doc->find("entries");
  if (entries == nullptr || !entries->is_object()) {
    return fail(error, "calibration cache: missing 'entries' object");
  }
  // Parse everything before mutating, so a malformed document cannot
  // leave the cache half-loaded.
  std::map<std::string, Entry> parsed;
  for (const auto& [key, entry_doc] : entries->as_object()) {
    Entry entry;
    if (!read_entry(entry_doc, &entry, error)) return false;
    parsed.insert_or_assign(key, std::move(entry));
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, entry] : parsed) {
    entries_.insert_or_assign(key, std::move(entry));
  }
  return true;
}

namespace {

/// Magic of the checksummed on-disk format. Files not starting with
/// "<magic> " load as legacy v1 (bare JSON, no integrity header).
constexpr const char kFileMagic[] = "mcm-cache-v2";

[[nodiscard]] std::string checksum_hex(std::string_view payload) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(stable_hash(payload)));
  return buffer;
}

}  // namespace

const char* to_string(CacheFileStatus status) {
  switch (status) {
    case CacheFileStatus::kOk: return "ok";
    case CacheFileStatus::kMissing: return "missing";
    case CacheFileStatus::kIoError: return "io-error";
    case CacheFileStatus::kTruncated: return "truncated";
    case CacheFileStatus::kChecksumMismatch: return "checksum-mismatch";
    case CacheFileStatus::kMalformed: return "malformed";
  }
  return "?";
}

bool CalibrationCache::save_file(const std::string& path,
                                 std::string* error) const {
  const std::string payload = to_json();
  std::string contents = kFileMagic;
  contents += ' ';
  contents += std::to_string(payload.size());
  contents += ' ';
  contents += checksum_hex(payload);
  contents += '\n';
  contents += payload;
  contents += '\n';

  // Write-temp + fsync + atomic rename: a crash at any point leaves
  // either the previous complete snapshot or the new one at `path`,
  // never a torn file. The pid suffix keeps concurrent savers off each
  // other's temp files.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return fail(error,
                "cannot write '" + tmp + "': " + std::strerror(errno));
  }
  const auto abort_save = [&](const std::string& stage) {
    const std::string message = std::strerror(errno);
    if (fd >= 0) ::close(fd);
    ::unlink(tmp.c_str());
    return fail(error, stage + " '" + tmp + "': " + message);
  };
  std::size_t sent = 0;
  while (sent < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + sent, contents.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return abort_save("write to");
    }
    sent += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) return abort_save("fsync");
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return fail(error,
                "close '" + tmp + "': " + std::strerror(errno));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string message = std::strerror(errno);
    ::unlink(tmp.c_str());
    return fail(error,
                "rename '" + tmp + "' -> '" + path + "': " + message);
  }
  // Best-effort directory fsync so the rename itself survives a crash.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    (void)::fsync(dir_fd);
    ::close(dir_fd);
  }
  return true;
}

CacheFileStatus CalibrationCache::load_file_status(const std::string& path,
                                                   std::string* error) {
  const auto reject = [&](CacheFileStatus status,
                          const std::string& message) {
    if (error != nullptr) *error = message;
    return status;
  };
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return reject(CacheFileStatus::kMissing,
                    "no cache file at '" + path + "'");
    }
    return reject(CacheFileStatus::kIoError,
                  "cannot read '" + path + "': " + std::strerror(errno));
  }
  std::string text;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof buffer);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string message = std::strerror(errno);
      ::close(fd);
      return reject(CacheFileStatus::kIoError,
                    "read '" + path + "': " + message);
    }
    if (n == 0) break;
    text.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::string magic_prefix = std::string(kFileMagic) + ' ';
  if (text.rfind(magic_prefix, 0) != 0) {
    // Legacy v1 file: bare JSON, no integrity header. A truncated v2
    // file whose header itself was cut lands here too and is rejected
    // by the parse below — never silently half-loaded.
    std::string parse_error;
    if (!load_json(text, &parse_error)) {
      return reject(CacheFileStatus::kMalformed,
                    "'" + path + "': " + parse_error);
    }
    return CacheFileStatus::kOk;
  }
  const std::size_t eol = text.find('\n');
  if (eol == std::string::npos) {
    return reject(CacheFileStatus::kTruncated,
                  "'" + path + "': header line is truncated");
  }
  const std::string header =
      text.substr(magic_prefix.size(), eol - magic_prefix.size());
  const std::size_t space = header.find(' ');
  if (space == std::string::npos) {
    return reject(CacheFileStatus::kMalformed,
                  "'" + path + "': malformed cache header");
  }
  const std::optional<std::uint64_t> declared =
      parse_u64(header.substr(0, space));
  const std::string checksum = header.substr(space + 1);
  if (!declared || checksum.size() != 16) {
    return reject(CacheFileStatus::kMalformed,
                  "'" + path + "': malformed cache header");
  }
  const std::string_view rest(text.data() + eol + 1,
                              text.size() - eol - 1);
  if (rest.size() < *declared + 1) {
    return reject(CacheFileStatus::kTruncated,
                  "'" + path + "' is truncated: holds " +
                      std::to_string(rest.size()) + " of " +
                      std::to_string(*declared + 1) + " payload bytes");
  }
  if (rest.size() > *declared + 1 || rest.back() != '\n') {
    return reject(CacheFileStatus::kMalformed,
                  "'" + path + "': payload does not match its header");
  }
  const std::string_view payload = rest.substr(0, *declared);
  if (checksum_hex(payload) != checksum) {
    return reject(
        CacheFileStatus::kChecksumMismatch,
        "'" + path + "': checksum mismatch (torn or corrupt write)");
  }
  std::string parse_error;
  if (!load_json(std::string(payload), &parse_error)) {
    return reject(CacheFileStatus::kMalformed,
                  "'" + path + "': " + parse_error);
  }
  return CacheFileStatus::kOk;
}

bool CalibrationCache::load_file(const std::string& path,
                                 std::string* error) {
  return load_file_status(path, error) == CacheFileStatus::kOk;
}

}  // namespace mcm::pipeline
