// Declarative scenario descriptions for the paper's evaluation pipeline.
//
// A ScenarioSpec names everything one measure→calibrate→predict→score run
// depends on: the platform (preset name or explicit PlatformSpec), the
// placements to measure, the sweep protocol (core range/step,
// repetitions), the arbitration policy and the workload variant. Specs
// serialize to/from JSON (the `mcmtool run-scenario` input format, schema
// in docs/pipeline.md) and fingerprint themselves for the calibration
// cache: two specs with the same fingerprint are guaranteed to produce
// identical calibration sweeps.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "model/calibration.hpp"
#include "model/placement.hpp"
#include "sim/machine.hpp"
#include "topo/platforms.hpp"

namespace mcm::json {
class Value;
}  // namespace mcm::json

namespace mcm::pipeline {

/// Which placements the measure stage sweeps.
enum class PlacementSet : std::uint8_t {
  kAll,          ///< every (comp, comm) pair — #numa^2 sweeps
  kCalibration,  ///< only the two calibration placements (0,0), (#m,#m)
  kExplicit,     ///< exactly ScenarioSpec::explicit_placements
};

[[nodiscard]] const char* to_string(PlacementSet set);

/// Poison one measured placement: its measurement throws net::Error for
/// the first `failing_attempts` attempts (0 = every attempt, i.e. the
/// placement can never succeed). Used to exercise the runner's
/// partial-failure isolation and `--max-retries` recovery.
struct InjectedFailure {
  model::Placement placement;
  std::size_t failing_attempts = 0;

  friend constexpr bool operator==(const InjectedFailure&,
                                   const InjectedFailure&) = default;
};

struct ScenarioSpec {
  /// Scenario id, used for report names and display; optional.
  std::string name;
  /// Platform preset name (topo::make_platform) — or, with
  /// `platform_override`, just the display label.
  std::string platform;
  /// Programmatic platforms (ablation variants, file-loaded topologies)
  /// bypass the preset lookup. Not representable in JSON.
  std::optional<topo::PlatformSpec> platform_override;
  /// Extra fingerprint discriminator for overridden platforms (e.g. the
  /// ablation variant name). An override with an empty variant is not
  /// cacheable — the cache cannot know what the spec changed.
  std::string variant;

  sim::ArbitrationPolicy policy =
      sim::ArbitrationPolicy::kCpuPriorityWithFloor;

  PlacementSet placements = PlacementSet::kAll;
  std::vector<model::Placement> explicit_placements;

  /// Sweep protocol (bench::SweepOptions mirror).
  std::size_t max_cores = 0;  ///< 0 = all available
  std::size_t core_step = 1;
  std::size_t repetitions = 1;

  /// Workload variant (paper §VI future-work axes).
  sim::CommPattern comm_pattern = sim::CommPattern::kReceiveOnly;
  sim::ComputeKernel compute_kernel = sim::ComputeKernel::kFill;

  model::CalibrationOptions calibration;

  /// Measure-stage fault injection (JSON key `inject_failures`:
  /// [[comp, comm]] or [[comp, comm, failing_attempts]] entries). Only
  /// the measure stage consults this — calibration sweeps are never
  /// poisoned, so the list stays out of the cache fingerprint.
  std::vector<InjectedFailure> inject_failures;

  /// The injected failure for `placement`, if any.
  [[nodiscard]] const InjectedFailure* injected_failure(
      model::Placement placement) const;

  /// False when the calibration result cannot be keyed: a platform
  /// override without a variant label.
  [[nodiscard]] bool cacheable() const {
    return !platform_override.has_value() || !variant.empty();
  }

  /// Cache key: covers every field that influences the calibration
  /// sweeps and the extracted parameters (platform, variant, policy, core
  /// range/step, repetitions, workload, smoothing) — but not the
  /// placement selection, which only affects the measure stage.
  [[nodiscard]] std::string fingerprint() const;

  /// Resolve the platform: `platform_override` if set, else the preset.
  /// Throws ContractViolation on unknown preset names.
  [[nodiscard]] topo::PlatformSpec resolve_platform() const;

  /// JSON document (schema in docs/pipeline.md; this is also the `spec`
  /// member of a service `predict`/`calibrate` request, see
  /// docs/service.md). Guaranteed lossless: parse(to_json()) == *this for
  /// every JSON-representable spec (platform_override is not, and rides
  /// along only in-process).
  [[nodiscard]] std::string to_json() const;
  /// Parse + validate a spec document. Unknown keys are rejected, so a
  /// typoed field cannot silently fall back to a default.
  [[nodiscard]] static std::optional<ScenarioSpec> from_json(
      const std::string& text, std::string* error = nullptr);
  /// Same validation on an already-parsed JSON value (the service protocol
  /// embeds specs inside request frames and parses the frame once).
  [[nodiscard]] static std::optional<ScenarioSpec> from_value(
      const json::Value& doc, std::string* error = nullptr);

  /// Equality over the wire-representable state (every JSON field) plus
  /// the override discriminators: overrides compare by presence and
  /// `variant`, not by deep PlatformSpec contents.
  friend bool operator==(const ScenarioSpec& a, const ScenarioSpec& b);
};

/// Enum spellings used by the JSON schema (shared with to_string of the
/// sim enums). Return nullopt on unknown names.
[[nodiscard]] std::optional<sim::ArbitrationPolicy> parse_policy(
    const std::string& name);
[[nodiscard]] std::optional<sim::CommPattern> parse_comm_pattern(
    const std::string& name);
[[nodiscard]] std::optional<sim::ComputeKernel> parse_compute_kernel(
    const std::string& name);

}  // namespace mcm::pipeline
