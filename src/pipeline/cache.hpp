// Calibration cache: spec fingerprint → calibrated parameters + the two
// measured calibration curves.
//
// Calibration is the expensive, repeated prefix of every scenario — two
// full placement sweeps. The cache keys entries by
// ScenarioSpec::fingerprint() (platform, variant, policy, core range/step,
// repetitions, workload, smoothing), so any spec change that could alter
// the calibration invalidates the key naturally. In-memory use is
// thread-safe; optional JSON persistence (via util/json) lets `mcmtool
// run-scenario --cache FILE` and long-lived services keep calibrations
// across processes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "benchlib/curves.hpp"
#include "model/parameters.hpp"

namespace mcm::pipeline {

/// Typed outcome of loading a cache file. Everything except kOk leaves
/// the in-memory cache untouched — a corrupt or torn file can never
/// half-load (docs/pipeline.md, "Crash-safe persistence").
enum class CacheFileStatus : std::uint8_t {
  kOk,
  kMissing,           ///< the file does not exist (cold start)
  kIoError,           ///< open/read failed for another reason
  kTruncated,         ///< shorter than its header declares (torn write)
  kChecksumMismatch,  ///< payload bytes do not hash to the header value
  kMalformed,         ///< bad header / payload failed JSON validation
};
[[nodiscard]] const char* to_string(CacheFileStatus status);

class CalibrationCache {
 public:
  struct Entry {
    /// The two calibration curves, (0,0) and (#m,#m), as measured.
    bench::SweepResult calibration;
    /// Parameters extracted from them (local = first curve, remote =
    /// second), stored so cached scenarios skip the calibrate stage too.
    model::ModelParams local;
    model::ModelParams remote;
  };

  /// Copy of the entry for `key`, or nullopt on miss.
  [[nodiscard]] std::optional<Entry> find(const std::string& key) const;
  void put(const std::string& key, Entry entry);

  [[nodiscard]] std::size_t size() const;
  void clear();

  /// Copy of every entry, for callers that redistribute or merge caches
  /// (the service's sharded cache persists through this).
  [[nodiscard]] std::map<std::string, Entry> snapshot() const;

  /// Serialize every entry (schema in docs/pipeline.md). Deterministic
  /// output: entries ordered by key.
  [[nodiscard]] std::string to_json() const;
  /// Merge entries parsed from `text` into the cache (existing keys are
  /// overwritten). False + `error` on malformed documents; the cache is
  /// left unchanged then.
  bool load_json(const std::string& text, std::string* error = nullptr);

  /// Crash-safe file persistence built on the JSON form. save_file
  /// writes `path + ".tmp"`, fsyncs, then atomically renames over
  /// `path` — a crash mid-save leaves the previous complete snapshot in
  /// place, never a torn file. The format prefixes the JSON payload with
  /// a `mcm-cache-v2 <bytes> <checksum>` header (stable_hash of the
  /// payload) so load_file can reject truncation and corruption with a
  /// typed status; headerless files load as legacy v1 plain JSON.
  bool save_file(const std::string& path,
                 std::string* error = nullptr) const;
  /// Merge-load `path`. Anything but kOk leaves the cache unchanged.
  CacheFileStatus load_file_status(const std::string& path,
                                   std::string* error = nullptr);
  /// load_file_status reduced to bool (kOk == true), for callers that do
  /// not branch on the failure kind.
  bool load_file(const std::string& path, std::string* error = nullptr);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

}  // namespace mcm::pipeline
