// Calibration cache: spec fingerprint → calibrated parameters + the two
// measured calibration curves.
//
// Calibration is the expensive, repeated prefix of every scenario — two
// full placement sweeps. The cache keys entries by
// ScenarioSpec::fingerprint() (platform, variant, policy, core range/step,
// repetitions, workload, smoothing), so any spec change that could alter
// the calibration invalidates the key naturally. In-memory use is
// thread-safe; optional JSON persistence (via util/json) lets `mcmtool
// run-scenario --cache FILE` and long-lived services keep calibrations
// across processes.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "benchlib/curves.hpp"
#include "model/parameters.hpp"

namespace mcm::pipeline {

class CalibrationCache {
 public:
  struct Entry {
    /// The two calibration curves, (0,0) and (#m,#m), as measured.
    bench::SweepResult calibration;
    /// Parameters extracted from them (local = first curve, remote =
    /// second), stored so cached scenarios skip the calibrate stage too.
    model::ModelParams local;
    model::ModelParams remote;
  };

  /// Copy of the entry for `key`, or nullopt on miss.
  [[nodiscard]] std::optional<Entry> find(const std::string& key) const;
  void put(const std::string& key, Entry entry);

  [[nodiscard]] std::size_t size() const;
  void clear();

  /// Serialize every entry (schema in docs/pipeline.md). Deterministic
  /// output: entries ordered by key.
  [[nodiscard]] std::string to_json() const;
  /// Merge entries parsed from `text` into the cache (existing keys are
  /// overwritten). False + `error` on malformed documents; the cache is
  /// left unchanged then.
  bool load_json(const std::string& text, std::string* error = nullptr);

  /// File persistence built on the JSON form. `load_file` on a missing
  /// file fails; callers wanting cold-start semantics check existence.
  bool save_file(const std::string& path,
                 std::string* error = nullptr) const;
  bool load_file(const std::string& path, std::string* error = nullptr);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

}  // namespace mcm::pipeline
