#include "pipeline/runner.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "benchlib/runner.hpp"
#include "model/calibration.hpp"
#include "net/fault.hpp"
#include "obs/span.hpp"
#include "runtime/thread_pool.hpp"
#include "util/contracts.hpp"

namespace mcm::pipeline {

namespace {

/// Index of the placement inside `placements`, or npos.
[[nodiscard]] std::size_t find_placement(
    const std::vector<model::Placement>& placements,
    model::Placement target) {
  for (std::size_t i = 0; i < placements.size(); ++i) {
    if (placements[i] == target) return i;
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace

const char* to_string(RunStatus status) {
  switch (status) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kPartial:
      return "partial";
    case RunStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

model::PlacementModel ScenarioResult::placement_model() const {
  return model::PlacementModel(local, remote, calibration.numa_per_socket);
}

model::ContentionModel ScenarioResult::contention_model() const {
  return model::ContentionModel::from_sweep(calibration, spec.calibration);
}

std::unique_ptr<bench::Backend> make_backend(const ScenarioSpec& spec) {
  return make_backend(spec, spec.resolve_platform());
}

std::unique_ptr<bench::Backend> make_backend(const ScenarioSpec& spec,
                                             topo::PlatformSpec platform) {
  auto backend = std::make_unique<bench::SimBackend>(std::move(platform),
                                                     spec.policy);
  backend->machine().set_comm_pattern(spec.comm_pattern);
  backend->machine().set_compute_kernel(spec.compute_kernel);
  return backend;
}

std::vector<model::Placement> expand_placements(const ScenarioSpec& spec) {
  return expand_placements(spec, spec.resolve_platform());
}

std::vector<model::Placement> expand_placements(
    const ScenarioSpec& spec, const topo::PlatformSpec& platform) {
  const std::size_t numa = platform.machine.numa_count();
  const std::size_t per_socket = platform.machine.numa_per_socket();

  std::vector<model::Placement> placements;
  switch (spec.placements) {
    case PlacementSet::kAll:
      // Communications in the outer loop, matching
      // bench::run_all_placements — consumers rely on this order.
      for (std::size_t comm = 0; comm < numa; ++comm) {
        for (std::size_t comp = 0; comp < numa; ++comp) {
          placements.push_back(model::Placement{
              topo::NumaId(static_cast<std::uint32_t>(comp)),
              topo::NumaId(static_cast<std::uint32_t>(comm))});
        }
      }
      break;
    case PlacementSet::kCalibration: {
      const topo::NumaId local(0);
      const topo::NumaId remote(static_cast<std::uint32_t>(per_socket));
      placements.push_back(model::Placement{local, local});
      placements.push_back(model::Placement{remote, remote});
      break;
    }
    case PlacementSet::kExplicit:
      MCM_EXPECTS(!spec.explicit_placements.empty());
      for (const model::Placement& p : spec.explicit_placements) {
        MCM_EXPECTS(p.comp.value() < numa);
        MCM_EXPECTS(p.comm.value() < numa);
        placements.push_back(p);
      }
      break;
  }
  return placements;
}

model::PredictedCurve align_prediction(
    const model::PredictedCurve& dense,
    const bench::PlacementCurve& measured) {
  model::PredictedCurve aligned;
  aligned.comp_numa = dense.comp_numa;
  aligned.comm_numa = dense.comm_numa;
  for (const bench::BandwidthPoint& point : measured.points) {
    MCM_EXPECTS(point.cores >= 1);
    const std::size_t index = point.cores - 1;
    MCM_EXPECTS(index < dense.comm_parallel_gb.size());
    aligned.compute_alone_gb.push_back(dense.compute_alone_gb[index]);
    aligned.comm_alone_gb.push_back(dense.comm_alone_gb[index]);
    aligned.compute_parallel_gb.push_back(dense.compute_parallel_gb[index]);
    aligned.comm_parallel_gb.push_back(dense.comm_parallel_gb[index]);
  }
  return aligned;
}

Runner::Runner(RunnerOptions options) : options_(std::move(options)) {
  if (options_.observer.metrics != nullptr) {
    obs::MetricsRegistry& m = *options_.observer.metrics;
    met_runs_ = &m.counter("pipeline.runs");
    met_cache_hits_ = &m.counter("pipeline.cache.hits");
    met_cache_misses_ = &m.counter("pipeline.cache.misses");
    met_placements_ = &m.counter("pipeline.placements");
    met_measured_ = &m.counter("pipeline.measured_placements");
    met_failed_ = &m.counter("pipeline.placements_failed");
  }
}

Runner::~Runner() = default;

CalibrationCache& Runner::cache() {
  return options_.cache != nullptr ? *options_.cache : own_cache_;
}

runtime::ThreadPool* Runner::pool_for(std::size_t jobs) {
  if (jobs <= 1) return nullptr;
  if (options_.pool != nullptr) return options_.pool;
  if (options_.parallelism == 1) return nullptr;
  const std::lock_guard<std::mutex> lock(pool_mutex_);
  if (own_pool_ == nullptr) {
    std::size_t workers = options_.parallelism;
    if (workers == 0) {
      workers = std::max<std::size_t>(
          2, std::thread::hardware_concurrency());
    }
    own_pool_ = std::make_unique<runtime::ThreadPool>(workers);
  }
  return own_pool_.get();
}

std::unique_ptr<bench::Backend> Runner::acquire_backend(
    const ScenarioSpec& spec, const topo::PlatformSpec& platform,
    const std::string& key) {
  if (!key.empty()) {
    const std::lock_guard<std::mutex> lock(backend_mutex_);
    const auto it = backend_pool_.find(key);
    if (it != backend_pool_.end() && !it->second.empty()) {
      std::unique_ptr<bench::Backend> backend = std::move(it->second.back());
      it->second.pop_back();
      // Reset the only cross-placement state a backend carries; jitter is
      // a pure function of (seed, run index, coordinate), so a reused
      // backend measures bit-identically to a fresh one.
      backend->set_run(0);
      return backend;
    }
  }
  std::unique_ptr<bench::Backend> backend = make_backend(spec, platform);
  if (!key.empty()) {
    std::shared_ptr<sim::SteadyStateCache> cache;
    {
      const std::lock_guard<std::mutex> lock(backend_mutex_);
      std::shared_ptr<sim::SteadyStateCache>& slot = steady_caches_[key];
      if (slot == nullptr) slot = std::make_shared<sim::SteadyStateCache>();
      cache = slot;
    }
    backend->share_steady_cache(cache);
  }
  return backend;
}

void Runner::release_backend(const std::string& key,
                             std::unique_ptr<bench::Backend> backend) {
  if (key.empty() || backend == nullptr) return;
  const std::lock_guard<std::mutex> lock(backend_mutex_);
  backend_pool_[key].push_back(std::move(backend));
}

Runner::MeasuredPlacements Runner::measure_placements(
    const ScenarioSpec& spec, const topo::PlatformSpec& platform,
    const std::string& backend_key,
    const std::vector<model::Placement>& placements,
    const bench::SweepOptions& sweep_options, bool isolate_failures) {
  MeasuredPlacements out;
  out.curves.resize(placements.size());
  out.errors.resize(placements.size());
  out.attempts.assign(placements.size(), 0);
  const auto body = [&](std::size_t i) {
    const InjectedFailure* injected =
        isolate_failures ? spec.injected_failure(placements[i]) : nullptr;
    const std::size_t max_attempts =
        isolate_failures ? options_.max_retries + 1 : 1;
    for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
      out.attempts[i] = attempt + 1;
      try {
        if (injected != nullptr && (injected->failing_attempts == 0 ||
                                    attempt < injected->failing_attempts)) {
          throw net::Error(
              net::ErrorKind::kTimeout,
              "injected failure (placement " +
                  std::to_string(placements[i].comp.value()) + "," +
                  std::to_string(placements[i].comm.value()) + ", attempt " +
                  std::to_string(attempt + 1) + ")");
        }
        // One pooled backend per placement (and per attempt): simulator
        // measurements depend only on (platform seed, run index,
        // coordinate), so a reused backend — reset to run 0 on acquire —
        // matches a fresh one bit-for-bit while keeping placements and
        // retries independent. A backend whose sweep throws is destroyed
        // with this scope instead of returning to the pool.
        std::unique_ptr<bench::Backend> backend =
            acquire_backend(spec, platform, backend_key);
        out.curves[i] = bench::run_placement(*backend, placements[i].comp,
                                             placements[i].comm,
                                             sweep_options);
        out.errors[i].clear();
        release_backend(backend_key, std::move(backend));
        return;
      } catch (const std::exception& error) {
        if (!isolate_failures) throw;
        out.errors[i] = error.what();
      }
    }
  };
  runtime::ThreadPool* pool = pool_for(placements.size());
  if (pool != nullptr) {
    pool->parallel_for(0, placements.size(), body);
  } else {
    for (std::size_t i = 0; i < placements.size(); ++i) body(i);
  }
  if (met_measured_ != nullptr) met_measured_->add(placements.size());
  return out;
}

namespace {

/// Tag a stage span with the request's trace identity (48-bit ids are
/// exact in the double-valued span args). No-op when untraced.
void tag_span(obs::ScopedSpan& span, const obs::TraceContext& trace) {
  if (!trace.valid()) return;
  span.arg("trace_id", static_cast<double>(trace.trace_id));
  if (trace.span_id != 0) {
    span.arg("span_id", static_cast<double>(trace.span_id));
  }
}

}  // namespace

ScenarioResult Runner::run(const ScenarioSpec& spec,
                           CalibrationCache& calibration_cache,
                           const RunContext& context) {
  if (met_runs_ != nullptr) met_runs_->add();
  obs::ScopedSpan scenario_span(options_.observer.trace, clock_,
                                "scenario", "pipeline", 0);
  tag_span(scenario_span, context.trace);
  // Stage timings come from the override when set (deterministic-replay
  // services), from the wall clock otherwise. Spans stay on wall time.
  const auto stage_now = [this]() {
    return options_.now_us ? options_.now_us() : clock_.now_us();
  };

  ScenarioResult result;
  result.spec = spec;

  // Resolve the platform and fingerprint once per run: every stage — and
  // every pooled backend — reuses them instead of re-deriving a fresh
  // topo::Machine per placement cell.
  const topo::PlatformSpec platform = spec.resolve_platform();
  const std::string key = spec.cacheable() ? spec.fingerprint() : "";

  bench::SweepOptions measure_options;
  measure_options.max_cores = spec.max_cores;
  measure_options.core_step = spec.core_step;
  measure_options.repetitions = spec.repetitions;
  measure_options.observer = options_.observer;
  // model::calibrate requires a dense sweep whatever the measure step.
  bench::SweepOptions calibration_options = measure_options;
  calibration_options.core_step = 1;

  // --- calibrate ------------------------------------------------------
  {
    obs::ScopedSpan span(options_.observer.trace, clock_, "calibrate",
                         "pipeline", 0);
    tag_span(span, context.trace);
    const double start_us = stage_now();
    const std::optional<CalibrationCache::Entry> cached =
        key.empty() ? std::nullopt : calibration_cache.find(key);
    if (cached) {
      result.calibration = cached->calibration;
      result.local = cached->local;
      result.remote = cached->remote;
      result.cache_hit = true;
      if (met_cache_hits_ != nullptr) met_cache_hits_->add();
    } else {
      if (met_cache_misses_ != nullptr) met_cache_misses_->add();
      ScenarioSpec calibration_spec = spec;
      calibration_spec.placements = PlacementSet::kCalibration;
      const std::vector<model::Placement> placements =
          expand_placements(calibration_spec, platform);
      // No failure isolation here: without both calibration curves there
      // is no model, so a calibrate-stage failure aborts the run.
      result.calibration.curves =
          measure_placements(spec, platform, key, placements,
                             calibration_options,
                             /*isolate_failures=*/false)
              .curves;
      result.calibration.platform = platform.name;
      result.calibration.numa_per_socket =
          platform.machine.numa_per_socket();
      result.local =
          model::calibrate(result.calibration.curves[0], spec.calibration);
      result.remote =
          model::calibrate(result.calibration.curves[1], spec.calibration);
      if (!key.empty()) {
        calibration_cache.put(key,
                              CalibrationCache::Entry{result.calibration,
                                                      result.local,
                                                      result.remote});
      }
    }
    result.timings.calibrate_us = stage_now() - start_us;
  }

  // --- measure --------------------------------------------------------
  {
    obs::ScopedSpan span(options_.observer.trace, clock_, "measure",
                         "pipeline", 0);
    tag_span(span, context.trace);
    const double start_us = stage_now();
    const std::vector<model::Placement> placements =
        expand_placements(spec, platform);
    if (met_placements_ != nullptr) met_placements_->add(placements.size());

    result.sweep.platform = result.calibration.platform;
    result.sweep.numa_per_socket = result.calibration.numa_per_socket;
    result.sweep.curves.resize(placements.size());

    // The calibration curves already cover their placements when the
    // measure protocol is dense too — splice instead of re-sweeping.
    // Placements poisoned by inject_failures never splice: they must go
    // through the failing measure path.
    std::vector<model::Placement> to_measure;
    std::vector<std::size_t> slots;
    for (std::size_t i = 0; i < placements.size(); ++i) {
      std::size_t reuse = static_cast<std::size_t>(-1);
      if (spec.core_step == 1 &&
          spec.injected_failure(placements[i]) == nullptr) {
        const std::vector<model::Placement> calibrated = {
            model::Placement{result.calibration.curves[0].comp_numa,
                             result.calibration.curves[0].comm_numa},
            model::Placement{result.calibration.curves[1].comp_numa,
                             result.calibration.curves[1].comm_numa}};
        reuse = find_placement(calibrated, placements[i]);
      }
      if (reuse != static_cast<std::size_t>(-1)) {
        result.sweep.curves[i] = result.calibration.curves[reuse];
      } else {
        to_measure.push_back(placements[i]);
        slots.push_back(i);
      }
    }
    MeasuredPlacements measured =
        measure_placements(spec, platform, key, to_measure, measure_options,
                           /*isolate_failures=*/true);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (measured.errors[i].empty()) {
        result.sweep.curves[slots[i]] = std::move(measured.curves[i]);
        continue;
      }
      // Keep the failed slot (right ids, no points) so the sweep layout —
      // and every successful cell — matches a fault-free run exactly.
      result.sweep.curves[slots[i]].comp_numa = to_measure[i].comp;
      result.sweep.curves[slots[i]].comm_numa = to_measure[i].comm;
      result.failures.push_back(PlacementFailure{
          to_measure[i], measured.errors[i], measured.attempts[i]});
    }
    if (met_failed_ != nullptr && !result.failures.empty()) {
      met_failed_->add(result.failures.size());
    }
    result.status = result.failures.empty() ? RunStatus::kOk
                    : result.failures.size() == placements.size()
                        ? RunStatus::kFailed
                        : RunStatus::kPartial;
    result.timings.measure_us = stage_now() - start_us;
  }

  // --- predict --------------------------------------------------------
  {
    obs::ScopedSpan span(options_.observer.trace, clock_, "predict",
                         "pipeline", 0);
    tag_span(span, context.trace);
    const double start_us = stage_now();
    const model::PlacementModel model = result.placement_model();
    for (const bench::PlacementCurve& curve : result.sweep.curves) {
      // Failed cells have no measured points; align_prediction then
      // yields an empty prediction with the right ids.
      result.predicted.push_back(align_prediction(
          model.predict({curve.comp_numa, curve.comm_numa}), curve));
    }
    result.timings.predict_us = stage_now() - start_us;
  }

  // --- score ----------------------------------------------------------
  {
    obs::ScopedSpan span(options_.observer.trace, clock_, "score",
                         "pipeline", 0);
    tag_span(span, context.trace);
    const double start_us = stage_now();
    // Score only the successfully measured cells: failed cells (empty
    // curves) would poison the MAPE aggregation. With nothing measured
    // (status kFailed) the report stays default-initialized.
    bench::SweepResult scored;
    scored.platform = result.sweep.platform;
    scored.numa_per_socket = result.sweep.numa_per_socket;
    std::vector<model::PredictedCurve> scored_predictions;
    for (std::size_t i = 0; i < result.sweep.curves.size(); ++i) {
      if (result.sweep.curves[i].points.empty()) continue;
      scored.curves.push_back(result.sweep.curves[i]);
      scored_predictions.push_back(result.predicted[i]);
    }
    if (!scored.curves.empty()) {
      // evaluate_with walks curves in order; serve the pre-aligned
      // prediction for each so sparse sweeps score point-by-point.
      std::size_t next = 0;
      result.errors = model::evaluate_with(
          scored.platform, scored,
          [&](topo::NumaId comp, topo::NumaId comm) {
            MCM_EXPECTS(next < scored_predictions.size());
            const model::PredictedCurve& aligned =
                scored_predictions[next++];
            MCM_EXPECTS(aligned.comp_numa == comp);
            MCM_EXPECTS(aligned.comm_numa == comm);
            return aligned;
          });
    }
    result.timings.score_us = stage_now() - start_us;
  }

  return result;
}

}  // namespace mcm::pipeline
