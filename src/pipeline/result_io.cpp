#include "pipeline/result_io.hpp"

#include <utility>

#include "util/contracts.hpp"

namespace mcm::pipeline {

namespace {

using json::Value;

[[nodiscard]] Value number(double v) { return Value(v); }
[[nodiscard]] Value number(std::size_t v) {
  return Value(static_cast<double>(v));
}
[[nodiscard]] Value number(std::uint32_t v) {
  return Value(static_cast<double>(v));
}

[[nodiscard]] Value curve_to_value(const bench::PlacementCurve& curve) {
  Value::Array points;
  for (const bench::BandwidthPoint& p : curve.points) {
    Value::Array row;
    row.push_back(number(p.cores));
    row.push_back(number(p.compute_alone_gb));
    row.push_back(number(p.comm_alone_gb));
    row.push_back(number(p.compute_parallel_gb));
    row.push_back(number(p.comm_parallel_gb));
    points.push_back(Value(std::move(row)));
  }
  Value::Object out;
  out.emplace("comm_numa", number(curve.comm_numa.value()));
  out.emplace("comp_numa", number(curve.comp_numa.value()));
  out.emplace("points", Value(std::move(points)));
  return Value(std::move(out));
}

[[nodiscard]] Value predicted_to_value(const model::PredictedCurve& curve) {
  const auto series = [](const std::vector<double>& values) {
    Value::Array out;
    for (double v : values) out.push_back(Value(v));
    return Value(std::move(out));
  };
  Value::Object out;
  out.emplace("comm_alone_gb", series(curve.comm_alone_gb));
  out.emplace("comm_numa", number(curve.comm_numa.value()));
  out.emplace("comm_parallel_gb", series(curve.comm_parallel_gb));
  out.emplace("comp_numa", number(curve.comp_numa.value()));
  out.emplace("compute_alone_gb", series(curve.compute_alone_gb));
  out.emplace("compute_parallel_gb", series(curve.compute_parallel_gb));
  return Value(std::move(out));
}

[[nodiscard]] Value errors_to_value(const model::ErrorReport& report) {
  Value::Array placements;
  for (const model::PlacementError& e : report.placements) {
    Value::Object row;
    row.emplace("comm_mape", number(e.comm_mape));
    row.emplace("comm_numa", number(e.comm_numa.value()));
    row.emplace("comp_mape", number(e.comp_mape));
    row.emplace("comp_numa", number(e.comp_numa.value()));
    row.emplace("is_sample", Value(e.is_sample));
    placements.push_back(Value(std::move(row)));
  }
  Value::Object out;
  out.emplace("average", number(report.average));
  out.emplace("comm_all", number(report.comm_all));
  out.emplace("comm_non_samples", number(report.comm_non_samples));
  out.emplace("comm_samples", number(report.comm_samples));
  out.emplace("comp_all", number(report.comp_all));
  out.emplace("comp_non_samples", number(report.comp_non_samples));
  out.emplace("comp_samples", number(report.comp_samples));
  out.emplace("placements", Value(std::move(placements)));
  out.emplace("platform", Value(report.platform));
  return Value(std::move(out));
}

}  // namespace

json::Value params_to_value(const model::ModelParams& params) {
  Value::Object out;
  out.emplace("alpha", number(params.alpha));
  out.emplace("b_comm_seq", number(params.b_comm_seq));
  out.emplace("b_comp_seq", number(params.b_comp_seq));
  out.emplace("delta_l", number(params.delta_l));
  out.emplace("delta_r", number(params.delta_r));
  out.emplace("max_cores", number(params.max_cores));
  out.emplace("n_par_max", number(params.n_par_max));
  out.emplace("n_seq_max", number(params.n_seq_max));
  out.emplace("t_par_max", number(params.t_par_max));
  out.emplace("t_par_max2", number(params.t_par_max2));
  out.emplace("t_seq_max", number(params.t_seq_max));
  return Value(std::move(out));
}

json::Value sweep_to_value(const bench::SweepResult& sweep) {
  Value::Array curves;
  for (const bench::PlacementCurve& curve : sweep.curves) {
    curves.push_back(curve_to_value(curve));
  }
  Value::Object out;
  out.emplace("curves", Value(std::move(curves)));
  out.emplace("numa_per_socket", number(sweep.numa_per_socket));
  out.emplace("platform", Value(sweep.platform));
  return Value(std::move(out));
}

json::Value result_to_value(const ScenarioResult& result) {
  Value::Array failures;
  for (const PlacementFailure& f : result.failures) {
    Value::Object row;
    row.emplace("attempts", number(f.attempts));
    row.emplace("comm", number(f.placement.comm.value()));
    row.emplace("comp", number(f.placement.comp.value()));
    row.emplace("error", Value(f.error));
    failures.push_back(Value(std::move(row)));
  }
  Value::Array predicted;
  for (const model::PredictedCurve& curve : result.predicted) {
    predicted.push_back(predicted_to_value(curve));
  }

  // The spec rides along in its wire form so a reply is self-describing.
  // to_json() is lossless (round-trip tested), and re-parsing it here
  // keeps the canonical rendering in one place (json::serialize).
  const std::optional<Value> spec = json::parse(result.spec.to_json());
  MCM_ENSURES(spec.has_value());

  Value::Object out;
  out.emplace("cache_hit", Value(result.cache_hit));
  out.emplace("calibration", sweep_to_value(result.calibration));
  out.emplace("errors", errors_to_value(result.errors));
  out.emplace("failures", Value(std::move(failures)));
  out.emplace("local", params_to_value(result.local));
  out.emplace("predicted", Value(std::move(predicted)));
  out.emplace("remote", params_to_value(result.remote));
  out.emplace("schema_version", number(std::size_t{1}));
  out.emplace("spec", *spec);
  out.emplace("status", Value(std::string(to_string(result.status))));
  out.emplace("sweep", sweep_to_value(result.sweep));
  return Value(std::move(out));
}

std::string result_to_json(const ScenarioResult& result) {
  return json::serialize(result_to_value(result));
}

}  // namespace mcm::pipeline
