// Deterministic JSON form of a ScenarioResult — the `result` payload of
// the prediction service's `predict` replies and of `mcmtool run-scenario
// --result-json`. Both producers build the same json::Value tree and
// render it with json::serialize, so a service reply is bit-identical to
// a local run on the same spec (the acceptance contract of
// docs/service.md).
//
// Deliberately excluded: StageTimings (wall-clock, never deterministic).
// Included: cache_hit — deterministic for a fixed request sequence and
// the observable the warm-path tests assert on.
#pragma once

#include <string>

#include "pipeline/runner.hpp"
#include "util/json.hpp"

namespace mcm::pipeline {

/// One model::ModelParams as a JSON object (same fields as the
/// calibration-cache schema).
[[nodiscard]] json::Value params_to_value(const model::ModelParams& params);

/// One measured sweep: {"curves":[...],"numa_per_socket":N,"platform":s}.
[[nodiscard]] json::Value sweep_to_value(const bench::SweepResult& sweep);

/// The full result tree (schema_version 1, docs/service.md).
[[nodiscard]] json::Value result_to_value(const ScenarioResult& result);

/// json::serialize(result_to_value(result)) — canonical single-line text.
[[nodiscard]] std::string result_to_json(const ScenarioResult& result);

}  // namespace mcm::pipeline
