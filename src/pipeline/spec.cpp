#include "pipeline/spec.hpp"

#include <sstream>

#include "util/contracts.hpp"
#include "util/json.hpp"

namespace mcm::pipeline {

namespace {

[[nodiscard]] std::string json_escape(const std::string& s) {
  return json::escape(s);
}

}  // namespace

const char* to_string(PlacementSet set) {
  switch (set) {
    case PlacementSet::kAll:
      return "all";
    case PlacementSet::kCalibration:
      return "calibration";
    case PlacementSet::kExplicit:
      return "explicit";
  }
  return "unknown";
}

std::optional<sim::ArbitrationPolicy> parse_policy(const std::string& name) {
  if (name == to_string(sim::ArbitrationPolicy::kCpuPriorityWithFloor)) {
    return sim::ArbitrationPolicy::kCpuPriorityWithFloor;
  }
  if (name == to_string(sim::ArbitrationPolicy::kFairShare)) {
    return sim::ArbitrationPolicy::kFairShare;
  }
  return std::nullopt;
}

std::optional<sim::CommPattern> parse_comm_pattern(const std::string& name) {
  if (name == to_string(sim::CommPattern::kReceiveOnly)) {
    return sim::CommPattern::kReceiveOnly;
  }
  if (name == to_string(sim::CommPattern::kBidirectional)) {
    return sim::CommPattern::kBidirectional;
  }
  return std::nullopt;
}

std::optional<sim::ComputeKernel> parse_compute_kernel(
    const std::string& name) {
  for (const sim::ComputeKernel kernel :
       {sim::ComputeKernel::kFill, sim::ComputeKernel::kCopy,
        sim::ComputeKernel::kCachedFill}) {
    if (name == to_string(kernel)) return kernel;
  }
  return std::nullopt;
}

const InjectedFailure* ScenarioSpec::injected_failure(
    model::Placement placement) const {
  for (const InjectedFailure& failure : inject_failures) {
    if (failure.placement == placement) return &failure;
  }
  return nullptr;
}

std::string ScenarioSpec::fingerprint() const {
  MCM_EXPECTS(cacheable());
  std::ostringstream out;
  out << "platform=" << platform;
  if (!variant.empty()) out << "|variant=" << variant;
  out << "|policy=" << sim::to_string(policy)           //
      << "|max_cores=" << max_cores                     //
      << "|core_step=" << core_step                     //
      << "|repetitions=" << repetitions                 //
      << "|comm=" << sim::to_string(comm_pattern)       //
      << "|kernel=" << sim::to_string(compute_kernel)   //
      << "|smoothing=" << calibration.smoothing_half_window;
  return out.str();
}

topo::PlatformSpec ScenarioSpec::resolve_platform() const {
  if (platform_override) return *platform_override;
  return topo::make_platform(platform);
}

std::string ScenarioSpec::to_json() const {
  std::ostringstream out;
  out << "{\n  \"name\": \"" << json_escape(name) << "\",\n"
      << "  \"platform\": \"" << json_escape(platform) << "\",\n"
      << "  \"policy\": \"" << sim::to_string(policy) << "\",\n"
      << "  \"placements\": ";
  if (placements == PlacementSet::kExplicit) {
    out << '[';
    for (std::size_t i = 0; i < explicit_placements.size(); ++i) {
      if (i != 0) out << ", ";
      out << '[' << explicit_placements[i].comp.value() << ", "
          << explicit_placements[i].comm.value() << ']';
    }
    out << ']';
  } else {
    out << '"' << to_string(placements) << '"';
  }
  out << ",\n";
  if (!inject_failures.empty()) {
    out << "  \"inject_failures\": [";
    for (std::size_t i = 0; i < inject_failures.size(); ++i) {
      if (i != 0) out << ", ";
      out << '[' << inject_failures[i].placement.comp.value() << ", "
          << inject_failures[i].placement.comm.value() << ", "
          << inject_failures[i].failing_attempts << ']';
    }
    out << "],\n";
  }
  out << "  \"max_cores\": " << max_cores << ",\n"
      << "  \"core_step\": " << core_step << ",\n"
      << "  \"repetitions\": " << repetitions << ",\n"
      << "  \"comm_pattern\": \"" << sim::to_string(comm_pattern) << "\",\n"
      << "  \"compute_kernel\": \"" << sim::to_string(compute_kernel)
      << "\",\n"
      << "  \"smoothing_half_window\": "
      << calibration.smoothing_half_window << "\n}";
  return out.str();
}

namespace {

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Read a non-negative integer member into `out`; absent keys keep the
/// default. Rejects negatives and non-numbers.
[[nodiscard]] bool read_size(const json::Value& doc, const char* key,
                             std::size_t* out, std::string* error) {
  const json::Value* v = doc.find(key);
  if (v == nullptr) return true;
  if (!v->is_number() || v->as_number() < 0.0) {
    return fail(error, std::string("'") + key +
                           "' must be a non-negative number");
  }
  *out = static_cast<std::size_t>(v->as_number());
  return true;
}

}  // namespace

std::optional<ScenarioSpec> ScenarioSpec::from_json(const std::string& text,
                                                    std::string* error) {
  const std::optional<json::Value> parsed = json::parse(text, error);
  if (!parsed) return std::nullopt;
  return from_value(*parsed, error);
}

std::optional<ScenarioSpec> ScenarioSpec::from_value(const json::Value& value,
                                                     std::string* error) {
  const json::Value* doc = &value;
  if (!doc->is_object()) {
    fail(error, "scenario spec must be a JSON object");
    return std::nullopt;
  }

  static const char* const kKnownKeys[] = {
      "name",         "platform",    "policy",
      "placements",   "max_cores",   "core_step",
      "repetitions",  "comm_pattern", "compute_kernel",
      "smoothing_half_window", "inject_failures"};
  for (const auto& [key, value] : doc->as_object()) {
    (void)value;
    bool known = false;
    for (const char* k : kKnownKeys) known = known || key == k;
    if (!known) {
      fail(error, "unknown scenario spec key '" + key + "'");
      return std::nullopt;
    }
  }

  ScenarioSpec spec;
  const std::optional<std::string> platform = doc->string_at("platform");
  if (!platform || platform->empty()) {
    fail(error, "scenario spec requires a 'platform' string");
    return std::nullopt;
  }
  spec.platform = *platform;
  if (const auto name = doc->string_at("name")) spec.name = *name;

  if (const auto policy = doc->string_at("policy")) {
    const auto parsed = parse_policy(*policy);
    if (!parsed) {
      fail(error, "unknown policy '" + *policy + "'");
      return std::nullopt;
    }
    spec.policy = *parsed;
  }

  if (const json::Value* p = doc->find("placements")) {
    if (p->is_string()) {
      if (p->as_string() == "all") {
        spec.placements = PlacementSet::kAll;
      } else if (p->as_string() == "calibration") {
        spec.placements = PlacementSet::kCalibration;
      } else {
        fail(error, "placements must be \"all\", \"calibration\" or a "
                    "[[comp, comm], ...] array");
        return std::nullopt;
      }
    } else if (p->is_array()) {
      spec.placements = PlacementSet::kExplicit;
      for (const json::Value& pair : p->as_array()) {
        if (!pair.is_array() || pair.as_array().size() != 2 ||
            !pair.as_array()[0].is_number() ||
            !pair.as_array()[1].is_number() ||
            pair.as_array()[0].as_number() < 0.0 ||
            pair.as_array()[1].as_number() < 0.0) {
          fail(error, "each explicit placement must be a [comp, comm] "
                      "pair of non-negative node ids");
          return std::nullopt;
        }
        spec.explicit_placements.push_back(model::Placement{
            topo::NumaId(static_cast<std::uint32_t>(
                pair.as_array()[0].as_number())),
            topo::NumaId(static_cast<std::uint32_t>(
                pair.as_array()[1].as_number()))});
      }
      if (spec.explicit_placements.empty()) {
        fail(error, "explicit placements array must not be empty");
        return std::nullopt;
      }
    } else {
      fail(error, "placements must be a string or an array");
      return std::nullopt;
    }
  }

  if (const json::Value* inject = doc->find("inject_failures")) {
    if (!inject->is_array()) {
      fail(error, "'inject_failures' must be an array of [comp, comm] or "
                  "[comp, comm, failing_attempts] entries");
      return std::nullopt;
    }
    for (const json::Value& entry : inject->as_array()) {
      const bool shaped =
          entry.is_array() &&
          (entry.as_array().size() == 2 || entry.as_array().size() == 3);
      bool numeric = shaped;
      if (shaped) {
        for (const json::Value& field : entry.as_array()) {
          numeric = numeric && field.is_number() && field.as_number() >= 0.0;
        }
      }
      if (!numeric) {
        fail(error, "each inject_failures entry must be [comp, comm] or "
                    "[comp, comm, failing_attempts] with non-negative "
                    "numbers");
        return std::nullopt;
      }
      InjectedFailure failure;
      failure.placement = model::Placement{
          topo::NumaId(static_cast<std::uint32_t>(
              entry.as_array()[0].as_number())),
          topo::NumaId(static_cast<std::uint32_t>(
              entry.as_array()[1].as_number()))};
      if (entry.as_array().size() == 3) {
        failure.failing_attempts =
            static_cast<std::size_t>(entry.as_array()[2].as_number());
      }
      spec.inject_failures.push_back(failure);
    }
  }

  if (!read_size(*doc, "max_cores", &spec.max_cores, error) ||
      !read_size(*doc, "core_step", &spec.core_step, error) ||
      !read_size(*doc, "repetitions", &spec.repetitions, error) ||
      !read_size(*doc, "smoothing_half_window",
                 &spec.calibration.smoothing_half_window, error)) {
    return std::nullopt;
  }
  if (spec.core_step < 1) {
    fail(error, "'core_step' must be >= 1");
    return std::nullopt;
  }
  if (spec.repetitions < 1) {
    fail(error, "'repetitions' must be >= 1");
    return std::nullopt;
  }

  if (const auto pattern = doc->string_at("comm_pattern")) {
    const auto parsed = parse_comm_pattern(*pattern);
    if (!parsed) {
      fail(error, "unknown comm_pattern '" + *pattern + "'");
      return std::nullopt;
    }
    spec.comm_pattern = *parsed;
  }
  if (const auto kernel = doc->string_at("compute_kernel")) {
    const auto parsed = parse_compute_kernel(*kernel);
    if (!parsed) {
      fail(error, "unknown compute_kernel '" + *kernel + "'");
      return std::nullopt;
    }
    spec.compute_kernel = *parsed;
  }
  return spec;
}

bool operator==(const ScenarioSpec& a, const ScenarioSpec& b) {
  return a.name == b.name && a.platform == b.platform &&
         a.platform_override.has_value() ==
             b.platform_override.has_value() &&
         a.variant == b.variant && a.policy == b.policy &&
         a.placements == b.placements &&
         a.explicit_placements == b.explicit_placements &&
         a.max_cores == b.max_cores && a.core_step == b.core_step &&
         a.repetitions == b.repetitions &&
         a.comm_pattern == b.comm_pattern &&
         a.compute_kernel == b.compute_kernel &&
         a.calibration.smoothing_half_window ==
             b.calibration.smoothing_half_window &&
         a.inject_failures == b.inject_failures;
}

}  // namespace mcm::pipeline
