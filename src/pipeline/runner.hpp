// The scenario runner: one declarative ScenarioSpec in, one ScenarioResult
// out, through the paper's four stages as an observable pipeline:
//
//   calibrate  — measure the two §III placements (or hit the calibration
//                cache) and extract Mlocal / Mremote
//   measure    — sweep every placement the spec selects (§IV-A-1),
//                placements dispatched in parallel on a thread pool
//   predict    — evaluate the placement model for each measured placement
//                (§III-C), aligned to the measured core counts
//   score      — Table-II MAPE aggregation of measured vs predicted
//
// Determinism: placements are measured on pooled per-placement backends
// whose jitter depends only on (platform seed, run index, coordinate), so
// the parallel sweep is bit-identical to the serial one, and cached
// calibrations are bit-identical to remeasured ones. Backends of cacheable
// specs are reused across placements and across run() calls (reset to run
// index 0 on release) and share one steady-state cache per scenario
// fingerprint, so repeated sweeps skip the engine for cells already
// measured — cache hits return the stored bits, not an approximation.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "benchlib/backend.hpp"
#include "benchlib/curves.hpp"
#include "model/metrics.hpp"
#include "model/model.hpp"
#include "obs/observer.hpp"
#include "obs/trace_context.hpp"
#include "pipeline/cache.hpp"
#include "pipeline/spec.hpp"

namespace mcm::runtime {
class ThreadPool;
}  // namespace mcm::runtime

namespace mcm::pipeline {

/// Wall-clock cost of each stage, microseconds.
struct StageTimings {
  double calibrate_us = 0.0;
  double measure_us = 0.0;
  double predict_us = 0.0;
  double score_us = 0.0;
};

/// Measure-stage outcome of the whole run.
enum class RunStatus : std::uint8_t {
  kOk,       ///< every placement measured
  kPartial,  ///< some placements failed; the rest were scored normally
  kFailed,   ///< every placement failed — no model-quality numbers
};

[[nodiscard]] const char* to_string(RunStatus status);

/// One placement the measure stage could not produce a curve for.
struct PlacementFailure {
  model::Placement placement;
  /// what() of the last attempt's exception.
  std::string error;
  /// Attempts consumed (1 + retries).
  std::size_t attempts = 0;
};

/// Everything one scenario run produces.
struct ScenarioResult {
  ScenarioSpec spec;

  /// Calibrate stage: the two calibration curves (always dense, cores
  /// 1..max — model::calibrate requires a dense sweep) and the extracted
  /// parameter sets.
  bench::SweepResult calibration;
  model::ModelParams local;
  model::ModelParams remote;
  /// True when the calibrate stage was served from the cache (no sweeps).
  bool cache_hit = false;

  /// Measure stage: one curve per selected placement, spec order. A
  /// failed placement keeps its slot with the right (comp, comm) ids but
  /// no points, so successful cells stay bit-identical to a fault-free
  /// run.
  bench::SweepResult sweep;
  /// Predict stage: parallel to sweep.curves, subsampled to the measured
  /// core counts (so sparse sweeps score against matching predictions).
  /// Empty for failed cells.
  std::vector<model::PredictedCurve> predicted;
  /// Score stage: Table-II row over the successfully measured placements
  /// (default-initialized when status == kFailed).
  model::ErrorReport errors;

  /// Failure isolation: placements whose measurement threw after every
  /// retry (spec order), and the overall verdict.
  std::vector<PlacementFailure> failures;
  RunStatus status = RunStatus::kOk;

  StageTimings timings;

  /// The combined local+remote placement model behind `predicted`.
  [[nodiscard]] model::PlacementModel placement_model() const;
  /// Convenience wrapper exposing the advisor API (recommended core
  /// counts, best placement). Rebuilt from the calibration curves.
  [[nodiscard]] model::ContentionModel contention_model() const;
};

/// Per-call context for one run(). The service threads the request's
/// trace identity through here so the scenario/stage spans the Runner
/// records are tagged with `trace_id` / `span_id` args and a merged
/// Chrome timeline can follow one request across processes. Default
/// (invalid trace) keeps spans untagged — existing callers unchanged.
struct RunContext {
  obs::TraceContext trace;
};

struct RunnerOptions {
  /// Shared calibration cache; null = the runner owns a private one.
  CalibrationCache* cache = nullptr;
  /// Shared measurement pool; null = the runner lazily creates its own.
  runtime::ThreadPool* pool = nullptr;
  /// Worker count for the lazily-created pool: 0 = one per placement,
  /// capped at hardware concurrency; 1 = measure serially (no pool).
  /// Ignored when `pool` is set.
  std::size_t parallelism = 0;
  /// Extra measure attempts per placement after a failure (measure stage
  /// only; a calibrate-stage failure always aborts the run).
  std::size_t max_retries = 0;
  /// Counters pipeline.runs / cache.hits / cache.misses / placements /
  /// measured_placements / placements_failed, "scenario" + per-stage wall
  /// spans on track 0.
  obs::Observer observer;
  /// Stage-timing clock override, microseconds. When set, StageTimings
  /// are measured as differences of this function instead of the
  /// runner's wall clock — the service injects its (possibly virtual)
  /// clock here so latency histograms fed from timings stay
  /// deterministic under replay. Trace spans always use the wall clock.
  std::function<double()> now_us;
};

/// Instantiate the spec's backend: simulator on the resolved platform with
/// the spec's policy, comm pattern and compute kernel applied.
[[nodiscard]] std::unique_ptr<bench::Backend> make_backend(
    const ScenarioSpec& spec);

/// Same, on an already-resolved platform — callers that hold the platform
/// (the Runner resolves it once per run) skip the re-resolution.
[[nodiscard]] std::unique_ptr<bench::Backend> make_backend(
    const ScenarioSpec& spec, topo::PlatformSpec platform);

/// The measure-stage placement list, in canonical order (kAll iterates
/// communications in the outer loop like bench::run_all_placements).
[[nodiscard]] std::vector<model::Placement> expand_placements(
    const ScenarioSpec& spec);

/// Same, on an already-resolved platform.
[[nodiscard]] std::vector<model::Placement> expand_placements(
    const ScenarioSpec& spec, const topo::PlatformSpec& platform);

/// Subsample a dense prediction (indexed cores-1) at the core counts
/// `measured` actually covers, so the two can be scored point-by-point.
[[nodiscard]] model::PredictedCurve align_prediction(
    const model::PredictedCurve& dense,
    const bench::PlacementCurve& measured);

class Runner {
 public:
  explicit Runner(RunnerOptions options = {});
  ~Runner();

  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  /// Execute all four stages for `spec`, resolving calibrations through
  /// `calibration_cache`. This is the one entry point every consumer —
  /// CLI, examples, prediction service — funnels through; the cache is a
  /// per-call parameter so a service can route each request to a shard.
  ///
  /// Reentrancy: safe to call concurrently from multiple threads as long
  /// as the measure stage stays serial (options.parallelism == 1, the
  /// service configuration) or every caller supplies its own pool —
  /// ThreadPool dispatch itself is single-slot. All counters are atomic.
  [[nodiscard]] ScenarioResult run(const ScenarioSpec& spec,
                                   CalibrationCache& calibration_cache,
                                   const RunContext& context);

  /// Convenience overload: untraced context.
  [[nodiscard]] ScenarioResult run(const ScenarioSpec& spec,
                                   CalibrationCache& calibration_cache) {
    return run(spec, calibration_cache, RunContext{});
  }

  /// Convenience overload using the options cache (or the private one).
  [[nodiscard]] ScenarioResult run(const ScenarioSpec& spec) {
    return run(spec, cache());
  }

  /// The default cache in effect (the shared one, or the runner's own).
  [[nodiscard]] CalibrationCache& cache();

 private:
  struct MeasuredPlacements {
    std::vector<bench::PlacementCurve> curves;
    /// Parallel to curves: what() of the last failure, empty = success.
    std::vector<std::string> errors;
    /// Parallel to curves: attempts consumed.
    std::vector<std::size_t> attempts;
  };

  /// Measure `placements` on pooled per-placement backends, parallel when
  /// a pool is in effect. Results land in placement order. With
  /// `isolate_failures`, a placement whose measurement throws (or that the
  /// spec poisons via inject_failures) is retried up to
  /// options_.max_retries times and then recorded in `errors` instead of
  /// aborting the sweep; without it, the first exception propagates.
  /// `backend_key` selects the backend pool and the shared steady cache
  /// (empty = uncacheable spec: fresh throwaway backends, legacy path).
  [[nodiscard]] MeasuredPlacements measure_placements(
      const ScenarioSpec& spec, const topo::PlatformSpec& platform,
      const std::string& backend_key,
      const std::vector<model::Placement>& placements,
      const bench::SweepOptions& sweep_options, bool isolate_failures);
  [[nodiscard]] runtime::ThreadPool* pool_for(std::size_t jobs);

  /// Check out a backend for one placement: reuse an idle pooled one
  /// (reset to run index 0 — backends carry no other cross-placement
  /// state) or build a fresh one wired to the fingerprint's shared
  /// steady-state cache. `key` empty = pooling disabled for this spec.
  [[nodiscard]] std::unique_ptr<bench::Backend> acquire_backend(
      const ScenarioSpec& spec, const topo::PlatformSpec& platform,
      const std::string& key);
  /// Return a backend whose measurement completed; it becomes reusable.
  /// Backends whose measurement threw are destroyed instead (never
  /// released), so a half-run sweep cannot leak state into the pool.
  void release_backend(const std::string& key,
                       std::unique_ptr<bench::Backend> backend);

  RunnerOptions options_;
  CalibrationCache own_cache_;
  /// Guards lazy own_pool_ creation under concurrent run() calls.
  std::mutex pool_mutex_;
  std::unique_ptr<runtime::ThreadPool> own_pool_;
  /// Guards backend_pool_ / steady_caches_ (acquire/release run inside
  /// the parallel measure loop).
  std::mutex backend_mutex_;
  /// Idle backends per scenario fingerprint, reused across placements and
  /// across run() calls instead of reconstructing the simulated machine
  /// for every placement cell.
  std::unordered_map<std::string,
                     std::vector<std::unique_ptr<bench::Backend>>>
      backend_pool_;
  /// One steady-state cache per scenario fingerprint, shared by every
  /// backend built for that fingerprint (see SimMachine::set_steady_cache
  /// for why sharing within one spec is bit-exact).
  std::unordered_map<std::string, std::shared_ptr<sim::SteadyStateCache>>
      steady_caches_;
  obs::WallClock clock_;

  obs::Counter* met_runs_ = nullptr;
  obs::Counter* met_cache_hits_ = nullptr;
  obs::Counter* met_cache_misses_ = nullptr;
  obs::Counter* met_placements_ = nullptr;
  obs::Counter* met_measured_ = nullptr;
  obs::Counter* met_failed_ = nullptr;
};

}  // namespace mcm::pipeline
