// The benchmark sweep of the paper (§IV-A-1): for every possible number of
// computing cores, measure 1) computations alone, 2) communications alone,
// 3) both in parallel — for one or all data placements.
#pragma once

#include <optional>
#include <vector>

#include "benchlib/backend.hpp"
#include "benchlib/curves.hpp"
#include "obs/observer.hpp"

namespace mcm::bench {

/// Sweep options. Defaults mirror the paper's protocol.
struct SweepOptions {
  /// Upper bound on computing cores; 0 means all available.
  std::size_t max_cores = 0;
  /// Measure only core counts 1..max (weak scaling, one data block per
  /// core). The paper sweeps every count; tests shrink this for speed.
  std::size_t core_step = 1;
  /// Repetitions per measurement; points are averaged across runs (the
  /// paper's benchmark averages several runs per configuration).
  std::size_t repetitions = 1;
  /// Optional observability attachment (all pointers may be null, the
  /// default): counters bench.runner.placements / points, histograms
  /// bench.runner.compute_parallel_gb / comm_parallel_gb of measured
  /// bandwidths, wall-clock "placement"/"cores" phase spans on the trace
  /// sink, and one wall-time sampler offer per measured point.
  /// Measurements themselves are unaffected.
  obs::Observer observer;
};

/// Measure one placement over all core counts.
[[nodiscard]] PlacementCurve run_placement(Backend& backend,
                                           topo::NumaId comp,
                                           topo::NumaId comm,
                                           const SweepOptions& options = {});

/// Measure every (comp, comm) placement pair — #numa^2 sweeps.
[[nodiscard]] SweepResult run_all_placements(Backend& backend,
                                             const SweepOptions& options = {});

/// Placements used to instantiate the model (paper §III): both data blocks
/// on the first NUMA node of the first socket (local), and both on the
/// first NUMA node of the second socket (remote).
struct CalibrationPlacements {
  topo::NumaId local;
  topo::NumaId remote;
};
[[nodiscard]] CalibrationPlacements calibration_placements(
    const Backend& backend);

/// Measure only the two calibration placements (what a user would run on a
/// new machine before predicting everything else).
[[nodiscard]] SweepResult run_calibration_sweep(
    Backend& backend, const SweepOptions& options = {});

}  // namespace mcm::bench
