#include "benchlib/sweep_io.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/csv.hpp"
#include "util/strings.hpp"

namespace mcm::bench {

namespace {

constexpr const char* kHeader =
    "comp_numa,comm_numa,cores,compute_alone_gb,comm_alone_gb,"
    "compute_parallel_gb,comm_parallel_gb";

struct Row {
  std::uint32_t comp = 0;
  std::uint32_t comm = 0;
  std::size_t cores = 0;
  BandwidthPoint point;
};

[[nodiscard]] std::optional<Row> parse_row(const std::string& line,
                                           std::string* error,
                                           int line_no) {
  const std::vector<std::string> fields = split(line, ',');
  if (fields.size() != 7) {
    if (error) {
      *error = "line " + std::to_string(line_no) + ": expected 7 fields, got " +
               std::to_string(fields.size());
    }
    return std::nullopt;
  }
  // parse_u64 rejects signs outright (std::stoul silently wraps negative
  // inputs) and parse_double rejects trailing garbage and locale-formatted
  // decimals; both make a truncated or hand-edited CSV fail loudly.
  const auto bad_field = [&](std::size_t column) {
    if (error) {
      *error = "line " + std::to_string(line_no) + ": field " +
               std::to_string(column + 1) + ": not a number: '" +
               fields[column] + "'";
    }
    return std::nullopt;
  };
  const auto ints = [&](std::size_t column) {
    return parse_u64(fields[column]);
  };
  const auto reals = [&](std::size_t column) -> std::optional<double> {
    const auto v = parse_double(fields[column]);
    if (!v || *v < 0.0) return std::nullopt;
    return v;
  };
  Row row;
  for (std::size_t c = 0; c < 3; ++c) {
    if (!ints(c)) return bad_field(c);
  }
  for (std::size_t c = 3; c < 7; ++c) {
    if (!reals(c)) return bad_field(c);
  }
  row.comp = static_cast<std::uint32_t>(*ints(0));
  row.comm = static_cast<std::uint32_t>(*ints(1));
  row.cores = static_cast<std::size_t>(*ints(2));
  row.point.cores = row.cores;
  row.point.compute_alone_gb = *reals(3);
  row.point.comm_alone_gb = *reals(4);
  row.point.compute_parallel_gb = *reals(5);
  row.point.comm_parallel_gb = *reals(6);
  return row;
}

}  // namespace

std::string sweep_to_csv(const SweepResult& sweep) {
  std::string out = "# platform " + sweep.platform + "\n# numa_per_socket " +
                    std::to_string(sweep.numa_per_socket) + "\n" + kHeader +
                    "\n";
  for (const PlacementCurve& curve : sweep.curves) {
    for (const BandwidthPoint& p : curve.points) {
      out += std::to_string(curve.comp_numa.value()) + "," +
             std::to_string(curve.comm_numa.value()) + "," +
             std::to_string(p.cores) + "," +
             format_fixed(p.compute_alone_gb, 6) + "," +
             format_fixed(p.comm_alone_gb, 6) + "," +
             format_fixed(p.compute_parallel_gb, 6) + "," +
             format_fixed(p.comm_parallel_gb, 6) + "\n";
    }
  }
  return out;
}

std::optional<SweepResult> sweep_from_csv(const std::string& text,
                                          std::string* error) {
  SweepResult sweep;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<Row>> groups;

  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  bool header_seen = false;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string stripped = trim(line);
    if (stripped.empty()) continue;
    if (starts_with(stripped, "# platform ")) {
      sweep.platform = trim(stripped.substr(std::string("# platform ").size()));
      continue;
    }
    if (starts_with(stripped, "# numa_per_socket ")) {
      try {
        sweep.numa_per_socket =
            std::stoul(stripped.substr(std::string("# numa_per_socket ").size()));
      } catch (const std::exception&) {
        if (error) *error = "bad numa_per_socket header";
        return std::nullopt;
      }
      continue;
    }
    if (stripped[0] == '#') continue;
    if (!header_seen) {
      if (stripped != kHeader) {
        if (error) {
          *error = "line " + std::to_string(line_no) +
                   ": unexpected column header";
        }
        return std::nullopt;
      }
      header_seen = true;
      continue;
    }
    const auto row = parse_row(stripped, error, line_no);
    if (!row) return std::nullopt;
    groups[{row->comp, row->comm}].push_back(*row);
  }

  if (!header_seen || groups.empty()) {
    if (error) *error = "no data rows";
    return std::nullopt;
  }
  if (sweep.numa_per_socket == 0) {
    if (error) *error = "missing '# numa_per_socket' header";
    return std::nullopt;
  }

  for (auto& [placement, rows] : groups) {
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.cores < b.cores; });
    PlacementCurve curve;
    curve.comp_numa = topo::NumaId(placement.first);
    curve.comm_numa = topo::NumaId(placement.second);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (rows[i].cores != i + 1) {
        if (error) {
          *error = "placement (" + std::to_string(placement.first) + "," +
                   std::to_string(placement.second) +
                   "): core counts must be dense 1..N (missing or duplicate " +
                   std::to_string(i + 1) + ")";
        }
        return std::nullopt;
      }
      curve.points.push_back(rows[i].point);
    }
    sweep.curves.push_back(std::move(curve));
  }
  return sweep;
}

}  // namespace mcm::bench
