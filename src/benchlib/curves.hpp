// Bandwidth curve containers — the raw material of the paper's figures.
//
// For one placement of computation data (`comp_numa`) and communication
// data (`comm_numa`), a PlacementCurve holds, for every number of computing
// cores, the four bandwidths the benchmark measures: computations alone,
// communications alone, and both in parallel. All values are in GB/s (the
// paper's unit).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "topo/ids.hpp"

namespace mcm::bench {

/// Which of the four measured series to extract from a curve.
enum class Series {
  kComputeAlone,
  kCommAlone,
  kComputeParallel,
  kCommParallel,
};

[[nodiscard]] const char* to_string(Series series);

/// One row of a placement curve: measurements with `cores` computing cores.
struct BandwidthPoint {
  std::size_t cores = 0;
  double compute_alone_gb = 0.0;
  double comm_alone_gb = 0.0;
  double compute_parallel_gb = 0.0;
  double comm_parallel_gb = 0.0;

  [[nodiscard]] double total_parallel_gb() const {
    return compute_parallel_gb + comm_parallel_gb;
  }
};

/// Full sweep for one data placement, cores = 1..n_max.
struct PlacementCurve {
  topo::NumaId comp_numa;
  topo::NumaId comm_numa;
  std::vector<BandwidthPoint> points;

  [[nodiscard]] std::size_t max_cores() const { return points.size(); }

  /// Point measured with `cores` computing cores. Looks the point up by
  /// its core count, so sparse curves (SweepOptions::core_step > 1) work;
  /// throws if that count was not measured.
  [[nodiscard]] const BandwidthPoint& at(std::size_t cores) const;

  /// Extract one series as a dense vector indexed by cores-1.
  [[nodiscard]] std::vector<double> series(Series which) const;

  /// Sum of the two parallel series per point.
  [[nodiscard]] std::vector<double> total_parallel() const;
};

/// All placements measured on one platform.
struct SweepResult {
  std::string platform;
  std::size_t numa_per_socket = 0;  ///< the paper's #m
  std::vector<PlacementCurve> curves;

  /// Curve for a given placement. Throws if the placement was not measured.
  [[nodiscard]] const PlacementCurve& curve(topo::NumaId comp,
                                            topo::NumaId comm) const;
  [[nodiscard]] bool has_curve(topo::NumaId comp, topo::NumaId comm) const;
};

/// Render a curve as CSV (header + one row per core count).
[[nodiscard]] std::string to_csv(const PlacementCurve& curve);

}  // namespace mcm::bench
