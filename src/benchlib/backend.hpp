// Measurement backend abstraction.
//
// The sweep runner only needs the three benchmark phases; where the numbers
// come from is a backend concern. `SimBackend` drives the memory-system
// simulator (the default in this reproduction); `runtime::NativeBackend`
// (see src/runtime) runs real non-temporal store kernels and a loopback
// message channel on the host — useful on an actual NUMA machine.
#pragma once

#include <cstddef>
#include <memory>

#include "sim/machine.hpp"
#include "topo/ids.hpp"
#include "util/units.hpp"

namespace mcm::bench {

/// Interface every measurement backend implements.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Number of computing cores the sweep iterates over.
  [[nodiscard]] virtual std::size_t max_computing_cores() const = 0;
  /// Number of NUMA nodes data can be placed on.
  [[nodiscard]] virtual std::size_t numa_count() const = 0;
  /// NUMA nodes per socket (the paper's #m).
  [[nodiscard]] virtual std::size_t numa_per_socket() const = 0;
  /// Platform display name.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Select the repetition index for subsequent measurements (backends
  /// with deterministic noise derive independent jitter per run; real
  /// hardware backends may ignore it).
  virtual void set_run(unsigned run) { (void)run; }

  /// Adopt a shared steady-state cache so identical (placement, n) cells
  /// measured by sibling backends of the *same* platform spec are reused.
  /// No-op for backends that measure real hardware.
  virtual void share_steady_cache(
      const std::shared_ptr<sim::SteadyStateCache>& cache) {
    (void)cache;
  }

  [[nodiscard]] virtual Bandwidth compute_alone(std::size_t cores,
                                                topo::NumaId comp) = 0;
  [[nodiscard]] virtual Bandwidth comm_alone(topo::NumaId comm) = 0;
  [[nodiscard]] virtual sim::ParallelMeasurement parallel(
      std::size_t cores, topo::NumaId comp, topo::NumaId comm) = 0;
};

/// Backend driving a simulated platform.
class SimBackend final : public Backend {
 public:
  explicit SimBackend(topo::PlatformSpec spec,
                      sim::ArbitrationPolicy policy =
                          sim::ArbitrationPolicy::kCpuPriorityWithFloor)
      : machine_(std::move(spec), policy) {}

  [[nodiscard]] sim::SimMachine& machine() { return machine_; }

  [[nodiscard]] std::size_t max_computing_cores() const override {
    return machine_.max_computing_cores();
  }
  [[nodiscard]] std::size_t numa_count() const override {
    return machine_.machine().numa_count();
  }
  [[nodiscard]] std::size_t numa_per_socket() const override {
    return machine_.machine().numa_per_socket();
  }
  [[nodiscard]] std::string name() const override {
    return machine_.spec().name;
  }

  void set_run(unsigned run) override { machine_.set_run_index(run); }

  void share_steady_cache(
      const std::shared_ptr<sim::SteadyStateCache>& cache) override {
    machine_.set_steady_cache(cache);
  }

  [[nodiscard]] Bandwidth compute_alone(std::size_t cores,
                                        topo::NumaId comp) override {
    return machine_.measure_compute_alone(cores, comp);
  }
  [[nodiscard]] Bandwidth comm_alone(topo::NumaId comm) override {
    return machine_.measure_comm_alone(comm);
  }
  [[nodiscard]] sim::ParallelMeasurement parallel(
      std::size_t cores, topo::NumaId comp, topo::NumaId comm) override {
    return machine_.measure_parallel(cores, comp, comm);
  }

 private:
  sim::SimMachine machine_;
};

}  // namespace mcm::bench
