// Machine-readable benchmark reports and their regression diff.
//
// Every `bench_*` binary drops a `BENCH_<name>.json` next to its CSV: a
// versioned document with provenance (schema version, platform, git
// describe), scalar result metrics (MAPE vs. the paper reference,
// per-placement bandwidths), raw series, and per-stage wall times. The
// reports are the repo's perf trajectory; `mcmtool bench-diff` compares a
// baseline and a candidate with a relative threshold and exits non-zero
// on regression, which is what makes them CI-enforceable.
//
// Diff semantics: only `metrics` are gated (deterministic simulator
// outputs); `stages` are wall times — machine noise — and `series` raw
// data, both informational.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mcm::bench {

/// `git describe --always --dirty` captured at configure time ("unknown"
/// outside a git checkout).
[[nodiscard]] const char* build_git_describe();

struct BenchReport {
  static constexpr int kSchemaVersion = 1;

  std::string name;      ///< report id, e.g. "fig3_henri"
  std::string platform;  ///< platform preset(s) the run used
  std::string git = build_git_describe();
  bool smoke = false;    ///< run under MCM_BENCH_SMOKE reductions?

  /// Gated scalar results, e.g. "mape.comm_all" or
  /// "placement_0_0.comm_parallel_gb".
  std::map<std::string, double> metrics;
  /// Raw series (per-core-count bandwidths, ...), informational.
  std::map<std::string, std::vector<double>> series;
  /// Wall time per pipeline stage in seconds, informational.
  std::map<std::string, double> stage_seconds;

  void add_metric(const std::string& key, double value) {
    metrics[key] = value;
  }
  void add_series(const std::string& key, std::vector<double> values) {
    series[key] = std::move(values);
  }
  void record_stage(const std::string& stage, double seconds) {
    stage_seconds[stage] = seconds;
  }

  [[nodiscard]] std::string to_json() const;
  /// Serialize to `path`; false (with `error`) on I/O failure.
  bool write_file(const std::string& path,
                  std::string* error = nullptr) const;
};

/// Parse + schema-validate a report document. Rejects missing/mismatched
/// schema_version, missing name, or non-numeric metric values.
[[nodiscard]] std::optional<BenchReport> report_from_json(
    const std::string& text, std::string* error = nullptr);

/// One gated metric compared across two reports.
struct ReportDiffEntry {
  std::string key;
  double baseline = 0.0;
  double candidate = 0.0;
  double rel_diff = 0.0;  ///< |candidate-baseline| / max(|baseline|, eps)
  bool beyond = false;    ///< rel_diff > tolerance
};

struct ReportDiff {
  /// False when the reports cannot be meaningfully compared (different
  /// name or schema); `error` says why.
  bool comparable = false;
  std::string error;
  std::vector<ReportDiffEntry> entries;  ///< one per shared metric key
  std::vector<std::string> missing_in_candidate;
  std::vector<std::string> extra_in_candidate;

  /// The gate: incomparable reports, any metric beyond tolerance, or a
  /// metric that vanished from the candidate.
  [[nodiscard]] bool regression() const;
  /// Entries with beyond == true.
  [[nodiscard]] std::size_t beyond_count() const;
};

/// Compare candidate against baseline; `rel_tolerance` is the allowed
/// relative drift per metric (0.05 = 5 %).
[[nodiscard]] ReportDiff diff_reports(const BenchReport& baseline,
                                      const BenchReport& candidate,
                                      double rel_tolerance);

/// Human-readable diff table (every metric, flagged rows marked).
[[nodiscard]] std::string render_diff(const ReportDiff& diff,
                                      double rel_tolerance);

}  // namespace mcm::bench
