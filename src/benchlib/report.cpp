#include "benchlib/report.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/json.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace mcm::bench {

namespace {

// Guards against division by a zero baseline while still flagging a
// metric that moved off zero (the ratio explodes past any tolerance).
constexpr double kRelEps = 1e-12;

[[nodiscard]] std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.10g", v);
  return buffer;
}

[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

const char* build_git_describe() {
#ifdef MCM_GIT_DESCRIBE
  return MCM_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

std::string BenchReport::to_json() const {
  std::ostringstream out;
  out << "{\"schema_version\":" << kSchemaVersion << ",\"name\":\""
      << json_escape(name) << "\",\"platform\":\"" << json_escape(platform)
      << "\",\"git\":\"" << json_escape(git) << "\",\"smoke\":"
      << (smoke ? "true" : "false");
  out << ",\"metrics\":{";
  bool first = true;
  for (const auto& [key, value] : metrics) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(key) << "\":" << format_double(value);
  }
  out << "},\"series\":{";
  first = true;
  for (const auto& [key, values] : series) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(key) << "\":[";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out << ',';
      out << format_double(values[i]);
    }
    out << ']';
  }
  out << "},\"stages\":{";
  first = true;
  for (const auto& [stage, seconds] : stage_seconds) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(stage) << "\":" << format_double(seconds);
  }
  out << "}}";
  return out.str();
}

bool BenchReport::write_file(const std::string& path,
                             std::string* error) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  out << to_json() << '\n';
  if (!out) {
    if (error != nullptr) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

std::optional<BenchReport> report_from_json(const std::string& text,
                                            std::string* error) {
  const auto fail = [&](const std::string& message)
      -> std::optional<BenchReport> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };

  std::string parse_error;
  const std::optional<json::Value> doc = json::parse(text, &parse_error);
  if (!doc) return fail("invalid JSON: " + parse_error);
  if (!doc->is_object()) return fail("report must be a JSON object");

  const std::optional<double> schema = doc->number_at("schema_version");
  if (!schema) return fail("missing numeric 'schema_version'");
  if (static_cast<int>(*schema) != BenchReport::kSchemaVersion) {
    return fail("unsupported schema_version " +
                std::to_string(static_cast<int>(*schema)) + " (expected " +
                std::to_string(BenchReport::kSchemaVersion) + ")");
  }
  const std::optional<std::string> name = doc->string_at("name");
  if (!name || name->empty()) return fail("missing 'name'");

  BenchReport report;
  report.name = *name;
  report.platform = doc->string_at("platform").value_or("");
  report.git = doc->string_at("git").value_or("unknown");
  if (const json::Value* smoke = doc->find("smoke");
      smoke != nullptr && smoke->is_bool()) {
    report.smoke = smoke->as_bool();
  }

  const json::Value* metrics = doc->find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return fail("missing 'metrics' object");
  }
  for (const auto& [key, value] : metrics->as_object()) {
    if (!value.is_number()) {
      return fail("metric '" + key + "' is not a number");
    }
    report.metrics.emplace(key, value.as_number());
  }

  if (const json::Value* series = doc->find("series");
      series != nullptr && series->is_object()) {
    for (const auto& [key, value] : series->as_object()) {
      if (!value.is_array()) {
        return fail("series '" + key + "' is not an array");
      }
      std::vector<double> values;
      values.reserve(value.as_array().size());
      for (const json::Value& item : value.as_array()) {
        if (!item.is_number()) {
          return fail("series '" + key + "' holds a non-number");
        }
        values.push_back(item.as_number());
      }
      report.series.emplace(key, std::move(values));
    }
  }
  if (const json::Value* stages = doc->find("stages");
      stages != nullptr && stages->is_object()) {
    for (const auto& [key, value] : stages->as_object()) {
      if (value.is_number()) {
        report.stage_seconds.emplace(key, value.as_number());
      }
    }
  }
  return report;
}

bool ReportDiff::regression() const {
  return !comparable || beyond_count() > 0 || !missing_in_candidate.empty();
}

std::size_t ReportDiff::beyond_count() const {
  std::size_t n = 0;
  for (const ReportDiffEntry& entry : entries) {
    if (entry.beyond) ++n;
  }
  return n;
}

ReportDiff diff_reports(const BenchReport& baseline,
                        const BenchReport& candidate,
                        double rel_tolerance) {
  ReportDiff diff;
  if (baseline.name != candidate.name) {
    diff.error = "reports describe different benchmarks ('" +
                 baseline.name + "' vs '" + candidate.name + "')";
    return diff;
  }
  diff.comparable = true;

  for (const auto& [key, base_value] : baseline.metrics) {
    const auto it = candidate.metrics.find(key);
    if (it == candidate.metrics.end()) {
      diff.missing_in_candidate.push_back(key);
      continue;
    }
    ReportDiffEntry entry;
    entry.key = key;
    entry.baseline = base_value;
    entry.candidate = it->second;
    entry.rel_diff = std::abs(entry.candidate - entry.baseline) /
                     std::max(std::abs(entry.baseline), kRelEps);
    entry.beyond = entry.rel_diff > rel_tolerance;
    diff.entries.push_back(std::move(entry));
  }
  for (const auto& [key, _] : candidate.metrics) {
    if (baseline.metrics.find(key) == baseline.metrics.end()) {
      diff.extra_in_candidate.push_back(key);
    }
  }
  return diff;
}

std::string render_diff(const ReportDiff& diff, double rel_tolerance) {
  std::ostringstream out;
  if (!diff.comparable) {
    out << "not comparable: " << diff.error << '\n';
    return out.str();
  }
  AsciiTable table({"metric", "baseline", "candidate", "rel diff", ""});
  table.set_alignments({Align::kLeft, Align::kRight, Align::kRight,
                        Align::kRight, Align::kLeft});
  for (const ReportDiffEntry& entry : diff.entries) {
    table.add_row({entry.key, format_fixed(entry.baseline, 6),
                   format_fixed(entry.candidate, 6),
                   format_percent(100.0 * entry.rel_diff),
                   entry.beyond ? "REGRESSION" : ""});
  }
  out << table.render();
  for (const std::string& key : diff.missing_in_candidate) {
    out << "missing in candidate: " << key << "  REGRESSION\n";
  }
  for (const std::string& key : diff.extra_in_candidate) {
    out << "new in candidate: " << key << '\n';
  }
  out << diff.entries.size() << " metrics compared, "
      << diff.beyond_count() << " beyond " << format_percent(
             100.0 * rel_tolerance)
      << " tolerance\n";
  return out.str();
}

}  // namespace mcm::bench
