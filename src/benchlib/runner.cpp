#include "benchlib/runner.hpp"

#include "obs/span.hpp"
#include "util/contracts.hpp"

namespace mcm::bench {

namespace {

[[nodiscard]] std::size_t effective_max_cores(const Backend& backend,
                                              const SweepOptions& options) {
  const std::size_t available = backend.max_computing_cores();
  if (options.max_cores == 0) return available;
  return std::min(options.max_cores, available);
}

}  // namespace

PlacementCurve run_placement(Backend& backend, topo::NumaId comp,
                             topo::NumaId comm,
                             const SweepOptions& options) {
  MCM_EXPECTS(options.core_step >= 1);
  MCM_EXPECTS(options.repetitions >= 1);
  MCM_EXPECTS(comp.value() < backend.numa_count());
  MCM_EXPECTS(comm.value() < backend.numa_count());

  const obs::Observer& obs = options.observer;
  const obs::WallClock clock;
  obs::Counter* met_points = nullptr;
  obs::BandwidthHistogram* met_compute = nullptr;
  obs::BandwidthHistogram* met_comm = nullptr;
  if (obs.metrics != nullptr) {
    obs.metrics->counter("bench.runner.placements").add();
    met_points = &obs.metrics->counter("bench.runner.points");
    met_compute =
        &obs.metrics->histogram("bench.runner.compute_parallel_gb");
    met_comm = &obs.metrics->histogram("bench.runner.comm_parallel_gb");
  }

  PlacementCurve curve;
  curve.comp_numa = comp;
  curve.comm_numa = comm;

  const std::size_t max_cores = effective_max_cores(backend, options);
  const double reps = static_cast<double>(options.repetitions);

  // Wraps every per-core-count span below (same track); constructed
  // first so it is recorded last, covering the full placement wall time
  // including the comm-alone measurements.
  obs::ScopedSpan placement_span(obs.trace, "placement", "bench",
                                 comp.value() * 100 + comm.value(), 0.0);
  placement_span.arg("comp_numa", comp.value())
      .arg("comm_numa", comm.value());

  // Communications alone do not depend on the core count; measured once
  // per run and replicated so every point is self-contained (as in the
  // benchmark's per-run output files).
  double comm_alone_gb = 0.0;
  for (std::size_t run = 0; run < options.repetitions; ++run) {
    backend.set_run(static_cast<unsigned>(run));
    comm_alone_gb += backend.comm_alone(comm).gb();
  }
  comm_alone_gb /= reps;

  for (std::size_t n = 1; n <= max_cores; n += options.core_step) {
    obs::ScopedSpan point_span(obs.trace, clock, "cores", "bench",
                               comp.value() * 100 + comm.value());
    BandwidthPoint point;
    point.cores = n;
    point.comm_alone_gb = comm_alone_gb;
    for (std::size_t run = 0; run < options.repetitions; ++run) {
      backend.set_run(static_cast<unsigned>(run));
      point.compute_alone_gb += backend.compute_alone(n, comp).gb();
      const sim::ParallelMeasurement par = backend.parallel(n, comp, comm);
      point.compute_parallel_gb += par.compute.gb();
      point.comm_parallel_gb += par.comm.gb();
    }
    point.compute_alone_gb /= reps;
    point.compute_parallel_gb /= reps;
    point.comm_parallel_gb /= reps;
    curve.points.push_back(point);

    if (met_points != nullptr) {
      met_points->add();
      met_compute->record(Bandwidth::gb_per_s(point.compute_parallel_gb));
      met_comm->record(Bandwidth::gb_per_s(point.comm_parallel_gb));
    }
    point_span.arg("cores", static_cast<double>(n))
        .arg("compute_gb", point.compute_parallel_gb)
        .arg("comm_gb", point.comm_parallel_gb);
    // Native producers drive the sampler on the wall timeline, one offer
    // per measured point.
    if (obs.sampler != nullptr) obs.sampler->maybe_sample(clock.now_us());
  }
  backend.set_run(0);
  placement_span.set_end(clock.now_us());
  return curve;
}

SweepResult run_all_placements(Backend& backend,
                               const SweepOptions& options) {
  SweepResult result;
  result.platform = backend.name();
  result.numa_per_socket = backend.numa_per_socket();
  const std::size_t numa = backend.numa_count();
  for (std::size_t comm = 0; comm < numa; ++comm) {
    for (std::size_t comp = 0; comp < numa; ++comp) {
      result.curves.push_back(run_placement(
          backend, topo::NumaId(static_cast<std::uint32_t>(comp)),
          topo::NumaId(static_cast<std::uint32_t>(comm)), options));
    }
  }
  return result;
}

CalibrationPlacements calibration_placements(const Backend& backend) {
  CalibrationPlacements placements;
  placements.local = topo::NumaId(0);
  placements.remote = topo::NumaId(
      static_cast<std::uint32_t>(backend.numa_per_socket()));
  MCM_ENSURES(placements.remote.value() < backend.numa_count());
  return placements;
}

SweepResult run_calibration_sweep(Backend& backend,
                                  const SweepOptions& options) {
  const CalibrationPlacements placements = calibration_placements(backend);
  SweepResult result;
  result.platform = backend.name();
  result.numa_per_socket = backend.numa_per_socket();
  result.curves.push_back(run_placement(backend, placements.local,
                                        placements.local, options));
  result.curves.push_back(run_placement(backend, placements.remote,
                                        placements.remote, options));
  return result;
}

}  // namespace mcm::bench
