// Sweep (de)serialization.
//
// A SweepResult round-trips through one CSV file, so measurements taken on
// a real machine (with this suite's native backend, the paper's public
// benchmark, or any tool producing the same columns) can be fed to the
// model offline: measure on the cluster, calibrate and predict anywhere.
//
// Format: two comment headers then standard CSV —
//
//   # platform henri
//   # numa_per_socket 1
//   comp_numa,comm_numa,cores,compute_alone_gb,comm_alone_gb,
//       compute_parallel_gb,comm_parallel_gb
//   0,0,1,5.5,12.1,5.5,12.1
//   ...
//
// Rows may appear in any order; each (comp_numa, comm_numa) group must
// cover dense core counts 1..N with one row each.
#pragma once

#include <optional>
#include <string>

#include "benchlib/curves.hpp"

namespace mcm::bench {

/// Render a sweep to the CSV format above.
[[nodiscard]] std::string sweep_to_csv(const SweepResult& sweep);

/// Parse the CSV format. Returns std::nullopt and fills `error` (if given)
/// on malformed input (bad headers, missing columns, sparse core counts).
[[nodiscard]] std::optional<SweepResult> sweep_from_csv(
    const std::string& text, std::string* error = nullptr);

}  // namespace mcm::bench
