#include "benchlib/curves.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

namespace mcm::bench {

const char* to_string(Series series) {
  switch (series) {
    case Series::kComputeAlone:
      return "compute-alone";
    case Series::kCommAlone:
      return "comm-alone";
    case Series::kComputeParallel:
      return "compute-parallel";
    case Series::kCommParallel:
      return "comm-parallel";
  }
  return "unknown";
}

const BandwidthPoint& PlacementCurve::at(std::size_t cores) const {
  MCM_EXPECTS(cores >= 1);
  // Look up by core count, not position: sparse sweeps (core_step > 1)
  // store fewer points than core counts. Points are in ascending order of
  // cores, so binary search applies.
  const auto it = std::lower_bound(
      points.begin(), points.end(), cores,
      [](const BandwidthPoint& p, std::size_t n) { return p.cores < n; });
  MCM_EXPECTS(it != points.end() && it->cores == cores);
  return *it;
}

std::vector<double> PlacementCurve::series(Series which) const {
  std::vector<double> out;
  out.reserve(points.size());
  for (const BandwidthPoint& p : points) {
    switch (which) {
      case Series::kComputeAlone:
        out.push_back(p.compute_alone_gb);
        break;
      case Series::kCommAlone:
        out.push_back(p.comm_alone_gb);
        break;
      case Series::kComputeParallel:
        out.push_back(p.compute_parallel_gb);
        break;
      case Series::kCommParallel:
        out.push_back(p.comm_parallel_gb);
        break;
    }
  }
  return out;
}

std::vector<double> PlacementCurve::total_parallel() const {
  std::vector<double> out;
  out.reserve(points.size());
  for (const BandwidthPoint& p : points) out.push_back(p.total_parallel_gb());
  return out;
}

const PlacementCurve& SweepResult::curve(topo::NumaId comp,
                                         topo::NumaId comm) const {
  for (const PlacementCurve& c : curves) {
    if (c.comp_numa == comp && c.comm_numa == comm) return c;
  }
  MCM_EXPECTS(!"placement not measured in this sweep");
  return curves.front();
}

bool SweepResult::has_curve(topo::NumaId comp, topo::NumaId comm) const {
  for (const PlacementCurve& c : curves) {
    if (c.comp_numa == comp && c.comm_numa == comm) return true;
  }
  return false;
}

std::string to_csv(const PlacementCurve& curve) {
  CsvWriter csv({"cores", "compute_alone_gb", "comm_alone_gb",
                 "compute_parallel_gb", "comm_parallel_gb"});
  for (const BandwidthPoint& p : curve.points) {
    csv.add_row({std::to_string(p.cores), format_fixed(p.compute_alone_gb, 4),
                 format_fixed(p.comm_alone_gb, 4),
                 format_fixed(p.compute_parallel_gb, 4),
                 format_fixed(p.comm_parallel_gb, 4)});
  }
  return csv.render();
}

}  // namespace mcm::bench
