// Steady-state bandwidth arbiter.
//
// Given a set of streams (each with a nominal demand and a path of shared
// links) the arbiter computes the bandwidth each stream actually obtains.
// Its mechanism is deliberately *different* from the paper's analytical
// model — the model is later calibrated against this simulator output, so a
// shared formula would make the evaluation circular. The arbiter implements
// the paper's §II-A hardware hypotheses directly:
//
//  1. Links have finite (effective) capacity. When total demand fits,
//     everybody gets their demand — no contention.
//  2. CPU requests have priority over DMA: under contention DMA is squeezed
//     to the link's leftover capacity...
//  3. ...but never below the link's configured DMA floor (anti-starvation).
//  4. Effective capacity degrades once the number of weighted requestors
//     exceeds a knee — producing the slow post-saturation decline the paper
//     measures when extra cores keep piling on.
//
// Within a class, sharing is max-min fair (uniform progressive filling).
// The load-dependent capacity is resolved with a damped outer fixed point.
#pragma once

#include <span>
#include <vector>

#include "obs/observer.hpp"
#include "sim/stream.hpp"
#include "topo/topology.hpp"

namespace mcm::sim {

/// How links share capacity between the CPU and DMA classes.
enum class ArbitrationPolicy : std::uint8_t {
  /// The real-hardware behaviour (default): CPU outranks DMA, DMA keeps a
  /// guaranteed floor, soft throttling near saturation.
  kCpuPriorityWithFloor,
  /// Ablation variant: one max-min fair pool, no classes, no floors, no
  /// soft throttling (requestor-count degradation still applies).
  kFairShare,
};

[[nodiscard]] constexpr const char* to_string(ArbitrationPolicy policy) {
  return policy == ArbitrationPolicy::kCpuPriorityWithFloor
             ? "cpu-priority-with-floor"
             : "fair-share";
}

/// Outcome of one steady-state solve.
struct ArbiterResult {
  /// Granted bandwidth per stream, same order as the input.
  std::vector<Bandwidth> allocation;
  /// Total granted bandwidth crossing each link (indexed by LinkId value).
  std::vector<Bandwidth> link_usage;
  /// Effective (degraded) capacity of each link at the solution.
  std::vector<Bandwidth> link_effective_capacity;
  /// Outer fixed-point iterations used.
  int iterations = 0;
};

class Arbiter {
 public:
  explicit Arbiter(
      const topo::Machine& machine,
      ArbitrationPolicy policy = ArbitrationPolicy::kCpuPriorityWithFloor);

  [[nodiscard]] ArbitrationPolicy policy() const { return policy_; }

  /// Solve the steady state for the given stream set. Streams with zero
  /// demand get zero. Deterministic: same input, same output.
  [[nodiscard]] ArbiterResult solve(std::span<const StreamSpec> streams) const;

  /// Attach metrics (counters sim.arbiter.solves / iterations, histograms
  /// sim.arbiter.grant_cpu_gb / grant_dma_gb of per-stream granted rates).
  /// Solving is unchanged — observation only, zero-cost when detached.
  void attach_observer(const obs::Observer& observer);

 private:
  const topo::Machine* machine_;
  ArbitrationPolicy policy_;

  obs::Counter* met_solves_ = nullptr;
  obs::Counter* met_iterations_ = nullptr;
  obs::BandwidthHistogram* met_grant_cpu_ = nullptr;
  obs::BandwidthHistogram* met_grant_dma_ = nullptr;
};

}  // namespace mcm::sim
