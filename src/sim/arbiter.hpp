// Steady-state bandwidth arbiter.
//
// Given a set of streams (each with a nominal demand and a path of shared
// links) the arbiter computes the bandwidth each stream actually obtains.
// Its mechanism is deliberately *different* from the paper's analytical
// model — the model is later calibrated against this simulator output, so a
// shared formula would make the evaluation circular. The arbiter implements
// the paper's §II-A hardware hypotheses directly:
//
//  1. Links have finite (effective) capacity. When total demand fits,
//     everybody gets their demand — no contention.
//  2. CPU requests have priority over DMA: under contention DMA is squeezed
//     to the link's leftover capacity...
//  3. ...but never below the link's configured DMA floor (anti-starvation).
//  4. Effective capacity degrades once the number of weighted requestors
//     exceeds a knee — producing the slow post-saturation decline the paper
//     measures when extra cores keep piling on.
//
// Within a class, sharing is max-min fair (uniform progressive filling).
// The load-dependent capacity is resolved with a damped outer fixed point.
//
// Two ways in:
//
//  * `solve(streams)` — one-shot, const, stateless between calls: builds a
//    throwaway struct-of-arrays state and runs the fixed point. This is the
//    reference path.
//  * `prepare(streams)` + `add_stream` / `remove_stream` + `resolve()` —
//    the incremental epoch API the slice engine uses. The SoA state is
//    maintained across slice boundaries: a transfer start appends one slot,
//    a completion tombstones one, and `resolve()` re-runs the fixed point
//    over only the links that have at least one requestor.
//
// Bit-identity guarantee: `resolve()` produces allocations bitwise equal to
// `solve()` over the same streams in the same (insertion) order. The three
// mechanisms that make this exact rather than approximate:
//  - the fixed point skips links with no requestors; their effective
//    capacity is iteration-invariant and computed once for the result, so
//    skipping them changes no arithmetic on the touched links;
//  - per-link FP aggregates (DMA demand sums, ambient per-socket core
//    weights) are maintained as *ordered member lists*: appends extend the
//    left-to-right sum exactly, removals re-sum the surviving members in
//    insertion order — never an inexact `-=`;
//  - the per-solve damped-utilization state is reinitialised on every
//    resolve exactly as a fresh solve would.
#pragma once

#include <span>
#include <vector>

#include "obs/observer.hpp"
#include "sim/stream.hpp"
#include "topo/topology.hpp"

namespace mcm::sim {

/// How links share capacity between the CPU and DMA classes.
enum class ArbitrationPolicy : std::uint8_t {
  /// The real-hardware behaviour (default): CPU outranks DMA, DMA keeps a
  /// guaranteed floor, soft throttling near saturation.
  kCpuPriorityWithFloor,
  /// Ablation variant: one max-min fair pool, no classes, no floors, no
  /// soft throttling (requestor-count degradation still applies).
  kFairShare,
};

[[nodiscard]] constexpr const char* to_string(ArbitrationPolicy policy) {
  return policy == ArbitrationPolicy::kCpuPriorityWithFloor
             ? "cpu-priority-with-floor"
             : "fair-share";
}

/// Outcome of one steady-state solve.
struct ArbiterResult {
  /// Granted bandwidth per stream. For `solve()`: same order as the input.
  /// For `resolve()`: indexed by epoch slot (tombstoned slots read zero).
  std::vector<Bandwidth> allocation;
  /// Total granted bandwidth crossing each link (indexed by LinkId value).
  std::vector<Bandwidth> link_usage;
  /// Effective (degraded) capacity of each link at the solution.
  std::vector<Bandwidth> link_effective_capacity;
  /// Outer fixed-point iterations used.
  int iterations = 0;
};

class Arbiter {
 public:
  explicit Arbiter(
      const topo::Machine& machine,
      ArbitrationPolicy policy = ArbitrationPolicy::kCpuPriorityWithFloor);

  [[nodiscard]] ArbitrationPolicy policy() const { return policy_; }

  /// Solve the steady state for the given stream set. Streams with zero
  /// demand get zero. Deterministic: same input, same output. Independent
  /// of any epoch state (safe to call for cross-checking a live epoch).
  [[nodiscard]] ArbiterResult solve(std::span<const StreamSpec> streams) const;

  // -- incremental epoch API (the engine's hot path) -----------------------

  /// Start a new epoch: rebuild the struct-of-arrays solver state from
  /// scratch for `streams` (slots 0..n-1 in order). Also re-reads the
  /// per-link constants from the machine.
  void prepare(std::span<const StreamSpec> streams);

  /// Append one stream to the epoch; returns its slot. Aggregates are
  /// extended exactly (left-to-right FP sums), so a subsequent resolve()
  /// is bitwise equal to a fresh solve over the same ordered stream set.
  std::size_t add_stream(const StreamSpec& spec);

  /// Tombstone one live slot. Aggregates on the affected links/socket are
  /// re-summed over the surviving members in insertion order (exact).
  void remove_stream(std::size_t slot);

  /// Live (non-tombstoned) streams in the current epoch.
  [[nodiscard]] std::size_t live_streams() const {
    return epoch_.order.size();
  }
  /// Tombstoned slots accumulated since the last prepare(). Callers decide
  /// when to compact by calling prepare() again with the live streams.
  [[nodiscard]] std::size_t tombstones() const { return epoch_.tombstones; }

  /// Run the fixed point over the current epoch. `dirty_links` is the set
  /// of links whose requestor membership changed since the last resolve
  /// (the engine's dirty-link list); their cached per-link constants are
  /// refreshed from the machine. The returned reference stays valid until
  /// the next resolve/prepare; `allocation` is indexed by slot.
  const ArbiterResult& resolve(
      std::span<const std::uint32_t> dirty_links = {});

  /// Attach metrics (counters sim.arbiter.solves / iterations /
  /// full_solves / incremental_solves / links_resolved, histograms
  /// sim.arbiter.grant_cpu_gb / grant_dma_gb of per-stream granted rates).
  /// Solving is unchanged — observation only, zero-cost when detached.
  void attach_observer(const obs::Observer& observer);

 private:
  /// All solver state, struct-of-arrays. One long-lived instance backs the
  /// epoch API; solve() builds a throwaway one so the two never interact.
  struct SolverState {
    // Per-link constants mirrored out of topo::Link so the inner capacity
    // loop runs on flat arrays (refreshed by prepare() and, per dirty
    // link, by resolve()).
    std::vector<double> link_capacity;
    std::vector<double> link_min_cap;  ///< capacity * kMinCapacityFraction
    std::vector<double> link_dma_floor;
    std::vector<double> link_deg_per_req;
    std::vector<double> link_knee;
    std::vector<double> link_dma_weight;
    std::vector<double> link_ambient_knee;
    std::vector<double> link_ambient_deg;
    std::vector<double> link_soft_start;
    std::vector<double> link_soft_min;
    std::vector<std::uint32_t> link_ambient_socket;  ///< UINT32_MAX = none

    // Per-stream arrays, slot-indexed. Slots are append-only within an
    // epoch; removal tombstones (live[slot] = 0). Paths are stored CSR.
    std::vector<std::uint8_t> is_dma;
    std::vector<std::uint8_t> live;
    std::vector<double> demand;
    std::vector<double> ambient_weight;
    std::vector<std::uint32_t> source_socket;  ///< UINT32_MAX = invalid
    std::vector<std::uint32_t> path_offset;    ///< size = slots + 1
    std::vector<std::uint32_t> path_link;

    /// Live slots in insertion order — the order a fresh solve() sees.
    std::vector<int> order;
    std::size_t tombstones = 0;

    // Per-link / per-socket aggregates over live members with demand above
    // the rate epsilon. Member lists are kept in insertion order so
    // re-summation after a removal reproduces a fresh build's
    // left-to-right FP sums bitwise.
    std::vector<int> cpu_requestors;
    std::vector<std::vector<int>> dma_on;
    std::vector<double> dma_demand_sum;
    std::vector<std::vector<int>> cpu_socket_members;
    std::vector<double> cpu_on_socket;

    // Solver scratch, reused across resolves (no allocation on the hot
    // path once warmed).
    std::vector<int> cpu_ids;
    std::vector<int> dma_ids;
    std::vector<int> all_ids;
    std::vector<int> active;
    std::vector<int> still_active;
    std::vector<int> active_count;
    std::vector<std::uint32_t> touched;
    std::vector<std::uint8_t> is_touched;
    std::vector<double> dma_utilization;
    std::vector<double> alloc;
    std::vector<double> previous;
    std::vector<double> cap_eff;
    std::vector<double> remaining;
    std::vector<double> cpu_usage;
    ArbiterResult result;
  };

  void reset_state(SolverState& st) const;
  void refresh_link_constants(SolverState& st, std::uint32_t link) const;
  std::size_t state_add_stream(SolverState& st, const StreamSpec& spec) const;
  void state_remove_stream(SolverState& st, std::size_t slot) const;
  [[nodiscard]] double link_cap_eff(const SolverState& st,
                                    std::uint32_t link) const;
  void max_min_fill(SolverState& st, const std::vector<int>& stream_ids) const;
  /// The damped fixed point; fills st.alloc / st.cap_eff, returns
  /// iteration count. Identical arithmetic for both entry points.
  [[nodiscard]] int run_fixed_point(SolverState& st) const;
  /// Build st.result from the solved state.
  void emit_result(SolverState& st, int iterations) const;
  void record_solution(const SolverState& st, bool incremental) const;

  const topo::Machine* machine_;
  ArbitrationPolicy policy_;
  SolverState epoch_;
  bool epoch_ready_ = false;

  obs::Counter* met_solves_ = nullptr;
  obs::Counter* met_iterations_ = nullptr;
  obs::Counter* met_full_solves_ = nullptr;
  obs::Counter* met_incremental_solves_ = nullptr;
  obs::Counter* met_links_resolved_ = nullptr;
  obs::BandwidthHistogram* met_grant_cpu_ = nullptr;
  obs::BandwidthHistogram* met_grant_dma_ = nullptr;
};

}  // namespace mcm::sim
