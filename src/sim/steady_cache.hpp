// Steady-state measurement cache.
//
// Every SimMachine phase measurement is a pure function of the platform
// spec, the workload knobs and the placement coordinate — the jitter that
// distinguishes repetitions is applied *outside* `run_phase`, keyed by run
// index. Sweeps and the ablation harness therefore hit the same
// (placement, n) cells over and over: one phase per repetition, one per
// competing policy, one per pipeline stage. This cache memoizes the
// engine runs behind a structured string key so repeated cells skip the
// discrete-event simulation entirely.
//
// Keys are built by SimMachine and cover every knob that influences the
// result (see machine.cpp's phase_key); callers sharing one cache across
// machines must only do so when the platform spec is identical — the
// pipeline Runner keys shared caches by the scenario's calibration
// fingerprint for exactly this reason.
//
// Thread-safe: sweeps run placements on a thread pool and the prediction
// service shares backends across requests.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "util/units.hpp"

namespace mcm::sim {

/// Result of a parallel (computation + communication) measurement.
struct ParallelMeasurement {
  Bandwidth compute;  ///< aggregate memory bandwidth of the computing cores
  Bandwidth comm;     ///< network bandwidth observed by the receiver
};

class SteadyStateCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
  };

  /// Look up `key`; on hit copies the stored measurement into `out`.
  [[nodiscard]] bool find(const std::string& key,
                          ParallelMeasurement& out) const;

  /// Store a measurement. Existing entries are kept (first write wins —
  /// a recomputation of the same key yields the same value by
  /// construction). Beyond the size cap new keys are dropped rather than
  /// evicting: sweeps revisit old cells, not recent ones.
  void store(const std::string& key, const ParallelMeasurement& value);

  [[nodiscard]] Stats stats() const;
  void clear();

 private:
  static constexpr std::size_t kMaxEntries = 65536;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, ParallelMeasurement> entries_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

}  // namespace mcm::sim
