// SimMachine: the simulated stand-in for one testbed node.
//
// It exposes exactly the operations the paper's benchmarking program needs:
// measure the memory bandwidth of n computing cores alone, the network
// bandwidth alone, and both in parallel, for a given placement of
// computation and communication data. Measurements are performed by running
// the discrete-event engine for a simulated phase (compute kernels as
// endless flows, communications as back-to-back 64 MiB message receptions)
// and dividing bytes moved by elapsed time — the same procedure as the real
// benchmark, not a shortcut through the arbiter.
//
// Measurements carry deterministic run-to-run jitter and the platform
// quirks (pyxis' cross-NUMA DMA interference) described in NoiseProfile.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/engine.hpp"
#include "sim/steady_cache.hpp"
#include "topo/platforms.hpp"

namespace mcm::sim {

/// Communication pattern of the benchmark (paper §VI future work: the
/// published model assumes receive-only "pongs"; ping-pongs add a second
/// DMA stream through the same memory path).
enum class CommPattern : std::uint8_t {
  kReceiveOnly,
  kBidirectional,
};

[[nodiscard]] constexpr const char* to_string(CommPattern pattern) {
  return pattern == CommPattern::kReceiveOnly ? "receive-only"
                                              : "bidirectional";
}

/// Compute kernel of the benchmark (paper §VI future work: the published
/// model calibrates on non-temporal memset; a copy kernel moves read +
/// write traffic through the memory system).
enum class ComputeKernel : std::uint8_t {
  kFill,        ///< non-temporal memset (the paper's kernel, bypasses LLC)
  kCopy,        ///< non-temporal copy: read + write traffic
  kCachedFill,  ///< temporal memset: the LLC absorbs the hits (paper §VI)
};

[[nodiscard]] constexpr const char* to_string(ComputeKernel kernel) {
  switch (kernel) {
    case ComputeKernel::kFill:
      return "fill";
    case ComputeKernel::kCopy:
      return "copy";
    case ComputeKernel::kCachedFill:
      return "cached-fill";
  }
  return "unknown";
}

/// Memory traffic of one kernel relative to the fill kernel's stores
/// (before any LLC filtering — see SimMachine::llc_hit_fraction).
[[nodiscard]] constexpr double kernel_traffic_factor(ComputeKernel kernel) {
  // A streaming copy reads one array and writes another: close to twice
  // the fill kernel's memory-system traffic per element, minus some
  // read/write turnaround overhead on real controllers.
  return kernel == ComputeKernel::kCopy ? 1.9 : 1.0;
}

class SimMachine {
 public:
  explicit SimMachine(
      topo::PlatformSpec spec,
      ArbitrationPolicy policy = ArbitrationPolicy::kCpuPriorityWithFloor);

  [[nodiscard]] ArbitrationPolicy policy() const { return policy_; }

  [[nodiscard]] const topo::PlatformSpec& spec() const { return spec_; }
  [[nodiscard]] const topo::Machine& machine() const {
    return spec_.machine;
  }

  /// Cores available for the benchmark sweep (first socket, minus the core
  /// dedicated to communication progression, mirroring the paper's setup).
  [[nodiscard]] std::size_t max_computing_cores() const;

  /// Message size used for communication measurements (paper: 64 MiB).
  [[nodiscard]] std::uint64_t message_bytes() const { return message_bytes_; }
  void set_message_bytes(std::uint64_t bytes);

  /// Simulated duration of each measurement phase.
  void set_phase_duration(Seconds duration);

  /// Select which "run" of the benchmark this is: measurements are
  /// deterministic per (platform seed, run index, coordinate), so distinct
  /// run indices see independent jitter — used to average repetitions.
  [[nodiscard]] unsigned run_index() const { return run_index_; }
  void set_run_index(unsigned run) { run_index_ = run; }

  /// Communication pattern (default: receive-only, as in the paper).
  [[nodiscard]] CommPattern comm_pattern() const { return comm_pattern_; }
  void set_comm_pattern(CommPattern pattern) { comm_pattern_ = pattern; }

  /// Compute kernel (default: non-temporal fill, as in the paper).
  [[nodiscard]] ComputeKernel compute_kernel() const {
    return compute_kernel_;
  }
  void set_compute_kernel(ComputeKernel kernel) { compute_kernel_ = kernel; }

  /// Per-core working set of the compute kernel (weak scaling; only
  /// affects the cached kernel's LLC behaviour).
  [[nodiscard]] std::uint64_t working_set_bytes() const {
    return working_set_bytes_;
  }
  void set_working_set_bytes(std::uint64_t bytes);

  /// Cache for jitter-free phase results (on by default; every machine
  /// gets a private one). Phase results are pure functions of the
  /// platform spec + workload knobs, so sharing a cache between machines
  /// built from the *same* spec is safe and lets sweeps reuse each
  /// other's cells — the pipeline Runner does this keyed by the scenario
  /// fingerprint. Pass nullptr to disable caching entirely.
  void set_steady_cache(std::shared_ptr<SteadyStateCache> cache) {
    steady_cache_ = std::move(cache);
  }
  [[nodiscard]] const std::shared_ptr<SteadyStateCache>& steady_cache()
      const {
    return steady_cache_;
  }

  /// Fraction of the cached kernel's accesses absorbed by the LLC when
  /// `active_cores` cores each stream over their working set: the shared
  /// cache covers llc_bytes of the aggregate footprint. 0 for the
  /// non-temporal kernels (they bypass the cache, paper §II-C).
  [[nodiscard]] double llc_hit_fraction(std::size_t active_cores) const;

  // -- stream construction (shared with the network layer) -----------------
  /// Stream of one compute core on socket 0 writing to `data`, when
  /// `active_cores` cores compute in total (per-core demand shrinks with
  /// the platform's scaling curvature).
  [[nodiscard]] StreamSpec compute_stream(std::size_t active_cores,
                                          topo::NumaId data) const;
  /// DMA stream of the (single) NIC into buffers on `data`.
  [[nodiscard]] StreamSpec dma_stream(topo::NumaId data) const;
  /// Send-direction DMA stream out of buffers on `data` (bidirectional
  /// pattern): shares only the memory-side links with the receive stream.
  [[nodiscard]] StreamSpec dma_send_stream(topo::NumaId data) const;

  // -- the three benchmark phases ------------------------------------------
  /// Aggregate memory bandwidth of `n` cores computing alone on `comp`.
  [[nodiscard]] Bandwidth measure_compute_alone(std::size_t n,
                                                topo::NumaId comp);
  /// Network bandwidth receiving back-to-back messages into `comm`.
  [[nodiscard]] Bandwidth measure_comm_alone(topo::NumaId comm);
  /// Both at once.
  [[nodiscard]] ParallelMeasurement measure_parallel(std::size_t n,
                                                     topo::NumaId comp,
                                                     topo::NumaId comm);

  // -- noise-free steady-state rates (tests, analysis) ----------------------
  [[nodiscard]] Bandwidth steady_compute_alone(std::size_t n,
                                               topo::NumaId comp) const;
  [[nodiscard]] Bandwidth steady_comm_alone(topo::NumaId comm) const;
  [[nodiscard]] ParallelMeasurement steady_parallel(std::size_t n,
                                                    topo::NumaId comp,
                                                    topo::NumaId comm) const;

 private:
  /// Run the engine-based measurement common to all phases, memoized in
  /// steady_cache_ (the result is deterministic per key — see phase_key).
  [[nodiscard]] ParallelMeasurement run_phase(std::size_t n,
                                              topo::NumaId comp,
                                              topo::NumaId comm,
                                              bool with_compute,
                                              bool with_comm) const;
  /// The uncached engine run behind run_phase.
  [[nodiscard]] ParallelMeasurement run_phase_uncached(std::size_t n,
                                                       topo::NumaId comp,
                                                       topo::NumaId comm,
                                                       bool with_compute,
                                                       bool with_comm) const;
  /// Cache key covering every knob that influences a phase result.
  [[nodiscard]] std::string phase_key(const char* kind, std::size_t n,
                                      topo::NumaId comp,
                                      topo::NumaId comm) const;
  /// Deterministic multiplicative jitter for one measurement coordinate.
  [[nodiscard]] double jitter(const char* phase, std::size_t n,
                              topo::NumaId comp, topo::NumaId comm,
                              double sigma) const;

  topo::PlatformSpec spec_;
  ArbitrationPolicy policy_ = ArbitrationPolicy::kCpuPriorityWithFloor;
  std::uint64_t message_bytes_ = 64ull * kMiB;
  Seconds phase_duration_{0.2};
  unsigned run_index_ = 0;
  CommPattern comm_pattern_ = CommPattern::kReceiveOnly;
  ComputeKernel compute_kernel_ = ComputeKernel::kFill;
  std::uint64_t working_set_bytes_ = 64ull * kMiB;
  std::shared_ptr<SteadyStateCache> steady_cache_ =
      std::make_shared<SteadyStateCache>();
};

}  // namespace mcm::sim
