#include "sim/machine.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

#include "util/contracts.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace mcm::sim {

SimMachine::SimMachine(topo::PlatformSpec spec, ArbitrationPolicy policy)
    : spec_(std::move(spec)), policy_(policy) {
  spec_.machine.validate();
  MCM_EXPECTS(!spec_.machine.nics().empty());
}

std::size_t SimMachine::max_computing_cores() const {
  // One core of the first socket is dedicated to the communication
  // progression thread (paper §IV-A-1), the rest compute.
  return spec_.machine.cores_per_socket() - 1;
}

void SimMachine::set_message_bytes(std::uint64_t bytes) {
  MCM_EXPECTS(bytes > 0);
  message_bytes_ = bytes;
}

void SimMachine::set_phase_duration(Seconds duration) {
  MCM_EXPECTS(duration.value() > 0.0);
  phase_duration_ = duration;
}

void SimMachine::set_working_set_bytes(std::uint64_t bytes) {
  MCM_EXPECTS(bytes > 0);
  working_set_bytes_ = bytes;
}

double SimMachine::llc_hit_fraction(std::size_t active_cores) const {
  if (compute_kernel_ != ComputeKernel::kCachedFill) return 0.0;
  if (spec_.compute.llc_bytes == 0) return 0.0;
  MCM_EXPECTS(active_cores >= 1);
  const double footprint = static_cast<double>(active_cores) *
                           static_cast<double>(working_set_bytes_);
  // The shared LLC covers its size worth of the aggregate footprint; cap
  // below 1 so some traffic always reaches memory (write-backs, misses).
  return std::min(0.95,
                  static_cast<double>(spec_.compute.llc_bytes) / footprint);
}

StreamSpec SimMachine::compute_stream(std::size_t active_cores,
                                      topo::NumaId data) const {
  MCM_EXPECTS(active_cores >= 1);
  const topo::SocketId socket0(0);
  const bool local = spec_.machine.is_local(socket0, data);
  const Bandwidth per_core = local ? spec_.compute.per_core_local
                                   : spec_.compute.per_core_remote;
  // Sub-linear issue scaling (pyxis): each extra active core slightly
  // reduces everyone's achievable issue rate.
  const double curve =
      std::max(0.5, 1.0 - spec_.compute.scaling_curvature *
                              static_cast<double>(active_cores - 1));
  StreamSpec stream;
  stream.cls = StreamClass::kCpu;
  const double traffic_intensity =
      kernel_traffic_factor(compute_kernel_) *
      (1.0 - llc_hit_fraction(active_cores));
  stream.demand = per_core * curve * traffic_intensity;
  stream.path = spec_.machine.cpu_path(socket0, data);
  stream.source_socket = socket0;
  // Host-socket coupling scales with the traffic the core actually pushes
  // through the fabric, not its mere existence: a cache-resident kernel
  // barely disturbs the NIC ingress.
  stream.ambient_weight = traffic_intensity;
  return stream;
}

StreamSpec SimMachine::dma_stream(topo::NumaId data) const {
  const topo::NicId nic(0);
  StreamSpec stream;
  stream.cls = StreamClass::kDma;
  stream.demand = spec_.machine.nic_nominal_bandwidth(nic, data);
  stream.path = spec_.machine.dma_path(nic, data);
  stream.source_socket = spec_.machine.nic(nic).socket;
  return stream;
}

StreamSpec SimMachine::dma_send_stream(topo::NumaId data) const {
  const topo::NicId nic(0);
  StreamSpec stream;
  stream.cls = StreamClass::kDma;
  stream.demand = spec_.machine.nic_nominal_bandwidth(nic, data);
  stream.path = spec_.machine.dma_return_path(nic, data);
  stream.source_socket = spec_.machine.nic(nic).socket;
  return stream;
}

std::string SimMachine::phase_key(const char* kind, std::size_t n,
                                  topo::NumaId comp,
                                  topo::NumaId comm) const {
  // Everything a phase result depends on, in one flat string. Durations
  // use %a (hex float) so distinct doubles can never collide. Jitter and
  // run_index_ are deliberately absent: they are applied on top of the
  // (deterministic) phase result by the measure_* wrappers.
  char key[224];
  std::snprintf(key, sizeof key,
                "%s/n%zu/comp%u/comm%u/msg%llu/dur%a/pat%d/ker%d/ws%llu/"
                "pol%d",
                kind, n, comp.value(), comm.value(),
                static_cast<unsigned long long>(message_bytes_),
                phase_duration_.value(), static_cast<int>(comm_pattern_),
                static_cast<int>(compute_kernel_),
                static_cast<unsigned long long>(working_set_bytes_),
                static_cast<int>(policy_));
  return std::string(key);
}

ParallelMeasurement SimMachine::run_phase(std::size_t n, topo::NumaId comp,
                                          topo::NumaId comm,
                                          bool with_compute,
                                          bool with_comm) const {
  MCM_EXPECTS(with_compute || with_comm);
  MCM_EXPECTS(!with_compute || (n >= 1 && n <= max_computing_cores()));
  if (steady_cache_ == nullptr) {
    return run_phase_uncached(n, comp, comm, with_compute, with_comm);
  }
  const char* kind =
      with_compute ? (with_comm ? "phase-par" : "phase-comp") : "phase-comm";
  const std::string key = phase_key(kind, with_compute ? n : 0, comp, comm);
  ParallelMeasurement cached;
  if (steady_cache_->find(key, cached)) return cached;
  const ParallelMeasurement fresh =
      run_phase_uncached(n, comp, comm, with_compute, with_comm);
  steady_cache_->store(key, fresh);
  return fresh;
}

ParallelMeasurement SimMachine::run_phase_uncached(std::size_t n,
                                                   topo::NumaId comp,
                                                   topo::NumaId comm,
                                                   bool with_compute,
                                                   bool with_comm) const {
  MCM_EXPECTS(with_compute || with_comm);
  MCM_EXPECTS(!with_compute || (n >= 1 && n <= max_computing_cores()));

  Engine engine(spec_.machine, policy_);

  std::vector<TransferId> compute_flows;
  if (with_compute) {
    const StreamSpec stream = compute_stream(n, comp);
    compute_flows.reserve(n);
    for (std::size_t c = 0; c < n; ++c) {
      compute_flows.push_back(engine.start_flow(stream));
    }
  }

  // Communications: receive 64 MiB messages back to back; each completed
  // reception immediately posts the next one, as the benchmark loop does.
  // In the bidirectional (ping-pong) pattern a mirror send stream moves
  // the same message sizes out through the same memory path.
  TransferId rx_message = 0;
  std::uint64_t rx_bytes_completed = 0;
  if (with_comm) {
    rx_message = engine.start_transfer(dma_stream(comm), message_bytes_);
    if (comm_pattern_ == CommPattern::kBidirectional) {
      (void)engine.start_transfer(dma_send_stream(comm), message_bytes_);
    }
  }

  const Seconds deadline = phase_duration_;
  while (engine.now() < deadline) {
    const auto completion = engine.run_until_next_completion(deadline);
    if (!completion) break;
    if (completion->id == rx_message) {
      rx_bytes_completed += message_bytes_;
      rx_message = engine.start_transfer(dma_stream(comm), message_bytes_);
    } else {
      // A send completed: post the next outgoing message.
      (void)engine.start_transfer(dma_send_stream(comm), message_bytes_);
    }
  }

  ParallelMeasurement result;
  if (with_compute) {
    std::uint64_t bytes = 0;
    for (TransferId id : compute_flows) bytes += engine.bytes_moved(id);
    result.compute = achieved_bandwidth(bytes, phase_duration_);
  }
  if (with_comm) {
    // Count the partially received in-flight message too: the benchmark's
    // bandwidth is bytes-received over wall time (the receive direction,
    // as in the paper, even for ping-pongs).
    const std::uint64_t bytes =
        rx_bytes_completed + engine.bytes_moved(rx_message);
    result.comm = achieved_bandwidth(bytes, phase_duration_);
  }
  return result;
}

double SimMachine::jitter(const char* phase, std::size_t n,
                          topo::NumaId comp, topo::NumaId comm,
                          double sigma) const {
  if (sigma <= 0.0) return 1.0;
  const std::string key = std::string(phase) + "/" + std::to_string(n) +
                          "/" + std::to_string(comp.value()) + "/" +
                          std::to_string(comm.value()) + "/run" +
                          std::to_string(run_index_);
  Rng rng(hash_combine(spec_.seed, stable_hash(key)));
  // Clamp to +/- 3 sigma so that a single measurement can never flip the
  // qualitative shape of a curve.
  const double z = clamp(rng.normal(), -3.0, 3.0);
  return 1.0 + sigma * z;
}

Bandwidth SimMachine::measure_compute_alone(std::size_t n,
                                            topo::NumaId comp) {
  const ParallelMeasurement raw =
      run_phase(n, comp, topo::NumaId(0), true, false);
  return raw.compute *
         jitter("comp-alone", n, comp, topo::NumaId(0),
                spec_.noise.compute_sigma);
}

Bandwidth SimMachine::measure_comm_alone(topo::NumaId comm) {
  const ParallelMeasurement raw =
      run_phase(1, topo::NumaId(0), comm, false, true);
  return raw.comm * jitter("comm-alone", 0, topo::NumaId(0), comm,
                           spec_.noise.comm_sigma);
}

ParallelMeasurement SimMachine::measure_parallel(std::size_t n,
                                                 topo::NumaId comp,
                                                 topo::NumaId comm) {
  ParallelMeasurement result = run_phase(n, comp, comm, true, true);
  result.compute *=
      jitter("comp-par", n, comp, comm, spec_.noise.compute_sigma);
  result.comm *= jitter("comm-par", n, comp, comm, spec_.noise.comm_sigma);
  // Platform quirk (pyxis): DMA loses a slice of bandwidth to interconnect
  // interference whenever compute traffic targets a different NUMA node.
  // The analytical model has no term for this cross-node coupling.
  if (comp != comm && spec_.noise.cross_numa_dma_penalty > 0.0) {
    result.comm = result.comm * (1.0 - spec_.noise.cross_numa_dma_penalty);
  }
  return result;
}

Bandwidth SimMachine::steady_compute_alone(std::size_t n,
                                           topo::NumaId comp) const {
  MCM_EXPECTS(n >= 1 && n <= max_computing_cores());
  ParallelMeasurement cached;
  std::string key;
  if (steady_cache_ != nullptr) {
    key = phase_key("steady-comp", n, comp, topo::NumaId(0));
    if (steady_cache_->find(key, cached)) return cached.compute;
  }
  Arbiter arbiter(spec_.machine, policy_);
  const std::vector<StreamSpec> streams(n, compute_stream(n, comp));
  const ArbiterResult result = arbiter.solve(streams);
  Bandwidth total;
  for (Bandwidth bw : result.allocation) total += bw;
  if (steady_cache_ != nullptr) {
    steady_cache_->store(key, ParallelMeasurement{total, Bandwidth{}});
  }
  return total;
}

Bandwidth SimMachine::steady_comm_alone(topo::NumaId comm) const {
  ParallelMeasurement cached;
  std::string key;
  if (steady_cache_ != nullptr) {
    key = phase_key("steady-comm", 0, topo::NumaId(0), comm);
    if (steady_cache_->find(key, cached)) return cached.comm;
  }
  Arbiter arbiter(spec_.machine, policy_);
  std::vector<StreamSpec> streams{dma_stream(comm)};
  if (comm_pattern_ == CommPattern::kBidirectional) {
    streams.push_back(dma_send_stream(comm));
  }
  // The receive direction (first stream) is the reported bandwidth.
  const Bandwidth comm_bw = arbiter.solve(streams).allocation.front();
  if (steady_cache_ != nullptr) {
    steady_cache_->store(key, ParallelMeasurement{Bandwidth{}, comm_bw});
  }
  return comm_bw;
}

ParallelMeasurement SimMachine::steady_parallel(std::size_t n,
                                                topo::NumaId comp,
                                                topo::NumaId comm) const {
  MCM_EXPECTS(n >= 1 && n <= max_computing_cores());
  ParallelMeasurement cached;
  std::string key;
  if (steady_cache_ != nullptr) {
    key = phase_key("steady-par", n, comp, comm);
    if (steady_cache_->find(key, cached)) return cached;
  }
  Arbiter arbiter(spec_.machine, policy_);
  std::vector<StreamSpec> streams(n, compute_stream(n, comp));
  streams.push_back(dma_stream(comm));
  if (comm_pattern_ == CommPattern::kBidirectional) {
    streams.push_back(dma_send_stream(comm));
  }
  const ArbiterResult result = arbiter.solve(streams);
  ParallelMeasurement out;
  for (std::size_t i = 0; i < n; ++i) out.compute += result.allocation[i];
  out.comm = result.allocation[n];  // receive direction
  if (steady_cache_ != nullptr) steady_cache_->store(key, out);
  return out;
}

}  // namespace mcm::sim
