// Discrete-event simulation engine on top of the steady-state arbiter.
//
// Time advances in slices during which the active stream set — and hence
// every stream's arbitrated rate — is constant. Slice boundaries are
// transfer completions, additions and removals. Finite transfers model
// network messages (a 64 MiB receive in the paper's benchmark); endless
// flows model compute kernels that re-issue work back to back.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/arbiter.hpp"
#include "sim/stream.hpp"
#include "sim/trace.hpp"
#include "topo/topology.hpp"

namespace mcm::sim {

using TransferId = std::uint64_t;

/// A finite transfer that finished, and when.
struct Completion {
  TransferId id = 0;
  Seconds time;
};

class Engine {
 public:
  explicit Engine(
      const topo::Machine& machine,
      ArbitrationPolicy policy = ArbitrationPolicy::kCpuPriorityWithFloor);

  /// Start a finite transfer of `bytes` (> 0). Returns its id.
  TransferId start_transfer(const StreamSpec& spec, std::uint64_t bytes);

  /// Start an endless flow (runs until stopped).
  TransferId start_flow(const StreamSpec& spec);

  /// Remove an active transfer/flow. Idempotent on completed transfers;
  /// throws for unknown ids.
  void stop(TransferId id);

  /// True while the transfer is running (finite and unfinished, or a flow
  /// that has not been stopped).
  [[nodiscard]] bool is_active(TransferId id) const;

  /// Bytes moved so far (or in total, once completed/stopped).
  [[nodiscard]] std::uint64_t bytes_moved(TransferId id) const;

  /// Current arbitrated rate; zero once inactive. Non-const because it
  /// refreshes the cached arbitration if the active set changed.
  [[nodiscard]] Bandwidth current_rate(TransferId id);

  [[nodiscard]] Seconds now() const { return now_; }

  /// Advance simulated time to `deadline`, collecting finite-transfer
  /// completions in time order. Precondition: deadline >= now().
  std::vector<Completion> run_until(Seconds deadline);

  /// Advance until the next completion, but never past `deadline`.
  /// Returns std::nullopt if no finite transfer completes by then.
  std::optional<Completion> run_until_next_completion(Seconds deadline);

  [[nodiscard]] Trace& trace() { return trace_; }

 private:
  struct Transfer {
    StreamSpec spec;
    double bytes_total = 0.0;  ///< infinity for flows
    double bytes_done = 0.0;
    double rate = 0.0;  ///< bytes/s granted by the arbiter
    bool active = false;
  };

  void refresh_rates();
  [[nodiscard]] const Transfer& transfer(TransferId id) const;
  /// Advance all active transfers by dt at current rates; completes finite
  /// transfers that reach their size.
  void advance(Seconds dt, std::vector<Completion>& out);

  const topo::Machine* machine_;
  Arbiter arbiter_;
  std::unordered_map<TransferId, Transfer> transfers_;
  std::vector<TransferId> active_;  ///< sorted insertion order
  TransferId next_id_ = 1;
  Seconds now_{0.0};
  bool rates_dirty_ = true;
  Trace trace_;
};

}  // namespace mcm::sim
