// Discrete-event simulation engine on top of the steady-state arbiter.
//
// Time advances in slices during which the active stream set — and hence
// every stream's arbitrated rate — is constant. Slice boundaries are
// transfer completions, additions and removals. Finite transfers model
// network messages (a 64 MiB receive in the paper's benchmark); endless
// flows model compute kernels that re-issue work back to back.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "obs/observer.hpp"
#include "sim/arbiter.hpp"
#include "sim/stream.hpp"
#include "sim/trace.hpp"
#include "topo/topology.hpp"

namespace mcm::sim {

using TransferId = std::uint64_t;

/// A finite transfer that finished, and when.
struct Completion {
  TransferId id = 0;
  Seconds time;
};

/// Outcome of Engine::stop(). Never an exception: callers retiring
/// transfers race-free against completions check the status instead.
enum class StopResult : std::uint8_t {
  kStopped,          ///< was active, now removed from the stream set
  kAlreadyComplete,  ///< finite transfer had already completed (or was
                     ///< stopped before) — a no-op
  kUnknownId,        ///< id was never issued by this engine
};

[[nodiscard]] constexpr const char* to_string(StopResult result) {
  switch (result) {
    case StopResult::kStopped:
      return "stopped";
    case StopResult::kAlreadyComplete:
      return "already-complete";
    case StopResult::kUnknownId:
      return "unknown-id";
  }
  return "unknown";
}

class Engine {
 public:
  explicit Engine(
      const topo::Machine& machine,
      ArbitrationPolicy policy = ArbitrationPolicy::kCpuPriorityWithFloor);

  /// Start a finite transfer of `bytes` (> 0). Returns its id.
  TransferId start_transfer(const StreamSpec& spec, std::uint64_t bytes);

  /// Start an endless flow (runs until stopped).
  TransferId start_flow(const StreamSpec& spec);

  /// Remove an active transfer/flow. Never throws: completed transfers
  /// report kAlreadyComplete, ids this engine never issued kUnknownId.
  StopResult stop(TransferId id);

  /// True while the transfer is running (finite and unfinished, or a flow
  /// that has not been stopped).
  [[nodiscard]] bool is_active(TransferId id) const;

  /// Bytes moved so far (or in total, once completed/stopped).
  [[nodiscard]] std::uint64_t bytes_moved(TransferId id) const;

  /// Current arbitrated rate; zero once inactive. Non-const because it
  /// refreshes the cached arbitration if the active set changed.
  [[nodiscard]] Bandwidth current_rate(TransferId id);

  [[nodiscard]] Seconds now() const { return now_; }

  /// Advance simulated time to `deadline`, collecting finite-transfer
  /// completions in time order. Precondition: deadline >= now().
  std::vector<Completion> run_until(Seconds deadline);

  /// Advance until the next completion, but never past `deadline`.
  /// Returns std::nullopt if no finite transfer completes by then.
  std::optional<Completion> run_until_next_completion(Seconds deadline);

  [[nodiscard]] Trace& trace() { return trace_; }

  /// Attach a metrics registry, structured trace sink and/or timeline
  /// sampler (any may be null). Pass a default-constructed Observer to
  /// detach. With nothing attached every hook is a single branch — the
  /// engine's arithmetic and event ordering are bit-identical to an
  /// uninstrumented run.
  ///
  /// Counters: sim.engine.transfers_started / flows_started /
  /// transfers_completed / transfers_stopped / slices / rate_refreshes.
  /// Histograms: sim.engine.grant_cpu_gb / grant_dma_gb (granted rates).
  /// Trace: "slice" complete events on track 0, per-transfer "grant" rate
  /// series, "transfer-start/-complete/-stop" instants.
  /// Sampler: offered simulated-time stamps at every slice boundary
  /// (maybe_sample), i.e. whenever the arbitrated rates may change.
  void attach_observer(const obs::Observer& observer);

 private:
  struct Transfer {
    StreamSpec spec;
    double bytes_total = 0.0;  ///< infinity for flows
    double bytes_done = 0.0;
    double rate = 0.0;  ///< bytes/s granted by the arbiter
    bool active = false;
  };

  void refresh_rates();
  [[nodiscard]] const Transfer& transfer(TransferId id) const;
  /// Advance all active transfers by dt at current rates; completes finite
  /// transfers that reach their size.
  void advance(Seconds dt, std::vector<Completion>& out);

  const topo::Machine* machine_;
  Arbiter arbiter_;
  std::unordered_map<TransferId, Transfer> transfers_;
  std::vector<TransferId> active_;  ///< sorted insertion order
  TransferId next_id_ = 1;
  Seconds now_{0.0};
  bool rates_dirty_ = true;
  Trace trace_;

  obs::Observer obs_;
  // Instruments resolved once at attach time (see MetricsRegistry rule 2);
  // all null when no registry is attached.
  obs::Counter* met_transfers_started_ = nullptr;
  obs::Counter* met_flows_started_ = nullptr;
  obs::Counter* met_transfers_completed_ = nullptr;
  obs::Counter* met_transfers_stopped_ = nullptr;
  obs::Counter* met_slices_ = nullptr;
  obs::Counter* met_rate_refreshes_ = nullptr;
  obs::BandwidthHistogram* met_grant_cpu_ = nullptr;
  obs::BandwidthHistogram* met_grant_dma_ = nullptr;
};

}  // namespace mcm::sim
