// Discrete-event simulation engine on top of the steady-state arbiter.
//
// Time advances in slices during which the active stream set — and hence
// every stream's arbitrated rate — is constant. Slice boundaries are
// transfer completions, additions and removals. Finite transfers model
// network messages (a 64 MiB receive in the paper's benchmark); endless
// flows model compute kernels that re-issue work back to back.
//
// The hot path is incremental (SolveMode::kIncremental, the default): the
// engine keeps a live arbiter epoch in sync with its active set — a
// transfer start appends one arbiter slot, a completion/stop tombstones
// one — and each rate refresh runs `Arbiter::resolve` over only the links
// whose requestor membership changed since the last refresh. A signature
// cache over the active spec sequence short-circuits refreshes whose
// stream set was already solved (back-to-back message restarts produce
// long runs of identical sets); hits are counted in
// `sim.engine.solves_avoided`. Both shortcuts are exact: resolve() is
// bitwise equal to a fresh solve (see arbiter.hpp) and cache entries are
// verified element-wise against the live specs before use.
//
// SolveMode::kFull disables all of it and re-runs the one-shot
// `Arbiter::solve` on every refresh — the pre-refactor reference path,
// kept for comparison benchmarks (bench_engine_hotpath) and as a
// fallback (`MCM_ENGINE_FULL_SOLVE=1` forces it process-wide).
//
// Cross-check mode: `MCM_CHECK_INCREMENTAL=N` (default 32 when built with
// MCM_SANITIZE, else 0) re-solves every Nth non-empty refresh with the
// stateless `solve()` and MCM_ENSURES the incremental rates are bitwise
// equal — covering the epoch state, the dirty-link skip and the solve
// cache in one probe. The shadow solve runs through the same arbiter, so
// `sim.arbiter.*` counters include the probes when the mode is on.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "obs/observer.hpp"
#include "sim/arbiter.hpp"
#include "sim/stream.hpp"
#include "sim/trace.hpp"
#include "topo/topology.hpp"

namespace mcm::sim {

/// Opaque transfer handle. Encodes {slot, generation} so the hot lookup is
/// an array index: the low 32 bits are slot+1 (never 0 — callers use 0 as
/// a sentinel), the high 32 bits the slot's generation at issue time.
/// Retired ids stay distinguishable forever: a slot's generation bumps
/// when its transfer completes or is stopped, before any reuse.
using TransferId = std::uint64_t;

/// A finite transfer that finished, and when.
struct Completion {
  TransferId id = 0;
  Seconds time;
};

/// Outcome of Engine::stop(). Never an exception: callers retiring
/// transfers race-free against completions check the status instead.
enum class StopResult : std::uint8_t {
  kStopped,          ///< was active, now removed from the stream set
  kAlreadyComplete,  ///< finite transfer had already completed (or was
                     ///< stopped before) — a no-op
  kUnknownId,        ///< id was never issued by this engine
};

[[nodiscard]] constexpr const char* to_string(StopResult result) {
  switch (result) {
    case StopResult::kStopped:
      return "stopped";
    case StopResult::kAlreadyComplete:
      return "already-complete";
    case StopResult::kUnknownId:
      return "unknown-id";
  }
  return "unknown";
}

class Engine {
 public:
  /// How rate refreshes reach the arbiter.
  enum class SolveMode : std::uint8_t {
    /// Maintain an arbiter epoch incrementally; resolve dirty links only;
    /// reuse cached solutions for repeated stream sets. Bit-identical to
    /// kFull by construction (cross-checkable, see MCM_CHECK_INCREMENTAL).
    kIncremental,
    /// One-shot full solve per refresh — the reference path.
    kFull,
  };

  explicit Engine(
      const topo::Machine& machine,
      ArbitrationPolicy policy = ArbitrationPolicy::kCpuPriorityWithFloor);

  /// Select the solve mode. Must be called before any transfer/flow is
  /// started. Default: kIncremental, unless the environment variable
  /// MCM_ENGINE_FULL_SOLVE is set to a non-zero value.
  void set_solve_mode(SolveMode mode);
  [[nodiscard]] SolveMode solve_mode() const { return mode_; }

  /// Start a finite transfer of `bytes` (> 0). Returns its id.
  TransferId start_transfer(const StreamSpec& spec, std::uint64_t bytes);

  /// Start an endless flow (runs until stopped).
  TransferId start_flow(const StreamSpec& spec);

  /// Remove an active transfer/flow. Never throws: completed transfers
  /// report kAlreadyComplete, ids this engine never issued kUnknownId.
  StopResult stop(TransferId id);

  /// True while the transfer is running (finite and unfinished, or a flow
  /// that has not been stopped).
  [[nodiscard]] bool is_active(TransferId id) const;

  /// Bytes moved so far (or in total, once completed/stopped).
  [[nodiscard]] std::uint64_t bytes_moved(TransferId id) const;

  /// Current arbitrated rate; zero once inactive. Const: the rate cache
  /// refreshes through mutable internals when the active set changed.
  [[nodiscard]] Bandwidth current_rate(TransferId id) const;

  [[nodiscard]] Seconds now() const { return now_; }

  /// Advance simulated time to `deadline`, collecting finite-transfer
  /// completions in time order. Precondition: deadline >= now().
  std::vector<Completion> run_until(Seconds deadline);

  /// Advance until the next completion, but never past `deadline`.
  /// Returns std::nullopt if no finite transfer completes by then.
  std::optional<Completion> run_until_next_completion(Seconds deadline);

  [[nodiscard]] Trace& trace() { return trace_; }

  /// Attach a metrics registry, structured trace sink and/or timeline
  /// sampler (any may be null). Pass a default-constructed Observer to
  /// detach. With nothing attached every hook is a single branch — the
  /// engine's arithmetic and event ordering are bit-identical to an
  /// uninstrumented run.
  ///
  /// Counters: sim.engine.transfers_started / flows_started /
  /// transfers_completed / transfers_stopped / slices / rate_refreshes /
  /// solves_avoided (cache hits) / dirty_links (links passed to resolve).
  /// Histograms: sim.engine.grant_cpu_gb / grant_dma_gb (granted rates).
  /// Trace: "slice" complete events on track 0, per-transfer "grant" rate
  /// series, "transfer-start/-complete/-stop" instants.
  /// Sampler: offered simulated-time stamps at every slice boundary
  /// (maybe_sample), i.e. whenever the arbitrated rates may change.
  void attach_observer(const obs::Observer& observer);

 private:
  /// Live transfer state, slot-indexed. Slots are recycled through a free
  /// list; `generation` disambiguates ids across reuse.
  struct Slot {
    StreamSpec spec;
    double bytes_total = 0.0;  ///< infinity for flows
    double bytes_done = 0.0;
    std::uint64_t spec_hash = 0;
    std::uint32_t generation = 0;
    bool active = false;
  };

  /// Cached solution for one exact active spec sequence. `specs` is kept
  /// for element-wise verification on hit (hash collisions degrade to a
  /// miss, never to a wrong rate).
  struct CacheEntry {
    std::vector<StreamSpec> specs;
    std::vector<double> rates;  ///< active (insertion) order
  };

  enum class IdKind : std::uint8_t { kLive, kRetired, kUnknown };

  [[nodiscard]] static constexpr std::uint32_t slot_of(TransferId id) {
    return static_cast<std::uint32_t>((id & 0xffffffffull) - 1);
  }
  [[nodiscard]] IdKind classify(TransferId id) const;
  [[nodiscard]] TransferId issue_slot(const StreamSpec& spec,
                                      double bytes_total);
  /// Tombstone a live slot: sync the arbiter epoch, preserve the byte
  /// count for post-retirement queries, bump the generation and recycle.
  void retire(TransferId id);
  void mark_path_dirty(const StreamSpec& spec);
  void refresh_rates() const;
  void refresh_full() const;
  void refresh_incremental() const;
  /// Trace/metric emission common to every refresh path (including cache
  /// hits — observable output is independent of how rates were obtained).
  void emit_refresh() const;
  [[nodiscard]] std::vector<StreamSpec> active_specs() const;
  /// Advance all active transfers by dt at current rates; completes finite
  /// transfers that reach their size.
  void advance(Seconds dt, std::vector<Completion>& out);

  const topo::Machine* machine_;
  SolveMode mode_ = SolveMode::kIncremental;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;  ///< recycled slots, LIFO
  std::vector<TransferId> active_;   ///< insertion order
  /// Finite transfers only, insertion order (a subsequence of active_):
  /// slice-boundary scans — next completion, completion collection — walk
  /// this instead of every endless flow.
  std::vector<TransferId> finite_;
  std::unordered_map<TransferId, double> retired_bytes_;
  Seconds now_{0.0};

  // Rate-refresh state, mutable so read-side queries (current_rate) stay
  // const while lazily refreshing the cache.
  mutable Arbiter arbiter_;
  mutable std::vector<double> slot_rate_;      ///< bytes/s, slot-indexed
  mutable std::vector<std::size_t> slot_arb_;  ///< arbiter epoch slot
  mutable std::vector<std::uint32_t> dirty_links_;
  mutable std::vector<std::uint8_t> is_dirty_link_;
  mutable std::unordered_map<std::uint64_t, CacheEntry> solve_cache_;
  mutable std::uint64_t refreshes_since_check_ = 0;
  mutable bool rates_dirty_ = true;
  std::uint64_t check_every_ = 0;  ///< 0 = cross-check disabled
  mutable Trace trace_;

  obs::Observer obs_;
  // Instruments resolved once at attach time (see MetricsRegistry rule 2);
  // all null when no registry is attached.
  obs::Counter* met_transfers_started_ = nullptr;
  obs::Counter* met_flows_started_ = nullptr;
  obs::Counter* met_transfers_completed_ = nullptr;
  obs::Counter* met_transfers_stopped_ = nullptr;
  obs::Counter* met_slices_ = nullptr;
  obs::Counter* met_rate_refreshes_ = nullptr;
  obs::Counter* met_solves_avoided_ = nullptr;
  obs::Counter* met_dirty_links_ = nullptr;
  obs::BandwidthHistogram* met_grant_cpu_ = nullptr;
  obs::BandwidthHistogram* met_grant_dma_ = nullptr;
};

}  // namespace mcm::sim
