// Optional event trace of an Engine run, used by tests and for debugging
// simulated schedules.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace mcm::sim {

enum class TraceEventKind : std::uint8_t {
  kTransferStarted,
  kTransferCompleted,
  kTransferStopped,
  kRatesRecomputed,
};

[[nodiscard]] constexpr const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kTransferStarted:
      return "started";
    case TraceEventKind::kTransferCompleted:
      return "completed";
    case TraceEventKind::kTransferStopped:
      return "stopped";
    case TraceEventKind::kRatesRecomputed:
      return "rates-recomputed";
  }
  return "unknown";
}

struct TraceEvent {
  Seconds time;
  TraceEventKind kind = TraceEventKind::kRatesRecomputed;
  std::uint64_t transfer = 0;  ///< 0 for events without a transfer
};

/// Append-only trace. Disabled by default; enabling costs one branch per
/// event.
class Trace {
 public:
  void enable() { enabled_ = true; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(Seconds time, TraceEventKind kind, std::uint64_t transfer) {
    if (enabled_) events_.push_back(TraceEvent{time, kind, transfer});
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  void clear() { events_.clear(); }

  /// Number of events of one kind (test helper).
  [[nodiscard]] std::size_t count(TraceEventKind kind) const {
    std::size_t n = 0;
    for (const TraceEvent& e : events_) {
      if (e.kind == kind) ++n;
    }
    return n;
  }

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace mcm::sim
