#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace mcm::sim {

namespace {
// One byte of slack absorbs floating-point residue when deciding whether a
// finite transfer has completed.
constexpr double kByteEps = 1.0;
}  // namespace

Engine::Engine(const topo::Machine& machine, ArbitrationPolicy policy)
    : machine_(&machine), arbiter_(machine, policy) {}

TransferId Engine::start_transfer(const StreamSpec& spec,
                                  std::uint64_t bytes) {
  MCM_EXPECTS(bytes > 0);
  MCM_EXPECTS(spec.demand.bps() > 0.0);
  const TransferId id = next_id_++;
  Transfer t;
  t.spec = spec;
  t.bytes_total = static_cast<double>(bytes);
  t.active = true;
  transfers_.emplace(id, std::move(t));
  active_.push_back(id);
  rates_dirty_ = true;
  trace_.record(now_, TraceEventKind::kTransferStarted, id);
  return id;
}

TransferId Engine::start_flow(const StreamSpec& spec) {
  MCM_EXPECTS(spec.demand.bps() > 0.0);
  const TransferId id = next_id_++;
  Transfer t;
  t.spec = spec;
  t.bytes_total = std::numeric_limits<double>::infinity();
  t.active = true;
  transfers_.emplace(id, std::move(t));
  active_.push_back(id);
  rates_dirty_ = true;
  trace_.record(now_, TraceEventKind::kTransferStarted, id);
  return id;
}

void Engine::stop(TransferId id) {
  const auto it = transfers_.find(id);
  MCM_EXPECTS(it != transfers_.end());
  if (!it->second.active) return;
  it->second.active = false;
  it->second.rate = 0.0;
  active_.erase(std::find(active_.begin(), active_.end(), id));
  rates_dirty_ = true;
  trace_.record(now_, TraceEventKind::kTransferStopped, id);
}

bool Engine::is_active(TransferId id) const { return transfer(id).active; }

std::uint64_t Engine::bytes_moved(TransferId id) const {
  return static_cast<std::uint64_t>(transfer(id).bytes_done);
}

Bandwidth Engine::current_rate(TransferId id) {
  if (!transfer(id).active) return Bandwidth{};
  refresh_rates();
  return Bandwidth::bytes_per_s(transfer(id).rate);
}

const Engine::Transfer& Engine::transfer(TransferId id) const {
  const auto it = transfers_.find(id);
  MCM_EXPECTS(it != transfers_.end());
  return it->second;
}

void Engine::refresh_rates() {
  if (!rates_dirty_) return;
  std::vector<StreamSpec> specs;
  specs.reserve(active_.size());
  for (TransferId id : active_) specs.push_back(transfers_.at(id).spec);
  const ArbiterResult result = arbiter_.solve(specs);
  for (std::size_t i = 0; i < active_.size(); ++i) {
    transfers_.at(active_[i]).rate = result.allocation[i].bps();
  }
  rates_dirty_ = false;
  trace_.record(now_, TraceEventKind::kRatesRecomputed, 0);
}

void Engine::advance(Seconds dt, std::vector<Completion>& out) {
  MCM_EXPECTS(dt.value() >= 0.0);
  if (dt.value() > 0.0) {
    for (TransferId id : active_) {
      Transfer& t = transfers_.at(id);
      t.bytes_done =
          std::min(t.bytes_total, t.bytes_done + t.rate * dt.value());
    }
    now_ += dt;
  }
  // Collect completions (finite transfers only). Iterate over a copy since
  // completion mutates active_.
  std::vector<TransferId> done;
  for (TransferId id : active_) {
    const Transfer& t = transfers_.at(id);
    if (std::isfinite(t.bytes_total) &&
        t.bytes_done >= t.bytes_total - kByteEps) {
      done.push_back(id);
    }
  }
  for (TransferId id : done) {
    Transfer& t = transfers_.at(id);
    t.bytes_done = t.bytes_total;
    t.active = false;
    t.rate = 0.0;
    active_.erase(std::find(active_.begin(), active_.end(), id));
    rates_dirty_ = true;
    trace_.record(now_, TraceEventKind::kTransferCompleted, id);
    out.push_back(Completion{id, now_});
  }
}

std::vector<Completion> Engine::run_until(Seconds deadline) {
  MCM_EXPECTS(deadline >= now_);
  std::vector<Completion> completions;
  while (now_ < deadline) {
    refresh_rates();

    // Time until the earliest finite completion at current rates.
    double next_dt = std::numeric_limits<double>::infinity();
    for (TransferId id : active_) {
      const Transfer& t = transfers_.at(id);
      if (!std::isfinite(t.bytes_total) || t.rate <= 0.0) continue;
      next_dt = std::min(next_dt, (t.bytes_total - t.bytes_done) / t.rate);
    }

    const double to_deadline = (deadline - now_).value();
    const double dt = std::min(next_dt, to_deadline);
    advance(Seconds(dt), completions);
    if (next_dt > to_deadline) break;  // deadline reached first
  }
  return completions;
}

std::optional<Completion> Engine::run_until_next_completion(
    Seconds deadline) {
  MCM_EXPECTS(deadline >= now_);
  while (now_ < deadline) {
    refresh_rates();
    double next_dt = std::numeric_limits<double>::infinity();
    for (TransferId id : active_) {
      const Transfer& t = transfers_.at(id);
      if (!std::isfinite(t.bytes_total) || t.rate <= 0.0) continue;
      next_dt = std::min(next_dt, (t.bytes_total - t.bytes_done) / t.rate);
    }
    if (!std::isfinite(next_dt) || next_dt > (deadline - now_).value()) {
      std::vector<Completion> none;
      advance(deadline - now_, none);
      MCM_ENSURES(none.empty());
      return std::nullopt;
    }
    std::vector<Completion> completions;
    advance(Seconds(next_dt), completions);
    if (!completions.empty()) return completions.front();
  }
  return std::nullopt;
}

}  // namespace mcm::sim
