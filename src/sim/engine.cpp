#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/span.hpp"
#include "util/contracts.hpp"

namespace mcm::sim {

namespace {
// One byte of slack absorbs floating-point residue when deciding whether a
// finite transfer has completed.
constexpr double kByteEps = 1.0;
}  // namespace

Engine::Engine(const topo::Machine& machine, ArbitrationPolicy policy)
    : machine_(&machine), arbiter_(machine, policy) {}

void Engine::attach_observer(const obs::Observer& observer) {
  obs_ = observer;
  arbiter_.attach_observer(observer);
  if (obs_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *obs_.metrics;
    met_transfers_started_ = &reg.counter("sim.engine.transfers_started");
    met_flows_started_ = &reg.counter("sim.engine.flows_started");
    met_transfers_completed_ =
        &reg.counter("sim.engine.transfers_completed");
    met_transfers_stopped_ = &reg.counter("sim.engine.transfers_stopped");
    met_slices_ = &reg.counter("sim.engine.slices");
    met_rate_refreshes_ = &reg.counter("sim.engine.rate_refreshes");
    met_grant_cpu_ = &reg.histogram("sim.engine.grant_cpu_gb");
    met_grant_dma_ = &reg.histogram("sim.engine.grant_dma_gb");
  } else {
    met_transfers_started_ = nullptr;
    met_flows_started_ = nullptr;
    met_transfers_completed_ = nullptr;
    met_transfers_stopped_ = nullptr;
    met_slices_ = nullptr;
    met_rate_refreshes_ = nullptr;
    met_grant_cpu_ = nullptr;
    met_grant_dma_ = nullptr;
  }
}

TransferId Engine::start_transfer(const StreamSpec& spec,
                                  std::uint64_t bytes) {
  MCM_EXPECTS(bytes > 0);
  MCM_EXPECTS(spec.demand.bps() > 0.0);
  const TransferId id = next_id_++;
  Transfer t;
  t.spec = spec;
  t.bytes_total = static_cast<double>(bytes);
  t.active = true;
  transfers_.emplace(id, std::move(t));
  active_.push_back(id);
  rates_dirty_ = true;
  trace_.record(now_, TraceEventKind::kTransferStarted, id);
  if (met_transfers_started_ != nullptr) met_transfers_started_->add();
  if (obs_.trace != nullptr) {
    obs::TraceEvent event;
    event.name = "transfer-start";
    event.category = "sim";
    event.ts_us = obs::to_trace_us(now_);
    event.track = static_cast<std::uint32_t>(id);
    event.arg("transfer", static_cast<double>(id))
        .arg("bytes", static_cast<double>(bytes));
    obs_.trace->record(event);
  }
  return id;
}

TransferId Engine::start_flow(const StreamSpec& spec) {
  MCM_EXPECTS(spec.demand.bps() > 0.0);
  const TransferId id = next_id_++;
  Transfer t;
  t.spec = spec;
  t.bytes_total = std::numeric_limits<double>::infinity();
  t.active = true;
  transfers_.emplace(id, std::move(t));
  active_.push_back(id);
  rates_dirty_ = true;
  trace_.record(now_, TraceEventKind::kTransferStarted, id);
  if (met_flows_started_ != nullptr) met_flows_started_->add();
  if (obs_.trace != nullptr) {
    obs::TraceEvent event;
    event.name = "flow-start";
    event.category = "sim";
    event.ts_us = obs::to_trace_us(now_);
    event.track = static_cast<std::uint32_t>(id);
    event.arg("transfer", static_cast<double>(id));
    obs_.trace->record(event);
  }
  return id;
}

StopResult Engine::stop(TransferId id) {
  const auto it = transfers_.find(id);
  if (it == transfers_.end()) return StopResult::kUnknownId;
  if (!it->second.active) return StopResult::kAlreadyComplete;
  it->second.active = false;
  it->second.rate = 0.0;
  active_.erase(std::find(active_.begin(), active_.end(), id));
  rates_dirty_ = true;
  trace_.record(now_, TraceEventKind::kTransferStopped, id);
  if (met_transfers_stopped_ != nullptr) met_transfers_stopped_->add();
  if (obs_.trace != nullptr) {
    obs::TraceEvent event;
    event.name = "transfer-stop";
    event.category = "sim";
    event.ts_us = obs::to_trace_us(now_);
    event.track = static_cast<std::uint32_t>(id);
    event.arg("transfer", static_cast<double>(id))
        .arg("bytes", it->second.bytes_done);
    obs_.trace->record(event);
  }
  return StopResult::kStopped;
}

bool Engine::is_active(TransferId id) const { return transfer(id).active; }

std::uint64_t Engine::bytes_moved(TransferId id) const {
  return static_cast<std::uint64_t>(transfer(id).bytes_done);
}

Bandwidth Engine::current_rate(TransferId id) {
  if (!transfer(id).active) return Bandwidth{};
  refresh_rates();
  return Bandwidth::bytes_per_s(transfer(id).rate);
}

const Engine::Transfer& Engine::transfer(TransferId id) const {
  const auto it = transfers_.find(id);
  MCM_EXPECTS(it != transfers_.end());
  return it->second;
}

void Engine::refresh_rates() {
  if (!rates_dirty_) return;
  std::vector<StreamSpec> specs;
  specs.reserve(active_.size());
  for (TransferId id : active_) specs.push_back(transfers_.at(id).spec);
  const ArbiterResult result = arbiter_.solve(specs);
  for (std::size_t i = 0; i < active_.size(); ++i) {
    transfers_.at(active_[i]).rate = result.allocation[i].bps();
  }
  rates_dirty_ = false;
  trace_.record(now_, TraceEventKind::kRatesRecomputed, 0);
  if (met_rate_refreshes_ != nullptr) met_rate_refreshes_->add();
  if (met_grant_cpu_ != nullptr) {
    for (std::size_t i = 0; i < active_.size(); ++i) {
      const Transfer& t = transfers_.at(active_[i]);
      (t.spec.cls == StreamClass::kCpu ? met_grant_cpu_ : met_grant_dma_)
          ->record(result.allocation[i]);
    }
  }
  if (obs_.trace != nullptr) {
    // One counter series per transfer: the arbitrated rate over simulated
    // time, i.e. the per-slice bandwidth split the paper reasons about.
    for (std::size_t i = 0; i < active_.size(); ++i) {
      obs::TraceEvent event;
      event.name = "grant";
      event.category = "sim";
      event.phase = obs::TracePhase::kCounter;
      event.ts_us = obs::to_trace_us(now_);
      event.track = static_cast<std::uint32_t>(active_[i]);
      event.arg("gb_per_s", result.allocation[i].gb());
      obs_.trace->record(event);
    }
  }
}

void Engine::advance(Seconds dt, std::vector<Completion>& out) {
  MCM_EXPECTS(dt.value() >= 0.0);
  if (dt.value() > 0.0) {
    // Manual-time span: starts at the slice's begin, closed after the
    // clock advances — the RAII pair cannot be left unmatched.
    obs::ScopedSpan slice(obs_.trace, "slice", "sim", 0,
                          obs::to_trace_us(now_));
    slice.arg("streams", static_cast<double>(active_.size()));
    for (TransferId id : active_) {
      Transfer& t = transfers_.at(id);
      t.bytes_done =
          std::min(t.bytes_total, t.bytes_done + t.rate * dt.value());
    }
    if (met_slices_ != nullptr) met_slices_->add();
    now_ += dt;
    slice.set_end(obs::to_trace_us(now_));
    // Slice boundaries are the engine's natural sampling points: the
    // stream set (and thus every granted rate) is constant within one.
    if (obs_.sampler != nullptr) {
      obs_.sampler->maybe_sample(obs::to_trace_us(now_));
    }
  }
  // Collect completions (finite transfers only). Iterate over a copy since
  // completion mutates active_.
  std::vector<TransferId> done;
  for (TransferId id : active_) {
    const Transfer& t = transfers_.at(id);
    if (std::isfinite(t.bytes_total) &&
        t.bytes_done >= t.bytes_total - kByteEps) {
      done.push_back(id);
    }
  }
  for (TransferId id : done) {
    Transfer& t = transfers_.at(id);
    t.bytes_done = t.bytes_total;
    t.active = false;
    t.rate = 0.0;
    active_.erase(std::find(active_.begin(), active_.end(), id));
    rates_dirty_ = true;
    trace_.record(now_, TraceEventKind::kTransferCompleted, id);
    if (met_transfers_completed_ != nullptr) met_transfers_completed_->add();
    if (obs_.trace != nullptr) {
      obs::TraceEvent event;
      event.name = "transfer-complete";
      event.category = "sim";
      event.ts_us = obs::to_trace_us(now_);
      event.track = static_cast<std::uint32_t>(id);
      event.arg("transfer", static_cast<double>(id))
          .arg("bytes", t.bytes_total);
      obs_.trace->record(event);
    }
    out.push_back(Completion{id, now_});
  }
}

std::vector<Completion> Engine::run_until(Seconds deadline) {
  MCM_EXPECTS(deadline >= now_);
  std::vector<Completion> completions;
  while (now_ < deadline) {
    refresh_rates();

    // Time until the earliest finite completion at current rates.
    double next_dt = std::numeric_limits<double>::infinity();
    for (TransferId id : active_) {
      const Transfer& t = transfers_.at(id);
      if (!std::isfinite(t.bytes_total) || t.rate <= 0.0) continue;
      next_dt = std::min(next_dt, (t.bytes_total - t.bytes_done) / t.rate);
    }

    const double to_deadline = (deadline - now_).value();
    const double dt = std::min(next_dt, to_deadline);
    advance(Seconds(dt), completions);
    if (next_dt > to_deadline) break;  // deadline reached first
  }
  return completions;
}

std::optional<Completion> Engine::run_until_next_completion(
    Seconds deadline) {
  MCM_EXPECTS(deadline >= now_);
  while (now_ < deadline) {
    refresh_rates();
    double next_dt = std::numeric_limits<double>::infinity();
    for (TransferId id : active_) {
      const Transfer& t = transfers_.at(id);
      if (!std::isfinite(t.bytes_total) || t.rate <= 0.0) continue;
      next_dt = std::min(next_dt, (t.bytes_total - t.bytes_done) / t.rate);
    }
    if (!std::isfinite(next_dt) || next_dt > (deadline - now_).value()) {
      std::vector<Completion> none;
      advance(deadline - now_, none);
      MCM_ENSURES(none.empty());
      return std::nullopt;
    }
    std::vector<Completion> completions;
    advance(Seconds(next_dt), completions);
    if (!completions.empty()) return completions.front();
  }
  return std::nullopt;
}

}  // namespace mcm::sim
