#include "sim/engine.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "obs/span.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace mcm::sim {

namespace {
// One byte of slack absorbs floating-point residue when deciding whether a
// finite transfer has completed.
constexpr double kByteEps = 1.0;

// Beyond this many entries the solve cache is cleared wholesale. Real
// workloads cycle through a handful of stream-set shapes; an unbounded
// map would only grow under adversarial churn.
constexpr std::size_t kMaxCacheEntries = 1024;

// Compact the arbiter epoch (rebuild without tombstones) once tombstones
// both exceed this floor and outnumber the live streams.
constexpr std::size_t kCompactionFloor = 64;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

std::uint64_t hash_spec(const StreamSpec& spec) {
  std::uint64_t h =
      spec.cls == StreamClass::kDma ? 0x9e3779b97f4a7c15ull : 0x2545f4914f6cdd1dull;
  h = hash_combine(h, std::bit_cast<std::uint64_t>(spec.demand.bps()));
  h = hash_combine(h, std::bit_cast<std::uint64_t>(spec.ambient_weight));
  h = hash_combine(h, spec.source_socket.is_valid()
                          ? spec.source_socket.value()
                          : 0xffffffffull);
  h = hash_combine(h, spec.path.size());
  for (topo::LinkId l : spec.path) h = hash_combine(h, l.value());
  return h;
}

bool specs_equal(const StreamSpec& a, const StreamSpec& b) {
  if (a.cls != b.cls || a.source_socket != b.source_socket ||
      a.path.size() != b.path.size()) {
    return false;
  }
  if (std::bit_cast<std::uint64_t>(a.demand.bps()) !=
      std::bit_cast<std::uint64_t>(b.demand.bps())) {
    return false;
  }
  if (std::bit_cast<std::uint64_t>(a.ambient_weight) !=
      std::bit_cast<std::uint64_t>(b.ambient_weight)) {
    return false;
  }
  return std::equal(a.path.begin(), a.path.end(), b.path.begin());
}

}  // namespace

Engine::Engine(const topo::Machine& machine, ArbitrationPolicy policy)
    : machine_(&machine), arbiter_(machine, policy) {
  if (env_u64("MCM_ENGINE_FULL_SOLVE", 0) != 0) mode_ = SolveMode::kFull;
#if defined(MCM_SANITIZE)
  check_every_ = env_u64("MCM_CHECK_INCREMENTAL", 32);
#else
  check_every_ = env_u64("MCM_CHECK_INCREMENTAL", 0);
#endif
  arbiter_.prepare({});
  is_dirty_link_.assign(machine.links().size(), 0);
}

void Engine::set_solve_mode(SolveMode mode) {
  MCM_EXPECTS(slots_.empty());
  mode_ = mode;
}

void Engine::attach_observer(const obs::Observer& observer) {
  obs_ = observer;
  arbiter_.attach_observer(observer);
  if (obs_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *obs_.metrics;
    met_transfers_started_ = &reg.counter("sim.engine.transfers_started");
    met_flows_started_ = &reg.counter("sim.engine.flows_started");
    met_transfers_completed_ =
        &reg.counter("sim.engine.transfers_completed");
    met_transfers_stopped_ = &reg.counter("sim.engine.transfers_stopped");
    met_slices_ = &reg.counter("sim.engine.slices");
    met_rate_refreshes_ = &reg.counter("sim.engine.rate_refreshes");
    met_solves_avoided_ = &reg.counter("sim.engine.solves_avoided");
    met_dirty_links_ = &reg.counter("sim.engine.dirty_links");
    met_grant_cpu_ = &reg.histogram("sim.engine.grant_cpu_gb");
    met_grant_dma_ = &reg.histogram("sim.engine.grant_dma_gb");
  } else {
    met_transfers_started_ = nullptr;
    met_flows_started_ = nullptr;
    met_transfers_completed_ = nullptr;
    met_transfers_stopped_ = nullptr;
    met_slices_ = nullptr;
    met_rate_refreshes_ = nullptr;
    met_solves_avoided_ = nullptr;
    met_dirty_links_ = nullptr;
    met_grant_cpu_ = nullptr;
    met_grant_dma_ = nullptr;
  }
}

Engine::IdKind Engine::classify(TransferId id) const {
  const std::uint64_t slot_part = id & 0xffffffffull;
  if (slot_part == 0 || slot_part > slots_.size()) return IdKind::kUnknown;
  const Slot& slot = slots_[slot_part - 1];
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (generation == slot.generation) {
    // Current generation: live while active; a free slot's current
    // generation has not been issued yet.
    return slot.active ? IdKind::kLive : IdKind::kUnknown;
  }
  // Every past generation was issued exactly once and retired.
  return generation < slot.generation ? IdKind::kRetired : IdKind::kUnknown;
}

void Engine::mark_path_dirty(const StreamSpec& spec) {
  for (topo::LinkId l : spec.path) {
    const std::uint32_t link = l.value();
    if (is_dirty_link_[link] == 0) {
      is_dirty_link_[link] = 1;
      dirty_links_.push_back(link);
    }
  }
}

TransferId Engine::issue_slot(const StreamSpec& spec, double bytes_total) {
  std::uint32_t index = 0;
  if (!free_.empty()) {
    index = free_.back();
    free_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    slot_rate_.push_back(0.0);
    slot_arb_.push_back(0);
  }
  Slot& slot = slots_[index];
  slot.spec = spec;
  slot.bytes_total = bytes_total;
  slot.bytes_done = 0.0;
  slot.spec_hash = hash_spec(spec);
  slot.active = true;
  slot_rate_[index] = 0.0;
  const TransferId id =
      (static_cast<std::uint64_t>(slot.generation) << 32) |
      static_cast<std::uint64_t>(index + 1);
  if (mode_ == SolveMode::kIncremental) {
    slot_arb_[index] = arbiter_.add_stream(spec);
    mark_path_dirty(spec);
  }
  active_.push_back(id);
  if (std::isfinite(bytes_total)) finite_.push_back(id);
  rates_dirty_ = true;
  return id;
}

void Engine::retire(TransferId id) {
  const std::uint32_t index = slot_of(id);
  Slot& slot = slots_[index];
  if (mode_ == SolveMode::kIncremental) {
    arbiter_.remove_stream(slot_arb_[index]);
    mark_path_dirty(slot.spec);
  }
  retired_bytes_.emplace(id, slot.bytes_done);
  slot.active = false;
  ++slot.generation;
  slot_rate_[index] = 0.0;
  free_.push_back(index);
  active_.erase(std::find(active_.begin(), active_.end(), id));
  if (std::isfinite(slot.bytes_total)) {
    finite_.erase(std::find(finite_.begin(), finite_.end(), id));
  }
  rates_dirty_ = true;
}

TransferId Engine::start_transfer(const StreamSpec& spec,
                                  std::uint64_t bytes) {
  MCM_EXPECTS(bytes > 0);
  MCM_EXPECTS(spec.demand.bps() > 0.0);
  const TransferId id = issue_slot(spec, static_cast<double>(bytes));
  trace_.record(now_, TraceEventKind::kTransferStarted, id);
  if (met_transfers_started_ != nullptr) met_transfers_started_->add();
  if (obs_.trace != nullptr) {
    obs::TraceEvent event;
    event.name = "transfer-start";
    event.category = "sim";
    event.ts_us = obs::to_trace_us(now_);
    event.track = static_cast<std::uint32_t>(id);
    event.arg("transfer", static_cast<double>(id))
        .arg("bytes", static_cast<double>(bytes));
    obs_.trace->record(event);
  }
  return id;
}

TransferId Engine::start_flow(const StreamSpec& spec) {
  MCM_EXPECTS(spec.demand.bps() > 0.0);
  const TransferId id =
      issue_slot(spec, std::numeric_limits<double>::infinity());
  trace_.record(now_, TraceEventKind::kTransferStarted, id);
  if (met_flows_started_ != nullptr) met_flows_started_->add();
  if (obs_.trace != nullptr) {
    obs::TraceEvent event;
    event.name = "flow-start";
    event.category = "sim";
    event.ts_us = obs::to_trace_us(now_);
    event.track = static_cast<std::uint32_t>(id);
    event.arg("transfer", static_cast<double>(id));
    obs_.trace->record(event);
  }
  return id;
}

StopResult Engine::stop(TransferId id) {
  switch (classify(id)) {
    case IdKind::kUnknown:
      return StopResult::kUnknownId;
    case IdKind::kRetired:
      return StopResult::kAlreadyComplete;
    case IdKind::kLive:
      break;
  }
  const double bytes_done = slots_[slot_of(id)].bytes_done;
  retire(id);
  trace_.record(now_, TraceEventKind::kTransferStopped, id);
  if (met_transfers_stopped_ != nullptr) met_transfers_stopped_->add();
  if (obs_.trace != nullptr) {
    obs::TraceEvent event;
    event.name = "transfer-stop";
    event.category = "sim";
    event.ts_us = obs::to_trace_us(now_);
    event.track = static_cast<std::uint32_t>(id);
    event.arg("transfer", static_cast<double>(id)).arg("bytes", bytes_done);
    obs_.trace->record(event);
  }
  return StopResult::kStopped;
}

bool Engine::is_active(TransferId id) const {
  const IdKind kind = classify(id);
  MCM_EXPECTS(kind != IdKind::kUnknown);
  return kind == IdKind::kLive;
}

std::uint64_t Engine::bytes_moved(TransferId id) const {
  const IdKind kind = classify(id);
  MCM_EXPECTS(kind != IdKind::kUnknown);
  if (kind == IdKind::kLive) {
    return static_cast<std::uint64_t>(slots_[slot_of(id)].bytes_done);
  }
  return static_cast<std::uint64_t>(retired_bytes_.at(id));
}

Bandwidth Engine::current_rate(TransferId id) const {
  const IdKind kind = classify(id);
  MCM_EXPECTS(kind != IdKind::kUnknown);
  if (kind != IdKind::kLive) return Bandwidth{};
  refresh_rates();
  return Bandwidth::bytes_per_s(slot_rate_[slot_of(id)]);
}

std::vector<StreamSpec> Engine::active_specs() const {
  std::vector<StreamSpec> specs;
  specs.reserve(active_.size());
  for (TransferId id : active_) specs.push_back(slots_[slot_of(id)].spec);
  return specs;
}

void Engine::emit_refresh() const {
  trace_.record(now_, TraceEventKind::kRatesRecomputed, 0);
  if (met_rate_refreshes_ != nullptr) met_rate_refreshes_->add();
  if (met_grant_cpu_ != nullptr) {
    for (TransferId id : active_) {
      const std::uint32_t index = slot_of(id);
      (slots_[index].spec.cls == StreamClass::kCpu ? met_grant_cpu_
                                                   : met_grant_dma_)
          ->record(Bandwidth::bytes_per_s(slot_rate_[index]));
    }
  }
  if (obs_.trace != nullptr) {
    // One counter series per transfer: the arbitrated rate over simulated
    // time, i.e. the per-slice bandwidth split the paper reasons about.
    for (TransferId id : active_) {
      obs::TraceEvent event;
      event.name = "grant";
      event.category = "sim";
      event.phase = obs::TracePhase::kCounter;
      event.ts_us = obs::to_trace_us(now_);
      event.track = static_cast<std::uint32_t>(id);
      event.arg("gb_per_s", Bandwidth::bytes_per_s(slot_rate_[slot_of(id)]).gb());
      obs_.trace->record(event);
    }
  }
}

void Engine::refresh_full() const {
  const std::vector<StreamSpec> specs = active_specs();
  const ArbiterResult result = arbiter_.solve(specs);
  for (std::size_t i = 0; i < active_.size(); ++i) {
    slot_rate_[slot_of(active_[i])] = result.allocation[i].bps();
  }
}

void Engine::refresh_incremental() const {
  // Empty set: nothing to arbitrate, nothing to cache. Trace/metric
  // emission still happens in refresh_rates() so the observable slice
  // stream is identical to the full path.
  if (active_.empty()) return;

  std::uint64_t signature = hash_combine(0x6d636d2d656e6731ull,
                                         active_.size());
  for (TransferId id : active_) {
    signature = hash_combine(signature, slots_[slot_of(id)].spec_hash);
  }

  bool solved = false;
  const auto hit = solve_cache_.find(signature);
  if (hit != solve_cache_.end() &&
      hit->second.specs.size() == active_.size()) {
    bool match = true;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      if (!specs_equal(hit->second.specs[i],
                       slots_[slot_of(active_[i])].spec)) {
        match = false;
        break;
      }
    }
    if (match) {
      for (std::size_t i = 0; i < active_.size(); ++i) {
        slot_rate_[slot_of(active_[i])] = hit->second.rates[i];
      }
      if (met_solves_avoided_ != nullptr) met_solves_avoided_->add();
      solved = true;
    }
  }

  if (!solved) {
    // Rebuild the epoch without tombstones once they dominate: the SoA
    // arrays stay dense and the per-solve scratch stops scaling with dead
    // history. prepare() preserves insertion order, so results are
    // unchanged.
    if (arbiter_.tombstones() > kCompactionFloor &&
        arbiter_.tombstones() > arbiter_.live_streams()) {
      const std::vector<StreamSpec> specs = active_specs();
      arbiter_.prepare(specs);
      for (std::size_t i = 0; i < active_.size(); ++i) {
        slot_arb_[slot_of(active_[i])] = i;
      }
    }
    if (met_dirty_links_ != nullptr) {
      met_dirty_links_->add(dirty_links_.size());
    }
    const ArbiterResult& result = arbiter_.resolve(dirty_links_);
    for (std::uint32_t link : dirty_links_) is_dirty_link_[link] = 0;
    dirty_links_.clear();
    for (std::size_t i = 0; i < active_.size(); ++i) {
      const std::uint32_t index = slot_of(active_[i]);
      slot_rate_[index] = result.allocation[slot_arb_[index]].bps();
    }
    if (solve_cache_.size() >= kMaxCacheEntries) solve_cache_.clear();
    CacheEntry& entry = solve_cache_[signature];
    entry.specs = active_specs();
    entry.rates.resize(active_.size());
    for (std::size_t i = 0; i < active_.size(); ++i) {
      entry.rates[i] = slot_rate_[slot_of(active_[i])];
    }
  }

  if (check_every_ > 0 && ++refreshes_since_check_ >= check_every_) {
    refreshes_since_check_ = 0;
    // Shadow full solve over the same ordered stream set: incremental
    // epoch state, dirty-link skipping and cache hits must all reproduce
    // it bitwise.
    const std::vector<StreamSpec> specs = active_specs();
    const ArbiterResult full = arbiter_.solve(specs);
    for (std::size_t i = 0; i < active_.size(); ++i) {
      MCM_ENSURES(full.allocation[i].bps() ==
                  slot_rate_[slot_of(active_[i])]);
    }
  }
}

void Engine::refresh_rates() const {
  if (!rates_dirty_) return;
  if (mode_ == SolveMode::kFull) {
    refresh_full();
  } else {
    refresh_incremental();
  }
  rates_dirty_ = false;
  emit_refresh();
}

void Engine::advance(Seconds dt, std::vector<Completion>& out) {
  MCM_EXPECTS(dt.value() >= 0.0);
  if (dt.value() > 0.0) {
    // Manual-time span: starts at the slice's begin, closed after the
    // clock advances — the RAII pair cannot be left unmatched.
    obs::ScopedSpan slice(obs_.trace, "slice", "sim", 0,
                          obs::to_trace_us(now_));
    slice.arg("streams", static_cast<double>(active_.size()));
    for (TransferId id : active_) {
      Slot& slot = slots_[slot_of(id)];
      slot.bytes_done =
          std::min(slot.bytes_total,
                   slot.bytes_done + slot_rate_[slot_of(id)] * dt.value());
    }
    if (met_slices_ != nullptr) met_slices_->add();
    now_ += dt;
    slice.set_end(obs::to_trace_us(now_));
    // Slice boundaries are the engine's natural sampling points: the
    // stream set (and thus every granted rate) is constant within one.
    if (obs_.sampler != nullptr) {
      obs_.sampler->maybe_sample(obs::to_trace_us(now_));
    }
  }
  // Collect completions. Iterate over a copy since completion mutates
  // finite_; the scan order (insertion order) matches the full active set
  // filtered to finite transfers, so the completion order is unchanged.
  std::vector<TransferId> done;
  for (TransferId id : finite_) {
    const Slot& slot = slots_[slot_of(id)];
    if (slot.bytes_done >= slot.bytes_total - kByteEps) {
      done.push_back(id);
    }
  }
  for (TransferId id : done) {
    Slot& slot = slots_[slot_of(id)];
    slot.bytes_done = slot.bytes_total;
    const double bytes_total = slot.bytes_total;
    retire(id);
    trace_.record(now_, TraceEventKind::kTransferCompleted, id);
    if (met_transfers_completed_ != nullptr) met_transfers_completed_->add();
    if (obs_.trace != nullptr) {
      obs::TraceEvent event;
      event.name = "transfer-complete";
      event.category = "sim";
      event.ts_us = obs::to_trace_us(now_);
      event.track = static_cast<std::uint32_t>(id);
      event.arg("transfer", static_cast<double>(id))
          .arg("bytes", bytes_total);
      obs_.trace->record(event);
    }
    out.push_back(Completion{id, now_});
  }
}

std::vector<Completion> Engine::run_until(Seconds deadline) {
  MCM_EXPECTS(deadline >= now_);
  std::vector<Completion> completions;
  while (now_ < deadline) {
    refresh_rates();

    // Time until the earliest finite completion at current rates.
    double next_dt = std::numeric_limits<double>::infinity();
    for (TransferId id : finite_) {
      const Slot& slot = slots_[slot_of(id)];
      const double rate = slot_rate_[slot_of(id)];
      if (rate <= 0.0) continue;
      next_dt =
          std::min(next_dt, (slot.bytes_total - slot.bytes_done) / rate);
    }

    const double to_deadline = (deadline - now_).value();
    const double dt = std::min(next_dt, to_deadline);
    advance(Seconds(dt), completions);
    if (next_dt > to_deadline) break;  // deadline reached first
  }
  return completions;
}

std::optional<Completion> Engine::run_until_next_completion(
    Seconds deadline) {
  MCM_EXPECTS(deadline >= now_);
  while (now_ < deadline) {
    refresh_rates();
    double next_dt = std::numeric_limits<double>::infinity();
    for (TransferId id : finite_) {
      const Slot& slot = slots_[slot_of(id)];
      const double rate = slot_rate_[slot_of(id)];
      if (rate <= 0.0) continue;
      next_dt =
          std::min(next_dt, (slot.bytes_total - slot.bytes_done) / rate);
    }
    if (!std::isfinite(next_dt) || next_dt > (deadline - now_).value()) {
      std::vector<Completion> none;
      advance(deadline - now_, none);
      MCM_ENSURES(none.empty());
      return std::nullopt;
    }
    std::vector<Completion> completions;
    advance(Seconds(next_dt), completions);
    if (!completions.empty()) return completions.front();
  }
  return std::nullopt;
}

}  // namespace mcm::sim
