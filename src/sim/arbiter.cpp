#include "sim/arbiter.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace mcm::sim {

namespace {

// Rates are bytes/s (1e9..1e11 in practice); these tolerances are far below
// any physically meaningful difference.
constexpr double kRateEps = 1.0;          // bytes/s
constexpr double kConvergenceEps = 1e4;   // bytes/s (10 kB/s)
constexpr int kMaxOuterIterations = 200;
// A degraded link never drops below this fraction of its nominal capacity;
// real controllers slow down under pressure, they do not collapse.
constexpr double kMinCapacityFraction = 0.05;

constexpr std::uint32_t kNoSocket = std::numeric_limits<std::uint32_t>::max();

/// Remove `slot` from an insertion-ordered member list (must be present).
void erase_member(std::vector<int>& members, int slot) {
  const auto it = std::find(members.begin(), members.end(), slot);
  MCM_EXPECTS(it != members.end());
  members.erase(it);
}

}  // namespace

Arbiter::Arbiter(const topo::Machine& machine, ArbitrationPolicy policy)
    : machine_(&machine), policy_(policy) {}

void Arbiter::attach_observer(const obs::Observer& observer) {
  if (observer.metrics != nullptr) {
    obs::MetricsRegistry& reg = *observer.metrics;
    met_solves_ = &reg.counter("sim.arbiter.solves");
    met_iterations_ = &reg.counter("sim.arbiter.iterations");
    met_full_solves_ = &reg.counter("sim.arbiter.full_solves");
    met_incremental_solves_ = &reg.counter("sim.arbiter.incremental_solves");
    met_links_resolved_ = &reg.counter("sim.arbiter.links_resolved");
    met_grant_cpu_ = &reg.histogram("sim.arbiter.grant_cpu_gb");
    met_grant_dma_ = &reg.histogram("sim.arbiter.grant_dma_gb");
  } else {
    met_solves_ = nullptr;
    met_iterations_ = nullptr;
    met_full_solves_ = nullptr;
    met_incremental_solves_ = nullptr;
    met_links_resolved_ = nullptr;
    met_grant_cpu_ = nullptr;
    met_grant_dma_ = nullptr;
  }
}

void Arbiter::refresh_link_constants(SolverState& st,
                                     std::uint32_t link) const {
  const topo::Link& l = machine_->link(topo::LinkId(link));
  const topo::ContentionSpec& spec = l.contention;
  st.link_capacity[link] = l.capacity.bps();
  st.link_min_cap[link] = l.capacity.bps() * kMinCapacityFraction;
  st.link_dma_floor[link] = spec.dma_floor.bps();
  st.link_deg_per_req[link] = spec.degradation_per_requestor.bps();
  st.link_knee[link] = spec.requestor_knee;
  st.link_dma_weight[link] = spec.dma_requestor_weight;
  st.link_ambient_knee[link] = spec.ambient_cpu_knee;
  st.link_ambient_deg[link] = spec.ambient_cpu_degradation.bps();
  st.link_soft_start[link] = spec.dma_soft_start;
  st.link_soft_min[link] = spec.dma_soft_min;
  st.link_ambient_socket[link] =
      l.ambient_socket.is_valid() ? l.ambient_socket.value() : kNoSocket;
}

void Arbiter::reset_state(SolverState& st) const {
  const std::size_t link_count = machine_->links().size();
  const std::size_t socket_count = machine_->socket_count();

  st.link_capacity.resize(link_count);
  st.link_min_cap.resize(link_count);
  st.link_dma_floor.resize(link_count);
  st.link_deg_per_req.resize(link_count);
  st.link_knee.resize(link_count);
  st.link_dma_weight.resize(link_count);
  st.link_ambient_knee.resize(link_count);
  st.link_ambient_deg.resize(link_count);
  st.link_soft_start.resize(link_count);
  st.link_soft_min.resize(link_count);
  st.link_ambient_socket.resize(link_count);
  for (std::size_t l = 0; l < link_count; ++l) {
    refresh_link_constants(st, static_cast<std::uint32_t>(l));
  }

  st.is_dma.clear();
  st.live.clear();
  st.demand.clear();
  st.ambient_weight.clear();
  st.source_socket.clear();
  st.path_offset.assign(1, 0);
  st.path_link.clear();
  st.order.clear();
  st.tombstones = 0;

  st.cpu_requestors.assign(link_count, 0);
  st.dma_on.assign(link_count, {});
  st.dma_demand_sum.assign(link_count, 0.0);
  st.cpu_socket_members.assign(socket_count, {});
  st.cpu_on_socket.assign(socket_count, 0.0);
}

std::size_t Arbiter::state_add_stream(SolverState& st,
                                      const StreamSpec& spec) const {
  const std::size_t link_count = machine_->links().size();
  MCM_EXPECTS(spec.demand.bps() >= 0.0);
  for (topo::LinkId l : spec.path) {
    MCM_EXPECTS(l.is_valid() && l.value() < link_count);
  }

  const std::size_t slot = st.demand.size();
  const int s = static_cast<int>(slot);
  st.is_dma.push_back(spec.cls == StreamClass::kDma ? 1 : 0);
  st.live.push_back(1);
  st.demand.push_back(spec.demand.bps());
  st.ambient_weight.push_back(spec.ambient_weight);
  st.source_socket.push_back(spec.source_socket.is_valid()
                                 ? spec.source_socket.value()
                                 : kNoSocket);
  for (topo::LinkId l : spec.path) st.path_link.push_back(l.value());
  st.path_offset.push_back(static_cast<std::uint32_t>(st.path_link.size()));
  st.order.push_back(s);

  // Aggregate membership mirrors the fresh build: only streams whose
  // demand clears the rate epsilon count as requestors. Appending extends
  // every left-to-right FP sum exactly.
  if (st.demand[slot] > kRateEps) {
    const std::uint32_t begin = st.path_offset[slot];
    const std::uint32_t end = st.path_offset[slot + 1];
    if (st.is_dma[slot] == 0) {
      for (std::uint32_t p = begin; p < end; ++p) {
        ++st.cpu_requestors[st.path_link[p]];
      }
      const std::uint32_t sock = st.source_socket[slot];
      if (sock != kNoSocket && sock < st.cpu_on_socket.size()) {
        st.cpu_socket_members[sock].push_back(s);
        st.cpu_on_socket[sock] += st.ambient_weight[slot];
      }
    } else {
      for (std::uint32_t p = begin; p < end; ++p) {
        const std::uint32_t l = st.path_link[p];
        st.dma_on[l].push_back(s);
        st.dma_demand_sum[l] += st.demand[slot];
      }
    }
  }
  return slot;
}

void Arbiter::state_remove_stream(SolverState& st, std::size_t slot) const {
  MCM_EXPECTS(slot < st.live.size() && st.live[slot] == 1);
  st.live[slot] = 0;
  ++st.tombstones;
  erase_member(st.order, static_cast<int>(slot));

  if (st.demand[slot] > kRateEps) {
    const std::uint32_t begin = st.path_offset[slot];
    const std::uint32_t end = st.path_offset[slot + 1];
    if (st.is_dma[slot] == 0) {
      for (std::uint32_t p = begin; p < end; ++p) {
        --st.cpu_requestors[st.path_link[p]];
      }
      const std::uint32_t sock = st.source_socket[slot];
      if (sock != kNoSocket && sock < st.cpu_on_socket.size()) {
        erase_member(st.cpu_socket_members[sock], static_cast<int>(slot));
        // Re-sum in insertion order: bitwise equal to a fresh build over
        // the surviving members (an inexact `-=` would drift).
        double sum = 0.0;
        for (int m : st.cpu_socket_members[sock]) {
          sum += st.ambient_weight[static_cast<std::size_t>(m)];
        }
        st.cpu_on_socket[sock] = sum;
      }
    } else {
      for (std::uint32_t p = begin; p < end; ++p) {
        const std::uint32_t l = st.path_link[p];
        erase_member(st.dma_on[l], static_cast<int>(slot));
        double sum = 0.0;
        for (int m : st.dma_on[l]) {
          sum += st.demand[static_cast<std::size_t>(m)];
        }
        st.dma_demand_sum[l] = sum;
      }
    }
  }
}

double Arbiter::link_cap_eff(const SolverState& st,
                             std::uint32_t link) const {
  double weighted = st.cpu_requestors[link];
  for (int s : st.dma_on[link]) {
    weighted += st.link_dma_weight[link] *
                st.dma_utilization[static_cast<std::size_t>(s)];
  }
  const double over = std::max(0.0, weighted - st.link_knee[link]);
  double capacity =
      st.link_capacity[link] - st.link_deg_per_req[link] * over;
  // Ambient host-socket coupling: cores streaming anywhere on the link's
  // ambient socket steal fabric bandwidth from the link.
  const std::uint32_t sock = st.link_ambient_socket[link];
  if (sock != kNoSocket) {
    const double cores = st.cpu_on_socket[sock];
    const double ambient_over =
        std::max(0.0, cores - st.link_ambient_knee[link]);
    capacity -= st.link_ambient_deg[link] * ambient_over;
  }
  // The DMA floor is a hard guarantee: degradation can never push the link
  // below it.
  return std::max(
      {st.link_min_cap[link], st.link_dma_floor[link], capacity});
}

/// Uniform-increment max-min fair filling of `stream_ids` (all of one
/// class) into the per-link capacities st.remaining. Only links in
/// st.touched can carry a requestor, so the capacity loops are restricted
/// to them — bitwise equal to scanning every link, since untouched links
/// always have a zero active count and non-negative remaining.
void Arbiter::max_min_fill(SolverState& st,
                           const std::vector<int>& stream_ids) const {
  std::vector<int>& active = st.active;
  active.clear();
  for (int s : stream_ids) {
    st.alloc[static_cast<std::size_t>(s)] = 0.0;
    if (st.demand[static_cast<std::size_t>(s)] > kRateEps) {
      active.push_back(s);
    }
  }

  while (!active.empty()) {
    for (std::uint32_t l : st.touched) st.active_count[l] = 0;
    for (int s : active) {
      const auto i = static_cast<std::size_t>(s);
      for (std::uint32_t p = st.path_offset[i]; p < st.path_offset[i + 1];
           ++p) {
        ++st.active_count[st.path_link[p]];
      }
    }

    // Largest uniform increment every active stream can take.
    double increment = std::numeric_limits<double>::infinity();
    for (std::uint32_t l : st.touched) {
      if (st.active_count[l] > 0) {
        increment = std::min(increment, st.remaining[l] / st.active_count[l]);
      }
    }
    for (int s : active) {
      const auto i = static_cast<std::size_t>(s);
      increment = std::min(increment, st.demand[i] - st.alloc[i]);
    }
    increment = std::max(increment, 0.0);

    if (increment > kRateEps) {
      for (int s : active) st.alloc[static_cast<std::size_t>(s)] += increment;
      for (std::uint32_t l : st.touched) {
        st.remaining[l] =
            std::max(0.0, st.remaining[l] - increment * st.active_count[l]);
      }
    }

    // Freeze streams that met their demand or sit on a saturated link.
    std::vector<int>& still_active = st.still_active;
    still_active.clear();
    for (int s : active) {
      const auto i = static_cast<std::size_t>(s);
      bool frozen = st.alloc[i] >= st.demand[i] - kRateEps;
      if (!frozen) {
        for (std::uint32_t p = st.path_offset[i]; p < st.path_offset[i + 1];
             ++p) {
          if (st.remaining[st.path_link[p]] <= kRateEps) {
            frozen = true;
            break;
          }
        }
      }
      if (!frozen) still_active.push_back(s);
    }
    // Progress guarantee: with a zero increment at least the streams on
    // saturated links freeze; if nothing froze we are done.
    if (still_active.size() == active.size() && increment <= kRateEps) break;
    std::swap(active, still_active);
  }
}

int Arbiter::run_fixed_point(SolverState& st) const {
  const std::size_t link_count = machine_->links().size();
  const std::size_t slots = st.demand.size();

  // Per-solve initialisation, identical to a fresh solve over the live
  // streams in insertion order.
  st.cpu_ids.clear();
  st.dma_ids.clear();
  for (int s : st.order) {
    (st.is_dma[static_cast<std::size_t>(s)] != 0 ? st.dma_ids : st.cpu_ids)
        .push_back(s);
  }
  // DMA utilization estimates (allocation / demand), damped across outer
  // iterations: they feed the weighted requestor count which feeds the
  // effective capacity which feeds the allocation.
  st.dma_utilization.assign(slots, 1.0);
  st.alloc.assign(slots, 0.0);
  st.previous.assign(slots, std::numeric_limits<double>::infinity());
  st.cap_eff.resize(link_count);
  st.remaining.resize(link_count);
  st.cpu_usage.resize(link_count);
  st.active_count.assign(link_count, 0);

  // Links with at least one requestor of either class. Untouched links
  // carry nothing: their effective capacity is iteration-invariant and is
  // filled in once by emit_result().
  st.touched.clear();
  st.is_touched.assign(link_count, 0);
  for (std::size_t l = 0; l < link_count; ++l) {
    if (st.cpu_requestors[l] > 0 || !st.dma_on[l].empty()) {
      st.touched.push_back(static_cast<std::uint32_t>(l));
      st.is_touched[l] = 1;
    }
  }

  int iterations = 0;
  for (; iterations < kMaxOuterIterations; ++iterations) {
    // 1. Effective capacities from the current weighted requestor counts.
    for (std::uint32_t l : st.touched) st.cap_eff[l] = link_cap_eff(st, l);

    if (policy_ == ArbitrationPolicy::kFairShare) {
      // Ablation mode: one undifferentiated max-min pool.
      st.all_ids = st.cpu_ids;
      st.all_ids.insert(st.all_ids.end(), st.dma_ids.begin(),
                        st.dma_ids.end());
      for (std::uint32_t l : st.touched) st.remaining[l] = st.cap_eff[l];
      max_min_fill(st, st.all_ids);
      double delta = 0.0;
      for (int s : st.order) {
        const auto i = static_cast<std::size_t>(s);
        delta = std::max(delta, std::abs(st.alloc[i] - st.previous[i]));
        st.previous[i] = st.alloc[i];
      }
      for (int s : st.dma_ids) {
        const auto i = static_cast<std::size_t>(s);
        if (st.demand[i] <= kRateEps) continue;
        st.dma_utilization[i] = 0.5 * st.dma_utilization[i] +
                                0.5 * (st.alloc[i] / st.demand[i]);
      }
      if (delta < kConvergenceEps) {
        ++iterations;
        break;
      }
      continue;
    }

    // 2. Reserve the DMA floor, then fill CPU streams with priority.
    for (std::uint32_t l : st.touched) {
      const double reserve =
          std::min(st.link_dma_floor[l], st.dma_demand_sum[l]);
      st.remaining[l] =
          std::max(0.0, st.cap_eff[l] - std::min(reserve, st.cap_eff[l]));
    }
    max_min_fill(st, st.cpu_ids);

    // 3. DMA streams share whatever the CPU left on each link (at least
    // the reserved floor, since CPU filling started from cap - reserve).
    // High CPU utilization additionally soft-throttles the DMA class
    // before the link is literally full (see ContentionSpec).
    for (std::uint32_t l : st.touched) st.cpu_usage[l] = 0.0;
    for (int s : st.cpu_ids) {
      const auto i = static_cast<std::size_t>(s);
      for (std::uint32_t p = st.path_offset[i]; p < st.path_offset[i + 1];
           ++p) {
        st.cpu_usage[st.path_link[p]] += st.alloc[i];
      }
    }
    for (std::uint32_t l : st.touched) {
      double allowed = std::max(0.0, st.cap_eff[l] - st.cpu_usage[l]);
      if (st.link_soft_start[l] < 1.0 && st.cap_eff[l] > 0.0) {
        const double utilization = st.cpu_usage[l] / st.cap_eff[l];
        if (utilization > st.link_soft_start[l]) {
          const double span = 1.0 - st.link_soft_start[l];
          const double t =
              std::min(1.0, (utilization - st.link_soft_start[l]) / span);
          const double scale = 1.0 + t * (st.link_soft_min[l] - 1.0);
          const double reserve =
              std::min(st.link_dma_floor[l], st.dma_demand_sum[l]);
          allowed = std::max(
              reserve, std::min(allowed, scale * st.dma_demand_sum[l]));
        }
      }
      st.remaining[l] = allowed;
    }
    max_min_fill(st, st.dma_ids);

    // 4. Convergence check + damped utilization update.
    double delta = 0.0;
    for (int s : st.order) {
      const auto i = static_cast<std::size_t>(s);
      delta = std::max(delta, std::abs(st.alloc[i] - st.previous[i]));
      st.previous[i] = st.alloc[i];
    }
    for (int s : st.dma_ids) {
      const auto i = static_cast<std::size_t>(s);
      if (st.demand[i] <= kRateEps) continue;
      const double fresh = st.alloc[i] / st.demand[i];
      st.dma_utilization[i] = 0.5 * st.dma_utilization[i] + 0.5 * fresh;
    }
    if (delta < kConvergenceEps) {
      ++iterations;
      break;
    }
  }
  return iterations;
}

void Arbiter::emit_result(SolverState& st, int iterations) const {
  const std::size_t link_count = machine_->links().size();
  const std::size_t slots = st.demand.size();

  // Untouched links never entered the iteration loop; their effective
  // capacity does not depend on the allocation, so computing it once here
  // matches what every iteration would have produced.
  for (std::size_t l = 0; l < link_count; ++l) {
    if (st.is_touched[l] == 0) {
      st.cap_eff[l] = link_cap_eff(st, static_cast<std::uint32_t>(l));
    }
  }

  ArbiterResult& result = st.result;
  result.iterations = iterations;
  result.allocation.clear();
  result.allocation.reserve(slots);
  for (std::size_t s = 0; s < slots; ++s) {
    result.allocation.push_back(Bandwidth::bytes_per_s(st.alloc[s]));
  }
  result.link_usage.assign(link_count, Bandwidth{});
  for (int s : st.order) {
    const auto i = static_cast<std::size_t>(s);
    for (std::uint32_t p = st.path_offset[i]; p < st.path_offset[i + 1];
         ++p) {
      result.link_usage[st.path_link[p]] +=
          Bandwidth::bytes_per_s(st.alloc[i]);
    }
  }
  result.link_effective_capacity.clear();
  result.link_effective_capacity.reserve(link_count);
  for (std::size_t l = 0; l < link_count; ++l) {
    result.link_effective_capacity.push_back(
        Bandwidth::bytes_per_s(st.cap_eff[l]));
  }
}

void Arbiter::record_solution(const SolverState& st, bool incremental) const {
  if (met_solves_ == nullptr) return;
  met_solves_->add();
  met_iterations_->add(static_cast<std::uint64_t>(st.result.iterations));
  if (incremental) {
    met_incremental_solves_->add();
    met_links_resolved_->add(st.touched.size());
  } else {
    met_full_solves_->add();
  }
  for (int s : st.order) {
    const auto i = static_cast<std::size_t>(s);
    (st.is_dma[i] == 0 ? met_grant_cpu_ : met_grant_dma_)
        ->record(st.result.allocation[i]);
  }
}

ArbiterResult Arbiter::solve(std::span<const StreamSpec> streams) const {
  SolverState st;
  reset_state(st);
  for (const StreamSpec& spec : streams) (void)state_add_stream(st, spec);
  const int iterations = run_fixed_point(st);
  emit_result(st, iterations);
  record_solution(st, /*incremental=*/false);
  return std::move(st.result);
}

void Arbiter::prepare(std::span<const StreamSpec> streams) {
  reset_state(epoch_);
  for (const StreamSpec& spec : streams) {
    (void)state_add_stream(epoch_, spec);
  }
  epoch_ready_ = true;
}

std::size_t Arbiter::add_stream(const StreamSpec& spec) {
  MCM_EXPECTS(epoch_ready_);
  return state_add_stream(epoch_, spec);
}

void Arbiter::remove_stream(std::size_t slot) {
  MCM_EXPECTS(epoch_ready_);
  state_remove_stream(epoch_, slot);
}

const ArbiterResult& Arbiter::resolve(
    std::span<const std::uint32_t> dirty_links) {
  MCM_EXPECTS(epoch_ready_);
  const std::size_t link_count = machine_->links().size();
  for (std::uint32_t l : dirty_links) {
    MCM_EXPECTS(l < link_count);
    refresh_link_constants(epoch_, l);
  }
  const int iterations = run_fixed_point(epoch_);
  emit_result(epoch_, iterations);
  record_solution(epoch_, /*incremental=*/true);
  return epoch_.result;
}

}  // namespace mcm::sim
