#include "sim/arbiter.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace mcm::sim {

namespace {

// Rates are bytes/s (1e9..1e11 in practice); these tolerances are far below
// any physically meaningful difference.
constexpr double kRateEps = 1.0;          // bytes/s
constexpr double kConvergenceEps = 1e4;   // bytes/s (10 kB/s)
constexpr int kMaxOuterIterations = 200;
// A degraded link never drops below this fraction of its nominal capacity;
// real controllers slow down under pressure, they do not collapse.
constexpr double kMinCapacityFraction = 0.05;

/// Uniform-increment max-min fair filling of `stream_ids` (all of one
/// class) into per-link capacities `remaining` (indexed by link id).
/// `paths` and `demands` are indexed by stream id; `alloc` is written for
/// the given streams only.
void max_min_fill(const std::vector<int>& stream_ids,
                  const std::vector<std::vector<topo::LinkId>>& paths,
                  const std::vector<double>& demands,
                  std::vector<double>& remaining,
                  std::vector<double>& alloc) {
  std::vector<int> active;
  active.reserve(stream_ids.size());
  for (int s : stream_ids) {
    alloc[static_cast<std::size_t>(s)] = 0.0;
    if (demands[static_cast<std::size_t>(s)] > kRateEps) active.push_back(s);
  }

  std::vector<int> active_count(remaining.size(), 0);
  while (!active.empty()) {
    std::fill(active_count.begin(), active_count.end(), 0);
    for (int s : active) {
      for (topo::LinkId l : paths[static_cast<std::size_t>(s)]) {
        ++active_count[l.value()];
      }
    }

    // Largest uniform increment every active stream can take.
    double increment = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < remaining.size(); ++l) {
      if (active_count[l] > 0) {
        increment = std::min(increment, remaining[l] / active_count[l]);
      }
    }
    for (int s : active) {
      const auto i = static_cast<std::size_t>(s);
      increment = std::min(increment, demands[i] - alloc[i]);
    }
    increment = std::max(increment, 0.0);

    if (increment > kRateEps) {
      for (int s : active) alloc[static_cast<std::size_t>(s)] += increment;
      for (std::size_t l = 0; l < remaining.size(); ++l) {
        remaining[l] =
            std::max(0.0, remaining[l] - increment * active_count[l]);
      }
    }

    // Freeze streams that met their demand or sit on a saturated link.
    std::vector<int> still_active;
    still_active.reserve(active.size());
    for (int s : active) {
      const auto i = static_cast<std::size_t>(s);
      bool frozen = alloc[i] >= demands[i] - kRateEps;
      if (!frozen) {
        for (topo::LinkId l : paths[i]) {
          if (remaining[l.value()] <= kRateEps) {
            frozen = true;
            break;
          }
        }
      }
      if (!frozen) still_active.push_back(s);
    }
    // Progress guarantee: with a zero increment at least the streams on
    // saturated links freeze; if nothing froze we are done.
    if (still_active.size() == active.size() && increment <= kRateEps) break;
    active.swap(still_active);
  }
}

}  // namespace

Arbiter::Arbiter(const topo::Machine& machine, ArbitrationPolicy policy)
    : machine_(&machine), policy_(policy) {}

void Arbiter::attach_observer(const obs::Observer& observer) {
  if (observer.metrics != nullptr) {
    obs::MetricsRegistry& reg = *observer.metrics;
    met_solves_ = &reg.counter("sim.arbiter.solves");
    met_iterations_ = &reg.counter("sim.arbiter.iterations");
    met_grant_cpu_ = &reg.histogram("sim.arbiter.grant_cpu_gb");
    met_grant_dma_ = &reg.histogram("sim.arbiter.grant_dma_gb");
  } else {
    met_solves_ = nullptr;
    met_iterations_ = nullptr;
    met_grant_cpu_ = nullptr;
    met_grant_dma_ = nullptr;
  }
}

ArbiterResult Arbiter::solve(std::span<const StreamSpec> streams) const {
  const std::size_t link_count = machine_->links().size();
  const std::size_t n = streams.size();

  std::vector<std::vector<topo::LinkId>> paths(n);
  std::vector<double> demands(n);
  std::vector<int> cpu_ids;
  std::vector<int> dma_ids;
  for (std::size_t s = 0; s < n; ++s) {
    MCM_EXPECTS(streams[s].demand.bps() >= 0.0);
    paths[s] = streams[s].path;
    for (topo::LinkId l : paths[s]) {
      MCM_EXPECTS(l.is_valid() && l.value() < link_count);
    }
    demands[s] = streams[s].demand.bps();
    if (streams[s].cls == StreamClass::kCpu) {
      cpu_ids.push_back(static_cast<int>(s));
    } else {
      dma_ids.push_back(static_cast<int>(s));
    }
  }

  // Per-link CPU requestor counts (constant) and DMA membership.
  std::vector<int> cpu_requestors(link_count, 0);
  std::vector<std::vector<int>> dma_on(link_count);
  std::vector<double> dma_demand_sum(link_count, 0.0);
  // Active compute "core units" per socket, for ambient host-socket
  // coupling; weighted by each stream's memory-traffic intensity.
  std::vector<double> cpu_on_socket(machine_->socket_count(), 0.0);
  for (int s : cpu_ids) {
    const auto i = static_cast<std::size_t>(s);
    if (demands[i] <= kRateEps) continue;
    for (topo::LinkId l : paths[i]) {
      ++cpu_requestors[l.value()];
    }
    const topo::SocketId source = streams[i].source_socket;
    if (source.is_valid() && source.value() < cpu_on_socket.size()) {
      cpu_on_socket[source.value()] += streams[i].ambient_weight;
    }
  }
  for (int s : dma_ids) {
    const auto i = static_cast<std::size_t>(s);
    if (demands[i] <= kRateEps) continue;
    for (topo::LinkId l : paths[i]) {
      dma_on[l.value()].push_back(s);
      dma_demand_sum[l.value()] += demands[i];
    }
  }

  // DMA utilization estimates (allocation / demand), damped across outer
  // iterations: they feed the weighted requestor count which feeds the
  // effective capacity which feeds the allocation.
  std::vector<double> dma_utilization(n, 1.0);

  std::vector<double> alloc(n, 0.0);
  std::vector<double> previous(n,
                               std::numeric_limits<double>::infinity());
  std::vector<double> cap_eff(link_count, 0.0);
  std::vector<double> remaining(link_count, 0.0);

  int iterations = 0;
  for (; iterations < kMaxOuterIterations; ++iterations) {
    // 1. Effective capacities from the current weighted requestor counts.
    for (std::size_t l = 0; l < link_count; ++l) {
      const topo::Link& link =
          machine_->link(topo::LinkId(static_cast<std::uint32_t>(l)));
      const topo::ContentionSpec& spec = link.contention;
      double weighted = cpu_requestors[l];
      for (int s : dma_on[l]) {
        weighted += spec.dma_requestor_weight *
                    dma_utilization[static_cast<std::size_t>(s)];
      }
      const double over = std::max(0.0, weighted - spec.requestor_knee);
      double capacity = link.capacity.bps() -
                        spec.degradation_per_requestor.bps() * over;
      // Ambient host-socket coupling: cores streaming anywhere on the
      // link's ambient socket steal fabric bandwidth from the link.
      if (link.ambient_socket.is_valid()) {
        const double cores =
            cpu_on_socket[link.ambient_socket.value()];
        const double ambient_over =
            std::max(0.0, cores - spec.ambient_cpu_knee);
        capacity -= spec.ambient_cpu_degradation.bps() * ambient_over;
      }
      // The DMA floor is a hard guarantee: degradation can never push the
      // link below it.
      cap_eff[l] = std::max({link.capacity.bps() * kMinCapacityFraction,
                             spec.dma_floor.bps(), capacity});
    }

    if (policy_ == ArbitrationPolicy::kFairShare) {
      // Ablation mode: one undifferentiated max-min pool.
      std::vector<int> all_ids = cpu_ids;
      all_ids.insert(all_ids.end(), dma_ids.begin(), dma_ids.end());
      remaining = cap_eff;
      max_min_fill(all_ids, paths, demands, remaining, alloc);
      double delta = 0.0;
      for (std::size_t s = 0; s < n; ++s) {
        delta = std::max(delta, std::abs(alloc[s] - previous[s]));
      }
      previous = alloc;
      for (int s : dma_ids) {
        const auto i = static_cast<std::size_t>(s);
        if (demands[i] <= kRateEps) continue;
        dma_utilization[i] =
            0.5 * dma_utilization[i] + 0.5 * (alloc[i] / demands[i]);
      }
      if (delta < kConvergenceEps) {
        ++iterations;
        break;
      }
      continue;
    }

    // 2. Reserve the DMA floor, then fill CPU streams with priority.
    for (std::size_t l = 0; l < link_count; ++l) {
      const topo::Link& link =
          machine_->link(topo::LinkId(static_cast<std::uint32_t>(l)));
      const double reserve =
          std::min(link.contention.dma_floor.bps(), dma_demand_sum[l]);
      remaining[l] = std::max(0.0, cap_eff[l] - std::min(reserve, cap_eff[l]));
    }
    max_min_fill(cpu_ids, paths, demands, remaining, alloc);

    // 3. DMA streams share whatever the CPU left on each link (at least
    // the reserved floor, since CPU filling started from cap - reserve).
    // High CPU utilization additionally soft-throttles the DMA class
    // before the link is literally full (see ContentionSpec).
    std::vector<double> cpu_usage(link_count, 0.0);
    for (int s : cpu_ids) {
      const auto i = static_cast<std::size_t>(s);
      for (topo::LinkId pl : paths[i]) cpu_usage[pl.value()] += alloc[i];
    }
    for (std::size_t l = 0; l < link_count; ++l) {
      const topo::Link& link =
          machine_->link(topo::LinkId(static_cast<std::uint32_t>(l)));
      const topo::ContentionSpec& spec = link.contention;
      double allowed = std::max(0.0, cap_eff[l] - cpu_usage[l]);
      if (spec.dma_soft_start < 1.0 && cap_eff[l] > 0.0) {
        const double utilization = cpu_usage[l] / cap_eff[l];
        if (utilization > spec.dma_soft_start) {
          const double span = 1.0 - spec.dma_soft_start;
          const double t =
              std::min(1.0, (utilization - spec.dma_soft_start) / span);
          const double scale = 1.0 + t * (spec.dma_soft_min - 1.0);
          const double reserve =
              std::min(spec.dma_floor.bps(), dma_demand_sum[l]);
          allowed = std::max(reserve,
                             std::min(allowed, scale * dma_demand_sum[l]));
        }
      }
      remaining[l] = allowed;
    }
    max_min_fill(dma_ids, paths, demands, remaining, alloc);

    // 4. Convergence check + damped utilization update.
    double delta = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      delta = std::max(delta, std::abs(alloc[s] - previous[s]));
    }
    previous = alloc;
    for (int s : dma_ids) {
      const auto i = static_cast<std::size_t>(s);
      if (demands[i] <= kRateEps) continue;
      const double fresh = alloc[i] / demands[i];
      dma_utilization[i] = 0.5 * dma_utilization[i] + 0.5 * fresh;
    }
    if (delta < kConvergenceEps) {
      ++iterations;
      break;
    }
  }

  ArbiterResult result;
  result.iterations = iterations;
  result.allocation.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    result.allocation.push_back(Bandwidth::bytes_per_s(alloc[s]));
  }
  result.link_usage.assign(link_count, Bandwidth{});
  for (std::size_t s = 0; s < n; ++s) {
    for (topo::LinkId l : paths[s]) {
      result.link_usage[l.value()] += Bandwidth::bytes_per_s(alloc[s]);
    }
  }
  result.link_effective_capacity.reserve(link_count);
  for (std::size_t l = 0; l < link_count; ++l) {
    result.link_effective_capacity.push_back(
        Bandwidth::bytes_per_s(cap_eff[l]));
  }
  if (met_solves_ != nullptr) {
    met_solves_->add();
    met_iterations_->add(static_cast<std::uint64_t>(iterations));
    for (std::size_t s = 0; s < n; ++s) {
      (streams[s].cls == StreamClass::kCpu ? met_grant_cpu_
                                           : met_grant_dma_)
          ->record(result.allocation[s]);
    }
  }
  return result;
}

}  // namespace mcm::sim
