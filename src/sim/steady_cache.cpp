#include "sim/steady_cache.hpp"

namespace mcm::sim {

bool SteadyStateCache::find(const std::string& key,
                            ParallelMeasurement& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  out = it->second;
  return true;
}

void SteadyStateCache::store(const std::string& key,
                             const ParallelMeasurement& value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.size() >= kMaxEntries) return;
  entries_.emplace(key, value);
}

SteadyStateCache::Stats SteadyStateCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.entries = entries_.size();
  return stats;
}

void SteadyStateCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace mcm::sim
