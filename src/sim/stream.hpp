// Memory streams: the unit of traffic the simulator arbitrates.
//
// A stream is a steady flow of memory requests with a nominal demand (the
// rate it would achieve on an idle machine) crossing an ordered list of
// shared links. CPU streams come from compute cores (non-temporal stores in
// the paper's benchmark); DMA streams come from NIC DMA engines.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/ids.hpp"
#include "util/units.hpp"

namespace mcm::sim {

/// Priority class of a stream. The arbiter gives kCpu requests priority
/// over kDma, while guaranteeing kDma a per-link minimum (paper §II-A).
enum class StreamClass : std::uint8_t {
  kCpu,
  kDma,
};

[[nodiscard]] constexpr const char* to_string(StreamClass cls) {
  return cls == StreamClass::kCpu ? "cpu" : "dma";
}

/// Description of one stream submitted to the arbiter.
struct StreamSpec {
  StreamClass cls = StreamClass::kCpu;
  /// Rate the issuer would sustain without any contention.
  Bandwidth demand;
  /// Shared links crossed, in traversal order (from topo::Machine::cpu_path
  /// or dma_path).
  std::vector<topo::LinkId> path;
  /// Socket the issuer sits on: the core's socket for CPU streams, the
  /// NIC's socket for DMA streams. Used for ambient host-socket coupling
  /// (see topo::ContentionSpec::ambient_cpu_knee).
  topo::SocketId source_socket = topo::SocketId::invalid();
  /// How many "ambient core units" this CPU stream contributes to
  /// host-socket coupling: 1.0 for a nominal memory-bound core, less when
  /// the kernel's traffic mostly hits the LLC, more for kernels that move
  /// extra traffic. Ignored for DMA streams.
  double ambient_weight = 1.0;
};

}  // namespace mcm::sim
