#include "obs/sampler.hpp"

#include <map>
#include <set>
#include <sstream>

#include "util/contracts.hpp"

namespace mcm::obs {

namespace {

[[nodiscard]] std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%g", v);
  return buffer;
}

}  // namespace

TimelineSampler::TimelineSampler(const MetricsRegistry& registry,
                                 std::size_t capacity, double period_us)
    : registry_(&registry), capacity_(capacity), period_us_(period_us) {
  MCM_EXPECTS(capacity >= 1);
  MCM_EXPECTS(period_us >= 0.0);
  ring_.reserve(capacity);
}

void TimelineSampler::sample(double t_us) {
  // Snapshot outside the sampler lock: the registry has its own mutex and
  // snapshotting may take a while on large registries.
  TimelineSample entry;
  entry.t_us = t_us;
  entry.values = registry_->snapshot();

  std::lock_guard lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(entry));
  } else {
    ring_[head_] = std::move(entry);
    head_ = (head_ + 1) % capacity_;
  }
  ++total_;
  has_last_ = true;
  last_kept_us_ = t_us;
}

bool TimelineSampler::maybe_sample(double t_us) {
  {
    std::lock_guard lock(mutex_);
    if (has_last_ && t_us - last_kept_us_ < period_us_) return false;
  }
  sample(t_us);
  return true;
}

std::size_t TimelineSampler::size() const {
  std::lock_guard lock(mutex_);
  return ring_.size();
}

std::uint64_t TimelineSampler::total_samples() const {
  std::lock_guard lock(mutex_);
  return total_;
}

void TimelineSampler::clear() {
  // Empties the retained window and re-arms the cadence; total_samples()
  // keeps counting across clears (it is a lifetime statistic).
  std::lock_guard lock(mutex_);
  ring_.clear();
  head_ = 0;
  has_last_ = false;
}

std::vector<TimelineSample> TimelineSampler::ordered_locked() const {
  std::vector<TimelineSample> out;
  out.reserve(ring_.size());
  // Before wraparound head_ is 0 and the ring is already oldest-first;
  // after wraparound the oldest entry sits at head_.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<TimelineSample> TimelineSampler::samples() const {
  std::lock_guard lock(mutex_);
  return ordered_locked();
}

std::vector<double> TimelineSampler::times_us() const {
  std::lock_guard lock(mutex_);
  std::vector<double> out;
  out.reserve(ring_.size());
  for (const TimelineSample& s : ordered_locked()) out.push_back(s.t_us);
  return out;
}

std::vector<double> TimelineSampler::counter_series(
    const std::string& name) const {
  std::lock_guard lock(mutex_);
  std::vector<double> out;
  out.reserve(ring_.size());
  for (const TimelineSample& s : ordered_locked()) {
    const auto it = s.values.counters.find(name);
    out.push_back(it == s.values.counters.end()
                      ? 0.0
                      : static_cast<double>(it->second));
  }
  return out;
}

std::vector<double> TimelineSampler::gauge_series(
    const std::string& name) const {
  std::lock_guard lock(mutex_);
  std::vector<double> out;
  out.reserve(ring_.size());
  for (const TimelineSample& s : ordered_locked()) {
    const auto it = s.values.gauges.find(name);
    out.push_back(it == s.values.gauges.end() ? 0.0 : it->second);
  }
  return out;
}

std::vector<double> TimelineSampler::histogram_mean_series(
    const std::string& name) const {
  std::lock_guard lock(mutex_);
  std::vector<double> out;
  out.reserve(ring_.size());
  for (const TimelineSample& s : ordered_locked()) {
    const auto it = s.values.histograms.find(name);
    out.push_back(it == s.values.histograms.end() ? 0.0
                                                  : it->second.mean_gb);
  }
  return out;
}

std::string TimelineSampler::to_csv() const {
  std::lock_guard lock(mutex_);
  const std::vector<TimelineSample> window = ordered_locked();

  // Column set: the union of instruments over the window, so a series
  // that appeared mid-run still gets a full column (zeros before birth).
  std::set<std::string> counters, gauges, histograms;
  for (const TimelineSample& s : window) {
    for (const auto& [name, _] : s.values.counters) counters.insert(name);
    for (const auto& [name, _] : s.values.gauges) gauges.insert(name);
    for (const auto& [name, _] : s.values.histograms) {
      histograms.insert(name);
    }
  }

  std::ostringstream out;
  out << "t_us";
  for (const std::string& name : counters) out << ',' << name;
  for (const std::string& name : gauges) out << ',' << name;
  for (const std::string& name : histograms) {
    out << ',' << name << ".count," << name << ".mean_gb";
  }
  out << '\n';
  for (const TimelineSample& s : window) {
    out << format_double(s.t_us);
    for (const std::string& name : counters) {
      const auto it = s.values.counters.find(name);
      out << ','
          << (it == s.values.counters.end() ? 0 : it->second);
    }
    for (const std::string& name : gauges) {
      const auto it = s.values.gauges.find(name);
      out << ','
          << format_double(it == s.values.gauges.end() ? 0.0 : it->second);
    }
    for (const std::string& name : histograms) {
      const auto it = s.values.histograms.find(name);
      if (it == s.values.histograms.end()) {
        out << ",0,0";
      } else {
        out << ',' << it->second.count << ','
            << format_double(it->second.mean_gb);
      }
    }
    out << '\n';
  }
  return out.str();
}

std::string TimelineSampler::to_json() const {
  std::lock_guard lock(mutex_);
  const std::vector<TimelineSample> window = ordered_locked();

  std::set<std::string> counters, gauges, histograms;
  for (const TimelineSample& s : window) {
    for (const auto& [name, _] : s.values.counters) counters.insert(name);
    for (const auto& [name, _] : s.values.gauges) gauges.insert(name);
    for (const auto& [name, _] : s.values.histograms) {
      histograms.insert(name);
    }
  }

  std::ostringstream out;
  out << "{\"period_us\":" << format_double(period_us_) << ",\"t_us\":[";
  for (std::size_t i = 0; i < window.size(); ++i) {
    if (i > 0) out << ',';
    out << format_double(window[i].t_us);
  }
  out << ']';

  const auto emit_group = [&](const char* key,
                              const std::set<std::string>& names,
                              const auto& value_of) {
    out << ",\"" << key << "\":{";
    bool first = true;
    for (const std::string& name : names) {
      if (!first) out << ',';
      first = false;
      out << '"' << name << "\":[";
      for (std::size_t i = 0; i < window.size(); ++i) {
        if (i > 0) out << ',';
        out << format_double(value_of(window[i], name));
      }
      out << ']';
    }
    out << '}';
  };
  emit_group("counters", counters,
             [](const TimelineSample& s, const std::string& name) {
               const auto it = s.values.counters.find(name);
               return it == s.values.counters.end()
                          ? 0.0
                          : static_cast<double>(it->second);
             });
  emit_group("gauges", gauges,
             [](const TimelineSample& s, const std::string& name) {
               const auto it = s.values.gauges.find(name);
               return it == s.values.gauges.end() ? 0.0 : it->second;
             });
  emit_group("histogram_means", histograms,
             [](const TimelineSample& s, const std::string& name) {
               const auto it = s.values.histograms.find(name);
               return it == s.values.histograms.end() ? 0.0
                                                      : it->second.mean_gb;
             });
  out << '}';
  return out.str();
}

}  // namespace mcm::obs
