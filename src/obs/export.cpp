#include "obs/export.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>

#include "util/stats.hpp"

namespace mcm::obs {

namespace {

[[nodiscard]] std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%g", v);
  return buffer;
}

[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 4);
  if (name.rfind("mcm_", 0) != 0) out = "mcm_";
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string render_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = prometheus_name(name);
    out << "# TYPE " << prom << " counter\n"
        << prom << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = prometheus_name(name);
    out << "# TYPE " << prom << " gauge\n"
        << prom << ' ' << format_double(value) << '\n';
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string prom = prometheus_name(name);
    out << "# TYPE " << prom << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < BandwidthHistogram::kBucketBoundsGb.size();
         ++i) {
      cumulative += h.buckets[i];
      out << prom << "_bucket{le=\""
          << format_double(BandwidthHistogram::kBucketBoundsGb[i]) << "\"} "
          << cumulative << '\n';
    }
    out << prom << "_bucket{le=\"+Inf\"} " << h.count << '\n'
        << prom << "_sum " << format_double(h.sum_gb) << '\n'
        << prom << "_count " << h.count << '\n';
  }
  return out.str();
}

SeriesSummary summarize_series(const std::vector<double>& values) {
  SeriesSummary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = values[argmin(values).index];
  s.max = values[argmax(values).index];
  s.mean = mean(values);
  s.median = median(values);
  s.stddev = sample_stddev(values);
  return s;
}

std::string summary_to_json(const SeriesSummary& summary) {
  std::ostringstream out;
  out << "{\"count\":" << summary.count
      << ",\"min\":" << format_double(summary.min)
      << ",\"max\":" << format_double(summary.max)
      << ",\"mean\":" << format_double(summary.mean)
      << ",\"median\":" << format_double(summary.median)
      << ",\"stddev\":" << format_double(summary.stddev) << '}';
  return out.str();
}

std::string render_json_report(const ReportMeta& meta,
                               const MetricsSnapshot& snapshot,
                               const TimelineSampler* timeline) {
  std::ostringstream out;
  out << "{\"schema_version\":" << ReportMeta::kSchemaVersion
      << ",\"name\":\"" << json_escape(meta.name) << "\",\"platform\":\""
      << json_escape(meta.platform) << "\",\"git\":\""
      << json_escape(meta.git) << "\",\"metrics\":"
      << render_json(snapshot);
  if (timeline != nullptr) {
    out << ",\"timeline\":" << timeline->to_json();

    // One summary per sampled instrument, sorted so reports diff cleanly.
    const std::vector<TimelineSample> window = timeline->samples();
    std::set<std::string> counters, gauges, histograms;
    for (const TimelineSample& s : window) {
      for (const auto& [name, _] : s.values.counters) counters.insert(name);
      for (const auto& [name, _] : s.values.gauges) gauges.insert(name);
      for (const auto& [name, _] : s.values.histograms) {
        histograms.insert(name);
      }
    }
    out << ",\"summary\":{";
    bool first = true;
    const auto emit = [&](const std::string& name,
                          const std::vector<double>& series) {
      if (!first) out << ',';
      first = false;
      out << '"' << json_escape(name)
          << "\":" << summary_to_json(summarize_series(series));
    };
    for (const std::string& name : counters) {
      emit(name, timeline->counter_series(name));
    }
    for (const std::string& name : gauges) {
      emit(name, timeline->gauge_series(name));
    }
    for (const std::string& name : histograms) {
      emit(name + ".mean_gb", timeline->histogram_mean_series(name));
    }
    out << '}';
  }
  out << '}';
  return out.str();
}

}  // namespace mcm::obs
