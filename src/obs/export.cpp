#include "obs/export.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>

#include "util/stats.hpp"

namespace mcm::obs {

namespace {

[[nodiscard]] std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%g", v);
  return buffer;
}

[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 4);
  if (name.rfind("mcm_", 0) != 0) out = "mcm_";
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

namespace {

/// Escape a label value per the exposition format: backslash, double
/// quote and newline get backslash escapes.
[[nodiscard]] std::string escape_label_value(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Sanitize a label key: [a-zA-Z0-9_] only, leading digit prefixed '_'.
[[nodiscard]] std::string sanitize_label_key(const std::string& key) {
  std::string out;
  out.reserve(key.size() + 1);
  for (char c : key) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])) != 0) {
    out.insert(out.begin(), '_');
  }
  return out;
}

/// Parse `key="value",key="value",...` from name[open+1..close). Returns
/// false on any grammar violation so the caller can fall back to mangling.
[[nodiscard]] bool parse_label_block(
    const std::string& name, std::size_t open, std::size_t close,
    std::vector<std::pair<std::string, std::string>>& labels) {
  std::size_t i = open + 1;
  while (i < close) {
    const std::size_t eq = name.find('=', i);
    if (eq == std::string::npos || eq >= close || eq == i) return false;
    if (eq + 1 >= close || name[eq + 1] != '"') return false;
    std::size_t end = eq + 2;
    while (end < close && name[end] != '"') ++end;
    if (end >= close) return false;
    labels.emplace_back(sanitize_label_key(name.substr(i, eq - i)),
                        escape_label_value(name.substr(eq + 2, end - eq - 2)));
    i = end + 1;
    if (i < close) {
      if (name[i] != ',') return false;
      ++i;
      if (i >= close) return false;  // trailing comma
    }
  }
  return !labels.empty();
}

/// Render `{a="x",b="y"}` (or `{a="x",le="z"}` with an extra pair) after a
/// family name; empty labels + no extra renders nothing.
[[nodiscard]] std::string label_block(
    const std::vector<std::pair<std::string, std::string>>& labels,
    const char* extra_key = nullptr, const std::string& extra_value = "") {
  if (labels.empty() && extra_key == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + value + "\"";
  }
  if (extra_key != nullptr) {
    if (!first) out += ",";
    out += std::string(extra_key) + "=\"" + extra_value + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

PrometheusSeries prometheus_series(const std::string& name) {
  PrometheusSeries series;
  const std::size_t open = name.find('{');
  if (open != std::string::npos && !name.empty() && name.back() == '}') {
    std::vector<std::pair<std::string, std::string>> labels;
    if (parse_label_block(name, open, name.size() - 1, labels)) {
      series.family = prometheus_name(name.substr(0, open));
      series.labels = std::move(labels);
      return series;
    }
  }
  series.family = prometheus_name(name);
  return series;
}

std::string render_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  // One `# TYPE` per family: label variants of one instrument are distinct
  // registry entries but the same Prometheus family, and strict parsers
  // reject a family declared twice.
  std::set<std::string> declared;
  const auto declare = [&](const std::string& family, const char* type) {
    if (!declared.insert(family).second) return;
    out << "# TYPE " << family << ' ' << type << '\n';
  };
  for (const auto& [name, value] : snapshot.counters) {
    const PrometheusSeries s = prometheus_series(name);
    declare(s.family, "counter");
    out << s.family << label_block(s.labels) << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const PrometheusSeries s = prometheus_series(name);
    declare(s.family, "gauge");
    out << s.family << label_block(s.labels) << ' ' << format_double(value)
        << '\n';
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const PrometheusSeries s = prometheus_series(name);
    declare(s.family, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < BandwidthHistogram::kBucketBoundsGb.size();
         ++i) {
      cumulative += h.buckets[i];
      out << s.family << "_bucket"
          << label_block(s.labels, "le",
                         format_double(BandwidthHistogram::kBucketBoundsGb[i]))
          << ' ' << cumulative << '\n';
    }
    out << s.family << "_bucket" << label_block(s.labels, "le", "+Inf") << ' '
        << h.count << '\n'
        << s.family << "_sum" << label_block(s.labels) << ' '
        << format_double(h.sum_gb) << '\n'
        << s.family << "_count" << label_block(s.labels) << ' ' << h.count
        << '\n';
  }
  for (const auto& [name, l] : snapshot.latencies) {
    const PrometheusSeries s = prometheus_series(name);
    declare(s.family, "histogram");
    // Latency bucket arrays are wide (66) and sparse; elide buckets whose
    // cumulative count equals the previous emitted one — any le subset plus
    // `+Inf` is valid exposition and histogram_quantile() handles it.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < LatencyHistogram::kFiniteBounds; ++i) {
      if (l.buckets[i] == 0) continue;
      cumulative += l.buckets[i];
      out << s.family << "_bucket"
          << label_block(s.labels, "le",
                         format_double(LatencyHistogram::bucket_bound_us(i)))
          << ' ' << cumulative << '\n';
    }
    out << s.family << "_bucket" << label_block(s.labels, "le", "+Inf") << ' '
        << l.count << '\n'
        << s.family << "_sum" << label_block(s.labels) << ' '
        << format_double(l.sum_us) << '\n'
        << s.family << "_count" << label_block(s.labels) << ' ' << l.count
        << '\n';
  }
  // Precomputed quantile gauges: dashboards read these without running
  // histogram_quantile() over sparse buckets.
  struct Quantile {
    const char* suffix;
    double LatencySnapshot::*member;
  };
  static constexpr Quantile kQuantiles[] = {
      {"_p50_us", &LatencySnapshot::p50_us},
      {"_p95_us", &LatencySnapshot::p95_us},
      {"_p99_us", &LatencySnapshot::p99_us},
  };
  for (const Quantile& q : kQuantiles) {
    for (const auto& [name, l] : snapshot.latencies) {
      const PrometheusSeries s = prometheus_series(name);
      declare(s.family + q.suffix, "gauge");
      out << s.family << q.suffix << label_block(s.labels) << ' '
          << format_double(l.*q.member) << '\n';
    }
  }
  return out.str();
}

SeriesSummary summarize_series(const std::vector<double>& values) {
  SeriesSummary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = values[argmin(values).index];
  s.max = values[argmax(values).index];
  s.mean = mean(values);
  s.median = median(values);
  s.stddev = sample_stddev(values);
  return s;
}

std::string summary_to_json(const SeriesSummary& summary) {
  std::ostringstream out;
  out << "{\"count\":" << summary.count
      << ",\"min\":" << format_double(summary.min)
      << ",\"max\":" << format_double(summary.max)
      << ",\"mean\":" << format_double(summary.mean)
      << ",\"median\":" << format_double(summary.median)
      << ",\"stddev\":" << format_double(summary.stddev) << '}';
  return out.str();
}

std::string render_json_report(const ReportMeta& meta,
                               const MetricsSnapshot& snapshot,
                               const TimelineSampler* timeline) {
  std::ostringstream out;
  out << "{\"schema_version\":" << ReportMeta::kSchemaVersion
      << ",\"name\":\"" << json_escape(meta.name) << "\",\"platform\":\""
      << json_escape(meta.platform) << "\",\"git\":\""
      << json_escape(meta.git) << "\",\"metrics\":"
      << render_json(snapshot);
  if (timeline != nullptr) {
    out << ",\"timeline\":" << timeline->to_json();

    // One summary per sampled instrument, sorted so reports diff cleanly.
    const std::vector<TimelineSample> window = timeline->samples();
    std::set<std::string> counters, gauges, histograms;
    for (const TimelineSample& s : window) {
      for (const auto& [name, _] : s.values.counters) counters.insert(name);
      for (const auto& [name, _] : s.values.gauges) gauges.insert(name);
      for (const auto& [name, _] : s.values.histograms) {
        histograms.insert(name);
      }
    }
    out << ",\"summary\":{";
    bool first = true;
    const auto emit = [&](const std::string& name,
                          const std::vector<double>& series) {
      if (!first) out << ',';
      first = false;
      out << '"' << json_escape(name)
          << "\":" << summary_to_json(summarize_series(series));
    };
    for (const std::string& name : counters) {
      emit(name, timeline->counter_series(name));
    }
    for (const std::string& name : gauges) {
      emit(name, timeline->gauge_series(name));
    }
    for (const std::string& name : histograms) {
      emit(name + ".mean_gb", timeline->histogram_mean_series(name));
    }
    out << '}';
  }
  out << '}';
  return out.str();
}

}  // namespace mcm::obs
