#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <sstream>

namespace mcm::obs {

namespace {

[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Timestamps with sub-microsecond fractions survive the round trip into
/// chrome://tracing; %.3f keeps nanosecond resolution without noise.
[[nodiscard]] std::string format_us(double us) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.3f", us);
  return buffer;
}

[[nodiscard]] std::string format_value(double v) {
  char buffer[64];
  // Integral values print exactly: trace/span ids ride as 48-bit integers
  // in double args, and %g's six significant digits would truncate them.
  if (v >= -9.007199254740992e15 && v <= 9.007199254740992e15 &&
      v == static_cast<double>(static_cast<std::int64_t>(v))) {
    std::snprintf(buffer, sizeof buffer, "%lld",
                  static_cast<long long>(v));
  } else {
    std::snprintf(buffer, sizeof buffer, "%g", v);
  }
  return buffer;
}

void write_event(std::ostream& out, const TraceEvent& e) {
  out << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
      << e.category << "\",\"ph\":\"" << static_cast<char>(e.phase)
      << "\",\"ts\":" << format_us(e.ts_us);
  if (e.phase == TracePhase::kComplete) {
    out << ",\"dur\":" << format_us(e.dur_us);
  }
  out << ",\"pid\":1,\"tid\":" << e.track;
  if (e.arg_count > 0) {
    out << ",\"args\":{";
    for (std::size_t i = 0; i < e.arg_count; ++i) {
      if (i > 0) out << ',';
      out << '"' << e.args[i].key << "\":" << format_value(e.args[i].value);
    }
    out << '}';
  } else if (e.phase == TracePhase::kCounter) {
    // Counter events without args render as an empty series; give the
    // viewer something to plot.
    out << ",\"args\":{\"value\":0}";
  }
  out << '}';
}

}  // namespace

void ChromeTraceSink::record(const TraceEvent& event) {
  std::lock_guard lock(mutex_);
  events_.push_back(event);
}

void ChromeTraceSink::set_track_name(std::uint32_t track,
                                     const std::string& name) {
  std::lock_guard lock(mutex_);
  track_names_.emplace_back(track, name);
}

std::size_t ChromeTraceSink::size() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

std::size_t ChromeTraceSink::count(const std::string& name) const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.name == name) ++n;
  }
  return n;
}

void ChromeTraceSink::clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
  track_names_.clear();
}

void ChromeTraceSink::write_json(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  out << "[";
  bool first = true;
  for (const auto& [track, name] : track_names_) {
    if (!first) out << ",\n ";
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
        << track << ",\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
  }
  for (const TraceEvent& e : events_) {
    if (!first) out << ",\n ";
    first = false;
    write_event(out, e);
  }
  out << "]\n";
}

std::string ChromeTraceSink::to_json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

WallClock::WallClock() {
  origin_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
                   .count();
}

double WallClock::now_us() const {
  const std::int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return static_cast<double>(now_ns - origin_ns_) * 1e-3;
}

}  // namespace mcm::obs
