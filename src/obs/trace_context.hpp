// Request-scoped trace identity, shared by the service wire protocol, the
// pipeline Runner and the Chrome-trace sink.
//
// Ids are 48-bit nonzero integers. 48 bits — not 64 — because trace ids
// ride on spans as `TraceEvent` args, and those are doubles: every 48-bit
// integer is exactly representable in a double, so an id survives the
// trace file round trip bit-for-bit. On the wire an id is exactly 12
// lowercase hex characters ("04d2agb..." rejected, "0000000004d2" fine,
// all-zero rejected).
//
// Generation is deterministic from a caller-supplied seed (splitmix64
// stream, masked to 48 bits, zero skipped) so traced CI runs byte-compare.
#pragma once

#include <cstdint>
#include <string>

namespace mcm::obs {

/// Identity of one logical request (`trace_id`) and of one attempt / hop
/// within it (`span_id`). Zero trace_id means "not traced".
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  [[nodiscard]] bool valid() const { return trace_id != 0; }
};

inline constexpr std::uint64_t kTraceIdBits = 48;
inline constexpr std::uint64_t kTraceIdMask = (std::uint64_t{1} << 48) - 1;
inline constexpr std::size_t kTraceIdHexChars = 12;

/// Deterministic 48-bit nonzero id stream (splitmix64, masked).
class TraceIdGenerator {
 public:
  explicit TraceIdGenerator(std::uint64_t seed) : state_(seed) {}

  [[nodiscard]] std::uint64_t next() {
    for (;;) {
      state_ += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = state_;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      z = (z ^ (z >> 31)) & kTraceIdMask;
      if (z != 0) return z;
    }
  }

 private:
  std::uint64_t state_;
};

/// Exactly 12 lowercase hex characters, zero-padded.
[[nodiscard]] inline std::string trace_id_to_hex(std::uint64_t id) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(kTraceIdHexChars, '0');
  for (std::size_t i = 0; i < kTraceIdHexChars; ++i) {
    out[kTraceIdHexChars - 1 - i] = kHex[(id >> (4 * i)) & 0xF];
  }
  return out;
}

/// Strict parse: exactly 12 lowercase hex characters, nonzero value.
/// Returns false (id untouched) otherwise.
[[nodiscard]] inline bool parse_trace_id(const std::string& s,
                                         std::uint64_t& id) {
  if (s.size() != kTraceIdHexChars) return false;
  std::uint64_t value = 0;
  for (char c : s) {
    std::uint64_t nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    value = (value << 4) | nibble;
  }
  if (value == 0) return false;
  id = value;
  return true;
}

}  // namespace mcm::obs
