// Time-series sampling of a MetricsRegistry: periodic snapshots into a
// fixed-capacity ring buffer, turning the end-of-run counters into the
// bandwidth-over-time view the paper's figures are made of.
//
// The sampler is timeline-agnostic: callers stamp each sample with
// microseconds on *their* timeline — simulated time when sim::Engine
// drives it at slice boundaries, wall time when the benchmark runner (or
// any native producer) drives it. One sampler never mixes the two, same
// rule as the trace sinks.
//
// Concurrency: `sample`/`maybe_sample` and the export functions serialize
// on an internal mutex; instrument *updates* stay lock-free (snapshots
// read each atomic individually, per the MetricsRegistry contract), so
// attaching a sampler never adds a lock to a hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace mcm::obs {

/// One ring-buffer entry: a registry snapshot and when it was taken.
struct TimelineSample {
  double t_us = 0.0;
  MetricsSnapshot values;
};

class TimelineSampler {
 public:
  /// Sample `registry` at most every `period_us` into a ring of
  /// `capacity` entries (oldest overwritten first). capacity >= 1,
  /// period_us >= 0 (0 keeps every offered sample).
  TimelineSampler(const MetricsRegistry& registry, std::size_t capacity,
                  double period_us);
  TimelineSampler(const TimelineSampler&) = delete;
  TimelineSampler& operator=(const TimelineSampler&) = delete;

  /// Unconditionally snapshot the registry, stamped `t_us`.
  void sample(double t_us);

  /// Snapshot only if at least `period_us` elapsed since the last kept
  /// sample (the first offer is always kept). Returns true if sampled.
  /// This is the hook producers call at their natural boundaries (engine
  /// slices, sweep points) — cheap to call far more often than the period.
  bool maybe_sample(double t_us);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] double period_us() const { return period_us_; }
  /// Samples currently held (<= capacity).
  [[nodiscard]] std::size_t size() const;
  /// Samples ever taken, including ones overwritten after wraparound or
  /// dropped by clear() — a lifetime statistic.
  [[nodiscard]] std::uint64_t total_samples() const;
  /// Drop the retained window and re-arm the cadence (the next offer is
  /// kept). total_samples() is unaffected.
  void clear();

  /// Copy of the retained window, oldest first.
  [[nodiscard]] std::vector<TimelineSample> samples() const;

  /// Timestamps of the retained window, oldest first.
  [[nodiscard]] std::vector<double> times_us() const;
  /// Per-sample values of one instrument over the retained window (0 where
  /// the instrument did not exist yet). Histograms yield their mean GB/s.
  [[nodiscard]] std::vector<double> counter_series(
      const std::string& name) const;
  [[nodiscard]] std::vector<double> gauge_series(
      const std::string& name) const;
  [[nodiscard]] std::vector<double> histogram_mean_series(
      const std::string& name) const;

  /// Wide CSV: `t_us` column, then one column per instrument seen in the
  /// window (sorted; histograms contribute `<name>.count` and
  /// `<name>.mean_gb`). Missing-at-the-time instruments render as 0.
  [[nodiscard]] std::string to_csv() const;
  /// JSON object: {"period_us":..,"t_us":[..],"counters":{name:[..]},
  /// "gauges":{..},"histogram_means":{..}} — columnar, so series plot
  /// directly.
  [[nodiscard]] std::string to_json() const;

 private:
  [[nodiscard]] std::vector<TimelineSample> ordered_locked() const;

  const MetricsRegistry* registry_;
  const std::size_t capacity_;
  const double period_us_;

  mutable std::mutex mutex_;
  std::vector<TimelineSample> ring_;
  std::size_t head_ = 0;  ///< next write position once the ring is full
  std::uint64_t total_ = 0;
  bool has_last_ = false;
  double last_kept_us_ = 0.0;
};

}  // namespace mcm::obs
