// Structured trace sink: subsystems emit timestamped events (engine slice
// boundaries, arbiter rate grants, transfer lifecycle, sweep phases,
// message lifecycle) into an abstract TraceSink. The shipped sink buffers
// them and exports Chrome `trace_event` JSON loadable in chrome://tracing
// or https://ui.perfetto.dev.
//
// Emission discipline: producers never construct a TraceEvent unless a
// sink is attached, so tracing costs one pointer test when disabled.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace mcm::obs {

/// The Chrome trace-event phases the library emits. The enumerator value
/// is the `"ph"` character of the JSON format.
enum class TracePhase : char {
  kComplete = 'X',  ///< a span with a duration
  kInstant = 'i',   ///< a point in time
  kCounter = 'C',   ///< a sampled value, rendered as a time series
};

/// One structured event. Timestamps are microseconds on the producer's
/// timeline: simulated time for sim::Engine, wall time for the benchmark
/// runner and the message layer — one trace never mixes the two.
struct TraceEvent {
  struct Arg {
    const char* key = nullptr;
    double value = 0.0;
  };
  static constexpr std::size_t kMaxArgs = 4;

  std::string name;
  const char* category = "mcm";
  TracePhase phase = TracePhase::kInstant;
  double ts_us = 0.0;
  double dur_us = 0.0;  ///< kComplete only
  /// Rendered as the Chrome `tid`, so related events share a track.
  std::uint32_t track = 0;
  std::array<Arg, kMaxArgs> args{};
  std::size_t arg_count = 0;

  TraceEvent& arg(const char* key, double value) {
    if (arg_count < kMaxArgs) args[arg_count++] = Arg{key, value};
    return *this;
  }
};

/// Abstract consumer. Implementations must be safe to call from multiple
/// threads (the message layer and the thread pool emit concurrently).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceEvent& event) = 0;
};

/// Buffering sink with Chrome trace_event JSON export.
class ChromeTraceSink : public TraceSink {
 public:
  void record(const TraceEvent& event) override;

  /// Label one track; exported as a `thread_name` metadata event.
  void set_track_name(std::uint32_t track, const std::string& name);

  [[nodiscard]] std::size_t size() const;
  /// Events of one name (test helper).
  [[nodiscard]] std::size_t count(const std::string& name) const;
  void clear();

  /// The full trace as a Chrome trace_event JSON array.
  [[nodiscard]] std::string to_json() const;
  void write_json(std::ostream& out) const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::vector<std::pair<std::uint32_t, std::string>> track_names_;
};

/// Microsecond wall clock anchored at construction, for producers whose
/// events live on the real timeline.
class WallClock {
 public:
  WallClock();
  [[nodiscard]] double now_us() const;

 private:
  std::int64_t origin_ns_ = 0;
};

/// Microseconds of a simulated timestamp.
[[nodiscard]] constexpr double to_trace_us(Seconds t) {
  return t.value() * 1e6;
}

}  // namespace mcm::obs
