// Leveled structured logger emitting one JSON object per line (JSONL).
//
// Follows the observability layer's null-sink discipline: a
// default-constructed Log has no sink and every call is a cheap
// level-check away from a no-op, so components can hold a `Log*` (or a
// null-default pointer in their options struct) without caring whether
// logging is on. The clock is injectable so tests assert byte-exact lines.
//
// Line schema (docs/observability.md "Structured logs"):
//   {"ts_us":<int>,"level":"info","event":"accept",<caller fields...>}
// `ts_us`, `level` and `event` always come first, in that order; caller
// fields follow in call order. Writes are mutex-serialized so concurrent
// workers never interleave partial lines.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <initializer_list>
#include <mutex>
#include <ostream>
#include <string>

namespace mcm::obs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

[[nodiscard]] const char* to_string(LogLevel level);
/// Parse "debug" / "info" / "warn" / "error" / "off"; false on anything
/// else (out untouched).
[[nodiscard]] bool parse_log_level(const std::string& text, LogLevel& out);

/// One key/value pair on a log line. Strings are JSON-escaped at write
/// time; numbers render with %g (uints exactly).
struct LogField {
  enum class Kind { kString, kDouble, kUint };

  LogField(std::string k, std::string v)
      : key(std::move(k)), str(std::move(v)), kind(Kind::kString) {}
  LogField(std::string k, const char* v)
      : key(std::move(k)), str(v), kind(Kind::kString) {}
  LogField(std::string k, double v)
      : key(std::move(k)), num(v), kind(Kind::kDouble) {}
  LogField(std::string k, std::uint64_t v)
      : key(std::move(k)), uint(v), kind(Kind::kUint) {}

  std::string key;
  std::string str;
  double num = 0.0;
  std::uint64_t uint = 0;
  Kind kind = Kind::kString;
};

class Log {
 public:
  /// Microseconds since an arbitrary origin; injectable for tests.
  using ClockFn = std::function<std::uint64_t()>;

  /// Null sink: every write is a no-op.
  Log() = default;
  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;

  /// Attach a caller-owned stream (tests pass an ostringstream). Replaces
  /// any previous sink.
  void attach(std::ostream* out);
  /// Open `path` for appending and sink lines there. Returns false with
  /// `error` set when the file cannot be opened.
  [[nodiscard]] bool open_file(const std::string& path, std::string& error);

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  /// Default clock is wall microseconds since the first use.
  void set_clock(ClockFn clock) { clock_ = std::move(clock); }

  [[nodiscard]] bool enabled(LogLevel level) const {
    return sink_ != nullptr && level >= level_ && level != LogLevel::kOff;
  }

  void write(LogLevel level, const std::string& event,
             std::initializer_list<LogField> fields);

  void debug(const std::string& event,
             std::initializer_list<LogField> fields = {}) {
    write(LogLevel::kDebug, event, fields);
  }
  void info(const std::string& event,
            std::initializer_list<LogField> fields = {}) {
    write(LogLevel::kInfo, event, fields);
  }
  void warn(const std::string& event,
            std::initializer_list<LogField> fields = {}) {
    write(LogLevel::kWarn, event, fields);
  }
  void error(const std::string& event,
             std::initializer_list<LogField> fields = {}) {
    write(LogLevel::kError, event, fields);
  }

 private:
  std::mutex mutex_;
  std::ostream* sink_ = nullptr;  ///< attach()ed stream or &file_
  std::ofstream file_;
  LogLevel level_ = LogLevel::kInfo;
  ClockFn clock_;
};

}  // namespace mcm::obs
