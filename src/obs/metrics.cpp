#include "obs/metrics.hpp"

#include <cstdio>
#include <sstream>

namespace mcm::obs {

namespace {

/// Shortest round-trippable-enough representation: %g prints integers
/// without trailing zeros and small rates without artificial precision.
[[nodiscard]] std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%g", v);
  return buffer;
}

[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

BandwidthHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<BandwidthHistogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    for (std::size_t i = 0; i < BandwidthHistogram::kBucketCount; ++i) {
      h.buckets[i] = histogram->bucket(i);
    }
    h.count = histogram->count();
    h.sum_gb = histogram->sum_gb();
    h.mean_gb = histogram->mean_gb();
    snap.histograms.emplace(name, h);
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, gauge] : gauges_) gauge->reset();
  for (const auto& [name, histogram] : histograms_) histogram->reset();
}

std::string MetricsRegistry::to_text() const { return render_text(snapshot()); }

std::string MetricsRegistry::to_json() const { return render_json(snapshot()); }

std::string render_text(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    out << name << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out << name << ' ' << format_double(value) << '\n';
  }
  for (const auto& [name, h] : snapshot.histograms) {
    out << name << " count=" << h.count
        << " mean_gb=" << format_double(h.mean_gb) << '\n';
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      out << name << "{le=";
      if (i < BandwidthHistogram::kBucketBoundsGb.size()) {
        out << format_double(BandwidthHistogram::kBucketBoundsGb[i]);
      } else {
        out << "+inf";
      }
      out << "} " << h.buckets[i] << '\n';
    }
  }
  return out.str();
}

std::string render_json(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(name) << "\":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(name) << "\":" << format_double(value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(name) << "\":{\"count\":" << h.count
        << ",\"sum_gb\":" << format_double(h.sum_gb) << ",\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out << ',';
      out << h.buckets[i];
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

}  // namespace mcm::obs
