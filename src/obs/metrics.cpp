#include "obs/metrics.hpp"

#include <cstdio>
#include <sstream>

namespace mcm::obs {

namespace {

/// Shortest round-trippable-enough representation: %g prints integers
/// without trailing zeros and small rates without artificial precision.
[[nodiscard]] std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%g", v);
  return buffer;
}

[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

BandwidthHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<BandwidthHistogram>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::latency(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = latencies_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

double LatencySnapshot::quantile_us(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const auto before = static_cast<double>(cumulative);
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < rank) continue;
    // The overflow bucket has no upper bound; the tracked max is the best
    // available estimate for any quantile landing there.
    if (i >= LatencyHistogram::kFiniteBounds) return max_us;
    const double hi = LatencyHistogram::bucket_bound_us(i);
    const double lo = i == 0 ? 0.0 : LatencyHistogram::bucket_bound_us(i - 1);
    const double frac = (rank - before) / static_cast<double>(buckets[i]);
    const double v = lo + frac * (hi - lo);
    return max_us > 0.0 && v > max_us ? max_us : v;
  }
  return max_us;
}

LatencySnapshot snapshot_latency(const LatencyHistogram& h) {
  LatencySnapshot snap;
  for (std::size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
    snap.buckets[i] = h.bucket(i);
  }
  snap.count = h.count();
  snap.sum_us = h.sum_us();
  snap.max_us = h.max_us();
  snap.p50_us = snap.quantile_us(0.50);
  snap.p95_us = snap.quantile_us(0.95);
  snap.p99_us = snap.quantile_us(0.99);
  return snap;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    for (std::size_t i = 0; i < BandwidthHistogram::kBucketCount; ++i) {
      h.buckets[i] = histogram->bucket(i);
    }
    h.count = histogram->count();
    h.sum_gb = histogram->sum_gb();
    h.mean_gb = histogram->mean_gb();
    snap.histograms.emplace(name, h);
  }
  for (const auto& [name, latency] : latencies_) {
    snap.latencies.emplace(name, snapshot_latency(*latency));
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, gauge] : gauges_) gauge->reset();
  for (const auto& [name, histogram] : histograms_) histogram->reset();
  for (const auto& [name, latency] : latencies_) latency->reset();
}

std::string MetricsRegistry::to_text() const { return render_text(snapshot()); }

std::string MetricsRegistry::to_json() const { return render_json(snapshot()); }

std::string render_text(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    out << name << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out << name << ' ' << format_double(value) << '\n';
  }
  for (const auto& [name, h] : snapshot.histograms) {
    out << name << " count=" << h.count
        << " mean_gb=" << format_double(h.mean_gb) << '\n';
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      out << name << "{le=";
      if (i < BandwidthHistogram::kBucketBoundsGb.size()) {
        out << format_double(BandwidthHistogram::kBucketBoundsGb[i]);
      } else {
        out << "+inf";
      }
      out << "} " << h.buckets[i] << '\n';
    }
  }
  for (const auto& [name, l] : snapshot.latencies) {
    out << name << " count=" << l.count
        << " p50_us=" << format_double(l.p50_us)
        << " p95_us=" << format_double(l.p95_us)
        << " p99_us=" << format_double(l.p99_us)
        << " max_us=" << format_double(l.max_us) << '\n';
    for (std::size_t i = 0; i < l.buckets.size(); ++i) {
      if (l.buckets[i] == 0) continue;
      out << name << "{le=";
      if (i < LatencyHistogram::kFiniteBounds) {
        out << format_double(LatencyHistogram::bucket_bound_us(i));
      } else {
        out << "+inf";
      }
      out << "} " << l.buckets[i] << '\n';
    }
  }
  return out.str();
}

std::string render_json(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(name) << "\":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(name) << "\":" << format_double(value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(name) << "\":{\"count\":" << h.count
        << ",\"sum_gb\":" << format_double(h.sum_gb) << ",\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out << ',';
      out << h.buckets[i];
    }
    out << "]}";
  }
  out << "},\"latencies\":{";
  first = true;
  for (const auto& [name, l] : snapshot.latencies) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(name) << "\":{\"count\":" << l.count
        << ",\"sum_us\":" << format_double(l.sum_us)
        << ",\"max_us\":" << format_double(l.max_us)
        << ",\"p50_us\":" << format_double(l.p50_us)
        << ",\"p95_us\":" << format_double(l.p95_us)
        << ",\"p99_us\":" << format_double(l.p99_us) << ",\"buckets\":[";
    // The bucket array is long (66) and usually sparse: emit [index,count]
    // pairs for the non-empty buckets only.
    bool first_bucket = true;
    for (std::size_t i = 0; i < l.buckets.size(); ++i) {
      if (l.buckets[i] == 0) continue;
      if (!first_bucket) out << ',';
      first_bucket = false;
      out << '[' << i << ',' << l.buckets[i] << ']';
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

}  // namespace mcm::obs
