#include "obs/log.hpp"

#include <chrono>
#include <cstdio>

namespace mcm::obs {

namespace {

[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof buffer, "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buffer;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

[[nodiscard]] std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%g", v);
  return buffer;
}

[[nodiscard]] std::uint64_t wall_us() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now).count());
}

}  // namespace

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "info";
}

bool parse_log_level(const std::string& text, LogLevel& out) {
  if (text == "debug") {
    out = LogLevel::kDebug;
  } else if (text == "info") {
    out = LogLevel::kInfo;
  } else if (text == "warn") {
    out = LogLevel::kWarn;
  } else if (text == "error") {
    out = LogLevel::kError;
  } else if (text == "off") {
    out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

void Log::attach(std::ostream* out) {
  std::lock_guard lock(mutex_);
  if (file_.is_open()) file_.close();
  sink_ = out;
}

bool Log::open_file(const std::string& path, std::string& error) {
  std::lock_guard lock(mutex_);
  if (file_.is_open()) file_.close();
  file_.open(path, std::ios::out | std::ios::app);
  if (!file_) {
    error = "cannot open log file '" + path + "'";
    sink_ = nullptr;
    return false;
  }
  sink_ = &file_;
  return true;
}

void Log::write(LogLevel level, const std::string& event,
                std::initializer_list<LogField> fields) {
  if (!enabled(level)) return;
  std::string line = "{\"ts_us\":";
  const std::uint64_t ts = clock_ ? clock_() : wall_us();
  line += std::to_string(ts);
  line += ",\"level\":\"";
  line += to_string(level);
  line += "\",\"event\":\"";
  line += json_escape(event);
  line += '"';
  for (const LogField& field : fields) {
    line += ",\"";
    line += json_escape(field.key);
    line += "\":";
    switch (field.kind) {
      case LogField::Kind::kString:
        line += '"';
        line += json_escape(field.str);
        line += '"';
        break;
      case LogField::Kind::kDouble:
        line += format_double(field.num);
        break;
      case LogField::Kind::kUint:
        line += std::to_string(field.uint);
        break;
    }
  }
  line += "}\n";
  std::lock_guard lock(mutex_);
  if (sink_ == nullptr) return;  // detached between check and lock
  *sink_ << line;
  sink_->flush();
}

}  // namespace mcm::obs
