// Pluggable exports of metrics snapshots and timelines:
//
//  * Prometheus text exposition format (version 0.0.4) — instrument names
//    are sanitized to [a-zA-Z0-9_] and prefixed `mcm_`; bandwidth
//    histograms render as native Prometheus histograms (cumulative
//    `_bucket{le=...}` series plus `_sum` / `_count`).
//  * A versioned JSON report — machine-readable run summary with
//    provenance (`schema_version`, producer name, platform, git describe),
//    the full snapshot, and, when a TimelineSampler is supplied, its
//    per-instrument series plus summary statistics (util/stats).
//
// Both are pure functions of a snapshot, so saved snapshots can be
// re-rendered later and golden-file tests stay trivial.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"

namespace mcm::obs {

/// Sanitize an instrument name for Prometheus: every character outside
/// [a-zA-Z0-9_] becomes '_', and the result is prefixed "mcm_" (unless
/// already so prefixed). "sim.engine.slices" -> "mcm_sim_engine_slices".
[[nodiscard]] std::string prometheus_name(const std::string& name);

/// A registry instrument name split into a Prometheus metric family plus
/// label pairs. Registry names may carry an inline label block —
/// `svc.latency.total{class="interactive",method="predict"}` — which must
/// NOT be mangled wholesale (that used to produce names like
/// `mcm_svc_latency_total_class__interactive__..._` that strict parsers
/// reject as one giant family per label combination).
struct PrometheusSeries {
  std::string family;  ///< sanitized family name (prometheus_name rules)
  /// Sanitized label keys with exposition-escaped values, in the order
  /// written in the instrument name.
  std::vector<std::pair<std::string, std::string>> labels;
};

/// Split `name` at its label block (if any) and sanitize both halves.
/// A malformed block (unbalanced braces, missing `="..."`) degrades to the
/// old behavior: the whole name is mangled into the family, no labels.
[[nodiscard]] PrometheusSeries prometheus_series(const std::string& name);

/// The whole snapshot in Prometheus text exposition format, instruments
/// sorted by name. Counters -> `counter`, gauges -> `gauge`, bandwidth
/// histograms -> `histogram` with cumulative buckets in GB/s, latency
/// histograms -> `histogram` with cumulative buckets in µs (zero-increment
/// buckets elided, `+Inf` always present) plus `<family>_p{50,95,99}_us`
/// gauges. Instruments sharing a family (same name, different label
/// blocks) emit one `# TYPE` line — strict parsers reject duplicates.
[[nodiscard]] std::string render_prometheus(const MetricsSnapshot& snapshot);

/// Provenance header of a JSON report. `schema_version` identifies the
/// report layout; bump it when the structure changes incompatibly.
struct ReportMeta {
  static constexpr int kSchemaVersion = 1;
  std::string name;      ///< producer, e.g. "mcmtool-stats" or "fig3_henri"
  std::string platform;  ///< platform preset / machine the run used
  std::string git;       ///< `git describe` of the build, "" if unknown
};

/// Min/mean/median/max/stddev of one sampled series.
struct SeriesSummary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
};

/// Summarize a series with util/stats (all zeros when empty).
[[nodiscard]] SeriesSummary summarize_series(
    const std::vector<double>& values);

/// Versioned JSON report:
/// {"schema_version":1,"name":..,"platform":..,"git":..,
///  "metrics":<render_json(snapshot)>,
///  "timeline":<sampler.to_json()>,         // when sampler != nullptr
///  "summary":{"<instrument>":{count,min,max,mean,median,stddev},..}}
/// Summaries cover every sampled counter, gauge and histogram-mean series.
[[nodiscard]] std::string render_json_report(
    const ReportMeta& meta, const MetricsSnapshot& snapshot,
    const TimelineSampler* timeline = nullptr);

/// Render one SeriesSummary as a JSON object (shared with the benchmark
/// report writer).
[[nodiscard]] std::string summary_to_json(const SeriesSummary& summary);

}  // namespace mcm::obs
