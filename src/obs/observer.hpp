// The attachment point instrumented subsystems share: optional pointers
// to a metrics registry, a trace sink and a timeline sampler, all null by
// default (the "null sink"). Components copy the Observer by value at
// attach time and guard every emission on the relevant pointer, so an
// unattached component pays exactly one branch per would-be event and
// allocates nothing — the zero-cost guarantee docs/observability.md
// documents.
#pragma once

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"

namespace mcm::obs {

struct Observer {
  MetricsRegistry* metrics = nullptr;
  TraceSink* trace = nullptr;
  /// Driven by producers at their natural time boundaries (engine slices,
  /// sweep points) via maybe_sample; usually samples the same registry as
  /// `metrics`, but any registry works.
  TimelineSampler* sampler = nullptr;

  [[nodiscard]] constexpr bool attached() const {
    return metrics != nullptr || trace != nullptr || sampler != nullptr;
  }
};

}  // namespace mcm::obs
