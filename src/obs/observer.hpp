// The attachment point instrumented subsystems share: a pair of optional
// pointers to a metrics registry and a trace sink, both null by default
// (the "null sink"). Components copy the Observer by value at attach time
// and guard every emission on the relevant pointer, so an unattached
// component pays exactly one branch per would-be event and allocates
// nothing — the zero-cost guarantee docs/observability.md documents.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mcm::obs {

struct Observer {
  MetricsRegistry* metrics = nullptr;
  TraceSink* trace = nullptr;

  [[nodiscard]] constexpr bool attached() const {
    return metrics != nullptr || trace != nullptr;
  }
};

}  // namespace mcm::obs
