// RAII trace span: captures a start timestamp at construction and emits a
// single kComplete TraceEvent at scope exit, so instrumented code cannot
// leak an unmatched begin/end pair (early return, exception, forgotten
// second emission).
//
// Two timing modes:
//  * wall mode — pass a WallClock; start is sampled at construction, the
//    duration at destruction. For native producers (bench runner, thread
//    pool).
//  * manual mode — pass an explicit start timestamp and call `set_end`
//    before scope exit. For producers on a simulated timeline
//    (sim::Engine), where "now" is a variable, not a clock.
//
// Null-sink discipline (same as every obs hook): with sink == nullptr the
// constructor stores two pointers and everything else — clock reads,
// string copies, arg recording, the destructor — is a no-op, so an
// unattached span costs one branch per call.
#pragma once

#include "obs/trace.hpp"

namespace mcm::obs {

class ScopedSpan {
 public:
  /// Wall mode: span from construction to destruction on `clock`'s
  /// timeline. `clock` must outlive the span.
  ScopedSpan(TraceSink* sink, const WallClock& clock, const char* name,
             const char* category, std::uint32_t track)
      : sink_(sink), clock_(&clock) {
    if (sink_ == nullptr) return;
    event_.name = name;
    event_.category = category;
    event_.phase = TracePhase::kComplete;
    event_.track = track;
    event_.ts_us = clock_->now_us();
  }

  /// Manual mode: the caller owns the timeline; call set_end() before the
  /// span dies (an unset end records a zero-duration span at `start_us`).
  ScopedSpan(TraceSink* sink, const char* name, const char* category,
             std::uint32_t track, double start_us)
      : sink_(sink) {
    if (sink_ == nullptr) return;
    event_.name = name;
    event_.category = category;
    event_.phase = TracePhase::kComplete;
    event_.track = track;
    event_.ts_us = start_us;
    end_us_ = start_us;
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (sink_ == nullptr) return;
    event_.dur_us =
        (clock_ != nullptr ? clock_->now_us() : end_us_) - event_.ts_us;
    sink_->record(event_);
  }

  /// Attach an arg (kept up to TraceEvent::kMaxArgs); no-op when unattached.
  ScopedSpan& arg(const char* key, double value) {
    if (sink_ != nullptr) event_.arg(key, value);
    return *this;
  }

  /// Manual mode only: the timestamp the span ends at.
  void set_end(double end_us) { end_us_ = end_us; }

 private:
  TraceSink* sink_;
  const WallClock* clock_ = nullptr;
  TraceEvent event_;
  double end_us_ = 0.0;
};

}  // namespace mcm::obs
