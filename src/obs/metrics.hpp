// Lock-cheap metrics registry: named counters, gauges and bandwidth
// histograms shared by every bandwidth-moving subsystem (sim, net, bench,
// runtime).
//
// Design rules, in order of importance:
//  1. Updating an instrument never takes a lock: counters and gauges are
//     single atomics updated with relaxed ordering, histogram buckets are
//     an array of atomics. Contended increments cost one atomic RMW.
//  2. Looking an instrument up by name takes the registry mutex; hot paths
//     resolve their instruments once (at observer-attach time) and keep the
//     returned pointer, which stays valid for the registry's lifetime.
//  3. `snapshot()` is a consistent-enough copy for reporting: each value is
//     read atomically, the set of instruments is read under the mutex.
//
// Exported as plain text (one `name value` line per instrument) and as a
// JSON object, both stable-ordered by name so outputs diff cleanly.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace mcm::obs {

/// Monotonic event count. Wraps around on std::uint64_t overflow (standard
/// unsigned semantics) — callers counting bytes at hardware rates would
/// need centuries to get there.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, pool size, ...).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  /// Relaxed add for up/down tracking (in-flight requests). CAS loop: the
  /// gauge is reporting-only, no ordering needed.
  void add(double delta) {
    double v = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(v, v + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram of observed bandwidths with fixed power-of-two buckets in
/// GB/s. The range 0.25..128 GB/s brackets everything the paper measures
/// (a fraction of a DDR channel up to an aggregate dual-socket machine).
class BandwidthHistogram {
 public:
  /// Upper bounds of the finite buckets, in GB/s; one extra bucket catches
  /// everything above the last bound.
  static constexpr std::array<double, 10> kBucketBoundsGb = {
      0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0};
  static constexpr std::size_t kBucketCount = kBucketBoundsGb.size() + 1;

  void record(Bandwidth bw) {
    const double gb = bw.gb();
    std::size_t bucket = kBucketBoundsGb.size();
    for (std::size_t i = 0; i < kBucketBoundsGb.size(); ++i) {
      if (gb <= kBucketBoundsGb[i]) {
        bucket = i;
        break;
      }
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // Relaxed CAS loop: sum_gb is reporting-only, no ordering needed.
    double sum = sum_gb_.load(std::memory_order_relaxed);
    while (!sum_gb_.compare_exchange_weak(sum, sum + gb,
                                          std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum_gb() const {
    return sum_gb_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean_gb() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum_gb() / static_cast<double>(n);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_gb_.store(0.0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_gb_{0.0};
};

/// Point-in-time copy of one histogram, for snapshots.
struct HistogramSnapshot {
  std::array<std::uint64_t, BandwidthHistogram::kBucketCount> buckets{};
  std::uint64_t count = 0;
  double sum_gb = 0.0;
  double mean_gb = 0.0;
};

/// Histogram of observed latencies with fixed log-linear microsecond
/// buckets: 1 µs, then nine bounds per decade (2·10^d .. 10·10^d) for seven
/// decades up to 10 s, plus one overflow bucket. Log-linear keeps relative
/// quantile error under ~12% across the whole range while the bucket index
/// is computed with a short scan (the decade loop runs ≤ 7 times).
///
/// Same concurrency rules as BandwidthHistogram: relaxed atomics only, no
/// locks; `record_us` costs a handful of relaxed RMWs.
class LatencyHistogram {
 public:
  static constexpr std::size_t kDecades = 7;          // 10^0 .. 10^6 µs
  static constexpr std::size_t kBoundsPerDecade = 9;  // 2,3,...,10 · 10^d
  /// 1 µs + 9 bounds per decade; one extra bucket catches everything above
  /// the last finite bound (10^7 µs = 10 s).
  static constexpr std::size_t kFiniteBounds = 1 + kDecades * kBoundsPerDecade;
  static constexpr std::size_t kBucketCount = kFiniteBounds + 1;

  /// Upper bound of finite bucket `i`, in microseconds.
  [[nodiscard]] static constexpr double bucket_bound_us(std::size_t i) {
    if (i == 0) return 1.0;
    double base = 1.0;
    for (std::size_t d = (i - 1) / kBoundsPerDecade; d > 0; --d) base *= 10.0;
    return static_cast<double>((i - 1) % kBoundsPerDecade + 2) * base;
  }

  void record_us(double us) {
    if (us < 0.0) us = 0.0;  // clock skew guard; a latency is never negative
    std::size_t bucket = kFiniteBounds;
    double base = 1.0;
    if (us <= 1.0) {
      bucket = 0;
    } else {
      for (std::size_t d = 0; d < kDecades; ++d) {
        if (us <= 10.0 * base) {
          // Bounds in this decade are 2·base .. 10·base; ceil(us / base)
          // picks the first multiple that is >= us.
          auto m = static_cast<std::size_t>((us + base - 1e-9) / base);
          if (m < 2) m = 2;
          if (static_cast<double>(m) * base < us) ++m;
          bucket = 1 + d * kBoundsPerDecade + (m - 2);
          break;
        }
        base *= 10.0;
      }
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double sum = sum_us_.load(std::memory_order_relaxed);
    while (!sum_us_.compare_exchange_weak(sum, sum + us,
                                          std::memory_order_relaxed)) {
    }
    double max = max_us_.load(std::memory_order_relaxed);
    while (us > max && !max_us_.compare_exchange_weak(
                           max, us, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum_us() const {
    return sum_us_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double max_us() const {
    return max_us_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_us_.store(0.0, std::memory_order_relaxed);
    max_us_.store(0.0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_us_{0.0};
  std::atomic<double> max_us_{0.0};
};

/// Point-in-time copy of one latency histogram with interpolated quantiles.
/// Quantiles assume uniform spread within a bucket (linear interpolation
/// between the bucket's bounds); a quantile landing in the overflow bucket
/// reports the tracked max instead.
struct LatencySnapshot {
  std::array<std::uint64_t, LatencyHistogram::kBucketCount> buckets{};
  std::uint64_t count = 0;
  double sum_us = 0.0;
  double max_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;

  [[nodiscard]] double mean_us() const {
    return count == 0 ? 0.0 : sum_us / static_cast<double>(count);
  }
  /// Interpolated quantile for `q` in [0, 1]; 0 when empty.
  [[nodiscard]] double quantile_us(double q) const;
};

/// Build a snapshot (quantiles included) from a live histogram.
[[nodiscard]] LatencySnapshot snapshot_latency(const LatencyHistogram& h);

/// Point-in-time copy of the whole registry. Maps are sorted by name so
/// exports are deterministic.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, LatencySnapshot> latencies;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty() &&
           latencies.empty();
  }
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name. The returned reference stays valid for the
  /// registry's lifetime; hot paths should resolve once and keep it.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] BandwidthHistogram& histogram(const std::string& name);
  [[nodiscard]] LatencyHistogram& latency(const std::string& name);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Zero every instrument (registrations are kept).
  void reset();

  /// `name value` lines, one per instrument, sorted by name. Histograms
  /// render count/mean plus the non-empty buckets.
  [[nodiscard]] std::string to_text() const;
  /// One JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{...},"latencies":{...}}.
  [[nodiscard]] std::string to_json() const;

 private:
  mutable std::mutex mutex_;
  // Node-based maps: element addresses are stable across inserts.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<BandwidthHistogram>> histograms_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> latencies_;
};

/// Render a snapshot in the registry's text format (exposed separately so
/// saved snapshots can be printed later).
[[nodiscard]] std::string render_text(const MetricsSnapshot& snapshot);
[[nodiscard]] std::string render_json(const MetricsSnapshot& snapshot);

}  // namespace mcm::obs
