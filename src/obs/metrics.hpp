// Lock-cheap metrics registry: named counters, gauges and bandwidth
// histograms shared by every bandwidth-moving subsystem (sim, net, bench,
// runtime).
//
// Design rules, in order of importance:
//  1. Updating an instrument never takes a lock: counters and gauges are
//     single atomics updated with relaxed ordering, histogram buckets are
//     an array of atomics. Contended increments cost one atomic RMW.
//  2. Looking an instrument up by name takes the registry mutex; hot paths
//     resolve their instruments once (at observer-attach time) and keep the
//     returned pointer, which stays valid for the registry's lifetime.
//  3. `snapshot()` is a consistent-enough copy for reporting: each value is
//     read atomically, the set of instruments is read under the mutex.
//
// Exported as plain text (one `name value` line per instrument) and as a
// JSON object, both stable-ordered by name so outputs diff cleanly.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace mcm::obs {

/// Monotonic event count. Wraps around on std::uint64_t overflow (standard
/// unsigned semantics) — callers counting bytes at hardware rates would
/// need centuries to get there.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, pool size, ...).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram of observed bandwidths with fixed power-of-two buckets in
/// GB/s. The range 0.25..128 GB/s brackets everything the paper measures
/// (a fraction of a DDR channel up to an aggregate dual-socket machine).
class BandwidthHistogram {
 public:
  /// Upper bounds of the finite buckets, in GB/s; one extra bucket catches
  /// everything above the last bound.
  static constexpr std::array<double, 10> kBucketBoundsGb = {
      0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0};
  static constexpr std::size_t kBucketCount = kBucketBoundsGb.size() + 1;

  void record(Bandwidth bw) {
    const double gb = bw.gb();
    std::size_t bucket = kBucketBoundsGb.size();
    for (std::size_t i = 0; i < kBucketBoundsGb.size(); ++i) {
      if (gb <= kBucketBoundsGb[i]) {
        bucket = i;
        break;
      }
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // Relaxed CAS loop: sum_gb is reporting-only, no ordering needed.
    double sum = sum_gb_.load(std::memory_order_relaxed);
    while (!sum_gb_.compare_exchange_weak(sum, sum + gb,
                                          std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum_gb() const {
    return sum_gb_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean_gb() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum_gb() / static_cast<double>(n);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_gb_.store(0.0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_gb_{0.0};
};

/// Point-in-time copy of one histogram, for snapshots.
struct HistogramSnapshot {
  std::array<std::uint64_t, BandwidthHistogram::kBucketCount> buckets{};
  std::uint64_t count = 0;
  double sum_gb = 0.0;
  double mean_gb = 0.0;
};

/// Point-in-time copy of the whole registry. Maps are sorted by name so
/// exports are deterministic.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name. The returned reference stays valid for the
  /// registry's lifetime; hot paths should resolve once and keep it.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] BandwidthHistogram& histogram(const std::string& name);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Zero every instrument (registrations are kept).
  void reset();

  /// `name value` lines, one per instrument, sorted by name. Histograms
  /// render count/mean plus the non-empty buckets.
  [[nodiscard]] std::string to_text() const;
  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  [[nodiscard]] std::string to_json() const;

 private:
  mutable std::mutex mutex_;
  // Node-based maps: element addresses are stable across inserts.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<BandwidthHistogram>> histograms_;
};

/// Render a snapshot in the registry's text format (exposed separately so
/// saved snapshots can be printed later).
[[nodiscard]] std::string render_text(const MetricsSnapshot& snapshot);
[[nodiscard]] std::string render_json(const MetricsSnapshot& snapshot);

}  // namespace mcm::obs
