// Textual reports: model parameter summaries and Table-II-style error
// tables, rendered with util::AsciiTable.
#pragma once

#include <string>
#include <vector>

#include "model/metrics.hpp"
#include "model/model.hpp"

namespace mcm::model {

/// Both parameter sets of a calibrated model, side by side.
[[nodiscard]] std::string render_parameters(const ContentionModel& model);

/// One platform's error breakdown (per-placement rows + aggregate row).
[[nodiscard]] std::string render_error_report(const ErrorReport& report);

/// The full Table II: one row per platform plus the global average row.
[[nodiscard]] std::string render_error_table(
    const std::vector<ErrorReport>& reports);

}  // namespace mcm::model
