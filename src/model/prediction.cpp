#include "model/prediction.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace mcm::model {

namespace {

/// Largest core count j (1 <= j <= max_cores) with R(j) < T(j), i.e. the
/// last contention-free point — the paper's `i` in eq. (5). Returns 0 when
/// even one core saturates the bus.
[[nodiscard]] std::size_t last_fitting_cores(const ModelParams& m) {
  std::size_t last = 0;
  for (std::size_t j = 1; j <= m.max_cores; ++j) {
    if (required_bandwidth(m, j) < total_bandwidth(m, j)) last = j;
  }
  return last;
}

}  // namespace

double total_bandwidth(const ModelParams& m, std::size_t n) {
  MCM_EXPECTS(n >= 1);
  const double nf = static_cast<double>(n);
  if (n <= m.n_par_max) return m.t_par_max;
  if (n <= m.n_seq_max) {
    return m.t_par_max - m.delta_l * (nf - static_cast<double>(m.n_par_max));
  }
  return m.t_par_max2 - m.delta_r * (nf - static_cast<double>(m.n_seq_max));
}

double required_bandwidth(const ModelParams& m, std::size_t n) {
  MCM_EXPECTS(n >= 1);
  return static_cast<double>(n) * m.b_comp_seq + m.alpha * m.b_comm_seq;
}

bool fits_without_contention(const ModelParams& m, std::size_t n) {
  return required_bandwidth(m, n) < total_bandwidth(m, n);
}

double alpha_of(const ModelParams& m, std::size_t n) {
  MCM_EXPECTS(n >= 1);
  // Eq. (5): interpolate only when the saturated region spans more than one
  // core count before Nmax_seq; otherwise the factor is simply alpha.
  if (m.n_seq_max <= m.n_par_max + 1 || n >= m.n_seq_max) return m.alpha;
  const std::size_t i = last_fitting_cores(m);
  if (i == 0 || n < i) return m.alpha;
  // Communication impact factor at i (still contention-free there):
  // Bcomm_par(i)/Bcomm_seq with Bcomm_par from the first case of eq. (4).
  const double comm_at_i =
      std::min(total_bandwidth(m, i) -
                   static_cast<double>(i) * m.b_comp_seq,
               m.b_comm_seq);
  const double base = std::max(comm_at_i, 0.0) / m.b_comm_seq;
  const double span = static_cast<double>(m.n_seq_max - i);
  MCM_ENSURES(span > 0.0);
  const double factor =
      base - (base - m.alpha) / span * static_cast<double>(n - i);
  // The interpolation can only move from base down to alpha.
  return std::clamp(factor, std::min(m.alpha, base),
                    std::max(m.alpha, base));
}

double comm_parallel(const ModelParams& m, std::size_t n) {
  MCM_EXPECTS(n >= 1);
  if (fits_without_contention(m, n)) {
    // Communications use whatever the cores leave free, bounded by their
    // nominal performance.
    const double leftover =
        total_bandwidth(m, n) - static_cast<double>(n) * m.b_comp_seq;
    return std::clamp(leftover, m.alpha * m.b_comm_seq, m.b_comm_seq);
  }
  return alpha_of(m, n) * m.b_comm_seq;
}

double compute_parallel(const ModelParams& m, std::size_t n) {
  MCM_EXPECTS(n >= 1);
  if (fits_without_contention(m, n)) {
    return static_cast<double>(n) * m.b_comp_seq;  // perfect scaling
  }
  return std::max(total_bandwidth(m, n) - comm_parallel(m, n), 0.0);
}

double compute_alone(const ModelParams& m, std::size_t n) {
  MCM_EXPECTS(n >= 1);
  return std::min({static_cast<double>(n) * m.b_comp_seq,
                   total_bandwidth(m, n), m.t_seq_max});
}

}  // namespace mcm::model
