// Prediction error metrics — the machinery behind the paper's Table II.
//
// Errors are mean absolute percentage errors (MAPE) between measured and
// predicted *parallel* bandwidths, evaluated separately for communications
// and computations, and split between the placements used to instantiate
// the model ("samples") and all the others ("non-samples").
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "benchlib/curves.hpp"
#include "model/placement.hpp"

namespace mcm::model {

/// Error of one placement's predictions.
struct PlacementError {
  topo::NumaId comp_numa;
  topo::NumaId comm_numa;
  bool is_sample = false;  ///< used to instantiate the model?
  double comm_mape = 0.0;
  double comp_mape = 0.0;
};

/// The per-platform row of Table II.
struct ErrorReport {
  std::string platform;
  std::vector<PlacementError> placements;
  double comm_samples = 0.0;
  double comm_non_samples = 0.0;
  double comm_all = 0.0;
  double comp_samples = 0.0;
  double comp_non_samples = 0.0;
  double comp_all = 0.0;
  double average = 0.0;  ///< mean of comm_all and comp_all
};

/// MAPE between a measured curve and its prediction, for one series pair.
/// `measured` and `predicted` must cover the same core counts.
[[nodiscard]] double series_mape(const std::vector<double>& measured,
                                 const std::vector<double>& predicted);

/// Error of one placement (parallel comm + parallel compute series).
[[nodiscard]] PlacementError placement_error(
    const bench::PlacementCurve& measured, const PredictedCurve& predicted,
    bool is_sample);

/// Evaluate a model against a full measured sweep: one PlacementError per
/// measured placement, aggregated Table-II style. The sample placements are
/// (0,0) and (#m,#m).
[[nodiscard]] ErrorReport evaluate(const PlacementModel& model,
                                   const bench::SweepResult& sweep);

/// Generic form of the Table-II evaluation: score any prediction source
/// (`predict(comp, comm)` must return the full PredictedCurve) against a
/// measured sweep. Used by the baseline predictors.
[[nodiscard]] ErrorReport evaluate_with(
    const std::string& label, const bench::SweepResult& sweep,
    const std::function<PredictedCurve(topo::NumaId, topo::NumaId)>&
        predict);

}  // namespace mcm::model
