#include "model/report.hpp"

#include "util/contracts.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace mcm::model {

namespace {

[[nodiscard]] std::string fmt(double value) {
  return format_fixed(value, 2);
}

}  // namespace

std::string render_parameters(const ContentionModel& model) {
  AsciiTable table({"parameter", "local", "remote"});
  table.set_alignments({Align::kLeft, Align::kRight, Align::kRight});
  const ModelParams& l = model.local();
  const ModelParams& r = model.remote();
  table.add_row({"Nmax_par [cores]", std::to_string(l.n_par_max),
                 std::to_string(r.n_par_max)});
  table.add_row({"Tmax_par [GB/s]", fmt(l.t_par_max), fmt(r.t_par_max)});
  table.add_row({"Nmax_seq [cores]", std::to_string(l.n_seq_max),
                 std::to_string(r.n_seq_max)});
  table.add_row({"Tmax_seq [GB/s]", fmt(l.t_seq_max), fmt(r.t_seq_max)});
  table.add_row({"Tmax2_par [GB/s]", fmt(l.t_par_max2), fmt(r.t_par_max2)});
  table.add_row({"delta_l [GB/s/core]", fmt(l.delta_l), fmt(r.delta_l)});
  table.add_row({"delta_r [GB/s/core]", fmt(l.delta_r), fmt(r.delta_r)});
  table.add_row({"Bcomp_seq [GB/s]", fmt(l.b_comp_seq), fmt(r.b_comp_seq)});
  table.add_row({"Bcomm_seq [GB/s]", fmt(l.b_comm_seq), fmt(r.b_comm_seq)});
  table.add_row({"alpha", format_fixed(l.alpha, 3),
                 format_fixed(r.alpha, 3)});
  return table.render();
}

std::string render_error_report(const ErrorReport& report) {
  AsciiTable table({"comp data", "comm data", "sample", "comm MAPE",
                    "comp MAPE"});
  table.set_alignments({Align::kRight, Align::kRight, Align::kLeft,
                        Align::kRight, Align::kRight});
  for (const PlacementError& p : report.placements) {
    table.add_row({std::to_string(p.comp_numa.value()),
                   std::to_string(p.comm_numa.value()),
                   p.is_sample ? "yes" : "no", format_percent(p.comm_mape),
                   format_percent(p.comp_mape)});
  }
  std::string out = "Platform: " + report.platform + "\n" + table.render();
  out += "communications: samples " + format_percent(report.comm_samples) +
         ", non-samples " + format_percent(report.comm_non_samples) +
         ", all " + format_percent(report.comm_all) + "\n";
  out += "computations:   samples " + format_percent(report.comp_samples) +
         ", non-samples " + format_percent(report.comp_non_samples) +
         ", all " + format_percent(report.comp_all) + "\n";
  out += "average:        " + format_percent(report.average) + "\n";
  return out;
}

std::string render_error_table(const std::vector<ErrorReport>& reports) {
  MCM_EXPECTS(!reports.empty());
  AsciiTable table({"Platform", "Comm samples", "Comm non-samples",
                    "Comm all", "Comp samples", "Comp non-samples",
                    "Comp all", "Average"});
  table.set_alignments({Align::kLeft, Align::kRight, Align::kRight,
                        Align::kRight, Align::kRight, Align::kRight,
                        Align::kRight, Align::kRight});
  double comm_s = 0.0, comm_ns = 0.0, comm_all = 0.0;
  double comp_s = 0.0, comp_ns = 0.0, comp_all = 0.0, avg = 0.0;
  for (const ErrorReport& r : reports) {
    table.add_row({r.platform, format_percent(r.comm_samples),
                   format_percent(r.comm_non_samples),
                   format_percent(r.comm_all),
                   format_percent(r.comp_samples),
                   format_percent(r.comp_non_samples),
                   format_percent(r.comp_all), format_percent(r.average)});
    comm_s += r.comm_samples;
    comm_ns += r.comm_non_samples;
    comm_all += r.comm_all;
    comp_s += r.comp_samples;
    comp_ns += r.comp_non_samples;
    comp_all += r.comp_all;
    avg += r.average;
  }
  const double n = static_cast<double>(reports.size());
  table.add_separator();
  table.add_row({"Average", format_percent(comm_s / n),
                 format_percent(comm_ns / n), format_percent(comm_all / n),
                 format_percent(comp_s / n), format_percent(comp_ns / n),
                 format_percent(comp_all / n), format_percent(avg / n)});
  return table.render();
}

}  // namespace mcm::model
