#include "model/overlap.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/units.hpp"

namespace mcm::model {

void IterationSpec::validate() const {
  MCM_EXPECTS(compute_bytes > 0.0);
  MCM_EXPECTS(message_bytes > 0.0);
}

const OverlapPoint& OverlapPlan::at(std::size_t cores) const {
  MCM_EXPECTS(cores >= 1 && cores <= points.size());
  return points[cores - 1];
}

OverlapPlan plan_overlap(const ContentionModel& model,
                         const IterationSpec& spec, topo::NumaId comp,
                         topo::NumaId comm) {
  spec.validate();
  const PredictedCurve curve = model.predict({comp, comm});

  OverlapPlan plan;
  plan.comp_numa = comp;
  plan.comm_numa = comm;
  plan.best_iteration_seconds = std::numeric_limits<double>::infinity();
  for (std::size_t n = 1; n <= model.max_cores(); ++n) {
    OverlapPoint point;
    point.cores = n;
    point.compute_seconds =
        spec.compute_bytes / (curve.compute_parallel_gb[n - 1] * kGiga);
    point.comm_seconds =
        spec.message_bytes / (curve.comm_parallel_gb[n - 1] * kGiga);
    point.iteration_seconds =
        std::max(point.compute_seconds, point.comm_seconds);
    // Contention-blind reference: perfect compute scaling, nominal network.
    const ModelParams& regime = model.placements().is_local(comp)
                                    ? model.local()
                                    : model.remote();
    const double naive_compute =
        spec.compute_bytes /
        (static_cast<double>(n) * regime.b_comp_seq * kGiga);
    const double naive_comm =
        spec.message_bytes / (curve.comm_alone_gb[n - 1] * kGiga);
    point.naive_iteration_seconds = std::max(naive_compute, naive_comm);
    point.contention_slowdown =
        point.iteration_seconds / point.naive_iteration_seconds;
    plan.points.push_back(point);
    if (point.iteration_seconds < plan.best_iteration_seconds) {
      plan.best_iteration_seconds = point.iteration_seconds;
      plan.best_cores = n;
    }
  }
  return plan;
}

OverlapPlan plan_overlap_best_placement(const ContentionModel& model,
                                        const IterationSpec& spec) {
  OverlapPlan best;
  best.best_iteration_seconds = std::numeric_limits<double>::infinity();
  for (std::uint32_t comm = 0; comm < model.numa_count(); ++comm) {
    for (std::uint32_t comp = 0; comp < model.numa_count(); ++comp) {
      OverlapPlan candidate = plan_overlap(
          model, spec, topo::NumaId(comp), topo::NumaId(comm));
      if (candidate.best_iteration_seconds <
          best.best_iteration_seconds - 1e-15) {
        best = std::move(candidate);
      }
    }
  }
  MCM_ENSURES(best.best_cores >= 1);
  return best;
}

}  // namespace mcm::model
