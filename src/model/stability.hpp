// Calibration stability analysis.
//
// The paper instantiates the model from a single benchmark run per
// placement and notes that run-to-run variability is very low. This module
// quantifies that: repeat the calibration sweep under independent
// measurement noise (different seeds) and report the spread of every model
// parameter and of the resulting predictions. A runtime system can use the
// spread to decide whether one calibration run is enough on its machine.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "model/parameters.hpp"
#include "topo/platforms.hpp"

namespace mcm::model {

/// Spread of one scalar across calibration runs.
struct ParameterSpread {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;

  /// Relative spread (stddev / mean); 0 when the mean is 0.
  [[nodiscard]] double relative() const {
    return mean == 0.0 ? 0.0 : stddev / mean;
  }
};

/// Spreads of all calibrated parameters over repeated runs.
struct StabilityReport {
  std::string platform;
  std::size_t runs = 0;
  ParameterSpread n_par_max;
  ParameterSpread t_par_max;
  ParameterSpread n_seq_max;
  ParameterSpread t_seq_max;
  ParameterSpread t_par_max2;
  ParameterSpread delta_l;
  ParameterSpread delta_r;
  ParameterSpread b_comp_seq;
  ParameterSpread b_comm_seq;
  ParameterSpread alpha;
  /// Worst relative deviation between any run's predicted parallel comm
  /// curve and the mean curve — what parameter wobble costs downstream.
  double worst_comm_prediction_deviation = 0.0;
  /// Same for the compute prediction.
  double worst_compute_prediction_deviation = 0.0;
};

/// Run the both-local calibration sweep `runs` times under independent
/// measurement noise and collect the parameter spreads.
/// Preconditions: runs >= 2.
[[nodiscard]] StabilityReport calibration_stability(
    const topo::PlatformSpec& spec, std::size_t runs);

/// Render the report as a table.
[[nodiscard]] std::string render_stability(const StabilityReport& report);

}  // namespace mcm::model
