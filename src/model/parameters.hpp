// Parameters of the memory-contention model (paper §III-A).
//
// One ModelParams instance describes one memory regime (local or remote
// accesses) of one machine, for one computation kernel and message size.
// All bandwidths in GB/s.
#pragma once

#include <cstddef>
#include <string>

namespace mcm::model {

/// The ten calibrated parameters of the paper's model.
struct ModelParams {
  /// Nmax_par / Tmax_par: cores and value of the maximum total bandwidth
  /// with computations and communications in parallel.
  std::size_t n_par_max = 0;
  double t_par_max = 0.0;
  /// Nmax_seq / Tmax_seq: cores and value of the maximum memory bandwidth
  /// with computations alone.
  std::size_t n_seq_max = 0;
  double t_seq_max = 0.0;
  /// Tmax2_par: total parallel bandwidth with Nmax_seq computing cores.
  double t_par_max2 = 0.0;
  /// delta_l / delta_r: total bandwidth lost per additional computing core
  /// left / right of the Nmax_seq inflexion point.
  double delta_l = 0.0;
  double delta_r = 0.0;
  /// Bcomp_seq: memory bandwidth of a single computing core.
  double b_comp_seq = 0.0;
  /// Bcomm_seq: network bandwidth with communications alone.
  double b_comm_seq = 0.0;
  /// alpha: worst-case fraction of Bcomm_seq available to communications.
  double alpha = 1.0;

  /// Number of cores the calibration sweep covered (prediction domain).
  std::size_t max_cores = 0;

  /// Throws ContractViolation if values are inconsistent (negative
  /// bandwidths, alpha outside (0,1], n_par_max > max_cores, ...).
  void validate() const;

  /// Copy with a different nominal network bandwidth — used by the
  /// placement heuristic (paper eq. 6 middle case) on machines whose NIC is
  /// locality-sensitive.
  [[nodiscard]] ModelParams with_comm_nominal(double b_comm) const;
};

/// Human-readable multi-line description of a parameter set.
[[nodiscard]] std::string to_string(const ModelParams& params);

}  // namespace mcm::model
