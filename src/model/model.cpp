#include "model/model.hpp"

#include "model/prediction.hpp"
#include "util/contracts.hpp"

namespace mcm::model {

ContentionModel ContentionModel::from_sweep(
    const bench::SweepResult& sweep, const CalibrationOptions& options) {
  MCM_EXPECTS(sweep.numa_per_socket >= 1);
  const topo::NumaId local_node(0);
  const topo::NumaId remote_node(
      static_cast<std::uint32_t>(sweep.numa_per_socket));
  const ModelParams local =
      calibrate(sweep.curve(local_node, local_node), options);
  const ModelParams remote =
      calibrate(sweep.curve(remote_node, remote_node), options);
  return ContentionModel(
      PlacementModel(local, remote, sweep.numa_per_socket));
}

ContentionModel ContentionModel::from_backend(
    bench::Backend& backend, const bench::SweepOptions& sweep_options,
    const CalibrationOptions& options) {
  const bench::SweepResult sweep =
      bench::run_calibration_sweep(backend, sweep_options);
  return from_sweep(sweep, options);
}

std::size_t ContentionModel::recommended_core_count(
    Placement placement) const {
  const topo::NumaId comp = placement.comp;
  const topo::NumaId comm = placement.comm;
  // The placement determines which parameter set governs contention on the
  // communication side (eq. 6); computations only contend when sharing the
  // node (eq. 7). When they do not share, compute scaling is bounded by the
  // solo saturation point instead.
  if (comp != comm) {
    const ModelParams& m =
        model_.is_local(comp) ? model_.local() : model_.remote();
    std::size_t best = 0;
    for (std::size_t n = 1; n <= m.max_cores; ++n) {
      if (compute_alone(m, n) >=
          static_cast<double>(n) * m.b_comp_seq - 1e-9) {
        best = n;
      }
    }
    return best;
  }
  const ModelParams& m =
      model_.is_local(comp) ? model_.local() : model_.remote();
  std::size_t best = 0;
  for (std::size_t n = 1; n <= m.max_cores; ++n) {
    if (fits_without_contention(m, n)) best = n;
  }
  return best;
}

PlacementAdvice ContentionModel::best_placement(std::size_t cores) const {
  MCM_EXPECTS(cores >= 1 && cores <= max_cores());
  PlacementAdvice best;
  double best_total = -1.0;
  for (std::uint32_t comm = 0; comm < numa_count(); ++comm) {
    for (std::uint32_t comp = 0; comp < numa_count(); ++comp) {
      const topo::NumaId comp_id(comp);
      const topo::NumaId comm_id(comm);
      const double compute =
          model_.compute_parallel(cores, comp_id, comm_id);
      const double communication =
          model_.comm_parallel(cores, comp_id, comm_id);
      const double total = compute + communication;
      if (total > best_total + 1e-9) {
        best_total = total;
        best = PlacementAdvice{comp_id, comm_id, compute, communication};
      }
    }
  }
  return best;
}

}  // namespace mcm::model
