#include "model/stability.hpp"

#include <algorithm>
#include <cmath>

#include "benchlib/backend.hpp"
#include "benchlib/runner.hpp"
#include "model/calibration.hpp"
#include "model/prediction.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace mcm::model {

namespace {

[[nodiscard]] ParameterSpread spread_of(const std::vector<double>& values) {
  ParameterSpread spread;
  spread.mean = mean(values);
  spread.stddev = sample_stddev(values);
  spread.min = argmin(values).value;
  spread.max = argmax(values).value;
  return spread;
}

}  // namespace

StabilityReport calibration_stability(const topo::PlatformSpec& spec,
                                      std::size_t runs) {
  MCM_EXPECTS(runs >= 2);

  std::vector<ModelParams> params;
  params.reserve(runs);
  for (std::size_t run = 0; run < runs; ++run) {
    // Each run sees independent measurement noise: derive a fresh seed.
    topo::PlatformSpec run_spec = spec;
    run_spec.seed = hash_combine(spec.seed, run + 1);
    bench::SimBackend backend(std::move(run_spec));
    const topo::NumaId local(0);
    params.push_back(
        calibrate(bench::run_placement(backend, local, local)));
  }

  const auto collect = [&](auto member) {
    std::vector<double> values;
    values.reserve(runs);
    for (const ModelParams& p : params) {
      values.push_back(static_cast<double>(member(p)));
    }
    return spread_of(values);
  };

  StabilityReport report;
  report.platform = spec.name;
  report.runs = runs;
  report.n_par_max = collect([](const ModelParams& p) { return p.n_par_max; });
  report.t_par_max = collect([](const ModelParams& p) { return p.t_par_max; });
  report.n_seq_max = collect([](const ModelParams& p) { return p.n_seq_max; });
  report.t_seq_max = collect([](const ModelParams& p) { return p.t_seq_max; });
  report.t_par_max2 =
      collect([](const ModelParams& p) { return p.t_par_max2; });
  report.delta_l = collect([](const ModelParams& p) { return p.delta_l; });
  report.delta_r = collect([](const ModelParams& p) { return p.delta_r; });
  report.b_comp_seq =
      collect([](const ModelParams& p) { return p.b_comp_seq; });
  report.b_comm_seq =
      collect([](const ModelParams& p) { return p.b_comm_seq; });
  report.alpha = collect([](const ModelParams& p) { return p.alpha; });

  // Prediction spread: compare each run's parallel curves to the
  // cross-run mean, point by point.
  const std::size_t max_cores = params.front().max_cores;
  for (std::size_t n = 1; n <= max_cores; ++n) {
    std::vector<double> comm_values;
    std::vector<double> compute_values;
    for (const ModelParams& p : params) {
      comm_values.push_back(comm_parallel(p, n));
      compute_values.push_back(compute_parallel(p, n));
    }
    const double comm_mean = mean(comm_values);
    const double compute_mean = mean(compute_values);
    for (std::size_t run = 0; run < runs; ++run) {
      if (comm_mean > 0.0) {
        report.worst_comm_prediction_deviation =
            std::max(report.worst_comm_prediction_deviation,
                     std::abs(comm_values[run] - comm_mean) / comm_mean);
      }
      if (compute_mean > 0.0) {
        report.worst_compute_prediction_deviation = std::max(
            report.worst_compute_prediction_deviation,
            std::abs(compute_values[run] - compute_mean) / compute_mean);
      }
    }
  }
  return report;
}

std::string render_stability(const StabilityReport& report) {
  AsciiTable table({"parameter", "mean", "stddev", "min", "max",
                    "relative"});
  table.set_alignments({Align::kLeft, Align::kRight, Align::kRight,
                        Align::kRight, Align::kRight, Align::kRight});
  const auto row = [&](const char* name, const ParameterSpread& s,
                       int decimals) {
    table.add_row({name, format_fixed(s.mean, decimals),
                   format_fixed(s.stddev, decimals),
                   format_fixed(s.min, decimals),
                   format_fixed(s.max, decimals),
                   format_percent(100.0 * s.relative())});
  };
  row("Nmax_par [cores]", report.n_par_max, 1);
  row("Tmax_par [GB/s]", report.t_par_max, 2);
  row("Nmax_seq [cores]", report.n_seq_max, 1);
  row("Tmax_seq [GB/s]", report.t_seq_max, 2);
  row("Tmax2_par [GB/s]", report.t_par_max2, 2);
  row("delta_l [GB/s/core]", report.delta_l, 3);
  row("delta_r [GB/s/core]", report.delta_r, 3);
  row("Bcomp_seq [GB/s]", report.b_comp_seq, 2);
  row("Bcomm_seq [GB/s]", report.b_comm_seq, 2);
  row("alpha", report.alpha, 3);

  std::string out = "Calibration stability on " + report.platform + " (" +
                    std::to_string(report.runs) + " independent runs)\n" +
                    table.render();
  out += "worst comm prediction deviation from the mean curve: " +
         format_percent(100.0 * report.worst_comm_prediction_deviation) +
         "\n";
  out += "worst compute prediction deviation from the mean curve: " +
         format_percent(100.0 * report.worst_compute_prediction_deviation) +
         "\n";
  return out;
}

}  // namespace mcm::model
