#include "model/calibration.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/stats.hpp"

namespace mcm::model {

ModelParams calibrate(const bench::PlacementCurve& curve,
                      const CalibrationOptions& options) {
  MCM_EXPECTS(curve.points.size() >= 3);
  for (std::size_t i = 0; i < curve.points.size(); ++i) {
    MCM_EXPECTS(curve.points[i].cores == i + 1);  // dense sweep required
  }

  const std::vector<double> comp_alone =
      curve.series(bench::Series::kComputeAlone);
  const std::vector<double> comm_alone =
      curve.series(bench::Series::kCommAlone);
  const std::vector<double> comm_par =
      curve.series(bench::Series::kCommParallel);
  const std::vector<double> total_par = curve.total_parallel();

  ModelParams params;
  params.max_cores = curve.points.size();

  // Bcomp_seq: bandwidth of a single computing core.
  params.b_comp_seq = comp_alone.front();
  MCM_EXPECTS(params.b_comp_seq > 0.0);

  // Bcomm_seq: communications alone do not depend on the core count; the
  // median rejects the odd noisy sample.
  params.b_comm_seq = median(comm_alone);
  MCM_EXPECTS(params.b_comm_seq > 0.0);

  // (Nmax_seq, Tmax_seq): locate on the smoothed series (robust to jitter
  // around a flat maximum), read the magnitude from the raw series. On a
  // flat plateau the *last* attaining index is the right anchor: it keeps
  // T(n) at its plateau value across the whole plateau.
  const auto smooth = [&](const std::vector<double>& v) {
    return moving_average(v, options.smoothing_half_window);
  };
  const auto last_argmax = [](const std::vector<double>& v) {
    const double top = argmax(v).value;
    std::size_t index = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (v[i] >= top - 1e-9) index = i;
    }
    return index;
  };
  const std::size_t seq_peak = last_argmax(smooth(comp_alone));
  params.n_seq_max = seq_peak + 1;
  params.t_seq_max = comp_alone[seq_peak];

  // (Nmax_par, Tmax_par): same on the total parallel bandwidth.
  const std::size_t par_peak = last_argmax(smooth(total_par));
  params.n_par_max = par_peak + 1;
  params.t_par_max = total_par[par_peak];

  // The model's piecewise form assumes Nmax_par <= Nmax_seq (communications
  // make the system saturate earlier, or at the same point). Noise around a
  // flat plateau can reverse the order; restore it.
  if (params.n_par_max > params.n_seq_max) {
    params.n_par_max = params.n_seq_max;
    params.t_par_max = total_par[params.n_par_max - 1];
  }

  // Tmax2_par: total parallel bandwidth at Nmax_seq cores.
  params.t_par_max2 =
      std::min(total_par[params.n_seq_max - 1], params.t_par_max);

  // delta_l: slope between the two anchor points (0 when they coincide).
  if (params.n_seq_max > params.n_par_max) {
    params.delta_l =
        std::max(0.0, (params.t_par_max - params.t_par_max2) /
                          static_cast<double>(params.n_seq_max -
                                              params.n_par_max));
  }

  // delta_r: slope from Nmax_seq to the last measured core count.
  const std::size_t last = params.max_cores;
  if (last > params.n_seq_max) {
    params.delta_r =
        std::max(0.0, (params.t_par_max2 - total_par[last - 1]) /
                          static_cast<double>(last - params.n_seq_max));
  }

  // alpha: worst observed communication degradation.
  double worst = 1.0;
  for (double value : comm_par) {
    worst = std::min(worst, value / params.b_comm_seq);
  }
  params.alpha = std::max(worst, 1e-6);

  params.validate();
  return params;
}

}  // namespace mcm::model
