#include "model/placement.hpp"

#include "model/prediction.hpp"
#include "util/contracts.hpp"

namespace mcm::model {

PlacementModel::PlacementModel(ModelParams local, ModelParams remote,
                               std::size_t numa_per_socket)
    : local_(local), remote_(remote), numa_per_socket_(numa_per_socket) {
  MCM_EXPECTS(numa_per_socket_ >= 1);
  local_.validate();
  remote_.validate();
  MCM_EXPECTS(local_.max_cores == remote_.max_cores);
}

bool PlacementModel::is_local(topo::NumaId numa) const {
  return numa.value() < numa_per_socket_;
}

ModelParams PlacementModel::comm_model(topo::NumaId comp,
                                       topo::NumaId comm) const {
  // Eq. (6), case by case.
  if (!is_local(comp) && comp == comm) {
    // Both data blocks on the same remote node: full remote model.
    return remote_;
  }
  if (!is_local(comm)) {
    // Communications remote, computations elsewhere: contention follows the
    // local model, but the nominal network bandwidth is the remote one
    // (locality-sensitive NICs, paper §III-C).
    return local_.with_comm_nominal(remote_.b_comm_seq);
  }
  return local_;
}

double PlacementModel::comm_parallel(std::size_t n, topo::NumaId comp,
                                     topo::NumaId comm) const {
  return model::comm_parallel(comm_model(comp, comm), n);
}

double PlacementModel::compute_parallel(std::size_t n, topo::NumaId comp,
                                        topo::NumaId comm) const {
  // Eq. (7): computations feel contention only when communications target
  // the same NUMA node; otherwise they run at their solo bandwidth.
  const ModelParams& m = is_local(comp) ? local_ : remote_;
  if (comp == comm) return model::compute_parallel(m, n);
  return model::compute_alone(m, n);
}

double PlacementModel::compute_alone(std::size_t n,
                                     topo::NumaId comp) const {
  return model::compute_alone(is_local(comp) ? local_ : remote_, n);
}

double PlacementModel::comm_alone(topo::NumaId comm) const {
  return (is_local(comm) ? local_ : remote_).b_comm_seq;
}

PredictedCurve PlacementModel::predict(Placement placement) const {
  const topo::NumaId comp = placement.comp;
  const topo::NumaId comm = placement.comm;
  PredictedCurve curve;
  curve.comp_numa = comp;
  curve.comm_numa = comm;
  const std::size_t cores = max_cores();
  curve.compute_alone_gb.reserve(cores);
  curve.comm_alone_gb.reserve(cores);
  curve.compute_parallel_gb.reserve(cores);
  curve.comm_parallel_gb.reserve(cores);
  for (std::size_t n = 1; n <= cores; ++n) {
    curve.compute_alone_gb.push_back(compute_alone(n, comp));
    curve.comm_alone_gb.push_back(comm_alone(comm));
    curve.compute_parallel_gb.push_back(compute_parallel(n, comp, comm));
    curve.comm_parallel_gb.push_back(comm_parallel(n, comp, comm));
  }
  return curve;
}

}  // namespace mcm::model
