// NUMA placement combination (paper §III-C, eqs. 6 and 7).
//
// Two calibrated parameter sets — Mlocal (both data blocks on the first
// NUMA node of the first socket) and Mremote (both on the first node of the
// second socket) — are combined to predict every (mcomp, mcomm) placement.
#pragma once

#include <cstddef>
#include <vector>

#include "model/parameters.hpp"
#include "topo/ids.hpp"

namespace mcm::model {

/// A data placement: which NUMA node holds the computation data blocks and
/// which holds the communication buffers — the (mcomp, mcomm) pair every
/// prediction of the paper is parameterized by. The struct form is the
/// only API (positional NumaId pairs proved easy to swap silently at call
/// sites; the deprecated two-NumaId overloads are gone).
struct Placement {
  topo::NumaId comp;
  topo::NumaId comm;

  friend constexpr bool operator==(Placement, Placement) = default;
};

/// The predicted counterpart of a measured bench::PlacementCurve.
struct PredictedCurve {
  topo::NumaId comp_numa;
  topo::NumaId comm_numa;
  /// Indexed by cores-1, like PlacementCurve::series.
  std::vector<double> compute_alone_gb;
  std::vector<double> comm_alone_gb;
  std::vector<double> compute_parallel_gb;
  std::vector<double> comm_parallel_gb;
};

/// The combined local+remote model of one machine.
class PlacementModel {
 public:
  /// `numa_per_socket` is the paper's #m. `remote_comm_nominal` is
  /// Bcomm_seq(Mremote) — stored inside `remote`, listed here only to make
  /// the dependency explicit in the constructor contract.
  PlacementModel(ModelParams local, ModelParams remote,
                 std::size_t numa_per_socket);

  [[nodiscard]] const ModelParams& local() const { return local_; }
  [[nodiscard]] const ModelParams& remote() const { return remote_; }
  [[nodiscard]] std::size_t numa_per_socket() const {
    return numa_per_socket_;
  }
  [[nodiscard]] std::size_t max_cores() const { return local_.max_cores; }

  /// True when the NUMA node is on the computing cores' socket (socket 0).
  [[nodiscard]] bool is_local(topo::NumaId numa) const;

  /// Eq. (6): predicted network bandwidth with n computing cores.
  [[nodiscard]] double comm_parallel(std::size_t n, topo::NumaId comp,
                                     topo::NumaId comm) const;

  /// Eq. (7): predicted aggregate compute bandwidth with n cores.
  [[nodiscard]] double compute_parallel(std::size_t n, topo::NumaId comp,
                                        topo::NumaId comm) const;

  /// Predicted compute bandwidth running alone (eq. 8 with the model
  /// matching the computation data locality).
  [[nodiscard]] double compute_alone(std::size_t n, topo::NumaId comp) const;

  /// Predicted network bandwidth running alone (Bcomm_seq of the model
  /// matching the communication data locality).
  [[nodiscard]] double comm_alone(topo::NumaId comm) const;

  /// All four series for one placement, for cores 1..max_cores.
  [[nodiscard]] PredictedCurve predict(Placement placement) const;

 private:
  /// The parameter set eq. (6) selects for communications.
  [[nodiscard]] ModelParams comm_model(topo::NumaId comp,
                                       topo::NumaId comm) const;

  ModelParams local_;
  ModelParams remote_;
  std::size_t numa_per_socket_;
};

}  // namespace mcm::model
