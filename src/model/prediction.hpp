// The prediction equations of the paper (§III-B), implemented verbatim.
//
// Given a calibrated ModelParams instance M and a number of computing
// cores n, these functions evaluate:
//   eq. (1)  total_bandwidth       T(n)
//   eq. (2)  required_bandwidth    R(n) = n*Bcomp_seq + alpha*Bcomm_seq
//   eq. (3)  compute_parallel      Bcomp_par(n)
//   eq. (4)  comm_parallel         Bcomm_par(n)
//   eq. (5)  alpha_of              alpha(n), the interpolated degradation
//   eq. (8)  compute_alone         Bcomp_seq(n)
// All bandwidths in GB/s.
#pragma once

#include <cstddef>

#include "model/parameters.hpp"

namespace mcm::model {

/// Eq. (1): piecewise-linear total bandwidth the memory system can carry
/// with n computing cores and communications in parallel.
[[nodiscard]] double total_bandwidth(const ModelParams& m, std::size_t n);

/// Eq. (2): bandwidth required to satisfy the computing cores plus the
/// minimum guaranteed to communications.
[[nodiscard]] double required_bandwidth(const ModelParams& m, std::size_t n);

/// True when computations and communications fit the bus without
/// contention at n cores (the R(n) < T(n) test of eqs. (3) and (4)).
[[nodiscard]] bool fits_without_contention(const ModelParams& m,
                                           std::size_t n);

/// Eq. (5): degradation factor applied to communications once the bus is
/// saturated, linearly interpolated between the last contention-free core
/// count and Nmax_seq.
[[nodiscard]] double alpha_of(const ModelParams& m, std::size_t n);

/// Eq. (4): network bandwidth with n cores computing in parallel.
[[nodiscard]] double comm_parallel(const ModelParams& m, std::size_t n);

/// Eq. (3): aggregate memory bandwidth of n computing cores with
/// communications in parallel.
[[nodiscard]] double compute_parallel(const ModelParams& m, std::size_t n);

/// Eq. (8): aggregate memory bandwidth of n computing cores running alone.
[[nodiscard]] double compute_alone(const ModelParams& m, std::size_t n);

}  // namespace mcm::model
