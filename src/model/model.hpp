// ContentionModel: the library's main entry point.
//
// Typical use, mirroring the paper's workflow:
//
//   bench::SimBackend backend(topo::make_henri());
//   auto model = model::ContentionModel::from_backend(backend);
//   auto curve = model.predict({topo::NumaId(0), topo::NumaId(1)});
//   std::size_t n = model.recommended_core_count(
//       {topo::NumaId(0), topo::NumaId(0)});
//
// Calibration runs the benchmark sweep on the two placements of §III
// (both-local and both-remote), extracts the two parameter sets, and the
// resulting model predicts computation and communication bandwidth for any
// placement and any number of computing cores.
#pragma once

#include <cstddef>

#include "benchlib/backend.hpp"
#include "benchlib/runner.hpp"
#include "model/calibration.hpp"
#include "model/metrics.hpp"
#include "model/placement.hpp"

namespace mcm::model {

/// A data placement recommendation from the advisor API.
struct PlacementAdvice {
  topo::NumaId comp_numa;
  topo::NumaId comm_numa;
  double compute_gb = 0.0;
  double comm_gb = 0.0;
};

class ContentionModel {
 public:
  /// Build from an already-measured calibration sweep. The sweep must
  /// contain the two calibration placements (0,0) and (#m,#m).
  [[nodiscard]] static ContentionModel from_sweep(
      const bench::SweepResult& sweep,
      const CalibrationOptions& options = {});

  /// Run the two calibration sweeps on `backend` and build the model.
  [[nodiscard]] static ContentionModel from_backend(
      bench::Backend& backend, const bench::SweepOptions& sweep_options = {},
      const CalibrationOptions& options = {});

  [[nodiscard]] const PlacementModel& placements() const { return model_; }
  [[nodiscard]] const ModelParams& local() const { return model_.local(); }
  [[nodiscard]] const ModelParams& remote() const { return model_.remote(); }
  [[nodiscard]] std::size_t max_cores() const { return model_.max_cores(); }
  [[nodiscard]] std::size_t numa_count() const {
    return 2 * model_.numa_per_socket();
  }

  /// Predict all four bandwidth series for a placement.
  [[nodiscard]] PredictedCurve predict(Placement placement) const {
    return model_.predict(placement);
  }

  /// Largest core count for which the model predicts no memory contention
  /// for this placement (R(n) < T(n)); 0 if even one core contends.
  /// This is the "how many cores should compute" hint of the paper's
  /// conclusion.
  [[nodiscard]] std::size_t recommended_core_count(
      Placement placement) const;

  /// Placement maximizing predicted total bandwidth (compute + comm) for a
  /// given number of computing cores. Ties break towards lower node ids.
  [[nodiscard]] PlacementAdvice best_placement(std::size_t cores) const;

  /// Evaluate the model against a measured sweep (Table II row).
  [[nodiscard]] ErrorReport evaluate_against(
      const bench::SweepResult& sweep) const {
    return model::evaluate(model_, sweep);
  }

 private:
  explicit ContentionModel(PlacementModel model) : model_(std::move(model)) {}

  PlacementModel model_;
};

}  // namespace mcm::model
