// Overlap planning: the runtime-system use case of the paper's conclusion
// ("runtime systems could better know on which NUMA node store data and
// how many computing cores should be used to avoid memory contention").
//
// An application iteration streams `compute_bytes` through the memory
// system while receiving `message_bytes` from the network, both
// overlapped. Under contention, iteration time is
// max(compute_time, comm_time) at the *contended* bandwidths the model
// predicts for the chosen core count and data placement.
#pragma once

#include <cstdint>
#include <vector>

#include "model/model.hpp"

namespace mcm::model {

/// Per-iteration resource needs of the application.
struct IterationSpec {
  /// Bytes the computation streams through the memory system.
  double compute_bytes = 0.0;
  /// Bytes received from the network.
  double message_bytes = 0.0;

  void validate() const;
};

/// Predicted timing of one iteration at a given core count.
struct OverlapPoint {
  std::size_t cores = 0;
  double compute_seconds = 0.0;
  double comm_seconds = 0.0;
  /// max(compute, comm): both run overlapped.
  double iteration_seconds = 0.0;
  /// What a contention-blind planner would predict: perfect compute
  /// scaling and nominal network bandwidth.
  double naive_iteration_seconds = 0.0;
  /// iteration / naive iteration (>= 1 in practice): how much memory
  /// contention inflates the step beyond the naive overlap estimate.
  double contention_slowdown = 1.0;
};

/// The full plan: one point per core count plus the optimum.
struct OverlapPlan {
  topo::NumaId comp_numa;
  topo::NumaId comm_numa;
  std::vector<OverlapPoint> points;  ///< indexed by cores-1
  std::size_t best_cores = 0;
  double best_iteration_seconds = 0.0;

  [[nodiscard]] const OverlapPoint& at(std::size_t cores) const;
};

/// Evaluate one iteration spec over all core counts for a placement.
[[nodiscard]] OverlapPlan plan_overlap(const ContentionModel& model,
                                       const IterationSpec& spec,
                                       topo::NumaId comp, topo::NumaId comm);

/// Best plan over *all* placements (ties towards lower node ids).
[[nodiscard]] OverlapPlan plan_overlap_best_placement(
    const ContentionModel& model, const IterationSpec& spec);

}  // namespace mcm::model
