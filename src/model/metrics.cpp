#include "model/metrics.hpp"

#include "util/contracts.hpp"
#include "util/stats.hpp"

namespace mcm::model {

double series_mape(const std::vector<double>& measured,
                   const std::vector<double>& predicted) {
  return mape_percent(measured, predicted);
}

PlacementError placement_error(const bench::PlacementCurve& measured,
                               const PredictedCurve& predicted,
                               bool is_sample) {
  MCM_EXPECTS(measured.comp_numa == predicted.comp_numa);
  MCM_EXPECTS(measured.comm_numa == predicted.comm_numa);
  MCM_EXPECTS(measured.points.size() == predicted.comm_parallel_gb.size());

  PlacementError error;
  error.comp_numa = measured.comp_numa;
  error.comm_numa = measured.comm_numa;
  error.is_sample = is_sample;
  error.comm_mape = series_mape(measured.series(bench::Series::kCommParallel),
                                predicted.comm_parallel_gb);
  error.comp_mape =
      series_mape(measured.series(bench::Series::kComputeParallel),
                  predicted.compute_parallel_gb);
  return error;
}

ErrorReport evaluate_with(
    const std::string& label, const bench::SweepResult& sweep,
    const std::function<PredictedCurve(topo::NumaId, topo::NumaId)>&
        predict) {
  MCM_EXPECTS(!sweep.curves.empty());
  const topo::NumaId local_sample(0);
  const topo::NumaId remote_sample(
      static_cast<std::uint32_t>(sweep.numa_per_socket));

  ErrorReport report;
  report.platform = label;

  std::vector<double> comm_s, comm_ns, comp_s, comp_ns;
  for (const bench::PlacementCurve& measured : sweep.curves) {
    const bool is_sample =
        (measured.comp_numa == measured.comm_numa) &&
        (measured.comp_numa == local_sample ||
         measured.comp_numa == remote_sample);
    const PredictedCurve predicted =
        predict(measured.comp_numa, measured.comm_numa);
    const PlacementError error =
        placement_error(measured, predicted, is_sample);
    report.placements.push_back(error);
    (is_sample ? comm_s : comm_ns).push_back(error.comm_mape);
    (is_sample ? comp_s : comp_ns).push_back(error.comp_mape);
  }

  std::vector<double> comm_all = comm_s;
  comm_all.insert(comm_all.end(), comm_ns.begin(), comm_ns.end());
  std::vector<double> comp_all = comp_s;
  comp_all.insert(comp_all.end(), comp_ns.begin(), comp_ns.end());

  report.comm_samples = comm_s.empty() ? 0.0 : mean(comm_s);
  report.comm_non_samples = comm_ns.empty() ? 0.0 : mean(comm_ns);
  report.comm_all = mean(comm_all);
  report.comp_samples = comp_s.empty() ? 0.0 : mean(comp_s);
  report.comp_non_samples = comp_ns.empty() ? 0.0 : mean(comp_ns);
  report.comp_all = mean(comp_all);
  report.average = 0.5 * (report.comm_all + report.comp_all);
  return report;
}

ErrorReport evaluate(const PlacementModel& model,
                     const bench::SweepResult& sweep) {
  MCM_EXPECTS(sweep.numa_per_socket == model.numa_per_socket());
  return evaluate_with(sweep.platform, sweep,
                       [&model](topo::NumaId comp, topo::NumaId comm) {
                         return model.predict({comp, comm});
                       });
}

}  // namespace mcm::model
