// Model calibration (paper §IV-A-2): extract the ten ModelParams values
// from one measured placement curve. The procedure "mostly looks for minima
// and maxima" of the bandwidth series, exactly as the paper describes.
#pragma once

#include "benchlib/curves.hpp"
#include "model/parameters.hpp"

namespace mcm::model {

/// Calibration knobs. The defaults work for the noise levels of the
/// simulated platforms; raise `smoothing_half_window` for noisier data.
struct CalibrationOptions {
  /// Half-window of the moving average applied before locating extrema
  /// (raw values are still used for the parameter magnitudes).
  std::size_t smoothing_half_window = 1;
};

/// Extract model parameters from a placement curve (normally one of the two
/// calibration placements: both-local or both-remote).
/// Preconditions: the curve has at least 3 points and dense core counts.
[[nodiscard]] ModelParams calibrate(const bench::PlacementCurve& curve,
                                    const CalibrationOptions& options = {});

}  // namespace mcm::model
