#include "model/parameters.hpp"

#include <sstream>

#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace mcm::model {

void ModelParams::validate() const {
  MCM_EXPECTS(max_cores >= 1);
  MCM_EXPECTS(n_par_max >= 1 && n_par_max <= max_cores);
  MCM_EXPECTS(n_seq_max >= 1 && n_seq_max <= max_cores);
  MCM_EXPECTS(t_par_max > 0.0);
  MCM_EXPECTS(t_seq_max > 0.0);
  MCM_EXPECTS(t_par_max2 > 0.0);
  MCM_EXPECTS(t_par_max2 <= t_par_max + 1e-9);
  MCM_EXPECTS(delta_l >= 0.0);
  MCM_EXPECTS(delta_r >= 0.0);
  MCM_EXPECTS(b_comp_seq > 0.0);
  MCM_EXPECTS(b_comm_seq > 0.0);
  MCM_EXPECTS(alpha > 0.0 && alpha <= 1.0 + 1e-9);
}

ModelParams ModelParams::with_comm_nominal(double b_comm) const {
  MCM_EXPECTS(b_comm > 0.0);
  ModelParams copy = *this;
  copy.b_comm_seq = b_comm;
  return copy;
}

std::string to_string(const ModelParams& params) {
  std::ostringstream out;
  out << "Nmax_par   = " << params.n_par_max << "  (Tmax_par = "
      << format_fixed(params.t_par_max, 2) << " GB/s)\n"
      << "Nmax_seq   = " << params.n_seq_max << "  (Tmax_seq = "
      << format_fixed(params.t_seq_max, 2) << " GB/s)\n"
      << "Tmax2_par  = " << format_fixed(params.t_par_max2, 2) << " GB/s\n"
      << "delta_l    = " << format_fixed(params.delta_l, 3) << " GB/s/core\n"
      << "delta_r    = " << format_fixed(params.delta_r, 3) << " GB/s/core\n"
      << "Bcomp_seq  = " << format_fixed(params.b_comp_seq, 2) << " GB/s\n"
      << "Bcomm_seq  = " << format_fixed(params.b_comm_seq, 2) << " GB/s\n"
      << "alpha      = " << format_fixed(params.alpha, 3) << "\n";
  return out.str();
}

}  // namespace mcm::model
