// mcmd — the persistent prediction daemon (docs/service.md).
//
// Thin shell over the same service front end as `mcmtool serve`: parse
// the service knobs, then either answer length-prefixed frames on
// stdin/stdout (--stdio, used by the CI replay) or serve a Unix-domain
// socket until SIGINT/SIGTERM.
#include <cstdio>
#include <string>

#include "cli.hpp"
#include "serve_common.hpp"

int main(int argc, char** argv) {
  using namespace mcm;
  cli::Parser parser("mcmd", tools::service_options());
  std::string error;
  if (!parser.parse(argc, argv, 1, &error)) {
    std::fprintf(stderr, "error: %s\n%s", error.c_str(),
                 parser.usage().c_str());
    return 2;
  }
  if (!parser.positionals().empty()) {
    std::fprintf(stderr, "error: mcmd takes no positional arguments\n%s",
                 parser.usage().c_str());
    return 2;
  }
  return tools::run_service(parser, "mcmd");
}
