// native_sweep — run the benchmark sweep on THIS machine (real kernels on a
// pinned thread pool, loopback messages) and emit the sweep CSV that
// `mcmtool calibrate-csv` / `errors-csv` consume.
//
// This closes the real-hardware loop: measure here, model anywhere. On a
// single-NUMA machine (laptops, containers) all placements collapse to
// node 0, which is enough to inspect curves but not to calibrate the
// two-regime model; on a multi-socket machine raise --numa accordingly and
// add memory binding in runtime::NativeBackend.
//
//   native_sweep [--cores N] [--working-set-mib M] [--message-mib M]
//                [--rounds R] [--pin] [--csv FILE]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "benchlib/runner.hpp"
#include "benchlib/sweep_io.hpp"
#include "runtime/affinity.hpp"
#include "runtime/kernels.hpp"
#include "runtime/native_backend.hpp"

namespace {

using namespace mcm;

std::string flag_value(int argc, char** argv, const char* flag,
                       const std::string& fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  runtime::NativeConfig config;
  config.compute_cores = std::stoul(flag_value(argc, argv, "--cores", "0"));
  config.working_set_bytes =
      std::stoull(flag_value(argc, argv, "--working-set-mib", "16")) * kMiB;
  config.message_bytes =
      std::stoull(flag_value(argc, argv, "--message-mib", "16")) * kMiB;
  config.comm_rounds = std::stoi(flag_value(argc, argv, "--rounds", "4"));
  config.pin_threads = has_flag(argc, argv, "--pin");

  std::printf("# native sweep on this machine: %zu logical CPUs, "
              "streaming stores %s\n",
              runtime::hardware_concurrency(),
              runtime::has_streaming_stores() ? "available" : "unavailable");

  runtime::NativeBackend backend(config);
  std::printf("# computing cores: %zu, working set %llu MiB/core, "
              "messages %llu MiB x %d\n",
              backend.max_computing_cores(),
              static_cast<unsigned long long>(config.working_set_bytes /
                                              kMiB),
              static_cast<unsigned long long>(config.message_bytes / kMiB),
              config.comm_rounds);

  const bench::SweepResult sweep = bench::run_all_placements(backend);
  const std::string csv = bench::sweep_to_csv(sweep);
  std::fputs(csv.c_str(), stdout);

  const std::string csv_path = flag_value(argc, argv, "--csv", "");
  if (!csv_path.empty()) {
    std::ofstream out(csv_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", csv_path.c_str());
      return 1;
    }
    out << csv;
    std::printf("# written to %s\n", csv_path.c_str());
  }
  return 0;
}
