#include "cli.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace mcm::cli {

Parser::Parser(std::string head, std::vector<Option> options)
    : head_(std::move(head)), options_(std::move(options)) {
  for (const Option& option : options_) {
    MCM_EXPECTS(option.name.rfind("--", 0) == 0);
  }
}

const Option* Parser::find(const std::string& name) const {
  for (const Option& option : options_) {
    if (option.name == name) return &option;
  }
  return nullptr;
}

bool Parser::parse(int argc, char** argv, int begin, std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  bool options_done = false;
  for (int i = begin; i < argc; ++i) {
    const std::string arg = argv[i];
    if (options_done || arg.rfind("--", 0) != 0 || arg == "-") {
      positionals_.push_back(arg);
      continue;
    }
    if (arg == "--") {
      options_done = true;
      continue;
    }
    std::string name = arg;
    std::optional<std::string> inline_value;
    if (const std::size_t eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
    }
    const Option* option = find(name);
    if (option == nullptr) {
      return fail("unknown option '" + name + "'");
    }
    if (option->value_name.empty()) {
      if (inline_value) {
        return fail("option '" + name + "' takes no value");
      }
      values_.emplace_back(name, "true");
      continue;
    }
    if (inline_value) {
      values_.emplace_back(name, std::move(*inline_value));
      continue;
    }
    if (i + 1 >= argc) {
      return fail("option '" + name + "' requires a value");
    }
    values_.emplace_back(name, argv[++i]);
  }
  return true;
}

const std::string& Parser::value(const std::string& name) const {
  // Last occurrence wins, like most Unix tools.
  const auto it = std::find_if(
      values_.rbegin(), values_.rend(),
      [&](const auto& entry) { return entry.first == name; });
  if (it != values_.rend()) return it->second;
  const Option* option = find(name);
  MCM_EXPECTS(option != nullptr);
  return option->default_value;
}

bool Parser::is_set(const std::string& name) const {
  MCM_EXPECTS(find(name) != nullptr);
  return std::any_of(values_.begin(), values_.end(), [&](const auto& entry) {
    return entry.first == name;
  });
}

std::string Parser::usage() const {
  std::string text = "usage: " + head_;
  if (!options_.empty()) text += " [options]";
  text += '\n';
  std::size_t width = 0;
  const auto spelling = [](const Option& option) {
    return option.value_name.empty()
               ? option.name
               : option.name + " " + option.value_name;
  };
  for (const Option& option : options_) {
    width = std::max(width, spelling(option).size());
  }
  for (const Option& option : options_) {
    text += "  " + pad_right(spelling(option), width) + "  " + option.help;
    if (!option.default_value.empty()) {
      text += " [" + option.default_value + "]";
    }
    text += '\n';
  }
  return text;
}

std::optional<std::size_t> Parser::size_value(
    const std::string& name) const {
  const std::optional<std::uint64_t> parsed = parse_u64(value(name));
  if (!parsed) return std::nullopt;
  return static_cast<std::size_t>(*parsed);
}

std::optional<double> Parser::double_value(const std::string& name) const {
  return parse_double(value(name));
}

}  // namespace mcm::cli
