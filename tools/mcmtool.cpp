// mcmtool — command-line front end of the memory-contention library.
//
// Subcommands are declared in one table (see subcommands() at the
// bottom): each entry owns a cli::Parser option table, so every flag
// accepts both `--flag value` and `--flag=value`, unknown flags are
// hard errors, and the usage text below is generated from the same
// data the parser runs on.
//
// <platform|file> is a preset name (henri, dahu, ...) or a path to a
// platform description file (see topo/topology_io.hpp for the format).
#include <cstdio>
#include <fstream>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "benchlib/backend.hpp"
#include "benchlib/report.hpp"
#include "benchlib/runner.hpp"
#include "benchlib/sweep_io.hpp"
#include "cli.hpp"
#include "eval/tables.hpp"
#include "model/model.hpp"
#include "model/overlap.hpp"
#include "model/report.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "pipeline/result_io.hpp"
#include "pipeline/runner.hpp"
#include "serve_common.hpp"
#include "sim/engine.hpp"
#include "svc/client.hpp"
#include "svc/protocol.hpp"
#include "topo/platforms.hpp"
#include "topo/render.hpp"
#include "topo/topology_io.hpp"
#include "util/contracts.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace mcm;

/// One entry of the command table: the option schema and the handler,
/// plus what the generated global usage prints.
struct Subcommand {
  std::string name;
  std::string args;  ///< positional summary, e.g. "<platform|file>"
  std::string help;
  std::vector<cli::Option> options;
  std::function<int(const cli::Parser&)> run;
};

const std::vector<Subcommand>& subcommands();

int usage() {
  std::fputs("usage: mcmtool <command> [args] [options]\n", stderr);
  std::size_t width = 0;
  const auto spelling = [](const Subcommand& command) {
    return command.args.empty() ? command.name
                                : command.name + " " + command.args;
  };
  for (const Subcommand& command : subcommands()) {
    width = std::max(width, spelling(command).size());
  }
  for (const Subcommand& command : subcommands()) {
    std::fprintf(stderr, "  %s  %s\n",
                 pad_right(spelling(command), width).c_str(),
                 command.help.c_str());
  }
  return 2;
}

/// Resolve a preset name (Table-I presets plus the tetra extension) or a
/// description-file path.
std::optional<topo::PlatformSpec> load_platform(const std::string& name) {
  try {
    return topo::make_platform(name);
  } catch (const ContractViolation&) {
    // Not a preset: fall through to file loading.
  }
  std::ifstream file(name);
  if (!file) {
    std::fprintf(stderr,
                 "error: '%s' is neither a preset platform nor a readable "
                 "file\n",
                 name.c_str());
    return std::nullopt;
  }
  std::ostringstream text;
  text << file.rdbuf();
  std::string error;
  auto spec = topo::parse_platform(text.str(), &error);
  if (!spec) {
    std::fprintf(stderr, "error: cannot parse '%s': %s\n", name.c_str(),
                 error.c_str());
  }
  return spec;
}

/// The leading <platform|file> positional, loaded.
std::optional<topo::PlatformSpec> platform_arg(const cli::Parser& parser) {
  if (parser.positionals().empty()) {
    std::fprintf(stderr, "error: missing <platform|file> argument\n");
    return std::nullopt;
  }
  return load_platform(parser.positionals().front());
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "error: cannot read '%s'\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

/// One-shot scenario for a CLI platform (preset or file-loaded). The
/// loaded PlatformSpec rides along as an override so a file platform that
/// shadows a preset name never re-resolves to the preset; the "cli"
/// variant keeps the spec cacheable within the process.
pipeline::ScenarioSpec make_scenario(const topo::PlatformSpec& platform,
                                     pipeline::PlacementSet placements) {
  pipeline::ScenarioSpec spec;
  spec.name = platform.name;
  spec.platform = platform.name;
  spec.platform_override = platform;
  spec.variant = "cli";
  spec.placements = placements;
  return spec;
}

/// Run the calibration-only scenario and return the advisor model.
model::ContentionModel calibrated_model(const topo::PlatformSpec& spec) {
  pipeline::Runner runner;
  return runner.run(make_scenario(spec, pipeline::PlacementSet::kCalibration))
      .contention_model();
}

int cmd_platforms(const cli::Parser&) {
  AsciiTable table({"name", "processor", "network", "numa nodes"});
  for (const std::string& name : topo::platform_names()) {
    const topo::PlatformSpec spec = topo::make_platform(name);
    table.add_row({spec.name, spec.processor, spec.network,
                   std::to_string(spec.machine.numa_count())});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

int cmd_describe(const cli::Parser& parser) {
  const auto spec = platform_arg(parser);
  if (!spec) return 1;
  std::fputs(topo::render_platform(*spec).c_str(), stdout);
  return 0;
}

int cmd_calibrate(const cli::Parser& parser) {
  const auto spec = platform_arg(parser);
  if (!spec) return 1;
  std::printf("%s",
              model::render_parameters(calibrated_model(*spec)).c_str());
  return 0;
}

int cmd_sweep(const cli::Parser& parser) {
  const auto spec = platform_arg(parser);
  if (!spec) return 1;
  const std::string placements = parser.value("--placements");
  if (placements != "all" && placements != "calibration") {
    std::fprintf(stderr,
                 "error: --placements must be 'all' or 'calibration'\n");
    return 2;
  }
  const std::optional<std::size_t> repetitions = parser.size_value("--reps");
  if (!repetitions || *repetitions < 1) {
    std::fprintf(stderr, "error: --reps must be a positive integer\n");
    return 2;
  }
  pipeline::ScenarioSpec scenario = make_scenario(
      *spec, placements == "calibration"
                 ? pipeline::PlacementSet::kCalibration
                 : pipeline::PlacementSet::kAll);
  scenario.repetitions = *repetitions;
  pipeline::Runner runner;
  const bench::SweepResult sweep = runner.run(scenario).sweep;
  const std::string csv = bench::sweep_to_csv(sweep);
  std::fputs(csv.c_str(), stdout);
  const std::string csv_path = parser.value("--csv");
  if (!csv_path.empty()) {
    std::ofstream out(csv_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", csv_path.c_str());
      return 1;
    }
    out << csv;
    std::printf("# written to %s (feed back with calibrate-csv / "
                "errors-csv)\n",
                csv_path.c_str());
  }
  return 0;
}

int cmd_predict(const cli::Parser& parser) {
  const auto spec = platform_arg(parser);
  if (!spec) return 1;
  if (!parser.is_set("--comp") || !parser.is_set("--comm")) {
    std::fprintf(stderr, "error: predict requires --comp N and --comm M\n");
    return 2;
  }
  const std::optional<std::size_t> comp_arg = parser.size_value("--comp");
  const std::optional<std::size_t> comm_arg = parser.size_value("--comm");
  if (!comp_arg || !comm_arg) {
    std::fprintf(stderr, "error: --comp / --comm must be NUMA node ids\n");
    return 2;
  }
  const auto model = calibrated_model(*spec);
  const topo::NumaId comp(static_cast<std::uint32_t>(*comp_arg));
  const topo::NumaId comm(static_cast<std::uint32_t>(*comm_arg));
  if (comp.value() >= model.numa_count() ||
      comm.value() >= model.numa_count()) {
    std::fprintf(stderr, "error: NUMA node out of range (0..%zu)\n",
                 model.numa_count() - 1);
    return 2;
  }
  const model::PredictedCurve curve = model.predict({comp, comm});

  if (parser.is_set("--cores")) {
    const std::optional<std::size_t> cores = parser.size_value("--cores");
    if (!cores || *cores < 1 || *cores > model.max_cores()) {
      std::fprintf(stderr, "error: --cores must be in 1..%zu\n",
                   model.max_cores());
      return 2;
    }
    std::printf("%zu cores, comp data on node %u, comm data on node %u: "
                "compute %.2f GB/s, network %.2f GB/s\n",
                *cores, comp.value(), comm.value(),
                curve.compute_parallel_gb[*cores - 1],
                curve.comm_parallel_gb[*cores - 1]);
    return 0;
  }
  AsciiTable table({"cores", "compute GB/s", "network GB/s"});
  table.set_alignments({Align::kRight, Align::kRight, Align::kRight});
  for (std::size_t n = 1; n <= model.max_cores(); ++n) {
    table.add_row({std::to_string(n),
                   format_fixed(curve.compute_parallel_gb[n - 1], 2),
                   format_fixed(curve.comm_parallel_gb[n - 1], 2)});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

int cmd_advise(const cli::Parser& parser) {
  const auto spec = platform_arg(parser);
  if (!spec) return 1;
  const auto model = calibrated_model(*spec);
  std::size_t cores = model.max_cores();
  if (parser.is_set("--cores")) {
    const std::optional<std::size_t> parsed = parser.size_value("--cores");
    if (!parsed || *parsed < 1 || *parsed > model.max_cores()) {
      std::fprintf(stderr, "error: --cores must be in 1..%zu\n",
                   model.max_cores());
      return 2;
    }
    cores = *parsed;
  }
  const model::PlacementAdvice advice = model.best_placement(cores);
  std::printf("with %zu computing cores: place computation data on node "
              "%u and communication data on node %u\n",
              cores, advice.comp_numa.value(), advice.comm_numa.value());
  std::printf("predicted bandwidths: compute %.2f GB/s, network %.2f "
              "GB/s\n",
              advice.compute_gb, advice.comm_gb);
  std::printf("contention-free core budget for that placement: %zu\n",
              model.recommended_core_count(
                  {advice.comp_numa, advice.comm_numa}));
  return 0;
}

int cmd_errors(const cli::Parser& parser) {
  const auto spec = platform_arg(parser);
  if (!spec) return 1;
  pipeline::Runner runner;
  const pipeline::ScenarioResult result =
      runner.run(make_scenario(*spec, pipeline::PlacementSet::kAll));
  std::printf("%s", model::render_error_report(result.errors).c_str());
  return 0;
}

std::optional<bench::SweepResult> load_sweep_csv(const std::string& path) {
  const std::optional<std::string> text = read_file(path);
  if (!text) return std::nullopt;
  std::string error;
  auto sweep = bench::sweep_from_csv(*text, &error);
  if (!sweep) {
    std::fprintf(stderr, "error: cannot parse '%s': %s\n", path.c_str(),
                 error.c_str());
  }
  return sweep;
}

int cmd_calibrate_csv(const cli::Parser& parser) {
  if (parser.positionals().empty()) {
    std::fprintf(stderr, "error: missing <sweep.csv> argument\n");
    return 2;
  }
  const auto sweep = load_sweep_csv(parser.positionals().front());
  if (!sweep) return 1;
  const auto model = model::ContentionModel::from_sweep(*sweep);
  std::printf("%s", model::render_parameters(model).c_str());
  return 0;
}

int cmd_errors_csv(const cli::Parser& parser) {
  if (parser.positionals().empty()) {
    std::fprintf(stderr, "error: missing <sweep.csv> argument\n");
    return 2;
  }
  const auto sweep = load_sweep_csv(parser.positionals().front());
  if (!sweep) return 1;
  const auto model = model::ContentionModel::from_sweep(*sweep);
  std::printf("%s",
              model::render_error_report(model.evaluate_against(*sweep))
                  .c_str());
  return 0;
}

int cmd_plan(const cli::Parser& parser) {
  const auto spec = platform_arg(parser);
  if (!spec) return 1;
  const std::optional<double> compute_gib =
      parser.double_value("--compute-gib");
  const std::optional<double> message_mib =
      parser.double_value("--message-mib");
  if (!compute_gib || !message_mib || *compute_gib <= 0.0 ||
      *message_mib <= 0.0) {
    std::fprintf(stderr,
                 "error: --compute-gib / --message-mib must be positive\n");
    return 2;
  }
  const auto model = calibrated_model(*spec);

  model::IterationSpec iteration;
  iteration.compute_bytes = *compute_gib * static_cast<double>(kGiB);
  iteration.message_bytes = *message_mib * static_cast<double>(kMiB);
  const model::OverlapPlan plan =
      model::plan_overlap_best_placement(model, iteration);

  AsciiTable table({"cores", "compute ms", "comm ms", "iteration ms",
                    "contention slowdown"});
  table.set_alignments({Align::kRight, Align::kRight, Align::kRight,
                        Align::kRight, Align::kRight});
  for (const model::OverlapPoint& p : plan.points) {
    table.add_row({std::to_string(p.cores),
                   format_fixed(p.compute_seconds * 1e3, 2),
                   format_fixed(p.comm_seconds * 1e3, 2),
                   format_fixed(p.iteration_seconds * 1e3, 2),
                   format_fixed(p.contention_slowdown, 2) + "x"});
  }
  std::printf("Best placement: computation data on node %u, communication "
              "data on node %u\n%s",
              plan.comp_numa.value(), plan.comm_numa.value(),
              table.render().c_str());
  std::printf("Best core count: %zu (%.2f ms per iteration)\n",
              plan.best_cores, plan.best_iteration_seconds * 1e3);
  return 0;
}

int cmd_table2(const cli::Parser&) {
  std::printf("%s", eval::render_table2(eval::run_table2()).c_str());
  return 0;
}

/// Shared scenario for `trace` and `stats`: one CPU flow contending with
/// two DMA transfers through the first NUMA node, run to completion. Small
/// enough to eyeball, rich enough to exercise every engine event kind
/// (slice, grant, transfer-start/complete/stop).
bool run_observed_scenario(const topo::PlatformSpec& spec,
                           const obs::Observer& observer) {
  const topo::Machine& machine = spec.machine;
  if (machine.nics().empty()) {
    std::fprintf(stderr,
                 "error: platform '%s' has no NIC; the traced scenario "
                 "needs a DMA path\n",
                 spec.name.c_str());
    return false;
  }
  sim::Engine engine(machine);
  engine.attach_observer(observer);

  const topo::SocketId socket(0);
  const topo::NumaId numa = machine.first_numa_of(socket);
  sim::StreamSpec cpu;
  cpu.cls = sim::StreamClass::kCpu;
  cpu.demand = machine.link(machine.controller_of(numa)).capacity * 0.5;
  cpu.path = machine.cpu_path(socket, numa);
  cpu.source_socket = socket;

  const topo::NicId nic = machine.nics().front().id;
  sim::StreamSpec dma;
  dma.cls = sim::StreamClass::kDma;
  dma.demand = machine.nic_nominal_bandwidth(nic, numa);
  dma.path = machine.dma_path(nic, numa);
  dma.source_socket = machine.nic(nic).socket;

  const sim::TransferId flow = engine.start_flow(cpu);
  (void)engine.start_transfer(dma, 64 * kMiB);
  (void)engine.start_transfer(dma, 64 * kMiB);
  (void)engine.run_until(Seconds(5.0));
  (void)engine.stop(flow);
  return true;
}

int cmd_trace(const cli::Parser& parser) {
  const auto spec = platform_arg(parser);
  if (!spec) return 1;
  obs::ChromeTraceSink sink;
  sink.set_track_name(0, "engine");
  obs::Observer observer;
  observer.trace = &sink;
  if (!run_observed_scenario(*spec, observer)) return 1;

  const std::string out_path = parser.value("--out");
  if (out_path.empty()) {
    std::fputs(sink.to_json().c_str(), stdout);
    return 0;
  }
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  sink.write_json(out);
  std::printf("%zu events written to %s (open in chrome://tracing or "
              "ui.perfetto.dev)\n",
              sink.size(), out_path.c_str());
  return 0;
}

int cmd_stats(const cli::Parser& parser) {
  const auto spec = platform_arg(parser);
  if (!spec) return 1;
  obs::MetricsRegistry registry;
  // The engine offers samples at slice boundaries (i.e. at events), at
  // most one per 10 simulated ms. The short scenario has few events, so
  // the timeline is sparse and the ring never wraps.
  obs::TimelineSampler sampler(registry, /*capacity=*/1024,
                               /*period_us=*/10'000.0);
  obs::Observer observer;
  observer.metrics = &registry;
  observer.sampler = &sampler;
  if (!run_observed_scenario(*spec, observer)) return 1;

  std::string format = parser.value("--format");
  if (parser.flag("--json")) format = "json";  // legacy spelling
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  if (format == "text") {
    std::fputs(obs::render_text(snapshot).c_str(), stdout);
  } else if (format == "prometheus") {
    std::fputs(obs::render_prometheus(snapshot).c_str(), stdout);
  } else if (format == "json") {
    obs::ReportMeta meta;
    meta.name = "mcmtool-stats";
    meta.platform = spec->name;
    meta.git = bench::build_git_describe();
    std::fputs(obs::render_json_report(meta, snapshot, &sampler).c_str(),
               stdout);
    std::fputc('\n', stdout);
  } else {
    std::fprintf(stderr,
                 "error: unknown --format '%s' (text, json, prometheus)\n",
                 format.c_str());
    return 2;
  }
  return 0;
}

std::optional<bench::BenchReport> load_report(const std::string& path) {
  const std::optional<std::string> text = read_file(path);
  if (!text) return std::nullopt;
  std::string error;
  auto report = bench::report_from_json(*text, &error);
  if (!report) {
    std::fprintf(stderr, "error: cannot parse '%s': %s\n", path.c_str(),
                 error.c_str());
  }
  return report;
}

int cmd_bench_diff(const cli::Parser& parser) {
  if (parser.positionals().size() < 2) {
    std::fprintf(stderr,
                 "error: bench-diff needs <baseline.json> "
                 "<candidate.json>\n");
    return 2;
  }
  const auto baseline = load_report(parser.positionals()[0]);
  const auto candidate = load_report(parser.positionals()[1]);
  if (!baseline || !candidate) return 2;
  const std::optional<double> threshold_pct =
      parser.double_value("--threshold");
  if (!threshold_pct || *threshold_pct < 0.0) {
    std::fprintf(stderr, "error: --threshold must be >= 0\n");
    return 2;
  }
  const double tolerance = *threshold_pct / 100.0;
  const bench::ReportDiff diff =
      bench::diff_reports(*baseline, *candidate, tolerance);
  std::fputs(bench::render_diff(diff, tolerance).c_str(), stdout);
  return diff.regression() ? 1 : 0;
}

int cmd_run_scenario(const cli::Parser& parser) {
  if (parser.positionals().empty()) {
    std::fprintf(stderr, "error: missing <spec.json> argument\n");
    return 2;
  }
  const std::string spec_path = parser.positionals().front();
  const std::optional<std::string> text = read_file(spec_path);
  if (!text) return 1;
  std::string error;
  const auto spec = pipeline::ScenarioSpec::from_json(*text, &error);
  if (!spec) {
    std::fprintf(stderr, "error: cannot parse '%s': %s\n",
                 spec_path.c_str(), error.c_str());
    return 1;
  }

  const std::string cache_path = parser.value("--cache");
  const std::string report_path = parser.value("--report");
  const bool result_json = parser.flag("--result-json");
  pipeline::CalibrationCache cache;
  if (!cache_path.empty() && std::ifstream(cache_path).good() &&
      !cache.load_file(cache_path, &error)) {
    std::fprintf(stderr, "error: cannot load cache '%s': %s\n",
                 cache_path.c_str(), error.c_str());
    return 1;
  }
  const std::optional<std::size_t> parallel =
      parser.size_value("--parallel");
  const std::optional<std::size_t> max_retries =
      parser.size_value("--max-retries");
  if (!parallel || !max_retries) {
    std::fprintf(stderr,
                 "error: --parallel / --max-retries must be non-negative "
                 "integers\n");
    return 2;
  }
  pipeline::RunnerOptions options;
  options.cache = &cache;
  options.parallelism = *parallel;
  options.max_retries = *max_retries;
  pipeline::Runner runner(options);
  const pipeline::ScenarioResult result = runner.run(*spec);

  if (result_json) {
    // Canonical single-line result document — byte-identical to the
    // service's predict reply `result` on the same spec, so CI can cmp
    // the two (docs/service.md).
    std::printf("%s\n", pipeline::result_to_json(result).c_str());
  } else {
    std::printf("scenario:    %s\n",
                result.spec.name.empty() ? "(unnamed)"
                                         : result.spec.name.c_str());
    std::printf("platform:    %s\n", result.sweep.platform.c_str());
    std::printf("status:      %s\n", pipeline::to_string(result.status));
    std::printf("placements:  %zu measured, %zu failed (%s)\n",
                result.sweep.curves.size() - result.failures.size(),
                result.failures.size(),
                pipeline::to_string(result.spec.placements));
    for (const pipeline::PlacementFailure& failure : result.failures) {
      std::fprintf(stderr,
                   "placement (%u,%u) failed after %zu attempt%s: %s\n",
                   failure.placement.comp.value(),
                   failure.placement.comm.value(), failure.attempts,
                   failure.attempts == 1 ? "" : "s",
                   failure.error.c_str());
    }
    std::printf("calibration: %s\n",
                result.cache_hit ? "cache hit" : "measured");
    std::printf("stage wall times: calibrate %.1f ms, measure %.1f ms, "
                "predict %.1f ms, score %.1f ms\n\n",
                result.timings.calibrate_us * 1e-3,
                result.timings.measure_us * 1e-3,
                result.timings.predict_us * 1e-3,
                result.timings.score_us * 1e-3);
    std::printf("%s\n",
                model::render_parameters(result.contention_model()).c_str());
    std::printf("%s", model::render_error_report(result.errors).c_str());
  }

  if (!report_path.empty()) {
    // BENCH-format report so `mcmtool bench-diff` can gate scenario runs.
    // Only the (deterministic) model-quality numbers become metrics; the
    // cache state and wall times are run-dependent and stay out.
    bench::BenchReport report;
    report.name = result.spec.name.empty() ? "scenario" : result.spec.name;
    report.platform = result.sweep.platform;
    report.add_metric("placements",
                      static_cast<double>(result.sweep.curves.size()));
    report.add_metric("placements_failed",
                      static_cast<double>(result.failures.size()));
    report.add_metric("mape.comm_samples", result.errors.comm_samples);
    report.add_metric("mape.comm_non_samples",
                      result.errors.comm_non_samples);
    report.add_metric("mape.comm_all", result.errors.comm_all);
    report.add_metric("mape.comp_samples", result.errors.comp_samples);
    report.add_metric("mape.comp_non_samples",
                      result.errors.comp_non_samples);
    report.add_metric("mape.comp_all", result.errors.comp_all);
    report.add_metric("mape.average", result.errors.average);
    report.add_metric("params.local.t_par_max", result.local.t_par_max);
    report.add_metric("params.remote.t_par_max", result.remote.t_par_max);
    report.record_stage("calibrate", result.timings.calibrate_us * 1e-6);
    report.record_stage("measure", result.timings.measure_us * 1e-6);
    report.record_stage("predict", result.timings.predict_us * 1e-6);
    report.record_stage("score", result.timings.score_us * 1e-6);
    if (!report.write_file(report_path, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(result_json ? stderr : stdout, "report written to %s\n",
                 report_path.c_str());
  }
  if (!cache_path.empty()) {
    if (!cache.save_file(cache_path, &error)) {
      std::fprintf(stderr, "error: cannot save cache '%s': %s\n",
                   cache_path.c_str(), error.c_str());
      return 1;
    }
    std::fprintf(result_json ? stderr : stdout,
                 "calibration cache (%zu entries) written to %s\n",
                 cache.size(), cache_path.c_str());
  }
  // Partial results are still results: fail the invocation only when the
  // sweep produced nothing at all.
  return result.status == pipeline::RunStatus::kFailed ? 1 : 0;
}

int cmd_serve(const cli::Parser& parser) {
  return tools::run_service(parser, "mcmtool serve");
}

/// Merge N Chrome trace files (e.g. a client-side trace from
/// `query --trace` and the server's `serve --trace` file) into one
/// timeline: file i becomes pid i+1 with a process_name metadata event,
/// and each file's timestamps are shifted so its earliest event lands at
/// 0 — WallClock origins are per-process, so raw timestamps from two
/// processes do not line up. Events keep their file order; the output is
/// deterministic for fixed inputs (CI byte-diffs two merges).
int cmd_trace_merge(const cli::Parser& parser) {
  const std::vector<std::string>& files = parser.positionals();
  if (files.empty()) {
    std::fprintf(stderr,
                 "error: trace-merge needs at least one <trace.json>\n");
    return 2;
  }
  json::Value::Array merged;
  for (std::size_t i = 0; i < files.size(); ++i) {
    const std::optional<std::string> text = read_file(files[i]);
    if (!text) return 1;
    const std::optional<json::Value> doc = json::parse(*text);
    if (!doc || !doc->is_array()) {
      std::fprintf(stderr,
                   "error: '%s' is not a Chrome trace JSON array\n",
                   files[i].c_str());
      return 1;
    }
    const json::Value::Array& events = doc->as_array();
    double origin = 0.0;
    bool have_origin = false;
    for (const json::Value& event : events) {
      if (!event.is_object()) continue;
      const std::optional<double> ts = event.number_at("ts");
      if (ts && (!have_origin || *ts < origin)) {
        origin = *ts;
        have_origin = true;
      }
    }
    const double pid = static_cast<double>(i + 1);
    {
      json::Value::Object meta;
      meta["name"] = json::Value(std::string("process_name"));
      meta["ph"] = json::Value(std::string("M"));
      meta["pid"] = json::Value(pid);
      meta["tid"] = json::Value(0.0);
      json::Value::Object args;
      args["name"] = json::Value(files[i]);
      meta["args"] = json::Value(std::move(args));
      merged.push_back(json::Value(std::move(meta)));
    }
    for (const json::Value& event : events) {
      if (!event.is_object()) {
        std::fprintf(stderr, "error: '%s' holds a non-object event\n",
                     files[i].c_str());
        return 1;
      }
      json::Value::Object out = event.as_object();
      out["pid"] = json::Value(pid);
      const std::optional<double> ts = event.number_at("ts");
      if (ts) out["ts"] = json::Value(*ts - origin);
      merged.push_back(json::Value(std::move(out)));
    }
  }
  const std::string serialized =
      json::serialize(json::Value(std::move(merged)));
  const std::string out_path = parser.value("--out");
  if (out_path.empty()) {
    std::printf("%s\n", serialized.c_str());
    return 0;
  }
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  out << serialized << '\n';
  return 0;
}

int cmd_query(const cli::Parser& parser) {
  const std::string path = parser.value("--socket");
  const std::string transport = parser.value("--transport");
  if (transport != "socket" && transport != "shm") {
    std::fprintf(stderr, "error: --transport must be socket or shm\n");
    return 2;
  }
  if (transport == "socket" && path.empty()) {
    std::fprintf(stderr,
                 "error: query requires --socket PATH (or --transport "
                 "shm)\n");
    return 2;
  }
  const std::optional<svc::Method> method =
      svc::parse_method(parser.value("--method"));
  if (!method) {
    std::fprintf(stderr,
                 "error: --method must be predict, calibrate, stats or "
                 "health\n");
    return 2;
  }
  svc::Request request;
  request.method = *method;
  request.id = parser.value("--id");
  const bool runs_pipeline = *method == svc::Method::kPredict ||
                             *method == svc::Method::kCalibrate;
  if (runs_pipeline) {
    const std::string spec_path = parser.value("--spec");
    if (spec_path.empty()) {
      std::fprintf(stderr, "error: --method %s requires --spec FILE\n",
                   svc::to_string(*method));
      return 2;
    }
    const std::optional<std::string> text = read_file(spec_path);
    if (!text) return 1;
    std::string error;
    auto spec = pipeline::ScenarioSpec::from_json(*text, &error);
    if (!spec) {
      std::fprintf(stderr, "error: cannot parse '%s': %s\n",
                   spec_path.c_str(), error.c_str());
      return 1;
    }
    request.spec = std::move(*spec);
    const std::optional<svc::TrafficClass> cls =
        svc::parse_traffic_class(parser.value("--class"));
    if (!cls) {
      std::fprintf(stderr,
                   "error: --class must be interactive or bulk\n");
      return 2;
    }
    request.traffic_class = *cls;
  }
  const bool prometheus = parser.value("--format") == "prometheus";
  if (*method == svc::Method::kStats) {
    if (!prometheus && parser.value("--format") != "json") {
      std::fprintf(stderr,
                   "error: --format must be json or prometheus\n");
      return 2;
    }
    request.stats_format = prometheus ? svc::StatsFormat::kPrometheus
                                      : svc::StatsFormat::kJson;
  }

  const std::optional<double> deadline_ms =
      parser.double_value("--deadline-ms");
  if (!deadline_ms || *deadline_ms < 0.0) {
    std::fprintf(stderr,
                 "error: --deadline-ms must be a non-negative number\n");
    return 2;
  }
  const std::optional<std::size_t> retries = parser.size_value("--retries");
  if (!retries) {
    std::fprintf(stderr, "error: --retries must be a non-negative integer\n");
    return 2;
  }
  svc::CallOptions call_options;
  call_options.deadline_ms = *deadline_ms;
  call_options.retry.max_retries = *retries;

  const std::optional<std::size_t> batch_n = parser.size_value("--batch");
  if (!batch_n || *batch_n > svc::kMaxBatchEntries) {
    std::fprintf(stderr, "error: --batch must be an integer in [0, %zu]\n",
                 svc::kMaxBatchEntries);
    return 2;
  }
  if (*batch_n > 0 && !runs_pipeline) {
    std::fprintf(stderr,
                 "error: --batch applies to predict/calibrate only\n");
    return 2;
  }
  svc::Request wire;
  if (*batch_n > 0) {
    // N compatible entries from the one --spec, ids "<id>1".."<id>N" —
    // the same ids a serial `query --id <id>$i` loop would use, so the
    // per-entry replies byte-compare against the serial transcript.
    const std::string base = request.id.empty() ? "q" : request.id;
    std::vector<svc::Request> entries;
    entries.reserve(*batch_n);
    for (std::size_t i = 1; i <= *batch_n; ++i) {
      svc::Request entry = request;
      entry.id = base + std::to_string(i);
      entries.push_back(std::move(entry));
    }
    wire = svc::Client::make_batch(base, std::move(entries));
  } else {
    wire = std::move(request);
  }

  const std::string trace_path = parser.value("--trace");
  const std::optional<std::size_t> trace_seed =
      parser.size_value("--trace-seed");
  if (!trace_seed) {
    std::fprintf(stderr,
                 "error: --trace-seed must be a non-negative integer\n");
    return 2;
  }

  std::string error;
  std::optional<svc::Reply> reply;
  if (transport == "shm") {
    // Embedded in-process service behind the mcm::net shm transport: no
    // socket (or second process) involved, but every frame still crosses
    // the rank-pair mailboxes. Retries/tracing are socket-transport
    // features and are ignored here.
    svc::Service service{svc::ServiceOptions{}};
    svc::ShmServer server(service);
    server.start();
    svc::ShmClient shm_client(server);
    reply = shm_client.call(std::move(wire), &error,
                            call_options.deadline_ms);
    server.stop();
  } else {
    std::optional<svc::Client> client = svc::Client::connect(path, &error);
    if (!client) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    // Tracing on demand: a seed-deterministic trace identity rides the
    // request (and shows up in the server's spans); with --trace FILE the
    // client-side attempt spans are written there for trace-merge.
    obs::ChromeTraceSink client_sink;
    client_sink.set_track_name(0, "client");
    if (!trace_path.empty() || parser.is_set("--trace-seed")) {
      client->enable_tracing(
          static_cast<std::uint64_t>(*trace_seed),
          trace_path.empty() ? nullptr : &client_sink);
    }
    reply = client->call(std::move(wire), call_options, &error);
    if (!trace_path.empty()) {
      std::ofstream out(trace_path, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     trace_path.c_str());
        return 1;
      }
      client_sink.write_json(out);
    }
  }
  if (!reply) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  if (!reply->ok) {
    std::fprintf(stderr, "error: %s: %s%s%s\n",
                 svc::to_string(reply->error.code),
                 reply->error.message.c_str(),
                 reply->error.trace_id.empty() ? "" : " [trace ",
                 reply->error.trace_id.empty()
                     ? ""
                     : (reply->error.trace_id + "]").c_str());
    // Distinct exit codes for the transient failures scripts branch on:
    // 3 = shed by admission control, 4 = deadline exhausted.
    if (reply->error.code == svc::ErrorCode::kOverloaded) return 3;
    if (reply->error.code == svc::ErrorCode::kDeadlineExceeded) return 4;
    return 1;
  }
  if (*batch_n > 0) {
    // One canonical result line per entry, in wire order — exactly the
    // stdout a serial query loop over the same specs produces. Entry
    // errors go to stderr; the exit code reports the first one.
    const std::optional<std::vector<svc::Reply>> entries =
        svc::Client::batch_replies(*reply, &error);
    if (!entries) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    int exit_code = 0;
    for (const svc::Reply& entry : *entries) {
      if (!entry.ok) {
        std::fprintf(stderr, "error: %s: %s: %s\n", entry.id.c_str(),
                     svc::to_string(entry.error.code),
                     entry.error.message.c_str());
        if (exit_code == 0) {
          exit_code =
              entry.error.code == svc::ErrorCode::kOverloaded        ? 3
              : entry.error.code == svc::ErrorCode::kDeadlineExceeded ? 4
                                                                      : 1;
        }
        continue;
      }
      std::printf("%s\n", json::serialize(entry.result).c_str());
    }
    return exit_code;
  }
  if (*method == svc::Method::kStats && prometheus) {
    const json::Value* text = reply->result.find("prometheus");
    if (text != nullptr && text->is_string()) {
      std::fputs(text->as_string().c_str(), stdout);
      return 0;
    }
  }
  // Canonical bytes: serialize ∘ parse is identity on the service's
  // canonical reply, so this matches `run-scenario --result-json`.
  std::printf("%s\n", json::serialize(reply->result).c_str());
  return 0;
}

const std::vector<Subcommand>& subcommands() {
  static const std::vector<Subcommand> commands = {
      {"platforms", "", "list built-in platforms", {}, cmd_platforms},
      {"describe", "<platform|file>", "topology & behaviour tree", {},
       cmd_describe},
      {"calibrate", "<platform|file>", "calibrate and print parameters",
       {}, cmd_calibrate},
      {"sweep", "<platform|file>", "measure placements, print CSV",
       {{"--placements", "SET", "all", "all | calibration"},
        {"--csv", "FILE", "", "also write the CSV here"},
        {"--reps", "N", "1", "repetitions per point"}},
       cmd_sweep},
      {"predict", "<platform|file>", "predicted bandwidths per core count",
       {{"--comp", "N", "", "NUMA node of the computation data"},
        {"--comm", "M", "", "NUMA node of the communication data"},
        {"--cores", "K", "", "single core count instead of the table"}},
       cmd_predict},
      {"advise", "<platform|file>", "best placement for a core count",
       {{"--cores", "K", "", "computing cores [all]"}},
       cmd_advise},
      {"errors", "<platform|file>", "Table-II row for the platform", {},
       cmd_errors},
      {"plan", "<platform|file>", "overlap planning per core count",
       {{"--compute-gib", "X", "8", "computation volume, GiB"},
        {"--message-mib", "Y", "64", "message size, MiB"}},
       cmd_plan},
      {"table2", "", "Table II on every preset", {}, cmd_table2},
      {"trace", "<platform|file>", "Chrome trace of a short engine run",
       {{"--out", "FILE", "", "write the trace here instead of stdout"}},
       cmd_trace},
      {"stats", "<platform|file>", "metrics snapshot of the same run",
       {{"--format", "F", "text", "text | json | prometheus"},
        {"--json", "", "", "legacy alias for --format json"}},
       cmd_stats},
      {"bench-diff", "<baseline.json> <candidate.json>",
       "compare BENCH reports; exit 1 on regression",
       {{"--threshold", "PCT", "2", "per-metric tolerance, percent"}},
       cmd_bench_diff},
      {"run-scenario", "<spec.json>",
       "run a declarative scenario (docs/pipeline.md)",
       {{"--cache", "FILE", "", "persistent calibration cache"},
        {"--report", "FILE", "", "write a BENCH report here"},
        {"--parallel", "N", "0", "measure-stage workers (0 = auto)"},
        {"--max-retries", "N", "0", "retries per failed placement"},
        {"--result-json", "", "",
         "print the canonical result document instead of the summary"}},
       cmd_run_scenario},
      {"calibrate-csv", "<sweep.csv>", "calibrate from saved sweep data",
       {}, cmd_calibrate_csv},
      {"errors-csv", "<sweep.csv>", "evaluate model on saved data", {},
       cmd_errors_csv},
      {"serve", "", "run the prediction service (docs/service.md)",
       tools::service_options(), cmd_serve},
      {"query", "", "query a serving mcmd over its socket",
       {{"--socket", "PATH", "", "socket of the serving mcmd"},
        {"--transport", "T", "socket",
         "socket | shm (shm embeds an in-process service behind the "
         "mcm::net mailbox transport; no --socket needed)"},
        {"--batch", "N", "0",
         "send one batch envelope of N identical predict/calibrate "
         "entries (ids <id>1..<id>N) and print one result line per "
         "entry (0 = a plain single request)"},
        {"--method", "M", "predict",
         "predict | calibrate | stats | health"},
        {"--spec", "FILE", "", "ScenarioSpec document (predict/calibrate)"},
        {"--class", "C", "interactive", "admission class: interactive | "
                                        "bulk"},
        {"--format", "F", "json", "stats format: json | prometheus"},
        {"--id", "S", "", "request id [generated]"},
        {"--deadline-ms", "MS", "0",
         "end-to-end deadline across all attempts (0 = none)"},
        {"--retries", "N", "0", "extra attempts on retryable failures"},
        {"--trace", "FILE", "",
         "write the client-side Chrome trace here (enables tracing)"},
        {"--trace-seed", "N", "1",
         "seed of the deterministic trace-id stream (setting it enables "
         "tracing)"}},
       cmd_query},
      {"trace-merge", "<trace.json>...",
       "merge client/server Chrome traces into one timeline",
       {{"--out", "FILE", "", "write the merged trace here [stdout]"}},
       cmd_trace_merge},
  };
  return commands;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string name = argv[1];
  const Subcommand* command = nullptr;
  for (const Subcommand& candidate : subcommands()) {
    if (candidate.name == name) {
      command = &candidate;
      break;
    }
  }
  if (command == nullptr) {
    std::fprintf(stderr, "error: unknown command '%s'\n", name.c_str());
    return usage();
  }
  cli::Parser parser("mcmtool " + command->name +
                         (command->args.empty() ? "" : " " + command->args),
                     command->options);
  std::string error;
  if (!parser.parse(argc, argv, 2, &error)) {
    std::fprintf(stderr, "error: %s\n%s", error.c_str(),
                 parser.usage().c_str());
    return 2;
  }
  try {
    return command->run(parser);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
