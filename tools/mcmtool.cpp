// mcmtool — command-line front end of the memory-contention library.
//
//   mcmtool platforms                         list the built-in platforms
//   mcmtool describe  <platform|file>         topology & behaviour tree
//   mcmtool calibrate <platform|file>         run the 2 sweeps, print params
//   mcmtool sweep     <platform|file> [--placements all|calibration]
//                                      [--csv FILE]
//   mcmtool predict   <platform|file> --comp N --comm M [--cores K]
//   mcmtool advise    <platform|file> [--cores K]
//   mcmtool errors    <platform|file>         Table-II row for one platform
//   mcmtool table2                            full Table II on all presets
//   mcmtool trace     <platform|file> [--out FILE]
//                                      Chrome trace of a short engine run
//   mcmtool stats     <platform|file> [--format text|json|prometheus]
//                                      metrics snapshot of the same run
//   mcmtool bench-diff <baseline.json> <candidate.json> [--threshold PCT]
//                                      regression gate over BENCH reports
//   mcmtool run-scenario <spec.json> [--cache FILE] [--report FILE]
//                                      [--parallel N] [--max-retries N]
//                                      full measure->calibrate->predict->
//                                      score pipeline from a JSON spec
//
// <platform|file> is a preset name (henri, dahu, ...) or a path to a
// platform description file (see topo/topology_io.hpp for the format).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "benchlib/backend.hpp"
#include "benchlib/report.hpp"
#include "benchlib/runner.hpp"
#include "benchlib/sweep_io.hpp"
#include "eval/tables.hpp"
#include "model/model.hpp"
#include "model/overlap.hpp"
#include "model/report.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "pipeline/runner.hpp"
#include "sim/engine.hpp"
#include "topo/platforms.hpp"
#include "topo/render.hpp"
#include "topo/topology_io.hpp"
#include "util/contracts.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace mcm;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <command> [args]\n"
      "  platforms                         list built-in platforms\n"
      "  describe  <platform|file>         topology & behaviour tree\n"
      "  calibrate <platform|file>         calibrate and print parameters\n"
      "  sweep     <platform|file> [--placements all|calibration] "
      "[--csv FILE] [--reps N]\n"
      "  predict   <platform|file> --comp N --comm M [--cores K]\n"
      "  advise    <platform|file> [--cores K]\n"
      "  errors    <platform|file>         Table-II row for the platform\n"
      "  plan      <platform|file> --compute-gib X --message-mib Y\n"
      "                                    overlap planning per core count\n"
      "  table2                            Table II on every preset\n"
      "  trace     <platform|file> [--out FILE]\n"
      "                                    Chrome trace of a short engine "
      "run\n"
      "  stats     <platform|file> [--format text|json|prometheus]\n"
      "                                    metrics snapshot of the same "
      "run\n"
      "  bench-diff <baseline.json> <candidate.json> [--threshold PCT]\n"
      "                                    compare BENCH reports; exit 1 "
      "on regression\n"
      "  run-scenario <spec.json> [--cache FILE] [--report FILE] "
      "[--parallel N] [--max-retries N]\n"
      "                                    run a declarative scenario "
      "(docs/pipeline.md); exit 1\n"
      "                                    only when every placement "
      "fails\n"
      "  calibrate-csv <sweep.csv>         calibrate from saved sweep data\n"
      "  errors-csv    <sweep.csv>         evaluate model on saved data\n",
      argv0);
  return 2;
}

/// Resolve a preset name (Table-I presets plus the tetra extension) or a
/// description-file path.
std::optional<topo::PlatformSpec> load_platform(const std::string& name) {
  try {
    return topo::make_platform(name);
  } catch (const ContractViolation&) {
    // Not a preset: fall through to file loading.
  }
  std::ifstream file(name);
  if (!file) {
    std::fprintf(stderr,
                 "error: '%s' is neither a preset platform nor a readable "
                 "file\n",
                 name.c_str());
    return std::nullopt;
  }
  std::ostringstream text;
  text << file.rdbuf();
  std::string error;
  auto spec = topo::parse_platform(text.str(), &error);
  if (!spec) {
    std::fprintf(stderr, "error: cannot parse '%s': %s\n", name.c_str(),
                 error.c_str());
  }
  return spec;
}

/// Trivial flag scanner: returns the value after `flag` or fallback.
std::string flag_value(int argc, char** argv, const char* flag,
                       const std::string& fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

int cmd_platforms() {
  AsciiTable table({"name", "processor", "network", "numa nodes"});
  for (const std::string& name : topo::platform_names()) {
    const topo::PlatformSpec spec = topo::make_platform(name);
    table.add_row({spec.name, spec.processor, spec.network,
                   std::to_string(spec.machine.numa_count())});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

int cmd_describe(const topo::PlatformSpec& spec) {
  std::fputs(topo::render_platform(spec).c_str(), stdout);
  return 0;
}

/// One-shot scenario for a CLI platform (preset or file-loaded). The
/// loaded PlatformSpec rides along as an override so a file platform that
/// shadows a preset name never re-resolves to the preset; the "cli"
/// variant keeps the spec cacheable within the process.
pipeline::ScenarioSpec make_scenario(const topo::PlatformSpec& platform,
                                     pipeline::PlacementSet placements) {
  pipeline::ScenarioSpec spec;
  spec.name = platform.name;
  spec.platform = platform.name;
  spec.platform_override = platform;
  spec.variant = "cli";
  spec.placements = placements;
  return spec;
}

/// Run the calibration-only scenario and return the advisor model.
model::ContentionModel calibrated_model(const topo::PlatformSpec& spec) {
  pipeline::Runner runner;
  return runner.run(make_scenario(spec, pipeline::PlacementSet::kCalibration))
      .contention_model();
}

int cmd_calibrate(const topo::PlatformSpec& spec) {
  std::printf("%s", model::render_parameters(calibrated_model(spec)).c_str());
  return 0;
}

int cmd_sweep(const topo::PlatformSpec& spec, const std::string& placements,
              const std::string& csv_path, std::size_t repetitions) {
  pipeline::ScenarioSpec scenario = make_scenario(
      spec, placements == "calibration"
                ? pipeline::PlacementSet::kCalibration
                : pipeline::PlacementSet::kAll);
  scenario.repetitions = repetitions;
  pipeline::Runner runner;
  const bench::SweepResult sweep = runner.run(scenario).sweep;
  const std::string csv = bench::sweep_to_csv(sweep);
  std::fputs(csv.c_str(), stdout);
  if (!csv_path.empty()) {
    std::ofstream out(csv_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", csv_path.c_str());
      return 1;
    }
    out << csv;
    std::printf("# written to %s (feed back with calibrate-csv / "
                "errors-csv)\n",
                csv_path.c_str());
  }
  return 0;
}

int cmd_predict(const topo::PlatformSpec& spec, int argc, char** argv) {
  const std::string comp_text = flag_value(argc, argv, "--comp", "");
  const std::string comm_text = flag_value(argc, argv, "--comm", "");
  if (comp_text.empty() || comm_text.empty()) {
    std::fprintf(stderr, "error: predict requires --comp N and --comm M\n");
    return 2;
  }
  const auto model = calibrated_model(spec);
  const topo::NumaId comp(
      static_cast<std::uint32_t>(std::stoul(comp_text)));
  const topo::NumaId comm(
      static_cast<std::uint32_t>(std::stoul(comm_text)));
  if (comp.value() >= model.numa_count() ||
      comm.value() >= model.numa_count()) {
    std::fprintf(stderr, "error: NUMA node out of range (0..%zu)\n",
                 model.numa_count() - 1);
    return 2;
  }
  const model::PredictedCurve curve = model.predict(comp, comm);

  const std::string cores_text = flag_value(argc, argv, "--cores", "");
  if (!cores_text.empty()) {
    const std::size_t cores = std::stoul(cores_text);
    if (cores < 1 || cores > model.max_cores()) {
      std::fprintf(stderr, "error: --cores must be in 1..%zu\n",
                   model.max_cores());
      return 2;
    }
    std::printf("%zu cores, comp data on node %u, comm data on node %u: "
                "compute %.2f GB/s, network %.2f GB/s\n",
                cores, comp.value(), comm.value(),
                curve.compute_parallel_gb[cores - 1],
                curve.comm_parallel_gb[cores - 1]);
    return 0;
  }
  AsciiTable table({"cores", "compute GB/s", "network GB/s"});
  table.set_alignments({Align::kRight, Align::kRight, Align::kRight});
  for (std::size_t n = 1; n <= model.max_cores(); ++n) {
    table.add_row({std::to_string(n),
                   format_fixed(curve.compute_parallel_gb[n - 1], 2),
                   format_fixed(curve.comm_parallel_gb[n - 1], 2)});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

int cmd_advise(const topo::PlatformSpec& spec, int argc, char** argv) {
  const auto model = calibrated_model(spec);
  const std::string cores_text = flag_value(argc, argv, "--cores", "");
  const std::size_t cores =
      cores_text.empty() ? model.max_cores() : std::stoul(cores_text);
  if (cores < 1 || cores > model.max_cores()) {
    std::fprintf(stderr, "error: --cores must be in 1..%zu\n",
                 model.max_cores());
    return 2;
  }
  const model::PlacementAdvice advice = model.best_placement(cores);
  std::printf("with %zu computing cores: place computation data on node "
              "%u and communication data on node %u\n",
              cores, advice.comp_numa.value(), advice.comm_numa.value());
  std::printf("predicted bandwidths: compute %.2f GB/s, network %.2f "
              "GB/s\n",
              advice.compute_gb, advice.comm_gb);
  std::printf("contention-free core budget for that placement: %zu\n",
              model.recommended_core_count(advice.comp_numa,
                                           advice.comm_numa));
  return 0;
}

int cmd_errors(const topo::PlatformSpec& spec) {
  pipeline::Runner runner;
  const pipeline::ScenarioResult result =
      runner.run(make_scenario(spec, pipeline::PlacementSet::kAll));
  std::printf("%s", model::render_error_report(result.errors).c_str());
  return 0;
}

std::optional<bench::SweepResult> load_sweep_csv(
    const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "error: cannot read '%s'\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream text;
  text << file.rdbuf();
  std::string error;
  auto sweep = bench::sweep_from_csv(text.str(), &error);
  if (!sweep) {
    std::fprintf(stderr, "error: cannot parse '%s': %s\n", path.c_str(),
                 error.c_str());
  }
  return sweep;
}

int cmd_calibrate_csv(const std::string& path) {
  const auto sweep = load_sweep_csv(path);
  if (!sweep) return 1;
  const auto model = model::ContentionModel::from_sweep(*sweep);
  std::printf("%s", model::render_parameters(model).c_str());
  return 0;
}

int cmd_errors_csv(const std::string& path) {
  const auto sweep = load_sweep_csv(path);
  if (!sweep) return 1;
  const auto model = model::ContentionModel::from_sweep(*sweep);
  std::printf("%s",
              model::render_error_report(model.evaluate_against(*sweep))
                  .c_str());
  return 0;
}

int cmd_plan(const topo::PlatformSpec& spec, int argc, char** argv) {
  const double compute_gib =
      std::stod(flag_value(argc, argv, "--compute-gib", "8"));
  const double message_mib =
      std::stod(flag_value(argc, argv, "--message-mib", "64"));
  const auto model = calibrated_model(spec);

  model::IterationSpec iteration;
  iteration.compute_bytes = compute_gib * static_cast<double>(kGiB);
  iteration.message_bytes = message_mib * static_cast<double>(kMiB);
  const model::OverlapPlan plan =
      model::plan_overlap_best_placement(model, iteration);

  AsciiTable table({"cores", "compute ms", "comm ms", "iteration ms",
                    "contention slowdown"});
  table.set_alignments({Align::kRight, Align::kRight, Align::kRight,
                        Align::kRight, Align::kRight});
  for (const model::OverlapPoint& p : plan.points) {
    table.add_row({std::to_string(p.cores),
                   format_fixed(p.compute_seconds * 1e3, 2),
                   format_fixed(p.comm_seconds * 1e3, 2),
                   format_fixed(p.iteration_seconds * 1e3, 2),
                   format_fixed(p.contention_slowdown, 2) + "x"});
  }
  std::printf("Best placement: computation data on node %u, communication "
              "data on node %u\n%s",
              plan.comp_numa.value(), plan.comm_numa.value(),
              table.render().c_str());
  std::printf("Best core count: %zu (%.2f ms per iteration)\n",
              plan.best_cores, plan.best_iteration_seconds * 1e3);
  return 0;
}

int cmd_table2() {
  std::printf("%s", eval::render_table2(eval::run_table2()).c_str());
  return 0;
}

/// Shared scenario for `trace` and `stats`: one CPU flow contending with
/// two DMA transfers through the first NUMA node, run to completion. Small
/// enough to eyeball, rich enough to exercise every engine event kind
/// (slice, grant, transfer-start/complete/stop).
bool run_observed_scenario(const topo::PlatformSpec& spec,
                           const obs::Observer& observer) {
  const topo::Machine& machine = spec.machine;
  if (machine.nics().empty()) {
    std::fprintf(stderr,
                 "error: platform '%s' has no NIC; the traced scenario "
                 "needs a DMA path\n",
                 spec.name.c_str());
    return false;
  }
  sim::Engine engine(machine);
  engine.attach_observer(observer);

  const topo::SocketId socket(0);
  const topo::NumaId numa = machine.first_numa_of(socket);
  sim::StreamSpec cpu;
  cpu.cls = sim::StreamClass::kCpu;
  cpu.demand = machine.link(machine.controller_of(numa)).capacity * 0.5;
  cpu.path = machine.cpu_path(socket, numa);
  cpu.source_socket = socket;

  const topo::NicId nic = machine.nics().front().id;
  sim::StreamSpec dma;
  dma.cls = sim::StreamClass::kDma;
  dma.demand = machine.nic_nominal_bandwidth(nic, numa);
  dma.path = machine.dma_path(nic, numa);
  dma.source_socket = machine.nic(nic).socket;

  const sim::TransferId flow = engine.start_flow(cpu);
  (void)engine.start_transfer(dma, 64 * kMiB);
  (void)engine.start_transfer(dma, 64 * kMiB);
  (void)engine.run_until(Seconds(5.0));
  (void)engine.stop(flow);
  return true;
}

int cmd_trace(const topo::PlatformSpec& spec, int argc, char** argv) {
  obs::ChromeTraceSink sink;
  sink.set_track_name(0, "engine");
  obs::Observer observer;
  observer.trace = &sink;
  if (!run_observed_scenario(spec, observer)) return 1;

  const std::string out_path = flag_value(argc, argv, "--out", "");
  if (out_path.empty()) {
    std::fputs(sink.to_json().c_str(), stdout);
    return 0;
  }
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  sink.write_json(out);
  std::printf("%zu events written to %s (open in chrome://tracing or "
              "ui.perfetto.dev)\n",
              sink.size(), out_path.c_str());
  return 0;
}

int cmd_stats(const topo::PlatformSpec& spec, int argc, char** argv) {
  obs::MetricsRegistry registry;
  // The engine offers samples at slice boundaries (i.e. at events), at
  // most one per 10 simulated ms. The short scenario has few events, so
  // the timeline is sparse and the ring never wraps.
  obs::TimelineSampler sampler(registry, /*capacity=*/1024,
                               /*period_us=*/10'000.0);
  obs::Observer observer;
  observer.metrics = &registry;
  observer.sampler = &sampler;
  if (!run_observed_scenario(spec, observer)) return 1;

  std::string format = flag_value(argc, argv, "--format", "text");
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) format = "json";  // legacy
  }
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  if (format == "text") {
    std::fputs(obs::render_text(snapshot).c_str(), stdout);
  } else if (format == "prometheus") {
    std::fputs(obs::render_prometheus(snapshot).c_str(), stdout);
  } else if (format == "json") {
    obs::ReportMeta meta;
    meta.name = "mcmtool-stats";
    meta.platform = spec.name;
    meta.git = bench::build_git_describe();
    std::fputs(obs::render_json_report(meta, snapshot, &sampler).c_str(),
               stdout);
    std::fputc('\n', stdout);
  } else {
    std::fprintf(stderr,
                 "error: unknown --format '%s' (text, json, prometheus)\n",
                 format.c_str());
    return 2;
  }
  return 0;
}

std::optional<bench::BenchReport> load_report(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "error: cannot read '%s'\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream text;
  text << file.rdbuf();
  std::string error;
  auto report = bench::report_from_json(text.str(), &error);
  if (!report) {
    std::fprintf(stderr, "error: cannot parse '%s': %s\n", path.c_str(),
                 error.c_str());
  }
  return report;
}

int cmd_bench_diff(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: mcmtool bench-diff <baseline.json> "
                 "<candidate.json> [--threshold PCT]\n");
    return 2;
  }
  const auto baseline = load_report(argv[2]);
  const auto candidate = load_report(argv[3]);
  if (!baseline || !candidate) return 2;
  const double threshold_pct =
      std::stod(flag_value(argc, argv, "--threshold", "2"));
  if (threshold_pct < 0.0) {
    std::fprintf(stderr, "error: --threshold must be >= 0\n");
    return 2;
  }
  const double tolerance = threshold_pct / 100.0;
  const bench::ReportDiff diff =
      bench::diff_reports(*baseline, *candidate, tolerance);
  std::fputs(bench::render_diff(diff, tolerance).c_str(), stdout);
  return diff.regression() ? 1 : 0;
}

int cmd_run_scenario(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: mcmtool run-scenario <spec.json> [--cache FILE] "
                 "[--report FILE] [--parallel N] [--max-retries N]\n");
    return 2;
  }
  const std::string spec_path = argv[2];
  std::ifstream file(spec_path);
  if (!file) {
    std::fprintf(stderr, "error: cannot read '%s'\n", spec_path.c_str());
    return 1;
  }
  std::ostringstream text;
  text << file.rdbuf();
  std::string error;
  const auto spec = pipeline::ScenarioSpec::from_json(text.str(), &error);
  if (!spec) {
    std::fprintf(stderr, "error: cannot parse '%s': %s\n",
                 spec_path.c_str(), error.c_str());
    return 1;
  }

  const std::string cache_path = flag_value(argc, argv, "--cache", "");
  const std::string report_path = flag_value(argc, argv, "--report", "");
  pipeline::CalibrationCache cache;
  if (!cache_path.empty() && std::ifstream(cache_path).good() &&
      !cache.load_file(cache_path, &error)) {
    std::fprintf(stderr, "error: cannot load cache '%s': %s\n",
                 cache_path.c_str(), error.c_str());
    return 1;
  }
  pipeline::RunnerOptions options;
  options.cache = &cache;
  options.parallelism =
      std::stoul(flag_value(argc, argv, "--parallel", "0"));
  options.max_retries =
      std::stoul(flag_value(argc, argv, "--max-retries", "0"));
  pipeline::Runner runner(options);
  const pipeline::ScenarioResult result = runner.run(*spec);

  std::printf("scenario:    %s\n",
              result.spec.name.empty() ? "(unnamed)"
                                       : result.spec.name.c_str());
  std::printf("platform:    %s\n", result.sweep.platform.c_str());
  std::printf("status:      %s\n", pipeline::to_string(result.status));
  std::printf("placements:  %zu measured, %zu failed (%s)\n",
              result.sweep.curves.size() - result.failures.size(),
              result.failures.size(),
              pipeline::to_string(result.spec.placements));
  for (const pipeline::PlacementFailure& failure : result.failures) {
    std::fprintf(stderr, "placement (%u,%u) failed after %zu attempt%s: %s\n",
                 failure.placement.comp.value(),
                 failure.placement.comm.value(), failure.attempts,
                 failure.attempts == 1 ? "" : "s", failure.error.c_str());
  }
  std::printf("calibration: %s\n",
              result.cache_hit ? "cache hit" : "measured");
  std::printf("stage wall times: calibrate %.1f ms, measure %.1f ms, "
              "predict %.1f ms, score %.1f ms\n\n",
              result.timings.calibrate_us * 1e-3,
              result.timings.measure_us * 1e-3,
              result.timings.predict_us * 1e-3,
              result.timings.score_us * 1e-3);
  std::printf("%s\n",
              model::render_parameters(result.contention_model()).c_str());
  std::printf("%s", model::render_error_report(result.errors).c_str());

  if (!report_path.empty()) {
    // BENCH-format report so `mcmtool bench-diff` can gate scenario runs.
    // Only the (deterministic) model-quality numbers become metrics; the
    // cache state and wall times are run-dependent and stay out.
    bench::BenchReport report;
    report.name = result.spec.name.empty() ? "scenario" : result.spec.name;
    report.platform = result.sweep.platform;
    report.add_metric("placements",
                      static_cast<double>(result.sweep.curves.size()));
    report.add_metric("placements_failed",
                      static_cast<double>(result.failures.size()));
    report.add_metric("mape.comm_samples", result.errors.comm_samples);
    report.add_metric("mape.comm_non_samples",
                      result.errors.comm_non_samples);
    report.add_metric("mape.comm_all", result.errors.comm_all);
    report.add_metric("mape.comp_samples", result.errors.comp_samples);
    report.add_metric("mape.comp_non_samples",
                      result.errors.comp_non_samples);
    report.add_metric("mape.comp_all", result.errors.comp_all);
    report.add_metric("mape.average", result.errors.average);
    report.add_metric("params.local.t_par_max", result.local.t_par_max);
    report.add_metric("params.remote.t_par_max", result.remote.t_par_max);
    report.record_stage("calibrate", result.timings.calibrate_us * 1e-6);
    report.record_stage("measure", result.timings.measure_us * 1e-6);
    report.record_stage("predict", result.timings.predict_us * 1e-6);
    report.record_stage("score", result.timings.score_us * 1e-6);
    if (!report.write_file(report_path, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::printf("report written to %s\n", report_path.c_str());
  }
  if (!cache_path.empty()) {
    if (!cache.save_file(cache_path, &error)) {
      std::fprintf(stderr, "error: cannot save cache '%s': %s\n",
                   cache_path.c_str(), error.c_str());
      return 1;
    }
    std::printf("calibration cache (%zu entries) written to %s\n",
                cache.size(), cache_path.c_str());
  }
  // Partial results are still results: fail the invocation only when the
  // sweep produced nothing at all.
  return result.status == pipeline::RunStatus::kFailed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string command = argv[1];
  try {
    if (command == "platforms") return cmd_platforms();
    if (command == "table2") return cmd_table2();
    if (command == "calibrate-csv" && argc >= 3) {
      return cmd_calibrate_csv(argv[2]);
    }
    if (command == "errors-csv" && argc >= 3) return cmd_errors_csv(argv[2]);
    if (command == "bench-diff") return cmd_bench_diff(argc, argv);
    if (command == "run-scenario") return cmd_run_scenario(argc, argv);

    if (argc < 3) return usage(argv[0]);
    const auto spec = load_platform(argv[2]);
    if (!spec) return 1;
    if (command == "describe") return cmd_describe(*spec);
    if (command == "calibrate") return cmd_calibrate(*spec);
    if (command == "sweep") {
      return cmd_sweep(*spec,
                       flag_value(argc, argv, "--placements", "all"),
                       flag_value(argc, argv, "--csv", ""),
                       std::stoul(flag_value(argc, argv, "--reps", "1")));
    }
    if (command == "predict") return cmd_predict(*spec, argc, argv);
    if (command == "advise") return cmd_advise(*spec, argc, argv);
    if (command == "errors") return cmd_errors(*spec);
    if (command == "plan") return cmd_plan(*spec, argc, argv);
    if (command == "trace") return cmd_trace(*spec, argc, argv);
    if (command == "stats") return cmd_stats(*spec, argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return usage(argv[0]);
}
