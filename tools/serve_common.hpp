// Shared service front end of `mcmd` and `mcmtool serve`: the option
// table for every service knob and the run loop (socket mode until
// SIGINT/SIGTERM, or the deterministic stdin/stdout frame loop).
#pragma once

#include <csignal>
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "cli.hpp"
#include "svc/limiter.hpp"
#include "svc/server.hpp"

namespace mcm::tools {

inline std::vector<cli::Option> service_options() {
  return {
      {"--socket", "PATH", "", "serve on this Unix-domain socket"},
      {"--stdio", "", "",
       "serve length-prefixed frames on stdin/stdout instead"},
      {"--workers", "N", "2", "socket connection-handler threads"},
      {"--shards", "N", "8", "calibration cache shards"},
      {"--max-retries", "N", "0", "measure-stage retries per placement"},
      {"--interactive-burst", "N", "8",
       "interactive-class token bucket capacity"},
      {"--interactive-rate", "R", "16",
       "interactive-class refill, tokens/s"},
      {"--bulk-burst", "N", "2", "bulk-class token bucket capacity"},
      {"--bulk-rate", "R", "1", "bulk-class refill, tokens/s"},
  };
}

/// Decode the service knobs; nullopt + message on out-of-range values.
inline std::optional<svc::ServiceOptions> service_options_from(
    const cli::Parser& parser, std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  svc::ServiceOptions options;
  const std::optional<std::size_t> shards = parser.size_value("--shards");
  if (!shards || *shards < 1) return fail("--shards must be >= 1");
  options.cache_shards = *shards;
  const std::optional<std::size_t> retries =
      parser.size_value("--max-retries");
  if (!retries) return fail("--max-retries must be a non-negative integer");
  options.max_retries = *retries;

  struct Knob {
    const char* flag;
    double* slot;
    bool positive;  // burst capacities must be > 0, rates only >= 0
  };
  const Knob knobs[] = {
      {"--interactive-burst", &options.admission.interactive.capacity,
       true},
      {"--interactive-rate", &options.admission.interactive.refill_per_sec,
       false},
      {"--bulk-burst", &options.admission.bulk.capacity, true},
      {"--bulk-rate", &options.admission.bulk.refill_per_sec, false},
  };
  for (const Knob& knob : knobs) {
    const std::optional<double> value = parser.double_value(knob.flag);
    if (!value || *value < 0.0 || (knob.positive && *value <= 0.0)) {
      return fail(std::string(knob.flag) + " must be a " +
                  (knob.positive ? "positive" : "non-negative") +
                  " number");
    }
    *knob.slot = *value;
  }
  return options;
}

/// The serve main loop. Returns a process exit code.
inline int run_service(const cli::Parser& parser, const char* program) {
  std::string error;
  const std::optional<svc::ServiceOptions> options =
      service_options_from(parser, &error);
  if (!options) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  svc::Service service(*options);

  if (parser.flag("--stdio")) {
    const std::size_t served =
        svc::serve_stdio(service, std::cin, std::cout);
    std::fprintf(stderr, "%s: served %zu request%s\n", program, served,
                 served == 1 ? "" : "s");
    return 0;
  }

  const std::string path = parser.value("--socket");
  if (path.empty()) {
    std::fprintf(stderr, "error: need --socket PATH or --stdio\n");
    return 2;
  }
  // Route SIGINT/SIGTERM through sigwait below; block them before the
  // server spawns its workers so the mask is inherited.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  std::size_t workers = parser.size_value("--workers").value_or(0);
  if (workers < 1) {
    std::fprintf(stderr, "error: --workers must be >= 1\n");
    return 2;
  }
  svc::SocketServerOptions socket_options;
  socket_options.path = path;
  socket_options.workers = workers;
  svc::SocketServer server(service, socket_options);
  if (!server.start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "%s: serving on %s (SIGINT/SIGTERM to stop)\n",
               program, path.c_str());
  int caught = 0;
  sigwait(&signals, &caught);
  std::fprintf(stderr, "%s: signal %d, shutting down\n", program, caught);
  server.stop();
  return 0;
}

}  // namespace mcm::tools
