// Shared service front end of `mcmd` and `mcmtool serve`: the option
// table for every service knob and the run loop (socket mode until
// SIGINT/SIGTERM, or the deterministic stdin/stdout frame loop).
#pragma once

#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cli.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "svc/limiter.hpp"
#include "svc/server.hpp"
#include "svc/shm.hpp"

namespace mcm::tools {

inline std::vector<cli::Option> service_options() {
  return {
      {"--socket", "PATH", "", "serve on this Unix-domain socket"},
      {"--stdio", "", "",
       "serve length-prefixed frames on stdin/stdout instead"},
      {"--shm", "", "",
       "like --stdio, but every frame crosses an in-process mcm::net "
       "shared-memory transport (rank-pair mailboxes) on its way to the "
       "service"},
      {"--workers", "N", "2", "socket connection-handler threads"},
      {"--shards", "N", "8", "calibration cache shards"},
      {"--max-retries", "N", "0", "measure-stage retries per placement"},
      {"--interactive-burst", "N", "8",
       "interactive-class token bucket capacity"},
      {"--interactive-rate", "R", "16",
       "interactive-class refill, tokens/s"},
      {"--bulk-burst", "N", "2", "bulk-class token bucket capacity"},
      {"--bulk-rate", "R", "1", "bulk-class refill, tokens/s"},
      {"--cache", "FILE", "",
       "persistent calibration cache (loaded at start, saved on shutdown)"},
      {"--drain-ms", "MS", "5000",
       "graceful-shutdown budget for in-flight requests"},
      {"--frame-timeout-ms", "MS", "10000",
       "slow-client cap: budget to finish a started frame or reply"},
      {"--idle-timeout-ms", "MS", "0",
       "close kept-alive connections idle this long (0 = never)"},
      {"--log-level", "LEVEL", "info",
       "structured-log threshold: debug, info, warn, error or off"},
      {"--log-file", "FILE", "",
       "append JSONL structured logs here ('-' = stderr; default: off)"},
      {"--trace", "FILE", "",
       "write a Chrome trace of served requests here on shutdown"},
      {"--deterministic", "", "",
       "virtual tick clock: latency values in stats replies (and log "
       "timestamps) byte-compare across replay runs"},
  };
}

/// Decode the service knobs; nullopt + message on out-of-range values.
inline std::optional<svc::ServiceOptions> service_options_from(
    const cli::Parser& parser, std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  svc::ServiceOptions options;
  const std::optional<std::size_t> shards = parser.size_value("--shards");
  if (!shards || *shards < 1) return fail("--shards must be >= 1");
  options.cache_shards = *shards;
  const std::optional<std::size_t> retries =
      parser.size_value("--max-retries");
  if (!retries) return fail("--max-retries must be a non-negative integer");
  options.max_retries = *retries;

  struct Knob {
    const char* flag;
    double* slot;
    bool positive;  // burst capacities must be > 0, rates only >= 0
  };
  const Knob knobs[] = {
      {"--interactive-burst", &options.admission.interactive.capacity,
       true},
      {"--interactive-rate", &options.admission.interactive.refill_per_sec,
       false},
      {"--bulk-burst", &options.admission.bulk.capacity, true},
      {"--bulk-rate", &options.admission.bulk.refill_per_sec, false},
  };
  for (const Knob& knob : knobs) {
    const std::optional<double> value = parser.double_value(knob.flag);
    if (!value || *value < 0.0 || (knob.positive && *value <= 0.0)) {
      return fail(std::string(knob.flag) + " must be a " +
                  (knob.positive ? "positive" : "non-negative") +
                  " number");
    }
    *knob.slot = *value;
  }
  return options;
}

/// The serve main loop. Returns a process exit code.
inline int run_service(const cli::Parser& parser, const char* program) {
  std::string error;
  std::optional<svc::ServiceOptions> options =
      service_options_from(parser, &error);
  if (!options) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }

  // Structured logging: off unless --log-file names a sink.
  obs::Log log;
  obs::LogLevel log_level = obs::LogLevel::kInfo;
  if (!obs::parse_log_level(parser.value("--log-level"), log_level)) {
    std::fprintf(stderr,
                 "error: --log-level must be debug, info, warn, error "
                 "or off\n");
    return 2;
  }
  const std::string log_path = parser.value("--log-file");
  if (!log_path.empty()) {
    if (log_path == "-") {
      log.attach(&std::cerr);
    } else if (!log.open_file(log_path, error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    log.set_level(log_level);
    options->log = &log;
  }

  // Server-side tracing: buffered while serving, written on shutdown.
  obs::ChromeTraceSink trace_sink;
  const std::string trace_path = parser.value("--trace");
  if (!trace_path.empty()) options->trace = &trace_sink;

  if (parser.flag("--deterministic")) {
    // Virtual tick clock: each read advances time by 0.1ms, so latency
    // values depend only on the number of clock reads — identical across
    // runs of one request script — not on the host's scheduler.
    auto ticks = std::make_shared<std::atomic<std::uint64_t>>(0);
    options->clock = [ticks]() {
      return static_cast<double>(
                 ticks->fetch_add(1, std::memory_order_relaxed)) *
             1e-4;
    };
    log.set_clock([ticks]() {
      return ticks->load(std::memory_order_relaxed) * 100;
    });
  }

  svc::Service service(*options);

  // Warm the calibration cache from the persisted snapshot. A rejected
  // file (torn write, corruption) is a cold start, not a fatal error —
  // the service re-calibrates and the shutdown save replaces the file.
  const std::string cache_path = parser.value("--cache");
  if (!cache_path.empty()) {
    const pipeline::CacheFileStatus status =
        service.load_cache_file(cache_path, &error);
    if (status == pipeline::CacheFileStatus::kOk) {
      std::fprintf(stderr, "%s: loaded calibration cache %s (%zu entries)\n",
                   program, cache_path.c_str(), service.cache().size());
    } else if (status != pipeline::CacheFileStatus::kMissing) {
      std::fprintf(stderr, "%s: warning: %s — starting cold\n", program,
                   error.c_str());
    }
  }
  const auto save_cache = [&]() {
    if (cache_path.empty()) return;
    if (service.save_cache_file(cache_path, &error)) {
      std::fprintf(stderr, "%s: saved calibration cache %s (%zu entries)\n",
                   program, cache_path.c_str(), service.cache().size());
    } else {
      std::fprintf(stderr, "%s: warning: %s\n", program, error.c_str());
    }
  };
  const auto save_trace = [&]() {
    if (trace_path.empty()) return;
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "%s: warning: cannot write trace file %s\n",
                   program, trace_path.c_str());
      return;
    }
    trace_sink.write_json(out);
    std::fprintf(stderr, "%s: wrote trace %s (%zu events)\n", program,
                 trace_path.c_str(), trace_sink.size());
  };

  if (parser.flag("--stdio")) {
    const std::size_t served =
        svc::serve_stdio(service, std::cin, std::cout);
    std::fprintf(stderr, "%s: served %zu request%s\n", program, served,
                 served == 1 ? "" : "s");
    save_cache();
    save_trace();
    return 0;
  }

  if (parser.flag("--shm")) {
    // stdio <-> shm bridge: the same sequential frame loop as --stdio,
    // but every frame crosses the mcm::net mailbox transport before it
    // reaches the service — so a deterministic replay exercises (and
    // byte-compares) the shm path against the --stdio transcript.
    svc::ShmServer shm_server(service);
    shm_server.start();
    svc::ShmClient shm_client(shm_server);
    std::size_t served = 0;
    std::string payload;
    std::string frame_error;
    for (;;) {
      if (!svc::read_frame(std::cin, &payload, &frame_error)) {
        if (!frame_error.empty()) {
          // Mirror serve_stdio's malformed-frame goodbye byte-for-byte.
          if (service.log() != nullptr) {
            service.log()->warn("bad_frame", {{"error", frame_error}});
          }
          svc::write_frame(
              std::cout,
              svc::render_error_reply(
                  "", {svc::ErrorCode::kBadRequest, frame_error,
                       std::string()}));
        }
        break;
      }
      std::string transport_error;
      const std::optional<std::string> reply =
          shm_client.roundtrip(payload, &transport_error);
      if (!reply.has_value()) {
        std::fprintf(stderr, "%s: shm transport failed: %s\n", program,
                     transport_error.c_str());
        break;
      }
      svc::write_frame(std::cout, *reply);
      ++served;
    }
    shm_server.stop();
    std::fprintf(stderr, "%s: served %zu request%s over shm\n", program,
                 served, served == 1 ? "" : "s");
    save_cache();
    save_trace();
    return 0;
  }

  const std::string path = parser.value("--socket");
  if (path.empty()) {
    std::fprintf(stderr, "error: need --socket PATH or --stdio\n");
    return 2;
  }
  // Route SIGINT/SIGTERM through sigwait below; block them before the
  // server spawns its workers so the mask is inherited.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  std::size_t workers = parser.size_value("--workers").value_or(0);
  if (workers < 1) {
    std::fprintf(stderr, "error: --workers must be >= 1\n");
    return 2;
  }
  const std::optional<std::size_t> drain_ms = parser.size_value("--drain-ms");
  if (!drain_ms) {
    std::fprintf(stderr, "error: --drain-ms must be a non-negative integer\n");
    return 2;
  }
  const std::optional<std::size_t> frame_ms =
      parser.size_value("--frame-timeout-ms");
  if (!frame_ms) {
    std::fprintf(stderr,
                 "error: --frame-timeout-ms must be a non-negative integer\n");
    return 2;
  }
  const std::optional<std::size_t> idle_ms =
      parser.size_value("--idle-timeout-ms");
  if (!idle_ms) {
    std::fprintf(stderr,
                 "error: --idle-timeout-ms must be a non-negative integer\n");
    return 2;
  }
  svc::SocketServerOptions socket_options;
  socket_options.path = path;
  socket_options.workers = workers;
  socket_options.frame_timeout_ms =
      *frame_ms == 0 ? -1 : static_cast<int>(*frame_ms);
  socket_options.idle_timeout_ms =
      *idle_ms == 0 ? -1 : static_cast<int>(*idle_ms);
  svc::SocketServer server(service, socket_options);
  if (!server.start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "%s: serving on %s (SIGINT/SIGTERM to stop)\n",
               program, path.c_str());
  int caught = 0;
  sigwait(&signals, &caught);
  std::fprintf(stderr, "%s: signal %d, draining (up to %zums)\n", program,
               caught, *drain_ms);
  if (server.drain(static_cast<int>(*drain_ms))) {
    std::fprintf(stderr, "%s: drained cleanly\n", program);
  } else {
    std::fprintf(stderr, "%s: drain budget exhausted, stopping hard\n",
                 program);
  }
  save_cache();
  save_trace();
  return 0;
}

}  // namespace mcm::tools
