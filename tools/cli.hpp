// Option-table command-line parser shared by mcmtool and mcmd.
//
// One table per (sub)command declares every option once — name, value
// placeholder, default, help line — and drives parsing, lookup and the
// generated usage text, so a flag cannot work in one spelling and not
// the other: `--flag value` and `--flag=value` are both accepted
// everywhere, unknown options are hard errors, and `--` ends option
// processing.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace mcm::cli {

struct Option {
  /// Including the leading dashes, e.g. "--cores".
  std::string name;
  /// Placeholder in usage text, e.g. "N"; empty = boolean flag (takes
  /// no value; `--flag=yes` is rejected).
  std::string value_name;
  /// Value when the option is absent (ignored for boolean flags).
  std::string default_value;
  /// One-line description for usage().
  std::string help;
};

class Parser {
 public:
  /// `head` is the "mcmtool predict <platform|file>" part of the usage
  /// line; options are appended to it by usage().
  Parser(std::string head, std::vector<Option> options);

  /// Parse argv[begin..argc). False + `error` on unknown options,
  /// missing values, or a value handed to a boolean flag. Non-option
  /// arguments become positionals (in order); everything after a
  /// literal "--" is positional.
  [[nodiscard]] bool parse(int argc, char** argv, int begin,
                           std::string* error);

  /// Option value: what the command line set, else the default.
  /// Precondition: `name` is in the table.
  [[nodiscard]] const std::string& value(const std::string& name) const;
  /// True when the option appeared on the command line.
  [[nodiscard]] bool is_set(const std::string& name) const;
  /// Boolean flag state (is_set, named for call-site readability).
  [[nodiscard]] bool flag(const std::string& name) const {
    return is_set(name);
  }

  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }

  /// "usage: <head> [options]\n" plus one aligned line per option.
  [[nodiscard]] std::string usage() const;

  /// value() parsed as a non-negative integer / double; nullopt when
  /// the text does not parse (callers turn that into a usage error).
  [[nodiscard]] std::optional<std::size_t> size_value(
      const std::string& name) const;
  [[nodiscard]] std::optional<double> double_value(
      const std::string& name) const;

 private:
  [[nodiscard]] const Option* find(const std::string& name) const;

  std::string head_;
  std::vector<Option> options_;
  std::vector<std::pair<std::string, std::string>> values_;
  std::vector<std::string> positionals_;
};

}  // namespace mcm::cli
