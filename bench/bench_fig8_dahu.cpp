// E-FIG8 — reproduction of Figure 8: performances of
// computations and communications along with the model prediction on
// dahu, for every placement of computation and communication data.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  mcm::benchx::BenchRun run("fig8_dahu");
  mcm::benchx::emit_figure("Figure 8", "dahu",
                           "bench_fig8_dahu.csv", &run);
  mcm::benchx::register_pipeline_benchmarks("dahu");
  return mcm::benchx::finish(run, argc, argv);
}
