// E-FIG3 — reproduction of Figure 3: performances of
// computations and communications along with the model prediction on
// henri, for every placement of computation and communication data.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  mcm::benchx::BenchRun run("fig3_henri");
  mcm::benchx::emit_figure("Figure 3", "henri",
                           "bench_fig3_henri.csv", &run);
  mcm::benchx::register_pipeline_benchmarks("henri");
  return mcm::benchx::finish(run, argc, argv);
}
