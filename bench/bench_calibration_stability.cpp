// E-EXT5 — calibration stability (quantifying the paper's "run-to-run
// variability is very low" remark): repeat the calibration sweep under
// independent measurement noise and report the spread of every model
// parameter and of the downstream predictions, on the quietest and the
// noisiest platform.
#include "bench/common.hpp"
#include "model/stability.hpp"

int main(int argc, char** argv) {
  mcm::benchx::BenchRun run("calibration_stability");
  run.report().platform = "occigen,henri,pyxis";
  // Smoke keeps the protocol valid (>= 2 runs) but trims the repetitions;
  // the checked-in baseline reports are generated in smoke mode too.
  const std::size_t runs = mcm::benchx::smoke_reps(10, 3);
  for (const char* platform : {"occigen", "henri", "pyxis"}) {
    const auto timer = run.stage(std::string("stability_") + platform);
    const mcm::model::StabilityReport report =
        mcm::model::calibration_stability(
            mcm::topo::make_platform(platform), runs);
    std::printf("%s\n", mcm::model::render_stability(report).c_str());
    run.report().add_metric(
        std::string(platform) + ".worst_comm_prediction_deviation",
        report.worst_comm_prediction_deviation);
    run.report().add_metric(
        std::string(platform) + ".worst_compute_prediction_deviation",
        report.worst_compute_prediction_deviation);
    run.report().add_metric(std::string(platform) + ".alpha_relative",
                            report.alpha.relative());
    run.report().add_metric(
        std::string(platform) + ".t_par_max_relative",
        report.t_par_max.relative());
  }

  benchmark::RegisterBenchmark(
      "calibration_stability/henri_x10", [](benchmark::State& state) {
        // Platform spec built once; each stability run still constructs
        // its own reseeded backend (independent noise requires it).
        const mcm::topo::PlatformSpec henri = mcm::topo::make_henri();
        for (auto _ : state) {
          benchmark::DoNotOptimize(
              mcm::model::calibration_stability(henri, 10));
        }
      });
  return mcm::benchx::finish(run, argc, argv);
}
