// E-EXT5 — calibration stability (quantifying the paper's "run-to-run
// variability is very low" remark): repeat the calibration sweep under
// independent measurement noise and report the spread of every model
// parameter and of the downstream predictions, on the quietest and the
// noisiest platform.
#include "bench/common.hpp"
#include "model/stability.hpp"

int main(int argc, char** argv) {
  for (const char* platform : {"occigen", "henri", "pyxis"}) {
    const mcm::model::StabilityReport report =
        mcm::model::calibration_stability(
            mcm::topo::make_platform(platform), 10);
    std::printf("%s\n", mcm::model::render_stability(report).c_str());
  }

  benchmark::RegisterBenchmark(
      "calibration_stability/henri_x10", [](benchmark::State& state) {
        for (auto _ : state) {
          benchmark::DoNotOptimize(mcm::model::calibration_stability(
              mcm::topo::make_henri(), 10));
        }
      });
  return mcm::benchx::run_benchmarks(argc, argv);
}
