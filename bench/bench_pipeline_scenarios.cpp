// E-PIPE1 — the scenario pipeline itself (infrastructure, ours): the
// declarative measure→calibrate→predict→score runner that every figure
// and table reproduction routes through. Exercises and times its two perf
// features — the calibration cache (a warm re-run skips both calibration
// sweeps, observable via pipeline.cache.hits) and the parallel placement
// sweep (bit-identical to the serial one by construction) — plus the JSON
// persistence that carries calibrations across processes.
#include "bench/common.hpp"
#include "obs/metrics.hpp"
#include "pipeline/cache.hpp"
#include "util/contracts.hpp"

namespace {

using namespace mcm;

/// Bit-identical sweep comparison (no tolerance: determinism is the
/// contract, not an approximation).
[[nodiscard]] bool identical_sweeps(const bench::SweepResult& a,
                                    const bench::SweepResult& b) {
  if (a.curves.size() != b.curves.size()) return false;
  for (std::size_t i = 0; i < a.curves.size(); ++i) {
    const bench::PlacementCurve& ca = a.curves[i];
    const bench::PlacementCurve& cb = b.curves[i];
    if (ca.comp_numa != cb.comp_numa || ca.comm_numa != cb.comm_numa ||
        ca.points.size() != cb.points.size()) {
      return false;
    }
    for (std::size_t p = 0; p < ca.points.size(); ++p) {
      if (ca.points[p].cores != cb.points[p].cores ||
          ca.points[p].compute_alone_gb != cb.points[p].compute_alone_gb ||
          ca.points[p].comm_alone_gb != cb.points[p].comm_alone_gb ||
          ca.points[p].compute_parallel_gb !=
              cb.points[p].compute_parallel_gb ||
          ca.points[p].comm_parallel_gb !=
              cb.points[p].comm_parallel_gb) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  benchx::BenchRun run("pipeline_scenarios");
  run.report().platform = "henri";

  pipeline::ScenarioSpec spec;
  spec.name = "pipeline-henri";
  spec.platform = "henri";
  spec.placements = pipeline::PlacementSet::kAll;

  // -- Cold vs cached run through one runner, hit/miss counters observed.
  obs::MetricsRegistry metrics;
  pipeline::RunnerOptions options;
  options.observer.metrics = &metrics;
  pipeline::Runner runner(options);

  pipeline::ScenarioResult cold;
  {
    const auto timer = run.stage("cold_run");
    cold = runner.run(spec);
  }
  pipeline::ScenarioResult cached;
  {
    const auto timer = run.stage("cached_run");
    cached = runner.run(spec);
  }
  MCM_ENSURES(!cold.cache_hit);
  MCM_ENSURES(cached.cache_hit);
  MCM_ENSURES(identical_sweeps(cold.sweep, cached.sweep));
  std::printf("cold run:   calibrate %.1f ms, measure %.1f ms\n",
              cold.timings.calibrate_us * 1e-3,
              cold.timings.measure_us * 1e-3);
  std::printf("cached run: calibrate %.1f ms, measure %.1f ms "
              "(calibration served from cache)\n",
              cached.timings.calibrate_us * 1e-3,
              cached.timings.measure_us * 1e-3);
  run.add_error_report(cold.errors, "henri");
  run.report().add_metric(
      "cache.hits",
      static_cast<double>(metrics.counter("pipeline.cache.hits").value()));
  run.report().add_metric(
      "cache.misses",
      static_cast<double>(
          metrics.counter("pipeline.cache.misses").value()));

  // -- Parallel sweep must be bit-identical to the serial one.
  bool deterministic = false;
  {
    const auto timer = run.stage("parallel_vs_serial");
    pipeline::RunnerOptions serial_options;
    serial_options.parallelism = 1;
    pipeline::Runner serial(serial_options);
    pipeline::Runner parallel;  // one worker per placement
    const pipeline::ScenarioResult a = serial.run(spec);
    const pipeline::ScenarioResult b = parallel.run(spec);
    deterministic = identical_sweeps(a.sweep, b.sweep) &&
                    identical_sweeps(a.sweep, cold.sweep);
  }
  MCM_ENSURES(deterministic);
  std::printf("parallel sweep bit-identical to serial: yes\n");
  run.report().add_metric("determinism.identical",
                          deterministic ? 1.0 : 0.0);

  // -- Persistence: a fresh runner warmed from the saved cache file must
  //    start with a hit.
  {
    const auto timer = run.stage("cache_persistence");
    std::string error;
    MCM_ENSURES(runner.cache().save_file("pipeline_cache.json", &error));
    pipeline::Runner reloaded;
    MCM_ENSURES(
        reloaded.cache().load_file("pipeline_cache.json", &error));
    const pipeline::ScenarioResult warm = reloaded.run(spec);
    MCM_ENSURES(warm.cache_hit);
    MCM_ENSURES(identical_sweeps(warm.sweep, cold.sweep));
    run.report().add_metric(
        "cache.persisted_entries",
        static_cast<double>(reloaded.cache().size()));
    std::printf("calibration cache round-tripped through "
                "pipeline_cache.json (%zu entries)\n\n",
                reloaded.cache().size());
  }

  benchx::register_pipeline_benchmarks("henri");
  return benchx::finish(run, argc, argv);
}
