// Shared scaffolding of the reproduction benchmark binaries.
//
// Every binary does three things:
//  1. print the paper artefact it reproduces (figure series or table) and
//     drop the raw series as a CSV file next to the working directory,
//  2. emit a machine-readable BENCH_<name>.json report (schema in
//     benchlib/report.hpp) with result metrics — MAPE vs. the paper
//     reference, per-placement bandwidths — and per-stage wall times;
//     `mcmtool bench-diff` gates CI on these, and
//  3. register google-benchmark timings for the pipeline stages involved,
//     so `--benchmark_filter` etc. work as usual.
//
// Smoke mode: with MCM_BENCH_SMOKE=1 in the environment the binaries skip
// the google-benchmark timing loops (the expensive part — every registered
// benchmark re-runs whole pipelines until statistically stable) and shrink
// explicitly heavy repetition loops, so the full suite runs in seconds as
// a CI job. The reproduction pipelines themselves run unreduced, keeping
// the report *metrics* identical between smoke and full runs — which is
// what makes the checked-in baseline reports comparable against CI smoke
// runs.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "benchlib/report.hpp"
#include "eval/figures.hpp"
#include "model/metrics.hpp"
#include "model/model.hpp"
#include "obs/trace.hpp"
#include "pipeline/runner.hpp"
#include "topo/platforms.hpp"
#include "util/stats.hpp"

namespace mcm::benchx {

/// True when the environment asks for the CI smoke reduction.
inline bool smoke_mode() {
  const char* value = std::getenv("MCM_BENCH_SMOKE");
  return value != nullptr && value[0] == '1';
}

/// Smoke-aware repetition count: `full` normally, `reduced` under
/// MCM_BENCH_SMOKE=1. For binaries with explicitly heavy loops.
inline std::size_t smoke_reps(std::size_t full, std::size_t reduced = 1) {
  return smoke_mode() ? reduced : full;
}

/// Collects the report of one benchmark binary and writes
/// `BENCH_<name>.json` when finished. Construct first thing in main();
/// stage timers and result metrics hang off it.
class BenchRun {
 public:
  explicit BenchRun(std::string name) {
    report_.name = std::move(name);
    report_.smoke = smoke_mode();
  }

  [[nodiscard]] bench::BenchReport& report() { return report_; }

  /// The binary's scenario runner: every pipeline run of the binary goes
  /// through it, so calibrations are shared via its cache.
  [[nodiscard]] pipeline::Runner& runner() { return runner_; }

  /// RAII wall timer for one pipeline stage; records into the report.
  class Stage {
   public:
    Stage(bench::BenchReport& report, std::string name)
        : report_(&report), name_(std::move(name)) {}
    Stage(const Stage&) = delete;
    Stage& operator=(const Stage&) = delete;
    ~Stage() { report_->record_stage(name_, clock_.now_us() * 1e-6); }

   private:
    bench::BenchReport* report_;
    std::string name_;
    obs::WallClock clock_;
  };

  [[nodiscard]] Stage stage(std::string name) {
    return Stage(report_, std::move(name));
  }

  /// Fold a full figure reproduction into the report: per-placement MAPE
  /// (model vs. the reproduced paper measurement) and bandwidth series,
  /// plus the Table-II style aggregates.
  void add_figure(const eval::FigureData& figure) {
    if (report_.platform.empty()) {
      report_.platform = figure.platform;
    } else if (report_.platform != figure.platform) {
      report_.platform += "," + figure.platform;
    }
    std::vector<double> comm_mapes;
    std::vector<double> comp_mapes;
    for (const eval::FigureSeries& series : figure.subplots) {
      const model::PlacementError error = model::placement_error(
          series.measured, series.predicted, series.is_sample);
      const std::string prefix =
          "placement_" + std::to_string(series.measured.comp_numa.value()) +
          "_" + std::to_string(series.measured.comm_numa.value());
      report_.add_metric(prefix + ".comm_mape", error.comm_mape);
      report_.add_metric(prefix + ".comp_mape", error.comp_mape);
      report_.add_series(
          prefix + ".comm_parallel_gb",
          series.measured.series(bench::Series::kCommParallel));
      report_.add_series(
          prefix + ".compute_parallel_gb",
          series.measured.series(bench::Series::kComputeParallel));
      report_.add_series(prefix + ".comm_parallel_model_gb",
                         series.predicted.comm_parallel_gb);
      report_.add_series(prefix + ".compute_parallel_model_gb",
                         series.predicted.compute_parallel_gb);
      comm_mapes.push_back(error.comm_mape);
      comp_mapes.push_back(error.comp_mape);
      if (!series.measured.points.empty()) {
        report_.add_metric(
            prefix + ".comm_alone_gb",
            series.measured.points.front().comm_alone_gb);
        report_.add_metric(
            prefix + ".compute_parallel_peak_gb",
            *std::max_element(
                report_.series[prefix + ".compute_parallel_gb"].begin(),
                report_.series[prefix + ".compute_parallel_gb"].end()));
      }
    }
    if (!comm_mapes.empty()) {
      report_.add_metric("mape.comm_all", mean_of(comm_mapes));
      report_.add_metric("mape.comp_all", mean_of(comp_mapes));
      report_.add_metric(
          "mape.average",
          0.5 * (mean_of(comm_mapes) + mean_of(comp_mapes)));
      report_.add_metric("placements",
                         static_cast<double>(figure.subplots.size()));
    }
  }

  /// Fold a Table-II style error report in, metrics prefixed
  /// `<prefix>.` (e.g. "henri.mape.comm_all").
  void add_error_report(const model::ErrorReport& errors,
                        const std::string& prefix) {
    report_.add_metric(prefix + ".mape.comm_samples", errors.comm_samples);
    report_.add_metric(prefix + ".mape.comm_non_samples",
                       errors.comm_non_samples);
    report_.add_metric(prefix + ".mape.comm_all", errors.comm_all);
    report_.add_metric(prefix + ".mape.comp_samples", errors.comp_samples);
    report_.add_metric(prefix + ".mape.comp_non_samples",
                       errors.comp_non_samples);
    report_.add_metric(prefix + ".mape.comp_all", errors.comp_all);
    report_.add_metric(prefix + ".mape.average", errors.average);
  }

  /// Write BENCH_<name>.json into the working directory; returns 0 on
  /// success (the binaries return this from main()).
  int write() {
    const std::string path = "BENCH_" + report_.name + ".json";
    std::string error;
    if (!report_.write_file(path, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::printf("benchmark report written to %s\n", path.c_str());
    return 0;
  }

 private:
  bench::BenchReport report_;
  pipeline::Runner runner_;
};

/// Print a full figure reproduction, write `<csv_name>` with the series,
/// and (when `run` is non-null) fold the result into its report under a
/// "figure" stage.
inline void emit_figure(const std::string& figure_id,
                        const std::string& platform,
                        const std::string& csv_name,
                        BenchRun* run = nullptr) {
  std::optional<BenchRun::Stage> timer;
  if (run != nullptr) timer.emplace(run->report(), "figure");
  std::optional<pipeline::Runner> local_runner;
  pipeline::Runner& runner =
      run != nullptr ? run->runner() : local_runner.emplace();
  const eval::FigureData figure =
      eval::make_figure(runner, figure_id, platform);
  if (run != nullptr) run->add_figure(figure);
  std::fputs(eval::render_figure(figure).c_str(), stdout);
  const std::string csv = eval::figure_csv(figure);
  if (FILE* f = std::fopen(csv_name.c_str(), "w")) {
    std::fputs(csv.c_str(), f);
    std::fclose(f);
    std::printf("raw series written to %s\n\n", csv_name.c_str());
  }
}

/// The calibration-only scenario the standard timing benchmarks run.
[[nodiscard]] inline pipeline::ScenarioSpec calibration_scenario(
    const std::string& platform) {
  pipeline::ScenarioSpec spec;
  spec.name = platform + "-calibration";
  spec.platform = platform;
  spec.placements = pipeline::PlacementSet::kCalibration;
  return spec;
}

/// Register the standard pipeline timings for one platform.
inline void register_pipeline_benchmarks(const std::string& platform) {
  benchmark::RegisterBenchmark(
      ("calibration_sweep/" + platform).c_str(),
      [platform](benchmark::State& state) {
        // A fresh runner per iteration: times the cold path, with the two
        // calibration sweeps actually measured.
        for (auto _ : state) {
          pipeline::Runner runner;
          benchmark::DoNotOptimize(
              runner.run(calibration_scenario(platform)));
        }
      });
  benchmark::RegisterBenchmark(
      ("scenario_cached/" + platform).c_str(),
      [platform](benchmark::State& state) {
        // Warm runner: every iteration hits the calibration cache, so
        // this times the cache + predict + score overhead alone.
        pipeline::Runner runner;
        const pipeline::ScenarioSpec spec = calibration_scenario(platform);
        benchmark::DoNotOptimize(runner.run(spec));
        for (auto _ : state) {
          benchmark::DoNotOptimize(runner.run(spec));
        }
      });
  benchmark::RegisterBenchmark(
      ("model_calibration/" + platform).c_str(),
      [platform](benchmark::State& state) {
        pipeline::Runner runner;
        const pipeline::ScenarioResult scenario =
            runner.run(calibration_scenario(platform));
        for (auto _ : state) {
          benchmark::DoNotOptimize(
              model::ContentionModel::from_sweep(scenario.calibration));
        }
      });
  benchmark::RegisterBenchmark(
      ("model_prediction/" + platform).c_str(),
      [platform](benchmark::State& state) {
        pipeline::Runner runner;
        const pipeline::ScenarioResult scenario =
            runner.run(calibration_scenario(platform));
        const model::ContentionModel model = scenario.contention_model();
        const topo::NumaId remote(static_cast<std::uint32_t>(
            scenario.sweep.numa_per_socket));
        for (auto _ : state) {
          benchmark::DoNotOptimize(model.predict({topo::NumaId(0), remote}));
        }
      });
}

/// Initialize and run google-benchmark (call after registration). Under
/// MCM_BENCH_SMOKE=1 the timing loops are skipped entirely.
inline int run_benchmarks(int argc, char** argv) {
  if (smoke_mode()) {
    std::printf("MCM_BENCH_SMOKE=1: skipping google-benchmark timing "
                "loops\n");
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

/// The common tail of every bench main(): run the timing loops, then
/// write the report. A report-write failure fails the binary even when
/// the benchmarks ran fine.
inline int finish(BenchRun& run, int argc, char** argv) {
  {
    const BenchRun::Stage timer(run.report(), "google_benchmark");
    const int rc = run_benchmarks(argc, argv);
    if (rc != 0) return rc;
  }
  return run.write();
}

}  // namespace mcm::benchx
