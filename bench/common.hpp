// Shared scaffolding of the reproduction benchmark binaries.
//
// Every binary does two things:
//  1. print the paper artefact it reproduces (figure series or table) and
//     drop the raw series as a CSV file next to the working directory, and
//  2. register google-benchmark timings for the pipeline stages involved,
//     so `--benchmark_filter` etc. work as usual.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "benchlib/backend.hpp"
#include "benchlib/runner.hpp"
#include "eval/figures.hpp"
#include "model/model.hpp"
#include "topo/platforms.hpp"

namespace mcm::benchx {

/// Print a full figure reproduction and write `<csv_name>` with the series.
inline void emit_figure(const std::string& figure_id,
                        const std::string& platform,
                        const std::string& csv_name) {
  const eval::FigureData figure = eval::make_figure(figure_id, platform);
  std::fputs(eval::render_figure(figure).c_str(), stdout);
  const std::string csv = eval::figure_csv(figure);
  if (FILE* f = std::fopen(csv_name.c_str(), "w")) {
    std::fputs(csv.c_str(), f);
    std::fclose(f);
    std::printf("raw series written to %s\n\n", csv_name.c_str());
  }
}

/// Register the standard pipeline timings for one platform.
inline void register_pipeline_benchmarks(const std::string& platform) {
  benchmark::RegisterBenchmark(
      ("calibration_sweep/" + platform).c_str(),
      [platform](benchmark::State& state) {
        for (auto _ : state) {
          bench::SimBackend backend(topo::make_platform(platform));
          benchmark::DoNotOptimize(bench::run_calibration_sweep(backend));
        }
      });
  benchmark::RegisterBenchmark(
      ("model_calibration/" + platform).c_str(),
      [platform](benchmark::State& state) {
        bench::SimBackend backend(topo::make_platform(platform));
        const bench::SweepResult sweep =
            bench::run_calibration_sweep(backend);
        for (auto _ : state) {
          benchmark::DoNotOptimize(model::ContentionModel::from_sweep(sweep));
        }
      });
  benchmark::RegisterBenchmark(
      ("model_prediction/" + platform).c_str(),
      [platform](benchmark::State& state) {
        bench::SimBackend backend(topo::make_platform(platform));
        const model::ContentionModel model =
            model::ContentionModel::from_backend(backend);
        for (auto _ : state) {
          benchmark::DoNotOptimize(
              model.predict(topo::NumaId(0),
                            topo::NumaId(static_cast<std::uint32_t>(
                                backend.numa_per_socket()))));
        }
      });
}

/// Initialize and run google-benchmark (call after registration).
inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace mcm::benchx
