// E-FIG6 — reproduction of Figure 6: performances of
// computations and communications along with the model prediction on
// occigen, for every placement of computation and communication data.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  mcm::benchx::BenchRun run("fig6_occigen");
  mcm::benchx::emit_figure("Figure 6", "occigen",
                           "bench_fig6_occigen.csv", &run);
  mcm::benchx::register_pipeline_benchmarks("occigen");
  return mcm::benchx::finish(run, argc, argv);
}
