// E-EXT4 — last-level-cache extension (paper §VI future work): replace the
// non-temporal memset with a temporal (cached) fill and sweep the per-core
// working set on henri. The LLC absorbs part of the traffic, so contention
// depends on the aggregate footprint relative to the cache — exactly the
// cache-dependence the paper excluded from its model (§II-C) and deferred
// to future work.
//
// Expected shape: cache-resident working sets leave the network at nominal
// bandwidth regardless of core count; footprints far beyond the LLC
// converge to the paper's non-temporal behaviour.
#include "bench/common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mcm;
  benchx::BenchRun run("ext_llc");
  run.report().platform = "henri";

  AsciiTable table({"working set/core", "LLC hit @ full load",
                    "compute GB/s (mem traffic)", "network GB/s",
                    "network vs nominal"});
  table.set_alignments({Align::kRight, Align::kRight, Align::kRight,
                        Align::kRight, Align::kRight});

  const topo::NumaId node0(0);
  double nominal = 0.0;
  // One machine for the whole sweep: only the working-set knob changes
  // per point, so rebuilding the topology each iteration buys nothing.
  sim::SimMachine machine(topo::make_henri());
  machine.set_compute_kernel(sim::ComputeKernel::kCachedFill);
  {
    const auto timer = run.stage("llc_sweep");
    for (const std::uint64_t mib : {1ull, 2ull, 4ull, 8ull, 16ull, 64ull,
                                    256ull}) {
      machine.set_working_set_bytes(mib * kMiB);
      const std::size_t n = machine.max_computing_cores();
      if (nominal == 0.0) nominal = machine.steady_comm_alone(node0).gb();
      const auto rates = machine.steady_parallel(n, node0, node0);
      table.add_row(
          {std::to_string(mib) + " MiB",
           format_percent(100.0 * machine.llc_hit_fraction(n)),
           format_fixed(rates.compute.gb(), 2),
           format_fixed(rates.comm.gb(), 2),
           format_percent(100.0 * rates.comm.gb() / nominal)});
      const std::string prefix = "ws_" + std::to_string(mib) + "mib";
      run.report().add_metric(prefix + ".llc_hit_pct",
                              100.0 * machine.llc_hit_fraction(n));
      run.report().add_metric(prefix + ".compute_gb", rates.compute.gb());
      run.report().add_metric(prefix + ".comm_gb", rates.comm.gb());
    }
  }
  // Reference: the paper's non-temporal kernel at the same core count.
  sim::SimMachine reference(topo::make_henri());
  const auto nt = reference.steady_parallel(
      reference.max_computing_cores(), node0, node0);
  table.add_separator();
  table.add_row({"non-temporal (paper)", "0.00 %",
                 format_fixed(nt.compute.gb(), 2),
                 format_fixed(nt.comm.gb(), 2),
                 format_percent(100.0 * nt.comm.gb() / nominal)});
  run.report().add_metric("nominal_comm_gb", nominal);
  run.report().add_metric("non_temporal.comm_gb", nt.comm.gb());
  run.report().add_metric("non_temporal.compute_gb", nt.compute.gb());

  std::printf("== LLC extension: cached fill kernel on henri, all %zu "
              "cores, both data blocks on node 0 ==\n%s\n",
              reference.max_computing_cores(), table.render().c_str());

  benchmark::RegisterBenchmark(
      "cached_kernel_sweep", [](benchmark::State& state) {
        // Machine construction hoisted out of the timed loop: the
        // benchmark times the steady-state query, not topology set-up.
        sim::SimMachine machine(topo::make_henri());
        machine.set_compute_kernel(sim::ComputeKernel::kCachedFill);
        machine.set_working_set_bytes(8 * kMiB);
        for (auto _ : state) {
          benchmark::DoNotOptimize(machine.steady_parallel(
              machine.max_computing_cores(), topo::NumaId(0),
              topo::NumaId(0)));
        }
      });
  return benchx::finish(run, argc, argv);
}
