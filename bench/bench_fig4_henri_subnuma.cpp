// E-FIG4 — reproduction of Figure 4: performances of
// computations and communications along with the model prediction on
// henri-subnuma, for every placement of computation and communication data.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  mcm::benchx::BenchRun run("fig4_henri_subnuma");
  mcm::benchx::emit_figure("Figure 4", "henri-subnuma",
                           "bench_fig4_henri_subnuma.csv", &run);
  mcm::benchx::register_pipeline_benchmarks("henri-subnuma");
  return mcm::benchx::finish(run, argc, argv);
}
