// E-FIG7 — reproduction of Figure 7: performances of
// computations and communications along with the model prediction on
// pyxis, for every placement of computation and communication data.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  mcm::benchx::emit_figure("Figure 7", "pyxis",
                           "bench_fig7_pyxis.csv");
  mcm::benchx::register_pipeline_benchmarks("pyxis");
  return mcm::benchx::run_benchmarks(argc, argv);
}
