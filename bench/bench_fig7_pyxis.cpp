// E-FIG7 — reproduction of Figure 7: performances of
// computations and communications along with the model prediction on
// pyxis, for every placement of computation and communication data.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  mcm::benchx::BenchRun run("fig7_pyxis");
  mcm::benchx::emit_figure("Figure 7", "pyxis",
                           "bench_fig7_pyxis.csv", &run);
  mcm::benchx::register_pipeline_benchmarks("pyxis");
  return mcm::benchx::finish(run, argc, argv);
}
