// E-EXT2 — workload-variant sweep (the paper's §VI future work): how the
// contention picture changes with bidirectional (ping-pong) communications
// and with a copy kernel instead of the memset kernel — and whether the
// model form still fits when recalibrated on each variant.
//
// Expected shape: ping-pongs and copy kernels both move contention onset to
// fewer cores (more traffic per core / per message), while the recalibrated
// model keeps low sample error — the paper's conjecture that "the insights
// provided by our model in the worst case should still be valid".
#include "bench/common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

struct Variant {
  const char* name;
  mcm::sim::CommPattern pattern;
  mcm::sim::ComputeKernel kernel;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mcm;
  benchx::BenchRun run("sweep_workloads");
  run.report().platform = "henri";

  const Variant variants[] = {
      {"fill + receive-only (paper)", sim::CommPattern::kReceiveOnly,
       sim::ComputeKernel::kFill},
      {"fill + bidirectional", sim::CommPattern::kBidirectional,
       sim::ComputeKernel::kFill},
      {"copy + receive-only", sim::CommPattern::kReceiveOnly,
       sim::ComputeKernel::kCopy},
      {"copy + bidirectional", sim::CommPattern::kBidirectional,
       sim::ComputeKernel::kCopy},
  };

  AsciiTable table({"workload", "contention onset", "comm floor",
                    "Tmax_par", "sample error (recalibrated)"});
  table.set_alignments({Align::kLeft, Align::kRight, Align::kRight,
                        Align::kRight, Align::kRight});
  std::size_t variant_index = 0;
  // One backend for every variant: the topology is identical, only the
  // workload knobs change (the steady cache keys on them, so switching
  // back and forth stays exact).
  bench::SimBackend backend(topo::make_henri());
  for (const Variant& variant : variants) {
    const auto timer =
        run.stage("variant_" + std::to_string(variant_index));

    // Contention onset: first core count where comm loses 10 % of nominal
    // on the both-local diagonal (steady values, no benchmark noise).
    backend.machine().set_comm_pattern(variant.pattern);
    backend.machine().set_compute_kernel(variant.kernel);
    const topo::NumaId node0(0);
    const double nominal =
        backend.machine().steady_comm_alone(node0).gb();
    std::size_t onset = backend.max_computing_cores() + 1;
    double floor_gb = nominal;
    for (std::size_t n = 1; n <= backend.max_computing_cores(); ++n) {
      const double comm =
          backend.machine().steady_parallel(n, node0, node0).comm.gb();
      if (comm < nominal * 0.9 && onset > backend.max_computing_cores()) {
        onset = n;
      }
      floor_gb = std::min(floor_gb, comm);
    }

    // Recalibrated model + full sweep + Table-II score, one scenario per
    // workload variant (each keyed separately in the calibration cache).
    pipeline::ScenarioSpec spec;
    spec.name = std::string("workload-") + variant.name;
    spec.platform = "henri";
    spec.comm_pattern = variant.pattern;
    spec.compute_kernel = variant.kernel;
    const pipeline::ScenarioResult result = run.runner().run(spec);
    const model::ErrorReport& report = result.errors;

    table.add_row({variant.name,
                   onset <= backend.max_computing_cores()
                       ? std::to_string(onset) + " cores"
                       : "none",
                   format_gbps(floor_gb),
                   format_gbps(result.local.t_par_max),
                   format_percent(0.5 * (report.comm_samples +
                                         report.comp_samples))});

    const std::string prefix = "variant_" + std::to_string(variant_index);
    run.report().add_metric(prefix + ".onset_cores",
                            static_cast<double>(onset));
    run.report().add_metric(prefix + ".comm_floor_gb", floor_gb);
    run.report().add_metric(prefix + ".t_par_max_gb",
                            result.local.t_par_max);
    run.report().add_metric(
        prefix + ".sample_mape",
        0.5 * (report.comm_samples + report.comp_samples));
    ++variant_index;
  }
  std::printf("== Workload variants on henri (both data blocks on node 0) "
              "==\n%s\n",
              table.render().c_str());

  benchmark::RegisterBenchmark(
      "variant_pipeline/copy_bidirectional", [](benchmark::State& state) {
        // Runner hoisted out of the timed loop: iterations after the
        // first exercise the calibration cache, pooled backends and the
        // shared steady-state cache — the steady-state service path.
        pipeline::Runner runner;
        pipeline::ScenarioSpec spec;
        spec.platform = "henri";
        spec.placements = pipeline::PlacementSet::kCalibration;
        spec.comm_pattern = sim::CommPattern::kBidirectional;
        spec.compute_kernel = sim::ComputeKernel::kCopy;
        for (auto _ : state) {
          benchmark::DoNotOptimize(runner.run(spec));
        }
      });
  return benchx::finish(run, argc, argv);
}
