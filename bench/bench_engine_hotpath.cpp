// E-ENG1 — engine hot-path benchmark: the incremental water-filling engine
// (arbiter epochs + dirty-link resolve + solve cache) against the
// pre-refactor full-solve reference, on a churn workload shaped like the
// paper's benchmark inner loop — every computing core streaming endlessly
// while message chains complete and restart back to back.
//
// Two guarantees are measured and gated:
//   equivalence — both modes produce bitwise-identical completion streams
//                 and flow byte counts (the refactor's exactness claim),
//   efficiency  — the incremental mode retires the same slices with a
//                 fraction of the arbiter work (deterministic counter
//                 ratio) and >= 10x the slices/sec (wall clock).
// Counter-derived metrics and equivalence flags are deterministic and
// bench-diff gated; wall-clock rates go to stages/series, informational.
//
// Note: build without MCM_SANITIZE for baseline comparison — the
// sanitizer's incremental-vs-full cross-check re-solves through the same
// arbiter and shifts the sim.arbiter.* counters (see sim/engine.hpp).
#include <chrono>
#include <unordered_map>

#include "bench/common.hpp"
#include "sim/machine.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace mcm;

constexpr std::size_t kChains = 8;
/// Endless compute flows per (core, NUMA node) pair: models several
/// co-scheduled ranks per core sharing the memory system, and scales the
/// stream count past a single placement cell's worth.
constexpr std::size_t kFlowFanout = 3;
constexpr std::uint64_t kMessageBytes = 4 * kMiB;
constexpr double kSimulatedSeconds = 0.1;

/// Everything one workload run produces that the two modes must agree on,
/// plus the counters of its (optional) metrics registry.
struct WorkloadResult {
  std::vector<sim::Completion> completions;
  std::vector<double> flow_bytes;
  double final_now = 0.0;
  /// Wall seconds of the churn loop alone — machine/engine construction
  /// and stream starts excluded (identical in both modes).
  double churn_seconds = 0.0;
  obs::MetricsSnapshot metrics;
};

/// The churn workload: every computing core runs an endless compute flow
/// on node 0 while kChains message chains receive back to back into nodes
/// spread over the topology; each completion immediately restarts its
/// chain. Identical calls are bit-identical — the engine is the only
/// source of dynamics.
WorkloadResult run_workload(sim::Engine::SolveMode mode,
                            obs::MetricsRegistry* registry) {
  sim::SimMachine machine(topo::make_henri());
  const topo::NumaId node0(0);
  const std::size_t cores = machine.max_computing_cores();
  const std::size_t numa = machine.machine().numa_count();

  sim::Engine engine(machine.machine(), machine.policy());
  engine.set_solve_mode(mode);
  if (registry != nullptr) {
    obs::Observer observer;
    observer.metrics = registry;
    engine.attach_observer(observer);
  }

  // Many-stream load: every computing core streams to every NUMA node
  // (cores x numa endless flows), so the arbiter's fixed point spans the
  // whole link graph and the full-solve cost is representative of a
  // loaded node rather than a single placement cell.
  std::vector<sim::TransferId> flows;
  for (std::size_t node = 0; node < numa; ++node) {
    for (std::size_t i = 0; i < cores * kFlowFanout; ++i) {
      flows.push_back(engine.start_flow(machine.compute_stream(
          cores, topo::NumaId(static_cast<std::uint32_t>(node)))));
    }
  }
  (void)node0;
  // One receive spec per chain, built once — restarts reuse it, like a
  // long-lived channel reuses its stream description.
  std::vector<sim::StreamSpec> chain_spec;
  std::unordered_map<sim::TransferId, std::size_t> chain_of;
  for (std::size_t c = 0; c < kChains; ++c) {
    chain_spec.push_back(machine.dma_stream(
        topo::NumaId(static_cast<std::uint32_t>(c % numa))));
    chain_of.emplace(engine.start_transfer(chain_spec[c], kMessageBytes),
                     c);
  }

  WorkloadResult result;
  const Seconds deadline(kSimulatedSeconds);
  const auto churn_start = std::chrono::steady_clock::now();
  while (true) {
    const std::optional<sim::Completion> completion =
        engine.run_until_next_completion(deadline);
    if (!completion) break;
    result.completions.push_back(*completion);
    const auto it = chain_of.find(completion->id);
    const std::size_t chain = it->second;
    chain_of.erase(it);
    chain_of.emplace(
        engine.start_transfer(chain_spec[chain], kMessageBytes), chain);
  }
  result.churn_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    churn_start)
          .count();
  for (const sim::TransferId flow : flows) {
    result.flow_bytes.push_back(
        static_cast<double>(engine.bytes_moved(flow)));
  }
  result.final_now = engine.now().value();
  if (registry != nullptr) result.metrics = registry->snapshot();
  return result;
}

/// Bitwise comparison of the two modes' observable outcomes.
[[nodiscard]] bool same_completions(const WorkloadResult& a,
                                    const WorkloadResult& b) {
  if (a.completions.size() != b.completions.size()) return false;
  for (std::size_t i = 0; i < a.completions.size(); ++i) {
    if (a.completions[i].id != b.completions[i].id) return false;
    if (a.completions[i].time.value() != b.completions[i].time.value()) {
      return false;
    }
  }
  return a.final_now == b.final_now;
}

[[nodiscard]] bool same_flow_bytes(const WorkloadResult& a,
                                   const WorkloadResult& b) {
  return a.flow_bytes == b.flow_bytes;
}

[[nodiscard]] std::uint64_t counter_of(const obs::MetricsSnapshot& snapshot,
                                       const char* name) {
  const auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

/// Best-of-`reps` churn-loop wall seconds for one mode (no observer
/// attached: times the bare engine, not the instrumentation).
[[nodiscard]] double best_wall_seconds(sim::Engine::SolveMode mode,
                                       std::size_t reps) {
  double best = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    const WorkloadResult result = run_workload(mode, nullptr);
    benchmark::DoNotOptimize(result.final_now);
    if (best == 0.0 || result.churn_seconds < best) {
      best = result.churn_seconds;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcm;
  benchx::BenchRun run("engine_hotpath");
  run.report().platform = "henri";

  // -- counted runs: deterministic counters + equivalence ----------------
  obs::MetricsRegistry incremental_metrics;
  obs::MetricsRegistry full_metrics;
  WorkloadResult incremental;
  WorkloadResult full;
  {
    const auto timer = run.stage("counted_runs");
    incremental = run_workload(sim::Engine::SolveMode::kIncremental,
                               &incremental_metrics);
    full = run_workload(sim::Engine::SolveMode::kFull, &full_metrics);
  }

  const double completions =
      static_cast<double>(incremental.completions.size());
  const double slices =
      static_cast<double>(counter_of(incremental.metrics,
                                     "sim.engine.slices"));
  const double refreshes = static_cast<double>(
      counter_of(incremental.metrics, "sim.engine.rate_refreshes"));
  const double avoided = static_cast<double>(
      counter_of(incremental.metrics, "sim.engine.solves_avoided"));
  const double dirty_links = static_cast<double>(
      counter_of(incremental.metrics, "sim.engine.dirty_links"));
  const double incremental_solves = static_cast<double>(
      counter_of(incremental.metrics, "sim.arbiter.incremental_solves"));
  const double links_resolved = static_cast<double>(
      counter_of(incremental.metrics, "sim.arbiter.links_resolved"));
  const double iterations_incremental = static_cast<double>(
      counter_of(incremental.metrics, "sim.arbiter.iterations"));
  const double full_solves = static_cast<double>(
      counter_of(full.metrics, "sim.arbiter.full_solves"));
  const double iterations_full = static_cast<double>(
      counter_of(full.metrics, "sim.arbiter.iterations"));

  // Deterministic work ratio: arbiter fixed-point iterations the full
  // path spends per workload vs the incremental path (cache hits skip
  // the arbiter entirely, dirty-link resolves converge over live state).
  const double work_ratio =
      iterations_full /
      (iterations_incremental > 0.0 ? iterations_incremental : 1.0);

  const bool eq_completions = same_completions(incremental, full);
  const bool eq_flow_bytes = same_flow_bytes(incremental, full);

  run.report().add_metric("completions", completions);
  run.report().add_metric("slices", slices);
  run.report().add_metric("rate_refreshes", refreshes);
  run.report().add_metric("solves_avoided", avoided);
  run.report().add_metric("solves_avoided_fraction",
                          refreshes > 0.0 ? avoided / refreshes : 0.0);
  run.report().add_metric("dirty_links", dirty_links);
  run.report().add_metric("incremental_solves", incremental_solves);
  run.report().add_metric("links_resolved", links_resolved);
  run.report().add_metric("iterations_incremental", iterations_incremental);
  run.report().add_metric("full_solves", full_solves);
  run.report().add_metric("iterations_full", iterations_full);
  run.report().add_metric("work_ratio", work_ratio);
  run.report().add_metric("work_ratio_ok", work_ratio >= 10.0 ? 1.0 : 0.0);
  run.report().add_metric("eq_completions", eq_completions ? 1.0 : 0.0);
  run.report().add_metric("eq_flow_bytes", eq_flow_bytes ? 1.0 : 0.0);

  // -- timed runs: wall-clock slices/sec (informational, noisy) ----------
  double incremental_wall = 0.0;
  double full_wall = 0.0;
  {
    const auto timer = run.stage("timed_runs");
    const std::size_t reps = benchx::smoke_reps(5, 2);
    incremental_wall =
        best_wall_seconds(sim::Engine::SolveMode::kIncremental, reps);
    full_wall = best_wall_seconds(sim::Engine::SolveMode::kFull, reps);
  }
  const double speedup =
      incremental_wall > 0.0 ? full_wall / incremental_wall : 0.0;
  run.report().add_metric("speedup_ok", speedup >= 10.0 ? 1.0 : 0.0);
  run.report().add_series("slices_per_sec",
                          {slices / incremental_wall, slices / full_wall});
  run.report().add_series("wall_speedup", {speedup});

  AsciiTable table({"mode", "slices", "arbiter iterations", "wall",
                    "slices/sec"});
  table.set_alignments({Align::kLeft, Align::kRight, Align::kRight,
                        Align::kRight, Align::kRight});
  table.add_row({"incremental", format_fixed(slices, 0),
                 format_fixed(iterations_incremental, 0),
                 format_fixed(incremental_wall * 1e3, 2) + " ms",
                 format_fixed(slices / incremental_wall, 0)});
  table.add_row({"full solve", format_fixed(slices, 0),
                 format_fixed(iterations_full, 0),
                 format_fixed(full_wall * 1e3, 2) + " ms",
                 format_fixed(slices / full_wall, 0)});
  std::printf(
      "== Engine hot path (henri, %zu-chain message churn, %.2f s "
      "simulated) ==\n%s"
      "completions: %.0f  solve-cache hit rate: %.1f %%  work ratio "
      "(full/incremental iterations): %.1f x  wall speedup: %.1f x\n"
      "equivalence: completions %s, flow bytes %s\n\n",
      kChains, kSimulatedSeconds, table.render().c_str(), completions,
      refreshes > 0.0 ? 100.0 * avoided / refreshes : 0.0, work_ratio,
      speedup, eq_completions ? "bitwise-equal" : "MISMATCH",
      eq_flow_bytes ? "bitwise-equal" : "MISMATCH");

  benchmark::RegisterBenchmark(
      "engine_churn/incremental", [](benchmark::State& state) {
        for (auto _ : state) {
          benchmark::DoNotOptimize(
              run_workload(sim::Engine::SolveMode::kIncremental, nullptr));
        }
      });
  benchmark::RegisterBenchmark(
      "engine_churn/full_solve", [](benchmark::State& state) {
        for (auto _ : state) {
          benchmark::DoNotOptimize(
              run_workload(sim::Engine::SolveMode::kFull, nullptr));
        }
      });
  return benchx::finish(run, argc, argv);
}
