// E-EXT1 — message-size sensitivity (extension of paper §IV-C-1): the
// model is calibrated for 64 MiB messages; this sweep measures how memory
// contention changes with smaller messages on henri's both-local diagonal.
// Expected shape: small (latency-bound) messages barely contend; the
// pressure grows with message size and saturates near the calibrated
// 64 MiB regime — so a model calibrated at 64 MiB is a worst-case bound.
#include "bench/common.hpp"
#include "net/sim_channel.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mcm;
  benchx::BenchRun run("sweep_msgsize");
  run.report().platform = "henri";
  sim::SimMachine machine(topo::make_henri());
  const net::SimChannel channel(machine);
  const topo::NumaId node0(0);
  const std::size_t full_load = machine.max_computing_cores();

  AsciiTable table({"message size", "idle comm", "loaded comm",
                    "contention loss"});
  table.set_alignments({Align::kRight, Align::kRight, Align::kRight,
                        Align::kRight});
  {
    const auto timer = run.stage("msgsize_sweep");
    for (std::uint64_t kib :
         {4ull, 64ull, 256ull, 1024ull, 4096ull, 16384ull, 65536ull}) {
      const std::uint64_t bytes = kib * kKiB;
      const double idle =
          channel.effective_bandwidth_under_load(bytes, 0, node0, node0)
              .gb();
      const double loaded =
          channel
              .effective_bandwidth_under_load(bytes, full_load, node0,
                                              node0)
              .gb();
      const std::string prefix = "msg_" + std::to_string(kib) + "kib";
      run.report().add_metric(prefix + ".idle_gb", idle);
      run.report().add_metric(prefix + ".loaded_gb", loaded);
      run.report().add_metric(prefix + ".contention_loss_pct",
                              100.0 * (1.0 - loaded / idle));
      table.add_row({std::to_string(kib) + " KiB", format_gbps(idle),
                     format_gbps(loaded),
                     format_percent(100.0 * (1.0 - loaded / idle))});
    }
  }
  std::printf("== Message-size sensitivity of memory contention (henri, "
              "both data blocks on node 0, %zu computing cores) ==\n%s\n",
              full_load, table.render().c_str());

  // Reuse the sweep's machine (and its warm steady cache): the benchmark
  // times the hot path a long-lived channel sees, not machine set-up.
  benchmark::RegisterBenchmark(
      "message_time/64MiB_loaded",
      [&machine, &channel](benchmark::State& state) {
        for (auto _ : state) {
          benchmark::DoNotOptimize(channel.message_time_under_load(
              64 * kMiB, machine.max_computing_cores(), topo::NumaId(0),
              topo::NumaId(0)));
        }
      });
  return benchx::finish(run, argc, argv);
}
