// E-SVC2 — observability cost of the prediction service: the latency
// histograms, request/queue_wait spans and structured log added by the
// tracing layer must not tax the serving hot path. Runs the same cached
// predict sweep through an untraced and a fully instrumented Service and
// compares per-request cost (the acceptance bar is <5% overhead), checks
// the deterministic span/log/instrument counts the sweep must produce,
// and times the two primitive costs (LatencyHistogram::record_us, one
// debug log line) in isolation.
#include <sstream>

#include "bench/common.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_context.hpp"
#include "svc/server.hpp"
#include "util/contracts.hpp"

namespace {

using namespace mcm;

/// Admission sized for a back-to-back sweep: the default interactive
/// bucket (8-token burst) would shed a benchmark loop by design.
[[nodiscard]] svc::ServiceOptions sweep_options(std::size_t requests) {
  svc::ServiceOptions options;
  options.admission.interactive = {static_cast<double>(requests + 1), 0.0};
  return options;
}

[[nodiscard]] svc::Request predict_request(std::size_t seq,
                                           std::uint64_t trace_id = 0,
                                           std::uint64_t span_id = 0) {
  svc::Request request;
  request.id = "p" + std::to_string(seq);
  request.method = svc::Method::kPredict;
  request.spec = benchx::calibration_scenario("henri");
  request.trace.trace_id = trace_id;
  request.trace.span_id = span_id;
  return request;
}

/// Drive `requests` cached predicts through the service (the calibration
/// must already be warm) and return the mean per-request cost in µs.
/// With `ids`, every request carries a fresh trace/span identity the way
/// a traced client would send them.
double cached_sweep_us(svc::Service& service, std::size_t requests,
                       obs::TraceIdGenerator* ids) {
  obs::WallClock clock;
  for (std::size_t i = 0; i < requests; ++i) {
    svc::Request request =
        ids != nullptr
            ? predict_request(i + 1, ids->next(), ids->next())
            : predict_request(i + 1);
    MCM_ENSURES(service.handle_request(request).ok);
  }
  return clock.now_us() / static_cast<double>(requests);
}

[[nodiscard]] std::uint64_t latency_count(const obs::MetricsSnapshot& snap,
                                          const std::string& name) {
  const auto it = snap.latencies.find(name);
  return it == snap.latencies.end() ? 0 : it->second.count;
}

/// Occurrences of `needle` in `haystack` (for counting JSONL log events).
[[nodiscard]] std::size_t count_of(const std::string& haystack,
                                   const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  benchx::BenchRun run("svc_latency");
  run.report().platform = "henri";
  const std::size_t kRequests = benchx::smoke_reps(2048, 256);
  constexpr const char* kTotal =
      "svc.latency.total{class=\"interactive\",method=\"predict\"}";

  // -- Baseline: no sink, no log. One calibration, then a cached sweep.
  double untraced_us = 0.0;
  {
    svc::Service service(sweep_options(kRequests));
    MCM_ENSURES(service.handle_request(predict_request(0)).ok);
    const auto timer = run.stage("untraced_cached");
    untraced_us = cached_sweep_us(service, kRequests, nullptr);
    const obs::MetricsSnapshot snap = service.metrics().snapshot();
    // Scale-free invariants (metrics must match between smoke and full
    // runs, so raw counts are normalized by the request count).
    run.report().add_metric(
        "untraced.latency_total_per_req",
        static_cast<double>(latency_count(snap, kTotal)) /
            static_cast<double>(snap.counters.at("svc.requests")));
  }

  // -- Instrumented: trace sink + debug-level structured log, every
  //    request carrying a client-style trace identity.
  double traced_us = 0.0;
  obs::LatencySnapshot traced_total;
  {
    obs::ChromeTraceSink sink;
    std::ostringstream log_lines;
    obs::Log log;
    log.attach(&log_lines);
    log.set_level(obs::LogLevel::kDebug);
    svc::ServiceOptions options = sweep_options(kRequests);
    options.trace = &sink;
    options.log = &log;
    svc::Service service(options);
    obs::TraceIdGenerator ids(7);
    {
      svc::Request warm = predict_request(0, ids.next(), ids.next());
      MCM_ENSURES(service.handle_request(warm).ok);
    }
    {
      const auto timer = run.stage("traced_cached");
      traced_us = cached_sweep_us(service, kRequests, &ids);
    }
    const obs::MetricsSnapshot snap = service.metrics().snapshot();
    traced_total = snap.latencies.at(kTotal);
    // Deterministic shape of the instrumented sweep: one request and one
    // queue_wait span per request, every latency sample accounted for,
    // exactly one calibration measured (cache hits skip the calibrate
    // instrument), in-flight back to zero.
    const auto requests =
        static_cast<double>(snap.counters.at("svc.requests"));
    run.report().add_metric(
        "traced.request_spans_per_req",
        static_cast<double>(sink.count("request")) / requests);
    run.report().add_metric(
        "traced.queue_wait_spans_per_req",
        static_cast<double>(sink.count("queue_wait")) / requests);
    run.report().add_metric(
        "traced.latency_total_per_req",
        static_cast<double>(traced_total.count) / requests);
    run.report().add_metric(
        "traced.latency_calibrate_count",
        static_cast<double>(
            latency_count(snap, "svc.latency.calibrate")));
    run.report().add_metric("traced.inflight",
                            snap.gauges.at("svc.inflight"));
    // Timing quantiles are machine-dependent: report them as series (not
    // gated by bench-diff) so runs can still be compared by eye.
    run.report().add_series("traced.latency_total_us",
                            {traced_total.p50_us, traced_total.p95_us,
                             traced_total.p99_us, traced_total.max_us});
  }
  run.report().add_series("overhead.us_per_request",
                          {untraced_us, traced_us});
  std::printf("cached predict: %.2f us/req untraced, %.2f us/req traced "
              "(p50 %.1f / p95 %.1f / p99 %.1f us)\n",
              untraced_us, traced_us, traced_total.p50_us,
              traced_total.p95_us, traced_total.p99_us);

  // -- Shed path: admission rejections must hit the structured log with
  //    the request's trace id echoed — the debugging workflow the docs
  //    walk through. Frozen clock: the single bulk token never refills.
  {
    const auto timer = run.stage("shed_logging");
    std::ostringstream log_lines;
    obs::Log log;
    log.attach(&log_lines);
    svc::ServiceOptions options;
    options.admission.bulk = {1.0, 0.0};
    options.clock = [] { return 0.0; };
    options.log = &log;
    svc::Service service(options);
    svc::Request ok = predict_request(0, 0x4d2, 0xabc);
    ok.traffic_class = svc::TrafficClass::kBulk;
    MCM_ENSURES(service.handle_request(ok).ok);
    for (std::size_t i = 1; i <= 3; ++i) {
      svc::Request shed = predict_request(i, 0x4d2, 0xabc + i);
      shed.traffic_class = svc::TrafficClass::kBulk;
      MCM_ENSURES(!service.handle_request(shed).ok);
    }
    const std::string lines = log_lines.str();
    run.report().add_metric(
        "shed.log_events",
        static_cast<double>(count_of(lines, "\"event\":\"shed\"")));
    run.report().add_metric(
        "shed.trace_id_echoed",
        static_cast<double>(count_of(lines, "0000000004d2")));
  }

  // -- Primitive costs, timed by google-benchmark (skipped under smoke).
  benchmark::RegisterBenchmark("latency_record_us",
                               [](benchmark::State& state) {
                                 obs::LatencyHistogram histogram;
                                 double us = 0.5;
                                 for (auto _ : state) {
                                   histogram.record_us(us);
                                   us = us < 2e7 ? us * 1.7 : 0.5;
                                 }
                                 benchmark::DoNotOptimize(histogram.count());
                               });
  benchmark::RegisterBenchmark("log_line_debug",
                               [](benchmark::State& state) {
                                 std::ostringstream out;
                                 obs::Log log;
                                 log.attach(&out);
                                 log.set_level(obs::LogLevel::kDebug);
                                 for (auto _ : state) {
                                   log.debug("bench",
                                             {{"seq", std::uint64_t{1}},
                                              {"us", 12.5}});
                                   out.str("");
                                 }
                               });
  benchmark::RegisterBenchmark("log_line_suppressed",
                               [](benchmark::State& state) {
                                 obs::Log log;  // null sink: the no-op path
                                 for (auto _ : state) {
                                   log.debug("bench",
                                             {{"seq", std::uint64_t{1}}});
                                 }
                               });
  return benchx::finish(run, argc, argv);
}
