// E-FIG2 — reproduction of Figure 2: stacked memory bandwidth for
// computations and communications on the henri-subnuma both-local sweep,
// annotated with the calibrated model anchor points.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  mcm::benchx::BenchRun run("fig2_stacked");
  {
    const auto timer = run.stage("figure");
    const mcm::eval::FigureData figure =
        mcm::eval::make_figure("Figure 2", "henri-subnuma");
    run.add_figure(figure);
    std::fputs(mcm::eval::render_stacked(figure, mcm::topo::NumaId(0),
                                         mcm::topo::NumaId(0))
                   .c_str(),
               stdout);
  }
  std::printf("\n");

  mcm::benchx::register_pipeline_benchmarks("henri-subnuma");
  return mcm::benchx::finish(run, argc, argv);
}
