// E-ABL2 — predictor comparison: score the paper's model against the
// baseline predictors (processor-sharing queue, Langguth-style equal
// split, perfect scaling) with the Table-II protocol. Supports the paper's
// §II-D argument that a simple threshold model beats queueing-style models
// for this problem.
#include "bench/common.hpp"
#include "eval/ablation.hpp"
#include "model/report.hpp"

int main(int argc, char** argv) {
  mcm::benchx::BenchRun run("ablation_baselines");
  run.report().platform = "henri,henri-subnuma,occigen";
  for (const char* platform : {"henri", "henri-subnuma", "occigen"}) {
    const auto timer = run.stage(std::string("predictors_") + platform);
    const std::vector<mcm::model::ErrorReport> reports =
        mcm::eval::run_predictor_comparison(platform);
    std::printf("== Predictor comparison on %s ==\n%s\n", platform,
                mcm::model::render_error_table(reports).c_str());
    for (const mcm::model::ErrorReport& report : reports) {
      run.report().add_metric(std::string(platform) + "." +
                                  report.platform + ".mape.average",
                              report.average);
    }
  }

  benchmark::RegisterBenchmark(
      "predictor_comparison/henri", [](benchmark::State& state) {
        for (auto _ : state) {
          benchmark::DoNotOptimize(
              mcm::eval::run_predictor_comparison("henri"));
        }
      });
  return mcm::benchx::finish(run, argc, argv);
}
