// E-ABL2 — predictor comparison: score the paper's model against the
// baseline predictors (processor-sharing queue, Langguth-style equal
// split, perfect scaling) with the Table-II protocol. Supports the paper's
// §II-D argument that a simple threshold model beats queueing-style models
// for this problem.
#include "bench/common.hpp"
#include "eval/ablation.hpp"
#include "model/report.hpp"

int main(int argc, char** argv) {
  for (const char* platform : {"henri", "henri-subnuma", "occigen"}) {
    const std::vector<mcm::model::ErrorReport> reports =
        mcm::eval::run_predictor_comparison(platform);
    std::printf("== Predictor comparison on %s ==\n%s\n", platform,
                mcm::model::render_error_table(reports).c_str());
  }

  benchmark::RegisterBenchmark(
      "predictor_comparison/henri", [](benchmark::State& state) {
        for (auto _ : state) {
          benchmark::DoNotOptimize(
              mcm::eval::run_predictor_comparison("henri"));
        }
      });
  return mcm::benchx::run_benchmarks(argc, argv);
}
