// E-TAB2 — reproduction of Table II: model prediction errors (MAPE) on all
// testbed platforms, split between sample and non-sample placements.
//
// Expected shape (paper §IV-B): all platforms in the low single digits
// except pyxis' non-sample communication error; occigen most accurate;
// overall average below ~4-5 %.
#include "bench/common.hpp"
#include "eval/tables.hpp"

int main(int argc, char** argv) {
  mcm::benchx::BenchRun run("tab2_errors");
  run.report().platform = "all";
  {
    const auto timer = run.stage("table2");
    const std::vector<mcm::model::ErrorReport> reports =
        mcm::eval::run_table2();
    std::printf("== Table II: model errors on testbed platforms ==\n%s\n",
                mcm::eval::render_table2(reports).c_str());
    double average = 0.0;
    for (const mcm::model::ErrorReport& report : reports) {
      run.add_error_report(report, report.platform);
      average += report.average;
    }
    if (!reports.empty()) {
      run.report().add_metric(
          "mape.average", average / static_cast<double>(reports.size()));
    }
  }

  benchmark::RegisterBenchmark(
      "full_table2_pipeline", [](benchmark::State& state) {
        for (auto _ : state) {
          benchmark::DoNotOptimize(mcm::eval::run_table2());
        }
      });
  for (const char* platform : {"henri", "pyxis"}) {
    mcm::benchx::register_pipeline_benchmarks(platform);
  }
  return mcm::benchx::finish(run, argc, argv);
}
