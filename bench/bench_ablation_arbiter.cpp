// E-ABL1 — hardware-mechanism ablation: disable one contention mechanism
// of the simulated memory system at a time and re-run the full calibrate +
// evaluate pipeline on henri. Shows which of the paper's §II-A hardware
// hypotheses (CPU priority, DMA floor, post-knee degradation, host
// coupling, early soft throttling) the model's accuracy depends on — and
// that the model still calibrates (with different parameters) when the
// hardware behaves differently.
#include "bench/common.hpp"
#include "eval/ablation.hpp"

int main(int argc, char** argv) {
  mcm::benchx::BenchRun run("ablation_arbiter");
  run.report().platform = "henri,occigen";
  for (const char* platform : {"henri", "occigen"}) {
    const auto timer = run.stage(std::string("ablation_") + platform);
    const auto results = mcm::eval::run_hardware_ablation(platform);
    std::printf("== Hardware-mechanism ablation on %s ==\n%s\n", platform,
                mcm::eval::render_ablation(results).c_str());
    for (const mcm::eval::AblationResult& result : results) {
      run.report().add_metric(
          std::string(platform) + "." + result.variant + ".mape.average",
          result.report.average);
    }
  }

  benchmark::RegisterBenchmark(
      "hardware_ablation/henri", [](benchmark::State& state) {
        for (auto _ : state) {
          benchmark::DoNotOptimize(mcm::eval::run_hardware_ablation("henri"));
        }
      });
  return mcm::benchx::finish(run, argc, argv);
}
