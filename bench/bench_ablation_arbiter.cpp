// E-ABL1 — hardware-mechanism ablation: disable one contention mechanism
// of the simulated memory system at a time and re-run the full calibrate +
// evaluate pipeline on henri. Shows which of the paper's §II-A hardware
// hypotheses (CPU priority, DMA floor, post-knee degradation, host
// coupling, early soft throttling) the model's accuracy depends on — and
// that the model still calibrates (with different parameters) when the
// hardware behaves differently.
#include "bench/common.hpp"
#include "eval/ablation.hpp"

int main(int argc, char** argv) {
  for (const char* platform : {"henri", "occigen"}) {
    const auto results = mcm::eval::run_hardware_ablation(platform);
    std::printf("== Hardware-mechanism ablation on %s ==\n%s\n", platform,
                mcm::eval::render_ablation(results).c_str());
  }

  benchmark::RegisterBenchmark(
      "hardware_ablation/henri", [](benchmark::State& state) {
        for (auto _ : state) {
          benchmark::DoNotOptimize(mcm::eval::run_hardware_ablation("henri"));
        }
      });
  return mcm::benchx::run_benchmarks(argc, argv);
}
