// E-FIG5 — reproduction of Figure 5: performances of
// computations and communications along with the model prediction on
// diablo, for every placement of computation and communication data.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  mcm::benchx::BenchRun run("fig5_diablo");
  mcm::benchx::emit_figure("Figure 5", "diablo",
                           "bench_fig5_diablo.csv", &run);
  mcm::benchx::register_pipeline_benchmarks("diablo");
  return mcm::benchx::finish(run, argc, argv);
}
