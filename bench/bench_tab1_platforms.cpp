// E-TAB1 — reproduction of Table I: characteristics of testbed platforms.
// Also prints the experiment index mapping every artefact to its binary.
#include "bench/common.hpp"
#include "eval/experiments.hpp"
#include "eval/tables.hpp"

int main(int argc, char** argv) {
  mcm::benchx::BenchRun run("tab1_platforms");
  std::printf("== Table I: characteristics of testbed platforms ==\n%s\n",
              mcm::eval::render_table1().c_str());
  std::printf("== Experiment index ==\n%s\n",
              mcm::eval::render_experiment_index().c_str());
  {
    const auto timer = run.stage("platforms");
    run.report().platform = "all";
    for (const std::string& name : mcm::topo::platform_names()) {
      const mcm::topo::PlatformSpec spec = mcm::topo::make_platform(name);
      run.report().add_metric(
          name + ".numa_nodes",
          static_cast<double>(spec.machine.numa_count()));
    }
  }

  benchmark::RegisterBenchmark("build_all_platforms",
                               [](benchmark::State& state) {
                                 for (auto _ : state) {
                                   for (const auto& name :
                                        mcm::topo::platform_names()) {
                                     benchmark::DoNotOptimize(
                                         mcm::topo::make_platform(name));
                                   }
                                 }
                               });
  return mcm::benchx::finish(run, argc, argv);
}
