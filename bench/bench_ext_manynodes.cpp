// E-EXT3 — many-NUMA-node limitation (paper §IV-C-1): "on machines with
// many NUMA nodes, network performances under memory contention depend on
// data locality and the heuristic given by formula 6 is not sufficiently
// accurate anymore."
//
// We reproduce this on `tetra`, a hypothetical 4-socket ring machine where
// remote sockets are *not* equivalent (adjacent vs opposite ring hops):
// the single Mremote regime calibrated on the adjacent node mispredicts
// the placements behind the thin ring segment. Contrast: henri-subnuma
// also has 4 NUMA nodes but symmetric remotes, and stays accurate — the
// heuristic breaks on remote *asymmetry*, not node count per se.
#include "bench/common.hpp"
#include "eval/tables.hpp"
#include "model/report.hpp"
#include "topo/render.hpp"

namespace {

mcm::model::ErrorReport platform_errors(const std::string& name) {
  mcm::bench::SimBackend backend(mcm::topo::make_platform(name));
  const auto model = mcm::model::ContentionModel::from_backend(backend);
  const mcm::bench::SweepResult sweep =
      mcm::bench::run_all_placements(backend);
  return model.evaluate_against(sweep);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== The 4-socket ring machine ==\n%s\n",
              mcm::topo::render_platform(mcm::topo::make_tetra()).c_str());

  const mcm::model::ErrorReport tetra = platform_errors("tetra");
  std::printf("%s\n", mcm::model::render_error_report(tetra).c_str());

  const mcm::model::ErrorReport subnuma = platform_errors("henri-subnuma");
  std::printf("== Contrast: symmetric 4-node machine vs asymmetric ring "
              "==\n%s\n",
              mcm::model::render_error_table({subnuma, tetra}).c_str());
  std::printf(
      "The placement heuristic (eq. 6/7) assumes one remote regime; the "
      "ring's\nopposite-socket placements (node 2 for socket-0 cores) "
      "violate that and\ndominate tetra's non-sample error — the paper's "
      "stated model limit.\n\n");

  mcm::benchx::register_pipeline_benchmarks("tetra");
  return mcm::benchx::run_benchmarks(argc, argv);
}
