// E-EXT3 — many-NUMA-node limitation (paper §IV-C-1): "on machines with
// many NUMA nodes, network performances under memory contention depend on
// data locality and the heuristic given by formula 6 is not sufficiently
// accurate anymore."
//
// We reproduce this on `tetra`, a hypothetical 4-socket ring machine where
// remote sockets are *not* equivalent (adjacent vs opposite ring hops):
// the single Mremote regime calibrated on the adjacent node mispredicts
// the placements behind the thin ring segment. Contrast: henri-subnuma
// also has 4 NUMA nodes but symmetric remotes, and stays accurate — the
// heuristic breaks on remote *asymmetry*, not node count per se.
#include "bench/common.hpp"
#include "eval/tables.hpp"
#include "model/report.hpp"
#include "topo/render.hpp"

namespace {

mcm::model::ErrorReport platform_errors(mcm::pipeline::Runner& runner,
                                        const std::string& name) {
  mcm::pipeline::ScenarioSpec spec;
  spec.name = "manynodes-" + name;
  spec.platform = name;
  return runner.run(spec).errors;
}

}  // namespace

int main(int argc, char** argv) {
  mcm::benchx::BenchRun run("ext_manynodes");
  run.report().platform = "tetra,henri-subnuma";
  std::printf("== The 4-socket ring machine ==\n%s\n",
              mcm::topo::render_platform(mcm::topo::make_tetra()).c_str());

  mcm::model::ErrorReport tetra;
  mcm::model::ErrorReport subnuma;
  {
    const auto timer = run.stage("four_node_errors");
    tetra = platform_errors(run.runner(), "tetra");
    subnuma = platform_errors(run.runner(), "henri-subnuma");
  }
  std::printf("%s\n", mcm::model::render_error_report(tetra).c_str());
  std::printf("== Contrast: symmetric 4-node machine vs asymmetric ring "
              "==\n%s\n",
              mcm::model::render_error_table({subnuma, tetra}).c_str());
  run.add_error_report(tetra, "tetra");
  run.add_error_report(subnuma, "henri-subnuma");
  std::printf(
      "The placement heuristic (eq. 6/7) assumes one remote regime; the "
      "ring's\nopposite-socket placements (node 2 for socket-0 cores) "
      "violate that and\ndominate tetra's non-sample error — the paper's "
      "stated model limit.\n\n");

  mcm::benchx::register_pipeline_benchmarks("tetra");
  return mcm::benchx::finish(run, argc, argv);
}
