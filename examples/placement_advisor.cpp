// Placement advisor: the paper's "runtime systems could better know on
// which NUMA node to store data" use case (§VI).
//
// Given a platform and a number of computing cores, rank every placement of
// computation and communication data by the total bandwidth the calibrated
// model predicts, and print the recommendation.
//
// Usage: placement_advisor [platform] [cores]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "model/model.hpp"
#include "pipeline/runner.hpp"
#include "topo/distance.hpp"
#include "topo/platforms.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mcm;

  const std::string platform = argc > 1 ? argv[1] : "henri-subnuma";
  // The calibration-only scenario: the advisor needs just the two §III
  // placements, everything else comes from the model.
  pipeline::ScenarioSpec spec;
  spec.name = "placement-advisor";
  spec.platform = platform;
  spec.placements = pipeline::PlacementSet::kCalibration;
  pipeline::Runner runner;
  const auto model = runner.run(spec).contention_model();
  const std::size_t cores =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2]))
               : model.max_cores();

  std::printf("Placement advice on '%s' with %zu computing cores\n\n",
              platform.c_str(), cores);

  struct Row {
    topo::NumaId comp;
    topo::NumaId comm;
    double compute_gb;
    double comm_gb;
  };
  std::vector<Row> rows;
  for (std::uint32_t comm = 0; comm < model.numa_count(); ++comm) {
    for (std::uint32_t comp = 0; comp < model.numa_count(); ++comp) {
      const model::PredictedCurve curve =
          model.predict({topo::NumaId(comp), topo::NumaId(comm)});
      rows.push_back(Row{topo::NumaId(comp), topo::NumaId(comm),
                         curve.compute_parallel_gb[cores - 1],
                         curve.comm_parallel_gb[cores - 1]});
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.compute_gb + a.comm_gb > b.compute_gb + b.comm_gb;
  });

  AsciiTable table({"rank", "comp data", "comm data", "compute GB/s",
                    "comm GB/s", "total GB/s"});
  table.set_alignments({Align::kRight, Align::kRight, Align::kRight,
                        Align::kRight, Align::kRight, Align::kRight});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    table.add_row({std::to_string(i + 1),
                   "node " + std::to_string(row.comp.value()),
                   "node " + std::to_string(row.comm.value()),
                   format_fixed(row.compute_gb, 2),
                   format_fixed(row.comm_gb, 2),
                   format_fixed(row.compute_gb + row.comm_gb, 2)});
  }
  std::printf("%s\n", table.render().c_str());

  const model::PlacementAdvice best = model.best_placement(cores);
  std::printf("Recommendation: computation data on node %u, communication "
              "data on node %u\n",
              best.comp_numa.value(), best.comm_numa.value());
  std::printf("Contention-free core budget for the recommended placement: "
              "%zu cores\n\n",
              model.recommended_core_count({best.comp_numa, best.comm_numa}));

  // NUMA distances, for context (the advisor beats naive nearest-node
  // placement precisely when contention matters more than distance).
  const topo::DistanceMatrix distances(
      topo::make_platform(platform).machine);
  std::printf("NUMA distance matrix (SLIT style):\n");
  for (std::uint32_t i = 0; i < distances.size(); ++i) {
    std::printf("  node %u:", i);
    for (std::uint32_t j = 0; j < distances.size(); ++j) {
      std::printf(" %2u", distances.at(topo::NumaId(i), topo::NumaId(j)));
    }
    std::printf("\n");
  }
  return 0;
}
