// Overlap planner: decide how many cores a task-based runtime (StarPU /
// PaRSEC style, paper §IV-A) should dedicate to computation when each
// iteration overlaps a memory-bound kernel with a large halo exchange —
// the paper's conclusion use case, built on model::plan_overlap.
//
// Per iteration the application must stream `work_bytes` through the
// memory system (computation) and receive one message of `message_bytes`
// (communication), with both overlapped. Iteration time is
// max(compute_time, comm_time) under the *contended* bandwidths the model
// predicts — a contention-blind planner picks the wrong core count and
// underestimates iteration time (the "contention slowdown" column).
//
// Usage: overlap_planner [platform] [work_GiB] [message_MiB]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "model/overlap.hpp"
#include "pipeline/runner.hpp"
#include "topo/platforms.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mcm;

  const std::string platform = argc > 1 ? argv[1] : "henri";
  const double work_gib = argc > 2 ? std::atof(argv[2]) : 8.0;
  const double message_mib = argc > 3 ? std::atof(argv[3]) : 64.0;

  pipeline::ScenarioSpec spec;
  spec.name = "overlap-planner";
  spec.platform = platform;
  spec.placements = pipeline::PlacementSet::kCalibration;
  pipeline::Runner runner;
  const auto model = runner.run(spec).contention_model();

  model::IterationSpec iteration;
  iteration.compute_bytes = work_gib * static_cast<double>(kGiB);
  iteration.message_bytes = message_mib * static_cast<double>(kMiB);

  // Same-node placement: the paper's worst case, and the common default of
  // untuned applications (everything on node 0).
  const topo::NumaId node0(0);
  const model::OverlapPlan naive_placement =
      model::plan_overlap(model, iteration, node0, node0);

  std::printf("Overlap planning on '%s': %.1f GiB of streamed work + one "
              "%.0f MiB message per iteration, data on node 0\n\n",
              platform.c_str(), work_gib, message_mib);

  AsciiTable table({"cores", "compute ms", "comm ms", "iteration ms",
                    "naive plan ms", "contention slowdown", "bound"});
  table.set_alignments({Align::kRight, Align::kRight, Align::kRight,
                        Align::kRight, Align::kRight, Align::kRight,
                        Align::kLeft});
  for (const model::OverlapPoint& p : naive_placement.points) {
    table.add_row(
        {std::to_string(p.cores), format_fixed(p.compute_seconds * 1e3, 2),
         format_fixed(p.comm_seconds * 1e3, 2),
         format_fixed(p.iteration_seconds * 1e3, 2),
         format_fixed(p.naive_iteration_seconds * 1e3, 2),
         format_fixed(p.contention_slowdown, 2) + "x",
         p.compute_seconds >= p.comm_seconds ? "compute" : "network"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Best core count under contention: %zu cores (%.2f ms per "
              "iteration)\n",
              naive_placement.best_cores,
              naive_placement.best_iteration_seconds * 1e3);

  // Would a smarter placement help?
  const model::OverlapPlan best =
      model::plan_overlap_best_placement(model, iteration);
  if (best.comp_numa != node0 || best.comm_numa != node0) {
    std::printf("With the advisor's placement (comp data on node %u, comm "
                "data on node %u): %zu cores, %.2f ms per iteration.\n",
                best.comp_numa.value(), best.comm_numa.value(),
                best.best_cores, best.best_iteration_seconds * 1e3);
  } else {
    std::printf("The node-0 placement is already optimal for this "
                "workload.\n");
  }
  return 0;
}
