// Two-rank 1D Jacobi stencil with halo exchange over minimpi — the kind of
// distributed application whose communication/computation overlap motivates
// the paper. The two ranks run as real threads over the shared-memory
// transport; each iteration posts non-blocking halo exchanges, updates the
// interior while they fly, then finishes the boundary rows (classic
// overlap pattern).
//
// After running (and checking) the real computation, the example asks the
// calibrated contention model what fraction of the communication can
// actually be hidden on a henri-class machine — the number a runtime
// system would use to pick its overlap strategy.
//
// Usage: cluster_stencil [rows] [cols] [iterations]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <thread>
#include <vector>

#include "model/model.hpp"
#include "net/minimpi.hpp"
#include "pipeline/runner.hpp"
#include "topo/platforms.hpp"

namespace {

using mcm::net::Communicator;
using mcm::net::Request;

/// One rank's half of the domain: `rows` x `cols` interior plus one ghost
/// row on the shared edge. Rank 0 owns the top half, rank 1 the bottom.
void stencil_rank(Communicator& comm, int rank, std::size_t rows,
                  std::size_t cols, int iterations,
                  std::vector<double>& grid_out) {
  const int peer = 1 - rank;
  // Layout: row 0 = ghost (peer's edge), rows 1..rows = owned.
  std::vector<double> grid((rows + 1) * cols, 0.0);
  std::vector<double> next = grid;

  // Boundary condition: a hot outer edge on rank 0's first owned row.
  if (rank == 0) {
    for (std::size_t c = 0; c < cols; ++c) grid[1 * cols + c] = 100.0;
  }

  const auto row = [&](std::vector<double>& g, std::size_t r) {
    return std::span<double>(g.data() + r * cols, cols);
  };

  for (int it = 0; it < iterations; ++it) {
    // The shared edge between the ranks: rank 0's last owned row meets
    // rank 1's first owned row.
    const std::size_t edge = rank == 0 ? rows : 1;
    // Post the halo exchange first (tags: 2*it for rank0->rank1, 2*it+1
    // for the reverse), then compute the interior while it progresses.
    Request send = comm.isend(peer, 2 * it + rank,
                              std::as_bytes(row(grid, edge)));
    Request recv = comm.irecv(peer, 2 * it + peer,
                              std::as_writable_bytes(row(grid, 0)));

    // Interior update: rows 2..rows-1, skipping the edge row (needs the
    // ghost) — row 1 is rank 0's fixed Dirichlet boundary, and rank 1's
    // row `rows` stays a cold boundary.
    for (std::size_t r = 2; r + 1 <= rows; ++r) {
      if (r == edge) continue;
      for (std::size_t c = 1; c + 1 < cols; ++c) {
        next[r * cols + c] =
            0.25 * (grid[(r - 1) * cols + c] + grid[(r + 1) * cols + c] +
                    grid[r * cols + c - 1] + grid[r * cols + c + 1]);
      }
    }

    // Finish the exchange, then update the edge row using the ghost.
    comm.wait(recv);
    comm.wait(send);
    {
      const std::size_t r = edge;
      const std::size_t ghost_r = 0;
      const std::size_t inner_r = rank == 0 ? edge - 1 : edge + 1;
      for (std::size_t c = 1; c + 1 < cols; ++c) {
        next[r * cols + c] =
            0.25 * (grid[ghost_r * cols + c] + grid[inner_r * cols + c] +
                    grid[r * cols + c - 1] + grid[r * cols + c + 1]);
      }
    }
    // Re-apply the Dirichlet boundary.
    if (rank == 0) {
      for (std::size_t c = 0; c < cols; ++c) next[1 * cols + c] = 100.0;
    }
    grid.swap(next);
    comm.barrier();
  }
  grid_out = std::move(grid);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcm;

  const std::size_t rows =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 64;
  const std::size_t cols =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 256;
  const int iterations = argc > 3 ? std::atoi(argv[3]) : 200;

  // -- Part 1: run the real two-rank stencil over minimpi -------------------
  net::ShmWorld world;
  std::vector<double> grid0;
  std::vector<double> grid1;
  std::thread rank1([&] {
    stencil_rank(world.comm(1), 1, rows, cols, iterations, grid1);
  });
  stencil_rank(world.comm(0), 0, rows, cols, iterations, grid0);
  rank1.join();

  // Sanity: heat must have diffused across the rank boundary.
  double boundary_heat = 0.0;
  for (std::size_t c = 1; c + 1 < cols; ++c) {
    boundary_heat += grid1[1 * cols + c];  // rank 1's first owned row
  }
  boundary_heat /= static_cast<double>(cols - 2);
  std::printf("Jacobi stencil: 2 ranks x %zux%zu cells, %d iterations\n",
              rows, cols, iterations);
  std::printf("mean temperature on the rank-1 side of the shared edge: "
              "%.3e (must be > 0: heat crossed the network)\n\n",
              boundary_heat);
  if (!(boundary_heat > 0.0)) {
    std::fprintf(stderr, "stencil verification FAILED\n");
    return 1;
  }

  // -- Part 2: ask the model how well this overlap would work at scale -----
  pipeline::ScenarioSpec spec;
  spec.name = "cluster-stencil";
  spec.platform = "henri";
  spec.placements = pipeline::PlacementSet::kCalibration;
  pipeline::Runner runner;
  const auto model = runner.run(spec).contention_model();
  const topo::NumaId node0(0);

  std::printf("Overlap outlook on a henri-class machine (halo on node 0, "
              "computation data on node 0):\n");
  for (std::size_t n : {4ul, 8ul, 12ul, 16ul}) {
    const model::PredictedCurve curve = model.predict({node0, node0});
    const double comm = curve.comm_parallel_gb[n - 1];
    const double nominal = curve.comm_alone_gb[n - 1];
    std::printf("  %2zu cores: network runs at %5.2f of %5.2f GB/s "
                "(%.0f %% of nominal hidden-cost budget)\n",
                n, comm, nominal, 100.0 * comm / nominal);
  }
  std::printf("\nWith all cores computing, prefer the advisor's placement "
              "(see placement_advisor) or cap the core count at %zu.\n",
              model.recommended_core_count({node0, node0}));
  return 0;
}
