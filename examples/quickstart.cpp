// Quickstart: calibrate the contention model on a (simulated) platform,
// inspect its parameters, predict a placement it has never measured, and
// check the prediction error against ground truth.
//
// Usage: quickstart [platform]   (default: henri)
#include <cstdio>
#include <string>

#include "benchlib/backend.hpp"
#include "benchlib/runner.hpp"
#include "model/model.hpp"
#include "model/report.hpp"
#include "topo/platforms.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mcm;

  const std::string platform = argc > 1 ? argv[1] : "henri";
  std::printf("== Quickstart on platform '%s' ==\n\n", platform.c_str());

  // 1. Build the simulated machine and a measurement backend.
  bench::SimBackend backend(topo::make_platform(platform));

  // 2. Calibrate: the model only needs the two placements of paper §III
  //    (both data blocks local, both remote).
  const auto model = model::ContentionModel::from_backend(backend);
  std::printf("Calibrated parameters:\n%s\n",
              model::render_parameters(model).c_str());

  // 3. Predict a placement that was never measured during calibration:
  //    computation data local (node 0), communication data remote (#m).
  const topo::NumaId comp(0);
  const topo::NumaId comm(
      static_cast<std::uint32_t>(backend.numa_per_socket()));
  const model::PredictedCurve predicted = model.predict({comp, comm});

  AsciiTable table({"cores", "compute GB/s (model)", "comm GB/s (model)"});
  table.set_alignments({Align::kRight, Align::kRight, Align::kRight});
  for (std::size_t n = 1; n <= model.max_cores(); ++n) {
    table.add_row({std::to_string(n),
                   format_fixed(predicted.compute_parallel_gb[n - 1], 2),
                   format_fixed(predicted.comm_parallel_gb[n - 1], 2)});
  }
  std::printf("Prediction for computation data on node %u, "
              "communication data on node %u:\n%s\n",
              comp.value(), comm.value(), table.render().c_str());

  // 4. Advisor: contention-free core counts and best placement.
  std::printf("Recommended cores before contention, same-node placement: "
              "%zu\n",
              model.recommended_core_count(
                  {topo::NumaId(0), topo::NumaId(0)}));
  const model::PlacementAdvice advice =
      model.best_placement(model.max_cores());
  std::printf("Best placement at %zu cores: comp data on node %u, comm "
              "data on node %u (%.2f + %.2f GB/s)\n\n",
              model.max_cores(), advice.comp_numa.value(),
              advice.comm_numa.value(), advice.compute_gb, advice.comm_gb);

  // 5. Validate: measure every placement and compare with the model.
  const bench::SweepResult sweep = bench::run_all_placements(backend);
  const model::ErrorReport report = model.evaluate_against(sweep);
  std::printf("%s", model::render_error_report(report).c_str());
  return 0;
}
