// Quickstart: run the full scenario pipeline on a (simulated) platform —
// calibrate the contention model, inspect its parameters, predict a
// placement the calibration never measured, and check the prediction
// error against ground truth. One declarative ScenarioSpec drives all
// four stages (measure -> calibrate -> predict -> score).
//
// Usage: quickstart [platform]   (default: henri)
#include <cstdio>
#include <string>

#include "model/model.hpp"
#include "model/report.hpp"
#include "pipeline/runner.hpp"
#include "topo/platforms.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mcm;

  const std::string platform = argc > 1 ? argv[1] : "henri";
  std::printf("== Quickstart on platform '%s' ==\n\n", platform.c_str());

  // 1. Describe the run declaratively: which platform, which placements.
  //    PlacementSet::kAll measures every placement so the scenario can
  //    score the model against ground truth at the end; the calibration
  //    placements of paper §III are part of that sweep.
  pipeline::ScenarioSpec spec;
  spec.name = "quickstart";
  spec.platform = platform;
  spec.placements = pipeline::PlacementSet::kAll;

  // 2. Run it. The runner measures, calibrates (or hits its calibration
  //    cache), predicts and scores in one call.
  pipeline::Runner runner;
  const pipeline::ScenarioResult result = runner.run(spec);
  const model::ContentionModel model = result.contention_model();
  std::printf("Calibrated parameters:\n%s\n",
              model::render_parameters(model).c_str());

  // 3. Predict a placement that was never measured during calibration:
  //    computation data local (node 0), communication data remote (#m).
  const topo::NumaId comp(0);
  const topo::NumaId comm(
      static_cast<std::uint32_t>(result.sweep.numa_per_socket));
  const model::PredictedCurve predicted = model.predict({comp, comm});

  AsciiTable table({"cores", "compute GB/s (model)", "comm GB/s (model)"});
  table.set_alignments({Align::kRight, Align::kRight, Align::kRight});
  for (std::size_t n = 1; n <= model.max_cores(); ++n) {
    table.add_row({std::to_string(n),
                   format_fixed(predicted.compute_parallel_gb[n - 1], 2),
                   format_fixed(predicted.comm_parallel_gb[n - 1], 2)});
  }
  std::printf("Prediction for computation data on node %u, "
              "communication data on node %u:\n%s\n",
              comp.value(), comm.value(), table.render().c_str());

  // 4. Advisor: contention-free core counts and best placement.
  std::printf("Recommended cores before contention, same-node placement: "
              "%zu\n",
              model.recommended_core_count(
                  {topo::NumaId(0), topo::NumaId(0)}));
  const model::PlacementAdvice advice =
      model.best_placement(model.max_cores());
  std::printf("Best placement at %zu cores: comp data on node %u, comm "
              "data on node %u (%.2f + %.2f GB/s)\n\n",
              model.max_cores(), advice.comp_numa.value(),
              advice.comm_numa.value(), advice.compute_gb, advice.comm_gb);

  // 5. Validate: the scenario already measured every placement and scored
  //    the model against it (Table-II style MAPE).
  std::printf("%s", model::render_error_report(result.errors).c_str());
  return 0;
}
