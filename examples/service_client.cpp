// Service quickstart: run an in-process prediction service, serve it on
// a Unix-domain socket, and talk to it through svc::Client — the same
// three calls `mcmtool query` makes (docs/service.md).
//
// The session shows the service-side economics: the first predict pays
// for a calibration, the second identical one is answered from the
// sharded calibration cache, and the stats method reports both through
// the svc.* counters.
//
// Usage: service_client [socket-path]   (default: /tmp/mcmd-example.sock)
#include <cstdio>
#include <string>

#include "pipeline/spec.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"
#include "util/json.hpp"

int main(int argc, char** argv) {
  using namespace mcm;

  const std::string path =
      argc > 1 ? argv[1] : "/tmp/mcmd-example.sock";

  // 1. The service core plus a socket transport, both in-process. A real
  //    deployment runs `mcmd --socket PATH` instead; everything below is
  //    identical from the client's point of view.
  svc::Service service;
  svc::SocketServerOptions socket_options;
  socket_options.path = path;
  svc::SocketServer server(service, socket_options);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("== service on %s ==\n\n", path.c_str());

  // 2. Connect and check the protocol handshake.
  auto client = svc::Client::connect(path, &error);
  if (!client) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  const auto health = client->health(&error);
  if (!health || !health->ok) {
    std::fprintf(stderr, "error: health check failed\n");
    return 1;
  }
  std::printf("health: protocol v%.0f\n\n",
              health->result.number_at("protocol").value_or(0.0));

  // 3. Two identical predictions. The spec is exactly the
  //    `mcmtool run-scenario` document; the calibration placements are
  //    enough for the service to fit the model.
  pipeline::ScenarioSpec spec;
  spec.name = "service-quickstart";
  spec.platform = "henri";
  spec.placements = pipeline::PlacementSet::kCalibration;

  for (int round = 1; round <= 2; ++round) {
    const auto reply =
        client->predict(spec, svc::TrafficClass::kInteractive, &error);
    if (!reply) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    if (!reply->ok) {
      std::fprintf(stderr, "error: %s: %s\n",
                   svc::to_string(reply->error.code),
                   reply->error.message.c_str());
      return 1;
    }
    const bool cache_hit =
        reply->result.find("cache_hit") != nullptr &&
        reply->result.find("cache_hit")->is_bool() &&
        reply->result.find("cache_hit")->as_bool();
    std::printf("predict #%d: status %s, calibration %s\n", round,
                reply->result.string_at("status").value_or("?").c_str(),
                cache_hit ? "cache hit" : "measured");
  }

  // 4. The resilient call form (docs/service.md, "Deadlines, retries,
  //    and shutdown"): an end-to-end deadline shared with the server
  //    plus retry/backoff. Against this healthy in-process server it
  //    simply succeeds on the first attempt — the point is the shape.
  svc::Request guarded;
  guarded.method = svc::Method::kHealth;
  svc::CallOptions call_options;
  call_options.deadline_ms = 2000.0;
  call_options.retry.max_retries = 2;
  const auto guarded_reply =
      client->call(std::move(guarded), call_options, &error);
  if (!guarded_reply || !guarded_reply->ok) {
    std::fprintf(stderr, "error: guarded call failed\n");
    return 1;
  }
  std::printf("\nguarded health (2s deadline, 2 retries): status %s\n",
              guarded_reply->result.string_at("status")
                  .value_or("?")
                  .c_str());

  // 5. The stats method sees every round: one calibration executed, one
  //    shard hit on the repeat.
  const auto stats = client->stats(svc::StatsFormat::kJson, &error);
  if (!stats || !stats->ok) {
    std::fprintf(stderr, "error: stats failed\n");
    return 1;
  }
  const json::Value* counters = stats->result.find("counters");
  const auto counter = [&](const char* name) {
    const json::Value* value =
        counters != nullptr ? counters->find(name) : nullptr;
    return value != nullptr ? value->as_number() : 0.0;
  };
  std::printf("\nstats: %.0f requests, %.0f calibration(s) executed, "
              "%.0f shed, cache %.0f entr%s in %.0f shards\n",
              counter("svc.requests"), counter("svc.calibrations"),
              counter("svc.shed"),
              stats->result.number_at("cache_entries").value_or(0.0),
              stats->result.number_at("cache_entries").value_or(0.0) == 1.0
                  ? "y"
                  : "ies",
              stats->result.number_at("cache_shards").value_or(0.0));

  // 6. Graceful shutdown: what `mcmd` does on SIGTERM.
  std::printf("\n%s\n", server.drain(1000)
                            ? "server drained cleanly"
                            : "drain budget exhausted, stopped hard");
  std::printf("Done. `mcmd --socket %s` + `mcmtool query` replays this "
              "session from the shell.\n",
              path.c_str());
  return 0;
}
