
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/topo/test_builder.cpp" "tests/CMakeFiles/test_topo.dir/topo/test_builder.cpp.o" "gcc" "tests/CMakeFiles/test_topo.dir/topo/test_builder.cpp.o.d"
  "/root/repo/tests/topo/test_distance.cpp" "tests/CMakeFiles/test_topo.dir/topo/test_distance.cpp.o" "gcc" "tests/CMakeFiles/test_topo.dir/topo/test_distance.cpp.o.d"
  "/root/repo/tests/topo/test_ids.cpp" "tests/CMakeFiles/test_topo.dir/topo/test_ids.cpp.o" "gcc" "tests/CMakeFiles/test_topo.dir/topo/test_ids.cpp.o.d"
  "/root/repo/tests/topo/test_platforms.cpp" "tests/CMakeFiles/test_topo.dir/topo/test_platforms.cpp.o" "gcc" "tests/CMakeFiles/test_topo.dir/topo/test_platforms.cpp.o.d"
  "/root/repo/tests/topo/test_render.cpp" "tests/CMakeFiles/test_topo.dir/topo/test_render.cpp.o" "gcc" "tests/CMakeFiles/test_topo.dir/topo/test_render.cpp.o.d"
  "/root/repo/tests/topo/test_topology.cpp" "tests/CMakeFiles/test_topo.dir/topo/test_topology.cpp.o" "gcc" "tests/CMakeFiles/test_topo.dir/topo/test_topology.cpp.o.d"
  "/root/repo/tests/topo/test_topology_io.cpp" "tests/CMakeFiles/test_topo.dir/topo/test_topology_io.cpp.o" "gcc" "tests/CMakeFiles/test_topo.dir/topo/test_topology_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topo/CMakeFiles/mcm_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
