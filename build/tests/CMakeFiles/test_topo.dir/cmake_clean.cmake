file(REMOVE_RECURSE
  "CMakeFiles/test_topo.dir/topo/test_builder.cpp.o"
  "CMakeFiles/test_topo.dir/topo/test_builder.cpp.o.d"
  "CMakeFiles/test_topo.dir/topo/test_distance.cpp.o"
  "CMakeFiles/test_topo.dir/topo/test_distance.cpp.o.d"
  "CMakeFiles/test_topo.dir/topo/test_ids.cpp.o"
  "CMakeFiles/test_topo.dir/topo/test_ids.cpp.o.d"
  "CMakeFiles/test_topo.dir/topo/test_platforms.cpp.o"
  "CMakeFiles/test_topo.dir/topo/test_platforms.cpp.o.d"
  "CMakeFiles/test_topo.dir/topo/test_render.cpp.o"
  "CMakeFiles/test_topo.dir/topo/test_render.cpp.o.d"
  "CMakeFiles/test_topo.dir/topo/test_topology.cpp.o"
  "CMakeFiles/test_topo.dir/topo/test_topology.cpp.o.d"
  "CMakeFiles/test_topo.dir/topo/test_topology_io.cpp.o"
  "CMakeFiles/test_topo.dir/topo/test_topology_io.cpp.o.d"
  "test_topo"
  "test_topo.pdb"
  "test_topo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
