
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/test_minimpi.cpp" "tests/CMakeFiles/test_net.dir/net/test_minimpi.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_minimpi.cpp.o.d"
  "/root/repo/tests/net/test_minimpi_stress.cpp" "tests/CMakeFiles/test_net.dir/net/test_minimpi_stress.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_minimpi_stress.cpp.o.d"
  "/root/repo/tests/net/test_protocol.cpp" "tests/CMakeFiles/test_net.dir/net/test_protocol.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_protocol.cpp.o.d"
  "/root/repo/tests/net/test_sim_channel.cpp" "tests/CMakeFiles/test_net.dir/net/test_sim_channel.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_sim_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/mcm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/mcm_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
