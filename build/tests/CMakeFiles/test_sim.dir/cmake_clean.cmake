file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_arbiter.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_arbiter.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_arbiter_property.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_arbiter_property.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_engine.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_engine.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_llc.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_llc.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_machine.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_machine.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_workloads.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_workloads.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
