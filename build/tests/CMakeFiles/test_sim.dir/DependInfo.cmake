
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_arbiter.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_arbiter.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_arbiter.cpp.o.d"
  "/root/repo/tests/sim/test_arbiter_property.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_arbiter_property.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_arbiter_property.cpp.o.d"
  "/root/repo/tests/sim/test_engine.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_engine.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_engine.cpp.o.d"
  "/root/repo/tests/sim/test_llc.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_llc.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_llc.cpp.o.d"
  "/root/repo/tests/sim/test_machine.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_machine.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_machine.cpp.o.d"
  "/root/repo/tests/sim/test_workloads.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mcm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mcm_model.dir/DependInfo.cmake"
  "/root/repo/build/src/benchlib/CMakeFiles/mcm_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/mcm_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
