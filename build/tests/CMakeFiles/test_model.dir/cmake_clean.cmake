file(REMOVE_RECURSE
  "CMakeFiles/test_model.dir/model/test_calibration.cpp.o"
  "CMakeFiles/test_model.dir/model/test_calibration.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_metrics.cpp.o"
  "CMakeFiles/test_model.dir/model/test_metrics.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_model.cpp.o"
  "CMakeFiles/test_model.dir/model/test_model.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_model_property.cpp.o"
  "CMakeFiles/test_model.dir/model/test_model_property.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_overlap.cpp.o"
  "CMakeFiles/test_model.dir/model/test_overlap.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_placement.cpp.o"
  "CMakeFiles/test_model.dir/model/test_placement.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_prediction.cpp.o"
  "CMakeFiles/test_model.dir/model/test_prediction.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_stability.cpp.o"
  "CMakeFiles/test_model.dir/model/test_stability.cpp.o.d"
  "test_model"
  "test_model.pdb"
  "test_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
