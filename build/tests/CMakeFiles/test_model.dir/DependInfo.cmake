
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/model/test_calibration.cpp" "tests/CMakeFiles/test_model.dir/model/test_calibration.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_calibration.cpp.o.d"
  "/root/repo/tests/model/test_metrics.cpp" "tests/CMakeFiles/test_model.dir/model/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_metrics.cpp.o.d"
  "/root/repo/tests/model/test_model.cpp" "tests/CMakeFiles/test_model.dir/model/test_model.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_model.cpp.o.d"
  "/root/repo/tests/model/test_model_property.cpp" "tests/CMakeFiles/test_model.dir/model/test_model_property.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_model_property.cpp.o.d"
  "/root/repo/tests/model/test_overlap.cpp" "tests/CMakeFiles/test_model.dir/model/test_overlap.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_overlap.cpp.o.d"
  "/root/repo/tests/model/test_placement.cpp" "tests/CMakeFiles/test_model.dir/model/test_placement.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_placement.cpp.o.d"
  "/root/repo/tests/model/test_prediction.cpp" "tests/CMakeFiles/test_model.dir/model/test_prediction.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_prediction.cpp.o.d"
  "/root/repo/tests/model/test_stability.cpp" "tests/CMakeFiles/test_model.dir/model/test_stability.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_stability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/mcm_model.dir/DependInfo.cmake"
  "/root/repo/build/src/benchlib/CMakeFiles/mcm_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/mcm_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
