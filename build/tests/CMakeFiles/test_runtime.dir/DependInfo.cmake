
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime/test_affinity.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/test_affinity.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/test_affinity.cpp.o.d"
  "/root/repo/tests/runtime/test_kernels.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/test_kernels.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/test_kernels.cpp.o.d"
  "/root/repo/tests/runtime/test_native_backend.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/test_native_backend.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/test_native_backend.cpp.o.d"
  "/root/repo/tests/runtime/test_thread_pool.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/test_thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/mcm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/benchlib/CMakeFiles/mcm_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mcm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/mcm_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
