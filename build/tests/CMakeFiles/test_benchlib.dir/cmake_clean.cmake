file(REMOVE_RECURSE
  "CMakeFiles/test_benchlib.dir/benchlib/test_curves.cpp.o"
  "CMakeFiles/test_benchlib.dir/benchlib/test_curves.cpp.o.d"
  "CMakeFiles/test_benchlib.dir/benchlib/test_repetitions.cpp.o"
  "CMakeFiles/test_benchlib.dir/benchlib/test_repetitions.cpp.o.d"
  "CMakeFiles/test_benchlib.dir/benchlib/test_runner.cpp.o"
  "CMakeFiles/test_benchlib.dir/benchlib/test_runner.cpp.o.d"
  "CMakeFiles/test_benchlib.dir/benchlib/test_sweep_io.cpp.o"
  "CMakeFiles/test_benchlib.dir/benchlib/test_sweep_io.cpp.o.d"
  "test_benchlib"
  "test_benchlib.pdb"
  "test_benchlib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
