
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/benchlib/test_curves.cpp" "tests/CMakeFiles/test_benchlib.dir/benchlib/test_curves.cpp.o" "gcc" "tests/CMakeFiles/test_benchlib.dir/benchlib/test_curves.cpp.o.d"
  "/root/repo/tests/benchlib/test_repetitions.cpp" "tests/CMakeFiles/test_benchlib.dir/benchlib/test_repetitions.cpp.o" "gcc" "tests/CMakeFiles/test_benchlib.dir/benchlib/test_repetitions.cpp.o.d"
  "/root/repo/tests/benchlib/test_runner.cpp" "tests/CMakeFiles/test_benchlib.dir/benchlib/test_runner.cpp.o" "gcc" "tests/CMakeFiles/test_benchlib.dir/benchlib/test_runner.cpp.o.d"
  "/root/repo/tests/benchlib/test_sweep_io.cpp" "tests/CMakeFiles/test_benchlib.dir/benchlib/test_sweep_io.cpp.o" "gcc" "tests/CMakeFiles/test_benchlib.dir/benchlib/test_sweep_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchlib/CMakeFiles/mcm_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mcm_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/mcm_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
