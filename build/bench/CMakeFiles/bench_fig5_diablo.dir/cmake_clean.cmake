file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_diablo.dir/bench_fig5_diablo.cpp.o"
  "CMakeFiles/bench_fig5_diablo.dir/bench_fig5_diablo.cpp.o.d"
  "bench_fig5_diablo"
  "bench_fig5_diablo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_diablo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
