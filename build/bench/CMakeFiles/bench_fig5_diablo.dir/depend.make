# Empty dependencies file for bench_fig5_diablo.
# This may be replaced when dependencies are built.
