file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_manynodes.dir/bench_ext_manynodes.cpp.o"
  "CMakeFiles/bench_ext_manynodes.dir/bench_ext_manynodes.cpp.o.d"
  "bench_ext_manynodes"
  "bench_ext_manynodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_manynodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
