# Empty compiler generated dependencies file for bench_ext_manynodes.
# This may be replaced when dependencies are built.
