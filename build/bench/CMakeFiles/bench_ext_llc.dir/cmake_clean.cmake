file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_llc.dir/bench_ext_llc.cpp.o"
  "CMakeFiles/bench_ext_llc.dir/bench_ext_llc.cpp.o.d"
  "bench_ext_llc"
  "bench_ext_llc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_llc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
