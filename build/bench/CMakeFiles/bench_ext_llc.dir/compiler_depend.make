# Empty compiler generated dependencies file for bench_ext_llc.
# This may be replaced when dependencies are built.
