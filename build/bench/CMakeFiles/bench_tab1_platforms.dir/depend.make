# Empty dependencies file for bench_tab1_platforms.
# This may be replaced when dependencies are built.
