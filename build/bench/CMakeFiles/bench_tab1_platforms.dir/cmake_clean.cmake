file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_platforms.dir/bench_tab1_platforms.cpp.o"
  "CMakeFiles/bench_tab1_platforms.dir/bench_tab1_platforms.cpp.o.d"
  "bench_tab1_platforms"
  "bench_tab1_platforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
