file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_occigen.dir/bench_fig6_occigen.cpp.o"
  "CMakeFiles/bench_fig6_occigen.dir/bench_fig6_occigen.cpp.o.d"
  "bench_fig6_occigen"
  "bench_fig6_occigen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_occigen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
