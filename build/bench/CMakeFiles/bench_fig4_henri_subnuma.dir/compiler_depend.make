# Empty compiler generated dependencies file for bench_fig4_henri_subnuma.
# This may be replaced when dependencies are built.
